// Quickstart: the smallest end-to-end DeepSea session.
//
// Builds a BigBench-like catalog, processes a handful of analytic
// queries through the DeepSea engine, and shows how the engine first
// answers from base tables, then materializes a partitioned view, and
// finally answers follow-up queries from small view fragments. Physical
// execution is enabled, so real rows flow through the executor and the
// printed result comes from actual data.
//
// Run:  ./examples/quickstart
//
// At end-of-run the example prints a Prometheus scrape of the session
// (see OBSERVABILITY.md) and also writes it to quickstart_metrics.prom
// in the working directory — CI validates that file with tools/promlint.

#include <cstdio>

#include "core/engine.h"
#include "exp/metrics.h"
#include "workload/bigbench.h"

using namespace deepsea;

int main() {
  // 1. Generate a 20 GB (logical) retail dataset with a physical sample
  //    of a few thousand rows per fact table.
  Catalog catalog;
  BigBenchDataset::Options data;
  data.total_bytes = 20e9;
  data.sample_rows_per_fact = 4000;
  data.sample_rows_per_dim = 500;
  if (Status s = BigBenchDataset::Generate(data, &catalog); !s.ok()) {
    std::printf("dataset generation failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Create a DeepSea engine. The default options run the full
  //    adaptive strategy; physical_execution also runs every query over
  //    the sample rows (not just the cost model).
  EngineOptions options;
  options.physical_execution = true;
  options.benefit_cost_threshold = 0.05;  // materialize after little evidence
  DeepSeaEngine engine(&catalog, options);

  // Attach the production metrics sink: counters/histograms accumulate
  // from the observer hooks, pool gauges are read at scrape time.
  MetricsObserver metrics;
  metrics.set_pool(&engine.pool());
  engine.set_observer(&metrics);

  // 3. Ask the same analytic question over a drifting item range:
  //    "revenue per category for items in [lo, hi]" (template Q30).
  std::printf("%-5s %-28s %10s %10s %8s %s\n", "query", "item_sk range",
              "base (s)", "total (s)", "source", "notes");
  for (int i = 0; i < 8; ++i) {
    const double lo = 100000 + i * 2000;
    const double hi = 180000 + i * 2000;
    auto plan = BigBenchTemplates::Build("Q30", lo, hi);
    if (!plan.ok()) return 1;
    auto report = engine.ProcessQuery(*plan);
    if (!report.ok()) {
      std::printf("query failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::string notes;
    if (!report->created_views.empty()) {
      notes = "materialized view " + report->created_views[0];
      if (report->created_fragments > 0) {
        notes += " (" + std::to_string(report->created_fragments) + " fragments)";
      }
    } else if (report->created_fragments > 0) {
      notes = "refined " + std::to_string(report->created_fragments) + " fragment(s)";
    }
    std::printf("Q30_%d [%.0f, %.0f]%*s %10.1f %10.1f %8s %s\n", i + 1, lo, hi,
                static_cast<int>(12 - std::to_string(i).size()), "",
                report->base_seconds, report->total_seconds,
                report->used_view.empty() ? "base" : report->used_view.c_str(),
                notes.c_str());
  }

  // 4. Show the final pool state: which fragments exist and how big.
  std::printf("\nmaterialized view pool (%.2f GB):\n", engine.PoolBytes() / 1e9);
  for (const ViewInfo* view : engine.views().AllViews()) {
    if (!view->InPool()) continue;
    std::printf("  %s  (creation cost %.0f s)\n", view->id.c_str(),
                view->stats.creation_cost);
    for (const auto& [attr, part] : view->partitions) {
      for (const FragmentStats& f : part.fragments) {
        if (!f.materialized) continue;
        std::printf("    %-28s %8.2f GB  %zu hits\n",
                    f.interval.ToString().c_str(), f.size_bytes / 1e9,
                    f.hits().size());
      }
    }
  }

  // 5. And the last query's actual result rows (physical execution).
  std::printf("\nlast result (category, revenue):\n");
  auto last = BigBenchTemplates::Build("Q30", 114000, 194000);
  auto report = engine.ProcessQuery(*last);
  if (report.ok() && report->physically_executed) {
    int shown = 0;
    for (const Row& row : report->physical.rows) {
      std::printf("  %-10s %s\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str());
      if (++shown >= 8) break;
    }
    std::printf("  (%zu rows total)\n", report->physical.rows.size());
  }

  // 6. The Prometheus scrape an operator would see (OBSERVABILITY.md
  //    explains every series). Also saved for the CI format check.
  const std::string scrape = metrics.RenderPrometheusText();
  std::printf("\n--- prometheus scrape ---\n%s", scrape.c_str());
  if (FILE* f = std::fopen("quickstart_metrics.prom", "w")) {
    std::fwrite(scrape.data(), 1, scrape.size(), f);
    std::fclose(f);
    std::printf("--- scrape written to quickstart_metrics.prom ---\n");
  }
  return 0;
}
