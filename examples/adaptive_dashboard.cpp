// Adaptive dashboard: a BI-dashboard-style scenario. A fixed panel of
// dashboard widgets (category revenue, click counts, customer-age
// breakdowns — templates Q30, Q5, Q7) refreshes periodically, each time
// focused on the currently "trending" item range, which drifts from
// week to week. The example contrasts the DeepSea engine with a
// no-materialization baseline on identical refresh sequences and prints
// a running savings report — the kind of sizing exercise a platform
// team would run before adopting adaptive view materialization.
//
// Run:  ./examples/adaptive_dashboard

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exp/metrics.h"
#include "exp/trace.h"
#include "workload/bigbench.h"
#include "workload/range_generator.h"

using namespace deepsea;

namespace {

struct Refresh {
  std::string widget;
  std::string tmpl;
  Interval range;
};

// One dashboard refresh = three widget queries around the trend center.
std::vector<Refresh> MakeRefresh(double trend_center, Rng* rng) {
  std::vector<Refresh> out;
  auto jitter = [&](double width) {
    const double mid = trend_center + rng->Gaussian(0.0, 1500.0);
    return Interval(std::max(0.0, mid - width / 2.0),
                    std::min(400000.0, mid + width / 2.0));
  };
  out.push_back({"revenue-by-category", "Q30", jitter(20000)});
  out.push_back({"click-volume", "Q5", jitter(20000)});
  out.push_back({"demographics", "Q7", jitter(20000)});
  return out;
}

Catalog MakeCatalog() {
  Catalog catalog;
  BigBenchDataset::Options data;
  data.total_bytes = 100e9;
  data.sample_rows_per_fact = 512;
  data.sample_rows_per_dim = 128;
  (void)BigBenchDataset::Generate(data, &catalog);
  return catalog;
}

}  // namespace

int main() {
  Catalog ds_catalog = MakeCatalog();
  Catalog hive_catalog = MakeCatalog();

  EngineOptions ds_options;
  ds_options.benefit_cost_threshold = 0.05;
  ds_options.pool_limit_bytes = 25e9;
  // Trend jitter is ~1.5k; a coarser snap grid makes one fragment serve
  // a whole trend instead of one per jitter cell.
  ds_options.candidate_snap_fraction = 0.0125;
  DeepSeaEngine deepsea_engine(&ds_catalog, ds_options);

  // Watch the pipeline through both telemetry sinks at once: the
  // TraceObserver aggregates per-stage time for the offline-style
  // breakdown below, the MetricsObserver maintains the live Prometheus
  // series, and a MulticastObserver fans the single observer slot out
  // to both (each hook reaches the sinks in attachment order).
  TraceObserver observer("dashboard", nullptr);
  MetricsObserver metrics;
  metrics.set_pool(&deepsea_engine.pool());
  MulticastObserver multicast;
  multicast.Add(&observer);
  multicast.Add(&metrics);
  deepsea_engine.set_observer(&multicast);

  EngineOptions hive_options;
  hive_options.strategy = StrategyKind::kHive;
  DeepSeaEngine hive_engine(&hive_catalog, hive_options);

  Rng rng(99);
  std::printf("%-6s %-12s %14s %14s %12s %s\n", "week", "trend", "DeepSea (s)",
              "no views (s)", "saved", "pool");
  double ds_total = 0.0, hive_total = 0.0;
  // Eight "weeks", trend drifting across the catalog.
  const double trend_centers[] = {60000,  60000,  90000,  90000,
                                  220000, 220000, 250000, 340000};
  int week = 0;
  for (double center : trend_centers) {
    ++week;
    double ds_week = 0.0, hive_week = 0.0;
    for (int refresh = 0; refresh < 6; ++refresh) {  // 6 refreshes per week
      for (const Refresh& r : MakeRefresh(center, &rng)) {
        auto plan = BigBenchTemplates::Build(r.tmpl, r.range.lo, r.range.hi);
        if (!plan.ok()) return 1;
        auto ds = deepsea_engine.ProcessQuery(*plan);
        auto hv = hive_engine.ProcessQuery(*plan);
        if (!ds.ok() || !hv.ok()) {
          std::printf("query failed\n");
          return 1;
        }
        ds_week += ds->total_seconds;
        hive_week += hv->total_seconds;
      }
    }
    ds_total += ds_week;
    hive_total += hive_week;
    std::printf("%-6d %-12.0f %14.0f %14.0f %11.0f%% %6.1f GB\n", week, center,
                ds_week, hive_week,
                100.0 * (1.0 - ds_week / std::max(hive_week, 1.0)),
                deepsea_engine.PoolBytes() / 1e9);
  }
  std::printf("\nseason total: DeepSea %.0f s vs %.0f s without views"
              " (%.0f%% saved)\n",
              ds_total, hive_total,
              100.0 * (1.0 - ds_total / std::max(hive_total, 1.0)));
  std::printf("views created: %ld, fragments: %ld (evicted %ld)\n",
              deepsea_engine.totals().views_created,
              deepsea_engine.totals().fragments_created,
              deepsea_engine.totals().fragments_evicted);
  std::printf("\npipeline stage breakdown (simulated seconds / host ms):\n");
  for (EngineStage s : {EngineStage::kRewrite, EngineStage::kCandidates,
                        EngineStage::kSelection, EngineStage::kApply}) {
    const auto& st = observer.stage(s);
    std::printf("  %-10s %10.0f s %10.2f ms\n", EngineStageName(s),
                st.sim_seconds, st.wall_seconds * 1e3);
  }
  // The same season, as the Prometheus scrape an operator would watch
  // live (a subset; OBSERVABILITY.md documents every series).
  std::printf("\nprometheus scrape (operator view, excerpt):\n");
  const std::string scrape = metrics.RenderPrometheusText();
  size_t pos = 0, printed = 0;
  while (pos < scrape.size() && printed < 24) {
    size_t eol = scrape.find('\n', pos);
    if (eol == std::string::npos) eol = scrape.size();
    const std::string line = scrape.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("# HELP", 0) == 0) continue;  // keep the excerpt short
    std::printf("  %s\n", line.c_str());
    ++printed;
  }
  std::printf("  ... (%zu lines total)\n",
              static_cast<size_t>(std::count(scrape.begin(), scrape.end(), '\n')));
  std::printf(
      "\nWeeks repeating a trend are nearly free once the hot fragments are"
      "\nmaterialized; a trend jump costs one repartitioning, then pays off.\n");
  return 0;
}
