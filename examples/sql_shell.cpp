// SQL shell: an interactive (or piped) SQL session over the DeepSea
// engine. Every statement flows through the full adaptive pipeline —
// matching, candidate generation, selection, materialization — and the
// shell reports where the answer came from and what the pool did.
//
// Run interactively:   ./examples/sql_shell
// Or pipe a script:    ./examples/sql_shell < queries.sql
//
// Example session:
//   deepsea> SELECT item.category_id, SUM(store_sales.net_paid) AS revenue
//            FROM store_sales JOIN item ON store_sales.item_sk = item.item_sk
//            WHERE store_sales.item_sk BETWEEN 100000 AND 180000
//            GROUP BY item.category_id
//   deepsea> \pool         -- show the materialized view pool
//   deepsea> \quit

#include <cstdio>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "sql/parser.h"
#include "workload/bigbench.h"

using namespace deepsea;

namespace {

void PrintResult(const ExecResult& result, size_t max_rows = 20) {
  for (size_t c = 0; c < result.schema.num_columns(); ++c) {
    std::printf("%-24s", result.schema.column(c).name.c_str());
  }
  std::printf("\n");
  size_t shown = 0;
  for (const Row& row : result.rows) {
    for (const Value& v : row) std::printf("%-24s", v.ToString().c_str());
    std::printf("\n");
    if (++shown >= max_rows) {
      std::printf("... (%zu rows total)\n", result.rows.size());
      return;
    }
  }
  std::printf("(%zu rows)\n", result.rows.size());
}

void PrintPool(const DeepSeaEngine& engine) {
  std::printf("pool: %.2f GB\n", engine.PoolBytes() / 1e9);
  for (const ViewInfo* view : engine.views().AllViews()) {
    if (!view->InPool()) continue;
    std::printf("  %s (cost %.0f s, benefit %.0f s)\n", view->id.c_str(),
                view->stats.creation_cost, view->stats.UndecayedBenefit());
    if (view->whole_materialized) {
      std::printf("    whole view, %.2f GB\n", view->stats.size_bytes / 1e9);
    }
    for (const auto& [attr, part] : view->partitions) {
      for (const FragmentStats& f : part.fragments) {
        if (!f.materialized) continue;
        std::printf("    %s %-26s %8.2f GB  %zu hits\n", attr.c_str(),
                    f.interval.ToString().c_str(), f.size_bytes / 1e9,
                    f.hits().size());
      }
    }
  }
}

}  // namespace

int main() {
  Catalog catalog;
  BigBenchDataset::Options data;
  data.total_bytes = 50e9;
  data.sample_rows_per_fact = 3000;
  data.sample_rows_per_dim = 400;
  if (Status s = BigBenchDataset::Generate(data, &catalog); !s.ok()) {
    std::printf("dataset generation failed: %s\n", s.ToString().c_str());
    return 1;
  }
  EngineOptions options;
  options.physical_execution = true;
  options.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog, options);

  std::printf(
      "DeepSea SQL shell over a BigBench-like catalog (50 GB logical).\n"
      "Tables: store_sales, web_sales, web_clickstreams, item, customer.\n"
      "Statements end at end-of-line; \\pool shows the view pool, \\quit"
      " exits.\n");
  std::string line;
  while (true) {
    std::printf("deepsea> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\pool") {
      PrintPool(engine);
      continue;
    }
    auto plan = ParseSql(line);
    if (!plan.ok()) {
      std::printf("parse error: %s\n", plan.status().ToString().c_str());
      continue;
    }
    auto report = engine.ProcessQuery(*plan);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      continue;
    }
    if (report->physically_executed) PrintResult(report->physical);
    std::printf("[simulated %.1f s vs %.1f s conventional; source: %s%s]\n",
                report->total_seconds, report->base_seconds,
                report->used_view.empty() ? "base tables"
                                          : ("view " + report->used_view).c_str(),
                report->created_views.empty() ? "" : "; materialized a view");
  }
  return 0;
}
