// Strategy face-off: run one workload under every materialization /
// partitioning strategy the library implements (the paper's H, NP,
// E-k, NR, DS plus the Nectar selection models) and compare them side
// by side. A compact way to explore how the knobs in EngineOptions
// shape behaviour on your own workload.
//
// Run:  ./examples/strategy_faceoff [--strategy=NAME]
//
// --strategy picks the pluggable selection strategy (the knapsack
// resolver; see DESIGN.md, "Selection strategies") every selecting
// engine runs with: greedy (default), local_search, cluster (alias
// cluster_greedy), or cluster_local_search. The partitioning
// strategies above are orthogonal — any selection strategy can resolve
// any of them. bench_strategy_tournament runs the full head-to-head.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/selection_strategy.h"
#include "exp/experiment.h"
#include "workload/range_generator.h"

using namespace deepsea;

namespace {

// A focused session: one hot region queried intensely, then a brief
// excursion — the access pattern DeepSea's adaptive partitioning is
// built for.
std::vector<WorkloadQuery> FocusedWorkload() {
  std::vector<WorkloadQuery> workload;
  RangeGenerator::Config cfg;
  cfg.domain = Interval(0.0, 400000.0);
  cfg.selectivity_fraction = 0.02;
  cfg.skew = Skew::kHeavy;
  cfg.center = 120000.0;
  RangeGenerator hot(cfg, 100);
  for (int i = 0; i < 60; ++i) workload.push_back({"Q30", hot.Next()});
  cfg.center = 300000.0;
  RangeGenerator excursion(cfg, 101);
  for (int i = 0; i < 15; ++i) workload.push_back({"Q30", excursion.Next()});
  return workload;
}

// A roaming session: interest hops across three regions. Static
// full-coverage partitioning (equi-depth) is strong here — the honest
// tradeoff the paper's Fig. 7 shows for low-skew workloads.
std::vector<WorkloadQuery> RoamingWorkload() {
  std::vector<WorkloadQuery> workload;
  int seed = 200;
  for (double center : {80000.0, 240000.0, 330000.0}) {
    RangeGenerator::Config cfg;
    cfg.domain = Interval(0.0, 400000.0);
    cfg.selectivity_fraction = 0.03;
    cfg.skew = Skew::kHeavy;
    cfg.center = center;
    RangeGenerator gen(cfg, static_cast<uint64_t>(seed++));
    for (int i = 0; i < 25; ++i) workload.push_back({"Q30", gen.Next()});
  }
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  SelectionStrategyKind selection = SelectionStrategyKind::kGreedy;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--strategy=", 11) == 0) {
      if (!ParseSelectionStrategy(argv[i] + 11, &selection)) {
        std::fprintf(stderr,
                     "unknown --strategy=%s (expected greedy, local_search, "
                     "cluster, or cluster_local_search)\n",
                     argv[i] + 11);
        return 1;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--strategy=NAME]\n", argv[0]);
      return 1;
    }
  }

  BigBenchDataset::Options data;
  data.total_bytes = 100e9;
  data.sample_rows_per_fact = 256;
  data.sample_rows_per_dim = 64;
  ExperimentRunner runner(data);

  auto strategy = [selection](const char* label, StrategyKind kind,
                              ValueModel model = ValueModel::kDeepSea) {
    StrategySpec s;
    s.label = label;
    s.options.strategy = kind;
    s.options.selection.kind = selection;
    s.options.value_model = model;
    s.options.use_mle_smoothing = model == ValueModel::kDeepSea;
    s.options.benefit_cost_threshold = 0.05;
    s.options.pool_limit_bytes = 12e9;  // a tight pool makes selection matter
    s.options.candidate_snap_fraction = 0.0125;
    return s;
  };
  std::vector<StrategySpec> specs = {
      strategy("Hive", StrategyKind::kHive),
      strategy("NoPartition", StrategyKind::kNoPartition),
      strategy("EquiDepth-8", StrategyKind::kEquiDepth),
      strategy("NoRefine", StrategyKind::kNoRefine),
      strategy("Nectar", StrategyKind::kDeepSea, ValueModel::kNectar),
      strategy("Nectar+", StrategyKind::kDeepSea, ValueModel::kNectarPlus),
      strategy("DeepSea", StrategyKind::kDeepSea),
  };
  specs[2].options.equi_depth_fragments = 8;

  struct Scenario {
    const char* title;
    std::vector<WorkloadQuery> workload;
  };
  const Scenario scenarios[] = {
      {"focused session (one hot region, heavy skew)", FocusedWorkload()},
      {"roaming session (three regions)", RoamingWorkload()},
  };
  std::printf("selection strategy: %s\n", SelectionStrategyName(selection));
  for (const Scenario& scenario : scenarios) {
    std::printf("\n== %s ==\n", scenario.title);
    std::printf("%-14s %12s %10s %8s %8s %8s %10s\n", "strategy", "total (s)",
                "% of Hive", "views", "frags", "evicted", "pool (GB)");
    double hive_total = 0.0;
    for (const StrategySpec& spec : specs) {
      auto result = runner.Run(spec, scenario.workload);
      if (!result.ok()) {
        std::printf("%s failed: %s\n", spec.label.c_str(),
                    result.status().ToString().c_str());
        return 1;
      }
      if (hive_total == 0.0) hive_total = result->total_seconds;
      std::printf("%-14s %12.0f %9.1f%% %8ld %8ld %8ld %10.2f\n",
                  result->label.c_str(), result->total_seconds,
                  100.0 * result->total_seconds / hive_total,
                  result->totals.views_created, result->totals.fragments_created,
                  result->totals.fragments_evicted,
                  result->final_pool_bytes / 1e9);
    }
  }
  std::printf(
      "\nThe focused session rewards adaptive partitioning (small hot"
      "\nfragments, little creation work); the roaming session shows the"
      "\ntradeoff: static full-coverage partitioning amortizes across"
      "\nregions the adaptive strategies must chase.\n");
  return 0;
}
