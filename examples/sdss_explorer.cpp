// SDSS explorer: an exploratory-astronomy-style session (the workload
// family that motivated DeepSea, Section 1). A scientist sweeps
// different parts of the sky: queries first concentrate on one right-
// ascension band, then interest shifts to another. The example shows
// how the engine's partitioned views follow the interest: hot regions
// get covered by small fragments, the pool adapts after the shift, and
// an ASCII "sky map" visualizes which parts of the attribute domain are
// finely fragmented at each stage.
//
// Run:  ./examples/sdss_explorer

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "workload/bigbench.h"
#include "workload/sdss.h"

using namespace deepsea;

namespace {

// Draws the materialized fragmentation of the busiest partition as a
// 100-character strip over the item_sk domain: deeper fragmentation
// (smaller fragments) shows as denser ticks.
void DrawFragmentMap(const DeepSeaEngine& engine, const Interval& domain) {
  const PartitionState* best = nullptr;
  for (const ViewInfo* view : engine.views().AllViews()) {
    for (const auto& [attr, part] : view->partitions) {
      if (!part.AnyMaterialized()) continue;
      if (best == nullptr ||
          part.MaterializedIntervals().size() >
              best->MaterializedIntervals().size()) {
        best = &part;
      }
    }
  }
  if (best == nullptr) {
    std::printf("  (no partitioned views in the pool yet)\n");
    return;
  }
  std::string strip(100, '.');
  for (const Interval& iv : best->MaterializedIntervals()) {
    const int a = static_cast<int>(Clamp(
        (iv.lo - domain.lo) / domain.Width() * 100.0, 0.0, 99.0));
    const int b = static_cast<int>(Clamp(
        (iv.hi - domain.lo) / domain.Width() * 100.0, 0.0, 99.0));
    strip[static_cast<size_t>(a)] = '|';
    strip[static_cast<size_t>(b)] = '|';
    for (int i = a + 1; i < b; ++i) {
      if (strip[static_cast<size_t>(i)] == '.') strip[static_cast<size_t>(i)] = '-';
    }
  }
  std::printf("  [%s]\n", strip.c_str());
  std::printf("  %zu materialized fragments; '|' marks fragment boundaries\n",
              best->MaterializedIntervals().size());
}

}  // namespace

int main() {
  Catalog catalog;
  BigBenchDataset::Options data;
  data.total_bytes = 100e9;
  data.sample_rows_per_fact = 1000;
  data.sample_rows_per_dim = 200;
  // Sky-survey access patterns shape the data distribution too (the
  // paper samples item_sk from the SDSS ra histogram).
  SdssTraceModel sky_model(SdssTraceModel::Config{}, 2017);
  data.item_sk_distribution = sky_model.AccessDensity(420);
  if (Status s = BigBenchDataset::Generate(data, &catalog); !s.ok()) {
    std::printf("dataset generation failed: %s\n", s.ToString().c_str());
    return 1;
  }

  EngineOptions options;
  options.benefit_cost_threshold = 0.05;
  DeepSeaEngine engine(&catalog, options);

  const Interval ra_domain(-20.0, 400.0);
  const Interval sk_domain(0.0, 400000.0);
  const auto trace = sky_model.GenerateTrace(120);

  double cumulative = 0.0, cumulative_base = 0.0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const Interval range =
        SdssTraceModel::MapRange(trace[i], ra_domain, sk_domain);
    auto plan = BigBenchTemplates::Build("Q30", range.lo, range.hi);
    if (!plan.ok()) return 1;
    auto report = engine.ProcessQuery(*plan);
    if (!report.ok()) {
      std::printf("query failed: %s\n", report.status().ToString().c_str());
      return 1;
    }
    cumulative += report->total_seconds;
    cumulative_base += report->base_seconds;
    if ((i + 1) % 30 == 0) {
      std::printf("\nafter %zu queries (interest %s):\n", i + 1,
                  i < trace.size() * 0.3 ? "on the 200-300 deg band"
                                         : "shifted toward 100 deg");
      std::printf("  cumulative: %.0f s vs %.0f s without views (%.0f%% saved)\n",
                  cumulative, cumulative_base,
                  100.0 * (1.0 - cumulative / std::max(cumulative_base, 1.0)));
      std::printf("  pool: %.2f GB, %ld fragments created, %ld evicted\n",
                  engine.PoolBytes() / 1e9, engine.totals().fragments_created,
                  engine.totals().fragments_evicted);
      DrawFragmentMap(engine, sk_domain);
    }
  }
  std::printf(
      "\nThe fragment map is denser around the hot right-ascension bands and"
      "\nfollows the interest shift — the progressive, workload-aware"
      "\npartitioning of the paper in action.\n");
  return 0;
}
