// Extension bench: multi-attribute partitioning (paper Section 11
// future work; Section 4 already permits multiple partitions per view
// on different attributes). A workload alternates item-range-selective
// and date-range-selective queries over the same projected join view;
// maintaining partitions on both attributes answers both query shapes
// from small fragments.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "workload/bigbench.h"

using namespace deepsea;

int main() {
  bench::Banner("Extension", "Multi-attribute partitioning, Q30D, 100GB");

  // This bench drives the engine directly (the Q30D extension template
  // takes two ranges, which the generic runner does not model).
  struct Variant {
    const char* label;
    StrategyKind strategy;
  };
  TablePrinter table;
  table.Header({"variant", "total (s)", "base (s)", "from views", "frags"});
  for (const Variant& variant :
       {Variant{"Hive", StrategyKind::kHive},
        Variant{"DS multi-attr", StrategyKind::kDeepSea}}) {
    Catalog catalog;
    BigBenchDataset::Options data = bench::Dataset(100.0, false);
    if (Status s = BigBenchDataset::Generate(data, &catalog); !s.ok()) {
      std::printf("dataset failed: %s\n", s.ToString().c_str());
      return 1;
    }
    EngineOptions opts = bench::BaseOptions();
    opts.strategy = variant.strategy;
    DeepSeaEngine engine(&catalog, opts);
    Rng rng(17);
    double total = 0.0, base = 0.0;
    for (int i = 0; i < 60; ++i) {
      // Even queries are item-selective (narrow item range, all dates);
      // odd queries are date-selective (all items, narrow date window).
      const double lo = 100000 + rng.Uniform(-2000, 2000);
      const double d = 100 + rng.Uniform(-10, 10);
      auto plan = (i % 2 == 0)
                      ? BigBenchTemplates::BuildQ30D(lo, lo + 30000, 0, 365)
                      : BigBenchTemplates::BuildQ30D(0, 400000, d, d + 30);
      if (!plan.ok()) return 1;
      auto report = engine.ProcessQuery(*plan);
      if (!report.ok()) {
        std::printf("query failed: %s\n", report.status().ToString().c_str());
        return 1;
      }
      total += report->total_seconds;
      base += report->base_seconds;
    }
    table.Row({variant.label, FmtSeconds(total), FmtSeconds(base),
               std::to_string(engine.totals().queries_answered_from_views),
               std::to_string(engine.totals().fragments_created)});
  }
  std::printf(
      "\nExpected: with partitions on both item_sk and sold_date, both query"
      "\nshapes are answered from fragments and total time drops well below"
      "\nthe no-views baseline.\n");
  return 0;
}
