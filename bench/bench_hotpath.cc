// Statistics hot-path bench: pins the two perf claims of the "make the
// stats hot path O(1) and plan under a shared lock" change (DESIGN.md,
// "Statistics hot path and locking discipline").
//
//   1. stats_scaling — per-evaluation cost of AccumulatedBenefit /
//      DecayedHits as the event/hit history grows. The incremental
//      readers (running sums + timed-out-prefix cursor) flatten once
//      the history exceeds the decay window t_max; the retained *Naive
//      replays grow linearly. Evaluations are checksummed against each
//      other, so the bench doubles as a coarse bit-identity check.
//
//   2. throughput — 1..32 engines free-running on one SharedPool (no
//      turnstile), under three workload shapes: "shared" (every engine
//      draws fresh ranges from the same template pool, so footprints
//      overlap and nearly every query is a creator), "shared_warmed"
//      (the same stream replayed against a pre-warmed pool, so commits
//      are stats-only folds), and "disjoint" (engine i works one
//      private template, so read/write footprints are disjoint and
//      sharded commits never conflict). Planning runs under the
//      shared (S) lock; commits — creators included, via view-id
//      reservation and precise catalog footprints — take the sharded
//      (IX + view-group shards) path unless they merge, evict inline,
//      execute physically, or replan. Replans are split
//      genuine-conflict vs spurious, and the per-shard hold times
//      (PoolManager::commit_shard_stats) yield the max shard
//      serialization fraction. Four rows double as runtime
//      assertions: spurious replans on disjoint (engines <= 8), a
//      warmed row with zero sharded commits, a majority-exclusive
//      cold shared row, or warmed multi-engine throughput below 0.75x
//      the single-engine rate each fail the bench.
//
//   3. observer_overhead — the 4-engine fixed-total-work throughput
//      config re-run with no observer, per-engine TraceObservers, and
//      one shared MetricsObserver, so the cost of always-on telemetry
//      is pinned as a fraction of no-observer throughput (EXPERIMENTS
//      budget: MetricsObserver <= 5%). Each mode is measured
//      repeat-and-median (5 runs, 3 in smoke) and the reported
//      fraction is clamped at zero: sub-noise observers report 0%, not
//      a nonsensical negative overhead.
//
// Usage:
//   bench_hotpath [--smoke] [--json=PATH] [--csv=PATH]
// --smoke shrinks all sections to CI size. JSON results land in
// BENCH_hotpath.json by default (the repo's perf baseline file);
// --csv additionally writes the same rows in CSV form.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/materialization_service.h"
#include "core/shared_pool.h"
#include "core/view_stats.h"
#include "exp/metrics.h"
#include "exp/trace.h"

using namespace deepsea;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- section 1: stats evaluation scaling ----------------------------

struct ScalingRow {
  int history = 0;
  double view_incremental_ns = 0.0;
  double view_naive_ns = 0.0;
  double frag_incremental_ns = 0.0;
  double frag_naive_ns = 0.0;
};

/// Average ns per call of `fn` over `reps` calls; the accumulated
/// checksum is returned through `sink` so the calls cannot be elided.
template <typename Fn>
double TimeNs(int reps, double* sink, Fn fn) {
  const double t0 = NowSeconds();
  double acc = 0.0;
  for (int i = 0; i < reps; ++i) acc += fn();
  const double t1 = NowSeconds();
  *sink += acc;
  return (t1 - t0) * 1e9 / static_cast<double>(reps);
}

ScalingRow MeasureScaling(int history, int reps) {
  const DecayFunction dec(DecayConfig{});  // the engine default (t_max 500)
  // Build the histories the way the pool does: appends in commit-clock
  // order with the cursor advanced after each commit's fold.
  ViewStats view;
  FragmentStats frag;
  frag.interval = Interval(0.0, 1000.0);
  for (int t = 1; t <= history; ++t) {
    view.RecordUse(t, 1.0 + 0.25 * (t % 7), t % 3);
    frag.RecordHit(t, Interval(10.0 * (t % 50), 10.0 * (t % 50) + 5.0), t % 3);
    view.AdvanceWindow(t, dec);
    frag.AdvanceWindow(t, dec);
  }
  const double t_now = static_cast<double>(history);

  ScalingRow row;
  row.history = history;
  double inc_sum = 0.0, naive_sum = 0.0;
  row.view_incremental_ns = TimeNs(reps, &inc_sum, [&] {
    return view.AccumulatedBenefit(t_now, dec);
  });
  row.view_naive_ns = TimeNs(reps, &naive_sum, [&] {
    return view.AccumulatedBenefitNaive(t_now, dec);
  });
  if (inc_sum != naive_sum) {
    std::fprintf(stderr,
                 "BIT-IDENTITY VIOLATION: view benefit %.17g != naive %.17g "
                 "at history %d\n",
                 inc_sum, naive_sum, history);
    std::exit(1);
  }
  inc_sum = naive_sum = 0.0;
  row.frag_incremental_ns =
      TimeNs(reps, &inc_sum, [&] { return frag.DecayedHits(t_now, dec); });
  row.frag_naive_ns =
      TimeNs(reps, &naive_sum, [&] { return frag.DecayedHitsNaive(t_now, dec); });
  if (inc_sum != naive_sum) {
    std::fprintf(stderr,
                 "BIT-IDENTITY VIOLATION: fragment hits %.17g != naive %.17g "
                 "at history %d\n",
                 inc_sum, naive_sum, history);
    std::exit(1);
  }
  return row;
}

// --- section 2: multi-engine shared-pool throughput -----------------

struct ThroughputRow {
  const char* workload = "shared";
  int engines = 0;
  int queries = 0;
  int replans = 0;  ///< speculative plans invalidated by a foreign commit
  int replans_conflict = 0;  ///< genuine read-set conflicts
  int replans_spurious = 0;  ///< epoch-table coverage loss
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  uint64_t commits = 0;
  int64_t commits_sharded = 0;    ///< commits that stayed on the IX path
  int64_t commits_exclusive = 0;  ///< structural / escalated X commits
  double commit_held_seconds = 0.0;
  double commit_held_fraction = 0.0;
  /// Max over commit shards of (shard hold time / wall): the worst
  /// single view-group serialization. The aggregate fraction above can
  /// exceed 1 at high tenancy (sharded commits overlap); this one is
  /// the true bottleneck measure.
  double max_shard_held_fraction = 0.0;
  double sim_seconds = 0.0;  ///< simulated workload cost (sanity column)
};

/// Which per-engine query streams a throughput run uses. kSharedWarmed
/// replays the shared stream against a pool pre-warmed with the same
/// queries: candidate views are already tracked and materialized, so
/// the measured commits are stats-only folds — the sharded-commit path
/// under footprint-overlapping traffic (the cold shared rows pin every
/// commit to the exclusive path by tracking new views).
enum class WorkloadKind { kShared, kSharedWarmed, kDisjoint };

const char* WorkloadName(WorkloadKind workload) {
  switch (workload) {
    case WorkloadKind::kShared:
      return "shared";
    case WorkloadKind::kSharedWarmed:
      return "shared_warmed";
    case WorkloadKind::kDisjoint:
      return "disjoint";
  }
  return "unknown";
}

/// The disjoint-footprint workload: engine i works template
/// kDisjointTemplates[i % 8] exclusively, so each engine's views —
/// and therefore its read/write footprints — are private (for
/// engines <= 8; beyond that engines pair up mod 8).
constexpr const char* kDisjointTemplates[8] = {"Q1",  "Q7",  "Q9",  "Q5",
                                               "Q12", "Q16", "Q26", "Q29"};

/// Telemetry attached during a throughput run (section 3). Each mode
/// honors the observer contracts: TraceObserver is not thread-safe, so
/// it is attached per engine; one MetricsObserver is shared by every
/// engine (its hot path is per-tenant relaxed atomics).
enum class ObserverMode { kNone, kTrace, kMetrics };

const char* ObserverModeName(ObserverMode mode) {
  switch (mode) {
    case ObserverMode::kNone:
      return "none";
    case ObserverMode::kTrace:
      return "trace";
    case ObserverMode::kMetrics:
      return "metrics";
  }
  return "unknown";
}

/// Client think time between a tenant's queries: models the round trip
/// of the interactive sessions the paper's workload represents. This is
/// what shared-lock planning converts into capacity — while one
/// tenant thinks, the others plan concurrently; only the commit
/// serializes.
constexpr auto kThinkTime = std::chrono::microseconds(500);

/// `total_queries` split evenly across `engines` free-running threads
/// on ONE shared pool — total work (and thus final pool size) is fixed
/// per row, so queries/second across rows measures concurrency alone.
ThroughputRow RunThroughput(int engines, int total_queries,
                            WorkloadKind workload = WorkloadKind::kShared,
                            ObserverMode mode = ObserverMode::kNone) {
  ThroughputRow row;
  row.workload = WorkloadName(workload);
  row.engines = engines;
  const int per_engine = total_queries / engines;

  Catalog catalog;
  const auto data = bench::Dataset(100.0, /*sdss_distribution=*/true);
  if (!BigBenchDataset::Generate(data, &catalog).ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    std::exit(1);
  }
  EngineOptions options = bench::DeepSea().options;
  options.pool_limit_bytes = 12e9;
  SharedPool pool(&catalog, options);

  // Per-engine query streams. Shared: one global workload dealt out in
  // contiguous chunks, so every row processes the same query set
  // regardless of engine count. Disjoint: engine i draws its own SDSS
  // range stream over its private template.
  std::vector<std::vector<WorkloadQuery>> streams(
      static_cast<size_t>(engines));
  if (workload != WorkloadKind::kDisjoint) {
    const std::vector<WorkloadQuery> all =
        bench::SdssWorkload(per_engine * engines, 2017);
    for (int e = 0; e < engines; ++e) {
      const size_t lo = static_cast<size_t>(e) * static_cast<size_t>(per_engine);
      streams[static_cast<size_t>(e)].assign(
          all.begin() + static_cast<long>(lo),
          all.begin() + static_cast<long>(lo + static_cast<size_t>(per_engine)));
    }
  } else {
    // Each engine cycles over a small set of distinct SDSS ranges on
    // its private template. Repeats model the warmed pool: a query
    // whose candidate signatures are all known tracks no new views, so
    // its commit is non-structural and takes the sharded path. (A
    // fresh range per query would re-track the range-bearing aggregate
    // candidate every time and pin every commit to the X path.)
    for (int e = 0; e < engines; ++e) {
      SdssTraceModel sdss(SdssTraceModel::Config{},
                          2017 + static_cast<uint64_t>(e));
      const Interval ra(-20.0, 400.0);
      const int distinct = std::max(1, per_engine / 8);
      std::vector<WorkloadQuery> ranges;
      for (const Interval& r : sdss.GenerateTrace(distinct)) {
        ranges.push_back({kDisjointTemplates[e % 8],
                          SdssTraceModel::MapRange(r, ra, bench::ItemSkDomain())});
      }
      for (int i = 0; i < per_engine; ++i) {
        streams[static_cast<size_t>(e)].push_back(
            ranges[static_cast<size_t>(i) % ranges.size()]);
      }
    }
  }
  std::vector<std::unique_ptr<DeepSeaEngine>> fleet;
  for (int e = 0; e < engines; ++e) {
    fleet.push_back(std::make_unique<DeepSeaEngine>(
        &catalog, &pool, "tenant" + std::to_string(e)));
  }

  // Warm the pool with the full query set before the measured run: the
  // re-run tracks no new views, so its commits are non-structural and
  // take the sharded path. (Warmup runs before the lock-stat diff
  // below, so it contributes nothing to the measured row.)
  if (workload == WorkloadKind::kSharedWarmed) {
    DeepSeaEngine warm(&catalog, &pool, "warm");
    for (const auto& stream : streams) {
      for (const WorkloadQuery& q : stream) {
        auto plan =
            BigBenchTemplates::Build(q.template_name, q.range.lo, q.range.hi);
        if (!plan.ok()) continue;
        (void)warm.ProcessQuery(*plan);
      }
    }
  }

  std::vector<std::unique_ptr<TraceObserver>> traces;
  MetricsObserver metrics;
  if (mode == ObserverMode::kTrace) {
    for (int e = 0; e < engines; ++e) {
      traces.push_back(std::make_unique<TraceObserver>(
          "tenant" + std::to_string(e), nullptr));
      fleet[static_cast<size_t>(e)]->set_observer(traces.back().get());
    }
  } else if (mode == ObserverMode::kMetrics) {
    metrics.set_pool(pool.pool());
    for (auto& engine : fleet) engine->set_observer(&metrics);
  }

  // Engine construction enters the commit section briefly (InitStages);
  // measure the run alone by diffing the pool's lock stats around it.
  const PoolManager::CommitLockStats before = pool.pool()->commit_lock_stats();
  const auto shards_before = pool.pool()->commit_shard_stats();
  std::vector<double> sim(static_cast<size_t>(engines), 0.0);
  std::vector<int> done(static_cast<size_t>(engines), 0);
  std::vector<int> replans(static_cast<size_t>(engines), 0);
  std::vector<int> conflict(static_cast<size_t>(engines), 0);
  std::vector<int> spurious(static_cast<size_t>(engines), 0);
  const double t0 = NowSeconds();
  {
    std::vector<std::thread> threads;
    for (int e = 0; e < engines; ++e) {
      threads.emplace_back([&, e] {
        for (const WorkloadQuery& q : streams[static_cast<size_t>(e)]) {
          auto plan =
              BigBenchTemplates::Build(q.template_name, q.range.lo, q.range.hi);
          if (!plan.ok()) continue;
          auto report = fleet[static_cast<size_t>(e)]->ProcessQuery(*plan);
          if (!report.ok()) continue;
          sim[static_cast<size_t>(e)] += report->total_seconds;
          replans[static_cast<size_t>(e)] += report->replanned ? 1 : 0;
          conflict[static_cast<size_t>(e)] += report->replan_conflict ? 1 : 0;
          spurious[static_cast<size_t>(e)] += report->replan_spurious ? 1 : 0;
          ++done[static_cast<size_t>(e)];
          std::this_thread::sleep_for(kThinkTime);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  row.wall_seconds = NowSeconds() - t0;
  const PoolManager::CommitLockStats after = pool.pool()->commit_lock_stats();
  const auto shards_after = pool.pool()->commit_shard_stats();

  for (int e = 0; e < engines; ++e) {
    row.queries += done[static_cast<size_t>(e)];
    row.replans += replans[static_cast<size_t>(e)];
    row.replans_conflict += conflict[static_cast<size_t>(e)];
    row.replans_spurious += spurious[static_cast<size_t>(e)];
    row.sim_seconds += sim[static_cast<size_t>(e)];
    const EngineTotals& totals = fleet[static_cast<size_t>(e)]->totals();
    row.commits_sharded += totals.commits_sharded;
    row.commits_exclusive += totals.commits_exclusive;
  }
  row.queries_per_second =
      row.wall_seconds > 0.0 ? row.queries / row.wall_seconds : 0.0;
  row.commits = after.commits - before.commits;
  row.commit_held_seconds = after.held_seconds - before.held_seconds;
  row.commit_held_fraction = row.wall_seconds > 0.0
                                 ? row.commit_held_seconds / row.wall_seconds
                                 : 0.0;
  for (size_t s = 0; s < shards_after.size(); ++s) {
    const double held = shards_after[s].held_seconds -
                        (s < shards_before.size()
                             ? shards_before[s].held_seconds
                             : 0.0);
    if (row.wall_seconds > 0.0) {
      row.max_shard_held_fraction =
          std::max(row.max_shard_held_fraction, held / row.wall_seconds);
    }
  }
  return row;
}

// --- section 4: asynchronous materialization latency ----------------

struct AsyncRow {
  const char* mode = "inline";  ///< "inline" or "async"
  int engines = 0;
  int queries = 0;
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  /// Host wall-clock per-query latency percentiles (milliseconds).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Materialization-service accounting (async rows only; zeros inline).
  long long executed = 0;
  long long shed = 0;
  long long coalesced = 0;
  long long stale_dropped = 0;
  long long failed = 0;
};

double PercentileMs(const std::vector<double>& sorted_seconds, double pct) {
  if (sorted_seconds.empty()) return 0.0;
  const size_t n = sorted_seconds.size();
  size_t idx = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (idx > 0) --idx;
  if (idx >= n) idx = n - 1;
  return sorted_seconds[idx] * 1e3;
}

/// Per-engine queries excluded from the latency sample (still
/// executed): the first queries of a run track the candidate views and
/// take big structural commits in either mode, so their spikes say
/// nothing about inline-vs-async — the comparison is the steady-state
/// tail, where inline queries carry Apply staging and eviction scans
/// that async defers.
constexpr int kAsyncLatencyWarmup = 4;

/// Think time for the latency section, longer than the throughput
/// sections' kThinkTime: the think gaps are where background workers
/// fold without competing with foreground queries for cores, which is
/// the deployment shape the service targets (interactive sessions,
/// idle capacity between queries). Latency is measured per query, so
/// think time itself never enters the percentiles.
constexpr auto kAsyncThinkTime = std::chrono::milliseconds(4);

/// The shared free-running workload with the decision execution either
/// inline (in the query's commit) or deferred to background workers at
/// the default queue bounds. Same queries, same pool limit; the
/// difference in the host-latency tail is what the asynchronous
/// materialization service buys.
AsyncRow RunAsyncLatency(bool async, int engines, int total_queries) {
  AsyncRow row;
  row.mode = async ? "async" : "inline";
  row.engines = engines;
  const int per_engine = total_queries / engines;

  Catalog catalog;
  const auto data = bench::Dataset(100.0, /*sdss_distribution=*/true);
  if (!BigBenchDataset::Generate(data, &catalog).ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    std::exit(1);
  }
  EngineOptions options = bench::DeepSea().options;
  // Tight pool bound: steady-state materializations carry eviction
  // scans and rollback-journal staging, the inline wall cost the
  // service moves off the query's critical path. (The throughput
  // sections run at 12e9 where the limit never binds.)
  options.pool_limit_bytes = 2e9;
  if (async) {
    options.materialization.mode = MaterializationConfig::Mode::kAsync;
    options.materialization.workers = 2;
  }
  SharedPool pool(&catalog, options);

  const std::vector<WorkloadQuery> all =
      bench::SdssWorkload(per_engine * engines, 2017);
  std::vector<std::unique_ptr<DeepSeaEngine>> fleet;
  for (int e = 0; e < engines; ++e) {
    fleet.push_back(std::make_unique<DeepSeaEngine>(
        &catalog, &pool, "tenant" + std::to_string(e)));
  }

  std::vector<std::vector<double>> latencies(static_cast<size_t>(engines));
  const double t0 = NowSeconds();
  {
    std::vector<std::thread> threads;
    for (int e = 0; e < engines; ++e) {
      threads.emplace_back([&, e] {
        // Staggered arrival: tenants do not all fire their first query
        // in the same microsecond. Smearing the cold-start burst (when
        // the empty pool makes every decision look beneficial) keeps
        // the intent queue from spiking before the deprioritized
        // workers have had a single quantum.
        std::this_thread::sleep_for(e * kAsyncThinkTime / 2);
        const size_t lo =
            static_cast<size_t>(e) * static_cast<size_t>(per_engine);
        for (int i = 0; i < per_engine; ++i) {
          const WorkloadQuery& q = all[lo + static_cast<size_t>(i)];
          auto plan = BigBenchTemplates::Build(q.template_name, q.range.lo,
                                               q.range.hi);
          if (!plan.ok()) continue;
          const double q0 = NowSeconds();
          auto report = fleet[static_cast<size_t>(e)]->ProcessQuery(*plan);
          if (report.ok() && i >= kAsyncLatencyWarmup) {
            latencies[static_cast<size_t>(e)].push_back(NowSeconds() - q0);
          }
          std::this_thread::sleep_for(kAsyncThinkTime);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  row.wall_seconds = NowSeconds() - t0;
  // Quiesce before reading accounting (and before teardown): queued
  // intents fold or drop, nothing is lost.
  pool.pool()->QuiesceMaterialization();
  if (const MaterializationService* mat =
          pool.pool()->materialization_service()) {
    const auto s = mat->stats();
    row.executed = static_cast<long long>(s.executed);
    row.shed = static_cast<long long>(s.shed);
    row.coalesced = static_cast<long long>(s.coalesced);
    row.stale_dropped = static_cast<long long>(s.stale_dropped);
    row.failed = static_cast<long long>(s.failed);
  }

  std::vector<double> merged;
  for (const auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  row.queries = static_cast<int>(merged.size());
  row.queries_per_second =
      row.wall_seconds > 0.0 ? row.queries / row.wall_seconds : 0.0;
  row.p50_ms = PercentileMs(merged, 50.0);
  row.p95_ms = PercentileMs(merged, 95.0);
  row.p99_ms = PercentileMs(merged, 99.0);
  return row;
}

/// Repeats each mode and keeps the run with the LOWEST p99 per mode
/// (best-of-N, not median): host scheduler noise is strictly additive
/// — a descheduled thread only ever inflates a latency sample — so the
/// minimum across repeats is the estimator closest to the noise-free
/// tail, and the one that keeps the inline-vs-async comparison stable
/// on small or loaded CI machines. The modes are interleaved
/// (inline, async, inline, async, ...) so slow drift in background
/// host load cannot land entirely on one mode's batch. Sheds are noise
/// of the same origin (a starved worker lets the queue spike), so runs
/// that shed are considered only if every repeat shed.
std::vector<AsyncRow> MeasureAsyncLatency(int engines, int total_queries,
                                          int repeats) {
  std::vector<AsyncRow> inline_runs;
  std::vector<AsyncRow> async_runs;
  for (int i = 0; i < repeats; ++i) {
    inline_runs.push_back(RunAsyncLatency(false, engines, total_queries));
    async_runs.push_back(RunAsyncLatency(true, engines, total_queries));
  }
  const auto best = [](std::vector<AsyncRow>* runs) {
    std::sort(runs->begin(), runs->end(),
              [](const AsyncRow& a, const AsyncRow& b) {
                if ((a.shed == 0) != (b.shed == 0)) return a.shed == 0;
                return a.p99_ms < b.p99_ms;
              });
    return runs->front();
  };
  return {best(&inline_runs), best(&async_runs)};
}

// --- section 3: observer overhead -----------------------------------

struct OverheadRow {
  const char* mode = "none";
  int repeats = 0;
  ThroughputRow run;  ///< the median-q/s run of the repeats
  double median_qps = 0.0;
  /// max(0, 1 - median q/s(mode) / median q/s(none)): positive =
  /// slower than no-observer. Medians over repeated runs squeeze out
  /// scheduler noise, and the clamp keeps sub-noise observers at 0
  /// instead of a nonsensical negative overhead.
  double overhead_fraction = 0.0;
};

/// Runs the 4-engine fixed-total-work config `repeats` times under
/// `mode` and returns the row whose q/s is the median of the repeats.
OverheadRow MeasureOverhead(ObserverMode mode, int engines, int total_queries,
                            int repeats) {
  OverheadRow out;
  out.mode = ObserverModeName(mode);
  out.repeats = repeats;
  std::vector<ThroughputRow> runs;
  runs.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    runs.push_back(
        RunThroughput(engines, total_queries, WorkloadKind::kShared, mode));
  }
  std::sort(runs.begin(), runs.end(),
            [](const ThroughputRow& a, const ThroughputRow& b) {
              return a.queries_per_second < b.queries_per_second;
            });
  out.run = runs[runs.size() / 2];
  out.median_qps = out.run.queries_per_second;
  return out;
}

// --- output ---------------------------------------------------------

std::string ToJson(bool smoke, const std::vector<ScalingRow>& scaling,
                   const std::vector<ThroughputRow>& throughput,
                   const std::vector<OverheadRow>& overhead,
                   const std::vector<AsyncRow>& async_rows) {
  std::string out;
  char buf[512];
  out += "{\n  \"bench\": \"hotpath\",\n";
  std::snprintf(buf, sizeof(buf), "  \"smoke\": %s,\n",
                smoke ? "true" : "false");
  out += buf;
  out += "  \"stats_scaling\": [\n";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"history\": %d, \"view_incremental_ns\": %.1f, "
                  "\"view_naive_ns\": %.1f, \"frag_incremental_ns\": %.1f, "
                  "\"frag_naive_ns\": %.1f}%s\n",
                  r.history, r.view_incremental_ns, r.view_naive_ns,
                  r.frag_incremental_ns, r.frag_naive_ns,
                  i + 1 < scaling.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"throughput\": [\n";
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputRow& r = throughput[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"workload\": \"%s\", \"engines\": %d, \"queries\": %d, "
        "\"replans\": %d, \"replans_conflict\": %d, "
        "\"replans_spurious\": %d, \"wall_seconds\": %.3f, "
        "\"queries_per_second\": %.1f, \"commits\": %llu, "
        "\"commits_sharded\": %lld, \"commits_exclusive\": %lld, "
        "\"commit_held_seconds\": %.3f, \"commit_held_fraction\": %.3f, "
        "\"max_shard_held_fraction\": %.3f, \"sim_seconds\": %.1f}%s\n",
        r.workload, r.engines, r.queries, r.replans, r.replans_conflict,
        r.replans_spurious, r.wall_seconds, r.queries_per_second,
        static_cast<unsigned long long>(r.commits),
        static_cast<long long>(r.commits_sharded),
        static_cast<long long>(r.commits_exclusive), r.commit_held_seconds,
        r.commit_held_fraction, r.max_shard_held_fraction, r.sim_seconds,
        i + 1 < throughput.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"observer_overhead\": [\n";
  for (size_t i = 0; i < overhead.size(); ++i) {
    const OverheadRow& r = overhead[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"%s\", \"engines\": %d, \"queries\": %d, "
        "\"repeats\": %d, \"wall_seconds\": %.3f, "
        "\"queries_per_second\": %.1f, \"overhead_fraction\": %.4f}%s\n",
        r.mode, r.run.engines, r.run.queries, r.repeats, r.run.wall_seconds,
        r.median_qps, r.overhead_fraction,
        i + 1 < overhead.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"async_materialization\": [\n";
  for (size_t i = 0; i < async_rows.size(); ++i) {
    const AsyncRow& r = async_rows[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"%s\", \"engines\": %d, \"queries\": %d, "
        "\"wall_seconds\": %.3f, \"queries_per_second\": %.1f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"executed\": %lld, \"shed\": %lld, \"coalesced\": %lld, "
        "\"stale_dropped\": %lld, \"failed\": %lld}%s\n",
        r.mode, r.engines, r.queries, r.wall_seconds, r.queries_per_second,
        r.p50_ms, r.p95_ms, r.p99_ms, r.executed, r.shed, r.coalesced,
        r.stale_dropped, r.failed, i + 1 < async_rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

std::string ToCsv(const std::vector<ScalingRow>& scaling,
                  const std::vector<ThroughputRow>& throughput,
                  const std::vector<OverheadRow>& overhead,
                  const std::vector<AsyncRow>& async_rows) {
  std::string out;
  char buf[256];
  out += "section,history,view_incremental_ns,view_naive_ns,"
         "frag_incremental_ns,frag_naive_ns\n";
  for (const ScalingRow& r : scaling) {
    std::snprintf(buf, sizeof(buf), "stats_scaling,%d,%.1f,%.1f,%.1f,%.1f\n",
                  r.history, r.view_incremental_ns, r.view_naive_ns,
                  r.frag_incremental_ns, r.frag_naive_ns);
    out += buf;
  }
  out += "section,workload,engines,queries,replans,replans_conflict,"
         "replans_spurious,wall_seconds,queries_per_second,commits,"
         "commits_sharded,commits_exclusive,commit_held_seconds,"
         "commit_held_fraction,max_shard_held_fraction\n";
  for (const ThroughputRow& r : throughput) {
    std::snprintf(buf, sizeof(buf),
                  "throughput,%s,%d,%d,%d,%d,%d,%.3f,%.1f,%llu,%lld,%lld,"
                  "%.3f,%.3f,%.3f\n",
                  r.workload, r.engines, r.queries, r.replans,
                  r.replans_conflict, r.replans_spurious, r.wall_seconds,
                  r.queries_per_second,
                  static_cast<unsigned long long>(r.commits),
                  static_cast<long long>(r.commits_sharded),
                  static_cast<long long>(r.commits_exclusive),
                  r.commit_held_seconds, r.commit_held_fraction,
                  r.max_shard_held_fraction);
    out += buf;
  }
  out += "section,mode,engines,queries,repeats,wall_seconds,"
         "queries_per_second,overhead_fraction\n";
  for (const OverheadRow& r : overhead) {
    std::snprintf(buf, sizeof(buf),
                  "observer_overhead,%s,%d,%d,%d,%.3f,%.1f,%.4f\n", r.mode,
                  r.run.engines, r.run.queries, r.repeats, r.run.wall_seconds,
                  r.median_qps, r.overhead_fraction);
    out += buf;
  }
  out += "section,mode,engines,queries,wall_seconds,queries_per_second,"
         "p50_ms,p95_ms,p99_ms,executed,shed,coalesced,stale_dropped,"
         "failed\n";
  for (const AsyncRow& r : async_rows) {
    std::snprintf(buf, sizeof(buf),
                  "async_materialization,%s,%d,%d,%.3f,%.1f,%.3f,%.3f,%.3f,"
                  "%lld,%lld,%lld,%lld,%lld\n",
                  r.mode, r.engines, r.queries, r.wall_seconds,
                  r.queries_per_second, r.p50_ms, r.p95_ms, r.p99_ms,
                  r.executed, r.shed, r.coalesced, r.stale_dropped, r.failed);
    out += buf;
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_hotpath.json";
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--csv=", 6) == 0) csv_path = argv[i] + 6;
  }

  bench::Banner("Statistics hot path",
                smoke ? "incremental stats + shared-lock planning (smoke)"
                      : "incremental stats + shared-lock planning");

  // Section 1. Histories straddle t_max (500): the incremental columns
  // stop growing there, the naive columns keep growing.
  const std::vector<int> histories =
      smoke ? std::vector<int>{125, 500, 1000}
            : std::vector<int>{125, 250, 500, 1000, 2000, 4000};
  const int reps = smoke ? 2000 : 20000;
  std::vector<ScalingRow> scaling;
  std::printf("\nstats_scaling (ns/evaluation, t_max=500):\n");
  std::printf("%8s %16s %12s %16s %12s\n", "history", "view_incremental",
              "view_naive", "frag_incremental", "frag_naive");
  for (int h : histories) {
    scaling.push_back(MeasureScaling(h, reps));
    const ScalingRow& r = scaling.back();
    std::printf("%8d %16.1f %12.1f %16.1f %12.1f\n", r.history,
                r.view_incremental_ns, r.view_naive_ns, r.frag_incremental_ns,
                r.frag_naive_ns);
  }

  // Section 2. Fixed total work split across growing engine counts,
  // under both workload shapes. The disjoint rows double as a runtime
  // assertion: sharded commits with disjoint footprints must never
  // replan spuriously.
  const int total_queries = smoke ? 60 : 240;
  const std::vector<int> engine_counts =
      smoke ? std::vector<int>{1, 4, 8} : std::vector<int>{1, 2, 4, 8, 16, 32};
  std::vector<ThroughputRow> throughput;
  bool spurious_on_disjoint = false;
  bool no_sharded_on_warmed = false;
  bool exclusive_majority_on_shared = false;
  bool warmed_scaleup_collapsed = false;
  double warmed_single_engine_qps = 0.0;
  for (WorkloadKind workload :
       {WorkloadKind::kShared, WorkloadKind::kSharedWarmed,
        WorkloadKind::kDisjoint}) {
    std::printf(
        "\nthroughput/%s (%d queries total, shared pool, %lldus think):\n",
        WorkloadName(workload), total_queries,
        static_cast<long long>(kThinkTime.count()));
    std::printf("%8s %8s %8s %9s %9s %8s %8s %8s %8s %10s %10s\n", "engines",
                "queries", "replans", "conflict", "spurious", "sharded",
                "excl", "wall(s)", "q/s", "held/wall", "maxshard");
    for (int engines : engine_counts) {
      throughput.push_back(RunThroughput(engines, total_queries, workload));
      const ThroughputRow& r = throughput.back();
      std::printf("%8d %8d %8d %9d %9d %8lld %8lld %8.3f %8.1f %10.3f %10.3f\n",
                  r.engines, r.queries, r.replans, r.replans_conflict,
                  r.replans_spurious, static_cast<long long>(r.commits_sharded),
                  static_cast<long long>(r.commits_exclusive), r.wall_seconds,
                  r.queries_per_second, r.commit_held_fraction,
                  r.max_shard_held_fraction);
      // Engines <= 8 keep one private template per engine; any spurious
      // replan there means the epoch table lost coverage on a workload
      // that publishes almost nothing — a regression.
      if (workload == WorkloadKind::kDisjoint && engines <= 8 &&
          r.replans_spurious != 0) {
        spurious_on_disjoint = true;
      }
      // The warmed-shared rows exist to exercise the sharded commit
      // path on footprint-overlapping traffic (the smoke run included):
      // a warmed row with zero sharded commits means stats-only folds
      // regressed onto the exclusive path.
      if (workload == WorkloadKind::kSharedWarmed && r.commits_sharded == 0) {
        no_sharded_on_warmed = true;
      }
      // The COLD shared rows are the view-id-reservation showcase:
      // every engine keeps tracking fresh candidate views, and with
      // placeholder ids + precise catalog footprints those structural
      // commits stay on the IX path. Exclusive commits should be the
      // minority (evictions and replans only); a majority-exclusive
      // row means creators regressed onto the X path.
      if (workload == WorkloadKind::kShared &&
          r.commits_sharded <= r.commits_exclusive) {
        exclusive_majority_on_shared = true;
      }
      // Warmed scale-up floor: 2 engines once collapsed to ~0.67x the
      // single-engine rate (conflict replans re-planning under the held
      // X lock convoyed the other tenant). The ratio is computed
      // within one bench run, so machine-speed noise cancels; 0.75 sits
      // above the historical collapse and below legitimate jitter.
      if (workload == WorkloadKind::kSharedWarmed) {
        if (r.engines == 1) {
          warmed_single_engine_qps = r.queries_per_second;
        } else if (warmed_single_engine_qps > 0.0 &&
                   r.queries_per_second < 0.75 * warmed_single_engine_qps) {
          warmed_scaleup_collapsed = true;
        }
      }
    }
  }
  if (spurious_on_disjoint) {
    std::fprintf(stderr,
                 "FAIL: spurious replans on the disjoint-footprint workload\n");
    return 1;
  }
  if (no_sharded_on_warmed) {
    std::fprintf(stderr,
                 "FAIL: no sharded commits on the warmed shared workload\n");
    return 1;
  }
  if (exclusive_majority_on_shared) {
    std::fprintf(stderr,
                 "FAIL: exclusive commits outnumber sharded commits on the "
                 "cold shared workload\n");
    return 1;
  }
  if (warmed_scaleup_collapsed) {
    std::fprintf(stderr,
                 "FAIL: warmed shared throughput collapsed below 0.75x the "
                 "single-engine rate\n");
    return 1;
  }

  // Section 3. The cost of always-on telemetry: the 4-engine fixed-
  // total-work config under each observer mode, repeat-and-median so a
  // single lucky/unlucky scheduler draw cannot sign-flip the fraction.
  // Think time and planning dominate the per-query path, so the
  // sharded-atomics MetricsObserver hot path must stay within a few
  // percent of no-observer throughput.
  const int overhead_engines = 4;
  const int overhead_repeats = smoke ? 3 : 5;
  std::vector<OverheadRow> overhead;
  std::printf("\nobserver_overhead (%d engines, %d queries total, median of %d):\n",
              overhead_engines, total_queries, overhead_repeats);
  std::printf("%10s %8s %8s %8s %10s\n", "observer", "queries", "wall(s)",
              "q/s", "overhead");
  for (ObserverMode mode :
       {ObserverMode::kNone, ObserverMode::kTrace, ObserverMode::kMetrics}) {
    OverheadRow r =
        MeasureOverhead(mode, overhead_engines, total_queries, overhead_repeats);
    const double base_qps =
        overhead.empty() ? r.median_qps : overhead.front().median_qps;
    r.overhead_fraction =
        base_qps > 0.0 ? std::max(0.0, 1.0 - r.median_qps / base_qps) : 0.0;
    overhead.push_back(r);
    std::printf("%10s %8d %8.3f %8.1f %9.1f%%\n", r.mode, r.run.queries,
                r.run.wall_seconds, r.median_qps,
                100.0 * r.overhead_fraction);
  }

  // Section 4. Foreground latency with materialization inline vs
  // deferred to background workers: same shared 8-engine workload, same
  // pool limit, default queue bounds. Deferring the folds must shorten
  // the foreground tail (the p99 is where inline Apply spikes live)
  // without shedding a single intent at the default bounds.
  const int async_engines = 8;
  const int async_queries = smoke ? 320 : 640;
  const int async_repeats = smoke ? 4 : 5;
  std::printf(
      "\nasync_materialization (%d engines, %d queries, workers=2, best "
      "p99 of %d interleaved):\n",
      async_engines, async_queries, async_repeats);
  std::printf("%8s %8s %8s %8s %9s %9s %9s %6s %6s\n", "mode", "queries",
              "wall(s)", "q/s", "p50(ms)", "p95(ms)", "p99(ms)", "shed",
              "stale");
  std::vector<AsyncRow> async_rows =
      MeasureAsyncLatency(async_engines, async_queries, async_repeats);
  for (const AsyncRow& r : async_rows) {
    std::printf("%8s %8d %8.3f %8.1f %9.3f %9.3f %9.3f %6lld %6lld\n", r.mode,
                r.queries, r.wall_seconds, r.queries_per_second, r.p50_ms,
                r.p95_ms, r.p99_ms, r.shed, r.stale_dropped);
  }
  if (async_rows.size() == 2) {
    const AsyncRow& inline_row = async_rows[0];
    const AsyncRow& async_row = async_rows[1];
    // Historically async had to beat inline p99 outright: inline Apply
    // spikes serialized behind the exclusive commit lock, and deferring
    // them was a pure tail win. With structural commits on the sharded
    // path the inline tail lost that convoy, and on core-constrained
    // runners the background workers compete with the foreground for
    // cycles — so the contract is now a no-blowup band (deferral must
    // not push the foreground tail more than 35% past inline) plus the
    // unchanged zero-shed requirement below.
    if (async_row.p99_ms >= 1.35 * inline_row.p99_ms) {
      std::fprintf(stderr,
                   "FAIL: async p99 %.3fms above 1.35x inline p99 %.3fms\n",
                   async_row.p99_ms, inline_row.p99_ms);
      return 1;
    }
    if (async_row.shed != 0) {
      std::fprintf(stderr,
                   "FAIL: %lld intents shed at the default queue bounds\n",
                   async_row.shed);
      return 1;
    }
  }

  std::printf(
      "\nExpected: incremental ns flat beyond history=500 while naive grows"
      "\nlinearly; queries/second improves with engines (planning and think"
      "\ntime overlap; disjoint-footprint commits overlap too) with zero"
      "\nspurious replans on the disjoint workload and no single commit"
      "\nshard dominating (maxshard well under the old exclusive-lock"
      "\nheld/wall); observer overhead within a few percent of no-observer"
      "\nthroughput (MetricsObserver budget: 5%%); warmed shared rows keep"
      "\ncommits on the sharded path and multi-engine warmed rows stay"
      "\nabove 0.75x the single-engine rate; cold shared rows commit"
      "\nmajority-sharded (view-id reservation keeps creators off the X"
      "\npath); async materialization keeps the foreground p99 within"
      "\n1.35x of inline with zero sheds at default bounds.\n\n");

  const std::string json =
      ToJson(smoke, scaling, throughput, overhead, async_rows);
  if (!WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  if (!csv_path.empty()) {
    if (!WriteFile(csv_path,
                   ToCsv(scaling, throughput, overhead, async_rows))) {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
