// Statistics hot-path bench: pins the two perf claims of the "make the
// stats hot path O(1) and plan under a shared lock" change (DESIGN.md,
// "Statistics hot path and locking discipline").
//
//   1. stats_scaling — per-evaluation cost of AccumulatedBenefit /
//      DecayedHits as the event/hit history grows. The incremental
//      readers (running sums + timed-out-prefix cursor) flatten once
//      the history exceeds the decay window t_max; the retained *Naive
//      replays grow linearly. Evaluations are checksummed against each
//      other, so the bench doubles as a coarse bit-identity check.
//
//   2. throughput — 1/2/4 engines free-running on one SharedPool (no
//      turnstile), each processing its own SDSS-patterned workload.
//      Planning runs under the shared lock; only the commit holds the
//      exclusive lock, whose aggregate hold time the pool now exports
//      (PoolManager::commit_lock_stats), reported as the
//      serialization fraction of the run.
//
//   3. observer_overhead — the 4-engine fixed-total-work throughput
//      config re-run with no observer, per-engine TraceObservers, and
//      one shared MetricsObserver, so the cost of always-on telemetry
//      is pinned as a fraction of no-observer throughput (EXPERIMENTS
//      budget: MetricsObserver <= 5%).
//
// Usage:
//   bench_hotpath [--smoke] [--json=PATH] [--csv=PATH]
// --smoke shrinks all sections to CI size. JSON results land in
// BENCH_hotpath.json by default (the repo's perf baseline file);
// --csv additionally writes the same rows in CSV form.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/shared_pool.h"
#include "core/view_stats.h"
#include "exp/metrics.h"
#include "exp/trace.h"

using namespace deepsea;

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- section 1: stats evaluation scaling ----------------------------

struct ScalingRow {
  int history = 0;
  double view_incremental_ns = 0.0;
  double view_naive_ns = 0.0;
  double frag_incremental_ns = 0.0;
  double frag_naive_ns = 0.0;
};

/// Average ns per call of `fn` over `reps` calls; the accumulated
/// checksum is returned through `sink` so the calls cannot be elided.
template <typename Fn>
double TimeNs(int reps, double* sink, Fn fn) {
  const double t0 = NowSeconds();
  double acc = 0.0;
  for (int i = 0; i < reps; ++i) acc += fn();
  const double t1 = NowSeconds();
  *sink += acc;
  return (t1 - t0) * 1e9 / static_cast<double>(reps);
}

ScalingRow MeasureScaling(int history, int reps) {
  const DecayFunction dec(DecayConfig{});  // the engine default (t_max 500)
  // Build the histories the way the pool does: appends in commit-clock
  // order with the cursor advanced after each commit's fold.
  ViewStats view;
  FragmentStats frag;
  frag.interval = Interval(0.0, 1000.0);
  for (int t = 1; t <= history; ++t) {
    view.RecordUse(t, 1.0 + 0.25 * (t % 7), t % 3);
    frag.RecordHit(t, Interval(10.0 * (t % 50), 10.0 * (t % 50) + 5.0), t % 3);
    view.AdvanceWindow(t, dec);
    frag.AdvanceWindow(t, dec);
  }
  const double t_now = static_cast<double>(history);

  ScalingRow row;
  row.history = history;
  double inc_sum = 0.0, naive_sum = 0.0;
  row.view_incremental_ns = TimeNs(reps, &inc_sum, [&] {
    return view.AccumulatedBenefit(t_now, dec);
  });
  row.view_naive_ns = TimeNs(reps, &naive_sum, [&] {
    return view.AccumulatedBenefitNaive(t_now, dec);
  });
  if (inc_sum != naive_sum) {
    std::fprintf(stderr,
                 "BIT-IDENTITY VIOLATION: view benefit %.17g != naive %.17g "
                 "at history %d\n",
                 inc_sum, naive_sum, history);
    std::exit(1);
  }
  inc_sum = naive_sum = 0.0;
  row.frag_incremental_ns =
      TimeNs(reps, &inc_sum, [&] { return frag.DecayedHits(t_now, dec); });
  row.frag_naive_ns =
      TimeNs(reps, &naive_sum, [&] { return frag.DecayedHitsNaive(t_now, dec); });
  if (inc_sum != naive_sum) {
    std::fprintf(stderr,
                 "BIT-IDENTITY VIOLATION: fragment hits %.17g != naive %.17g "
                 "at history %d\n",
                 inc_sum, naive_sum, history);
    std::exit(1);
  }
  return row;
}

// --- section 2: multi-engine shared-pool throughput -----------------

struct ThroughputRow {
  int engines = 0;
  int queries = 0;
  int replans = 0;  ///< speculative plans invalidated by a foreign commit
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
  uint64_t commits = 0;
  double commit_held_seconds = 0.0;
  double commit_held_fraction = 0.0;
  double sim_seconds = 0.0;  ///< simulated workload cost (sanity column)
};

/// Telemetry attached during a throughput run (section 3). Each mode
/// honors the observer contracts: TraceObserver is not thread-safe, so
/// it is attached per engine; one MetricsObserver is shared by every
/// engine (its hot path is per-tenant relaxed atomics).
enum class ObserverMode { kNone, kTrace, kMetrics };

const char* ObserverModeName(ObserverMode mode) {
  switch (mode) {
    case ObserverMode::kNone:
      return "none";
    case ObserverMode::kTrace:
      return "trace";
    case ObserverMode::kMetrics:
      return "metrics";
  }
  return "unknown";
}

/// Client think time between a tenant's queries: models the round trip
/// of the interactive sessions the paper's workload represents. This is
/// what shared-lock planning converts into capacity — while one
/// tenant thinks, the others plan concurrently; only the commit
/// serializes.
constexpr auto kThinkTime = std::chrono::microseconds(500);

/// `total_queries` split evenly across `engines` free-running threads
/// on ONE shared pool — total work (and thus final pool size) is fixed
/// per row, so queries/second across rows measures concurrency alone.
ThroughputRow RunThroughput(int engines, int total_queries,
                            ObserverMode mode = ObserverMode::kNone) {
  ThroughputRow row;
  row.engines = engines;
  const int per_engine = total_queries / engines;

  Catalog catalog;
  const auto data = bench::Dataset(100.0, /*sdss_distribution=*/true);
  if (!BigBenchDataset::Generate(data, &catalog).ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    std::exit(1);
  }
  EngineOptions options = bench::DeepSea().options;
  options.pool_limit_bytes = 12e9;
  SharedPool pool(&catalog, options);

  // One global workload, dealt out in contiguous chunks: every row
  // processes the same query set regardless of engine count.
  const std::vector<WorkloadQuery> all =
      bench::SdssWorkload(per_engine * engines, 2017);
  std::vector<std::unique_ptr<DeepSeaEngine>> fleet;
  for (int e = 0; e < engines; ++e) {
    fleet.push_back(std::make_unique<DeepSeaEngine>(
        &catalog, &pool, "tenant" + std::to_string(e)));
  }

  std::vector<std::unique_ptr<TraceObserver>> traces;
  MetricsObserver metrics;
  if (mode == ObserverMode::kTrace) {
    for (int e = 0; e < engines; ++e) {
      traces.push_back(std::make_unique<TraceObserver>(
          "tenant" + std::to_string(e), nullptr));
      fleet[static_cast<size_t>(e)]->set_observer(traces.back().get());
    }
  } else if (mode == ObserverMode::kMetrics) {
    metrics.set_pool(pool.pool());
    for (auto& engine : fleet) engine->set_observer(&metrics);
  }

  // Engine construction enters the commit section briefly (InitStages);
  // measure the run alone by diffing the pool's lock stats around it.
  const PoolManager::CommitLockStats before = pool.pool()->commit_lock_stats();
  std::vector<double> sim(static_cast<size_t>(engines), 0.0);
  std::vector<int> done(static_cast<size_t>(engines), 0);
  std::vector<int> replans(static_cast<size_t>(engines), 0);
  const double t0 = NowSeconds();
  {
    std::vector<std::thread> threads;
    for (int e = 0; e < engines; ++e) {
      threads.emplace_back([&, e] {
        const size_t lo = static_cast<size_t>(e) * static_cast<size_t>(per_engine);
        for (size_t i = lo; i < lo + static_cast<size_t>(per_engine); ++i) {
          const WorkloadQuery& q = all[i];
          auto plan =
              BigBenchTemplates::Build(q.template_name, q.range.lo, q.range.hi);
          if (!plan.ok()) continue;
          auto report = fleet[static_cast<size_t>(e)]->ProcessQuery(*plan);
          if (!report.ok()) continue;
          sim[static_cast<size_t>(e)] += report->total_seconds;
          replans[static_cast<size_t>(e)] += report->replanned ? 1 : 0;
          ++done[static_cast<size_t>(e)];
          std::this_thread::sleep_for(kThinkTime);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  row.wall_seconds = NowSeconds() - t0;
  const PoolManager::CommitLockStats after = pool.pool()->commit_lock_stats();

  for (int e = 0; e < engines; ++e) {
    row.queries += done[static_cast<size_t>(e)];
    row.replans += replans[static_cast<size_t>(e)];
    row.sim_seconds += sim[static_cast<size_t>(e)];
  }
  row.queries_per_second =
      row.wall_seconds > 0.0 ? row.queries / row.wall_seconds : 0.0;
  row.commits = after.commits - before.commits;
  row.commit_held_seconds = after.held_seconds - before.held_seconds;
  row.commit_held_fraction = row.wall_seconds > 0.0
                                 ? row.commit_held_seconds / row.wall_seconds
                                 : 0.0;
  return row;
}

// --- section 3: observer overhead -----------------------------------

struct OverheadRow {
  const char* mode = "none";
  ThroughputRow run;
  /// 1 - q/s(mode) / q/s(none): positive = slower than no-observer.
  /// Noise on a small config can make it slightly negative.
  double overhead_fraction = 0.0;
};

// --- output ---------------------------------------------------------

std::string ToJson(bool smoke, const std::vector<ScalingRow>& scaling,
                   const std::vector<ThroughputRow>& throughput,
                   const std::vector<OverheadRow>& overhead) {
  std::string out;
  char buf[512];
  out += "{\n  \"bench\": \"hotpath\",\n";
  std::snprintf(buf, sizeof(buf), "  \"smoke\": %s,\n",
                smoke ? "true" : "false");
  out += buf;
  out += "  \"stats_scaling\": [\n";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"history\": %d, \"view_incremental_ns\": %.1f, "
                  "\"view_naive_ns\": %.1f, \"frag_incremental_ns\": %.1f, "
                  "\"frag_naive_ns\": %.1f}%s\n",
                  r.history, r.view_incremental_ns, r.view_naive_ns,
                  r.frag_incremental_ns, r.frag_naive_ns,
                  i + 1 < scaling.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"throughput\": [\n";
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputRow& r = throughput[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"engines\": %d, \"queries\": %d, \"replans\": %d, "
        "\"wall_seconds\": %.3f, \"queries_per_second\": %.1f, "
        "\"commits\": %llu, \"commit_held_seconds\": %.3f, "
        "\"commit_held_fraction\": %.3f, \"sim_seconds\": %.1f}%s\n",
        r.engines, r.queries, r.replans, r.wall_seconds, r.queries_per_second,
        static_cast<unsigned long long>(r.commits), r.commit_held_seconds,
        r.commit_held_fraction, r.sim_seconds,
        i + 1 < throughput.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"observer_overhead\": [\n";
  for (size_t i = 0; i < overhead.size(); ++i) {
    const OverheadRow& r = overhead[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"mode\": \"%s\", \"engines\": %d, \"queries\": %d, "
        "\"wall_seconds\": %.3f, \"queries_per_second\": %.1f, "
        "\"overhead_fraction\": %.4f}%s\n",
        r.mode, r.run.engines, r.run.queries, r.run.wall_seconds,
        r.run.queries_per_second, r.overhead_fraction,
        i + 1 < overhead.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

std::string ToCsv(const std::vector<ScalingRow>& scaling,
                  const std::vector<ThroughputRow>& throughput,
                  const std::vector<OverheadRow>& overhead) {
  std::string out;
  char buf[256];
  out += "section,history,view_incremental_ns,view_naive_ns,"
         "frag_incremental_ns,frag_naive_ns\n";
  for (const ScalingRow& r : scaling) {
    std::snprintf(buf, sizeof(buf), "stats_scaling,%d,%.1f,%.1f,%.1f,%.1f\n",
                  r.history, r.view_incremental_ns, r.view_naive_ns,
                  r.frag_incremental_ns, r.frag_naive_ns);
    out += buf;
  }
  out += "section,engines,queries,replans,wall_seconds,queries_per_second,"
         "commits,commit_held_seconds,commit_held_fraction\n";
  for (const ThroughputRow& r : throughput) {
    std::snprintf(buf, sizeof(buf),
                  "throughput,%d,%d,%d,%.3f,%.1f,%llu,%.3f,%.3f\n", r.engines,
                  r.queries, r.replans, r.wall_seconds, r.queries_per_second,
                  static_cast<unsigned long long>(r.commits),
                  r.commit_held_seconds, r.commit_held_fraction);
    out += buf;
  }
  out += "section,mode,engines,queries,wall_seconds,queries_per_second,"
         "overhead_fraction\n";
  for (const OverheadRow& r : overhead) {
    std::snprintf(buf, sizeof(buf),
                  "observer_overhead,%s,%d,%d,%.3f,%.1f,%.4f\n", r.mode,
                  r.run.engines, r.run.queries, r.run.wall_seconds,
                  r.run.queries_per_second, r.overhead_fraction);
    out += buf;
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_hotpath.json";
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--csv=", 6) == 0) csv_path = argv[i] + 6;
  }

  bench::Banner("Statistics hot path",
                smoke ? "incremental stats + shared-lock planning (smoke)"
                      : "incremental stats + shared-lock planning");

  // Section 1. Histories straddle t_max (500): the incremental columns
  // stop growing there, the naive columns keep growing.
  const std::vector<int> histories =
      smoke ? std::vector<int>{125, 500, 1000}
            : std::vector<int>{125, 250, 500, 1000, 2000, 4000};
  const int reps = smoke ? 2000 : 20000;
  std::vector<ScalingRow> scaling;
  std::printf("\nstats_scaling (ns/evaluation, t_max=500):\n");
  std::printf("%8s %16s %12s %16s %12s\n", "history", "view_incremental",
              "view_naive", "frag_incremental", "frag_naive");
  for (int h : histories) {
    scaling.push_back(MeasureScaling(h, reps));
    const ScalingRow& r = scaling.back();
    std::printf("%8d %16.1f %12.1f %16.1f %12.1f\n", r.history,
                r.view_incremental_ns, r.view_naive_ns, r.frag_incremental_ns,
                r.frag_naive_ns);
  }

  // Section 2. Fixed total work split across growing engine counts; the
  // run's only serialization is the exclusive commit.
  const int total_queries = smoke ? 60 : 240;
  std::vector<ThroughputRow> throughput;
  std::printf("\nthroughput (%d queries total, shared pool, %lldus think):\n",
              total_queries,
              static_cast<long long>(kThinkTime.count()));
  std::printf("%8s %8s %8s %8s %8s %8s %10s %10s\n", "engines", "queries",
              "replans", "wall(s)", "q/s", "commits", "held(s)", "held/wall");
  for (int engines : {1, 2, 4}) {
    throughput.push_back(RunThroughput(engines, total_queries));
    const ThroughputRow& r = throughput.back();
    std::printf("%8d %8d %8d %8.3f %8.1f %8llu %10.3f %10.3f\n", r.engines,
                r.queries, r.replans, r.wall_seconds, r.queries_per_second,
                static_cast<unsigned long long>(r.commits),
                r.commit_held_seconds, r.commit_held_fraction);
  }

  // Section 3. The cost of always-on telemetry: the 4-engine fixed-
  // total-work config under each observer mode. Think time and planning
  // dominate the per-query path, so the sharded-atomics MetricsObserver
  // hot path must stay within a few percent of no-observer throughput.
  const int overhead_engines = 4;
  std::vector<OverheadRow> overhead;
  std::printf("\nobserver_overhead (%d engines, %d queries total):\n",
              overhead_engines, total_queries);
  std::printf("%10s %8s %8s %8s %10s\n", "observer", "queries", "wall(s)",
              "q/s", "overhead");
  for (ObserverMode mode :
       {ObserverMode::kNone, ObserverMode::kTrace, ObserverMode::kMetrics}) {
    OverheadRow r;
    r.mode = ObserverModeName(mode);
    r.run = RunThroughput(overhead_engines, total_queries, mode);
    const double base_qps = overhead.empty()
                                ? r.run.queries_per_second
                                : overhead.front().run.queries_per_second;
    r.overhead_fraction =
        base_qps > 0.0 ? 1.0 - r.run.queries_per_second / base_qps : 0.0;
    overhead.push_back(r);
    std::printf("%10s %8d %8.3f %8.1f %9.1f%%\n", r.mode, r.run.queries,
                r.run.wall_seconds, r.run.queries_per_second,
                100.0 * r.overhead_fraction);
  }

  std::printf(
      "\nExpected: incremental ns flat beyond history=500 while naive grows"
      "\nlinearly; queries/second improves with engines (planning and think"
      "\ntime overlap; only the commit serializes) while the commit lock's"
      "\nheld/wall fraction stays below 1; observer overhead within a few"
      "\npercent of no-observer throughput (MetricsObserver budget: 5%%).\n\n");

  const std::string json = ToJson(smoke, scaling, throughput, overhead);
  if (!WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  if (!csv_path.empty()) {
    if (!WriteFile(csv_path, ToCsv(scaling, throughput, overhead))) {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  return 0;
}
