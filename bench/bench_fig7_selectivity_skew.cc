// Reproduces Figure 7: varying selectivity {Big, Medium, Small} and
// query skew {Uniform, Light, Heavy} for template Q30 on the 500 GB
// instance:
//   (a) projected elapsed time of 100 queries (via linear regression
//       over 10 measured queries, Section 9's simulator methodology) as
//       a fraction of Hive,
//   (b) the number of queries needed to recoup the materialization cost
//       (first query where the strategy's cumulative time drops below
//       Hive's cumulative time).
//
// Paper result: partitioned strategies save 50-60% (B), 60-70% (M),
// 70-80% (S) vs Hive; NP saves only 15-25%; DS ~= E under Uniform and
// up to 30% better under Heavy skew; recoup happens within a handful of
// queries, similar for DS and E except BH where DS wins.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "sim/runtime_estimator.h"

using namespace deepsea;

int main() {
  bench::Banner("Figure 7", "Varying selectivity and skew, Q30, 500GB");
  ExperimentRunner runner(bench::Dataset(500.0, /*sdss_distribution=*/false));

  TablePrinter table(10);
  table.Header({"setting", "NP %H", "E %H", "DS %H", "NP rec", "E rec", "DS rec"});

  const Selectivity sels[] = {Selectivity::kBig, Selectivity::kMedium,
                              Selectivity::kSmall};
  const Skew skews[] = {Skew::kUniform, Skew::kLight, Skew::kHeavy};
  for (Selectivity sel : sels) {
    for (Skew skew : skews) {
      const std::string setting =
          std::string(SelectivityName(sel)) + SkewName(skew);
      RangeGenerator gen(bench::ItemSkDomain(), sel, skew, /*seed=*/1234);
      const auto workload = bench::TemplateWorkload("Q30", 10, &gen);

      // Hive reference.
      auto hive = runner.Run(bench::Hive(), workload);
      if (!hive.ok()) return 1;
      const double hive100 =
          RuntimeEstimator::ProjectCumulative(hive->per_query_seconds, 100);

      std::vector<std::string> fractions, recoups;
      for (StrategySpec spec :
           {bench::NoPartition(), bench::EquiDepth(6), bench::DeepSea()}) {
        spec.options.benefit_cost_threshold = 0.0;  // materialize on query 1
        auto result = runner.Run(spec, workload);
        if (!result.ok()) {
          std::printf("run failed: %s\n", result.status().ToString().c_str());
          return 1;
        }
        const double projected =
            RuntimeEstimator::ProjectCumulative(result->per_query_seconds, 100);
        fractions.push_back(StrFormat("%.2f", projected / hive100));
        // Recoup: first i with cumulative(strategy) <= cumulative(Hive);
        // projected forward when not reached within the measured 10.
        int recoup = -1;
        for (size_t i = 1; i < result->cumulative_seconds.size(); ++i) {
          if (result->CumulativeAt(i) <= hive->CumulativeAt(i)) {
            recoup = static_cast<int>(i);
            break;
          }
        }
        if (recoup < 0) {
          // Extrapolate: deficit closes at per-query saving rate.
          const double deficit = result->CumulativeAt(10) - hive->CumulativeAt(10);
          const double saving_rate =
              (hive->per_query_seconds.back() - result->per_query_seconds.back());
          recoup = saving_rate > 0.0
                       ? 10 + static_cast<int>(deficit / saving_rate) + 1
                       : 999;
        }
        recoups.push_back(std::to_string(recoup));
      }
      table.Row({setting, fractions[0], fractions[1], fractions[2], recoups[0],
                 recoups[1], recoups[2]});
    }
  }
  std::printf(
      "\nPaper (7a): E/DS save 50-60%% (B), 60-70%% (M), 70-80%% (S); NP only"
      "\n15-25%%; DS ~= E under U, up to 30%% better under H."
      "\nPaper (7b): recoup within a handful of queries; DS advantage at BH.\n");
  return 0;
}
