// Micro-benchmarks (google-benchmark) for the hot paths of the DeepSea
// core: interval algebra, histogram estimation, signature computation
// and matching, filter-tree lookup, greedy partition matching, MLE
// smoothing, and end-to-end ProcessQuery throughput of the simulator.

#include <benchmark/benchmark.h>

#include "catalog/histogram.h"
#include "core/engine.h"
#include "core/mle_model.h"
#include "core/partition_match.h"
#include "exp/trace.h"
#include "plan/signature.h"
#include "rewrite/filter_tree.h"
#include "workload/bigbench.h"
#include "workload/range_generator.h"

namespace deepsea {
namespace {

void BM_IntervalIntersect(benchmark::State& state) {
  const Interval a(0, 1000, true, false);
  const Interval b(500, 1500, false, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b));
  }
}
BENCHMARK(BM_IntervalIntersect);

void BM_FragmentationCovers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fragmentation frags(Interval(0, 1e6).SplitEqual(n));
  const Interval domain(0, 1e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frags.Covers(domain));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FragmentationCovers)->Range(4, 256)->Complexity();

void BM_HistogramFractionInRange(benchmark::State& state) {
  AttributeHistogram hist(Interval(0, 400000), static_cast<int>(state.range(0)));
  hist.AddRange(Interval(0, 400000), 1e9);
  const Interval query(120000, 180000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.FractionInRange(query));
  }
}
BENCHMARK(BM_HistogramFractionInRange)->Arg(64)->Arg(420)->Arg(2048);

void BM_PartitionMatchGreedy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<Interval> frags = Interval(0, 400000).SplitEqual(n);
  // Overlap noise.
  for (int i = 0; i < n / 4; ++i) {
    frags.push_back(Interval(i * 1000.0, i * 1000.0 + 5000.0));
  }
  const Interval query(100000, 300000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionMatch(frags, query));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PartitionMatchGreedy)->Range(8, 512)->Complexity();

void BM_MleAdjust(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<FragmentStats> frags;
  for (const Interval& iv : Interval(0, 400000).SplitEqual(n)) {
    FragmentStats f;
    f.interval = iv;
    f.size_bytes = 1e9;
    for (int h = 0; h < 5; ++h) f.RecordHit(100 + h);
    frags.push_back(std::move(f));
  }
  MleFragmentModel model;
  DecayFunction dec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Adjust(frags, Interval(0, 400000), 200, dec));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_MleAdjust)->Range(4, 128)->Complexity();

class WorkloadFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (catalog_.Contains("store_sales")) return;
    BigBenchDataset::Options o;
    o.total_bytes = 100e9;
    o.sample_rows_per_fact = 64;
    o.sample_rows_per_dim = 32;
    (void)BigBenchDataset::Generate(o, &catalog_);
  }

 protected:
  Catalog catalog_;
};

BENCHMARK_F(WorkloadFixture, BM_ComputeSignature)(benchmark::State& state) {
  auto plan = BigBenchTemplates::Build("Q30", 10000, 14000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSignature(*plan, catalog_));
  }
}

BENCHMARK_F(WorkloadFixture, BM_SignatureSubsumes)(benchmark::State& state) {
  auto view = BigBenchTemplates::Build("Q30", 0, 400000);
  auto query = BigBenchTemplates::Build("Q30", 10000, 14000);
  const PlanSignature vsig = *ComputeSignature((*view)->child(0)->child(0), catalog_);
  const PlanSignature qsig = *ComputeSignature((*query)->child(0), catalog_);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SignatureSubsumes(vsig, qsig));
  }
}

BENCHMARK_F(WorkloadFixture, BM_FilterTreeLookup)(benchmark::State& state) {
  FilterTree tree;
  // Populate with many aggregate signatures (distinct range constants).
  for (int i = 0; i < 512; ++i) {
    auto plan = BigBenchTemplates::Build("Q30", i * 100.0, i * 100.0 + 4000.0);
    auto sig = ComputeSignature(*plan, catalog_);
    tree.Insert(*sig, "v" + std::to_string(i));
  }
  auto probe = ComputeSignature(*BigBenchTemplates::Build("Q30", 777, 4777),
                                catalog_);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(*probe));
  }
}

BENCHMARK_F(WorkloadFixture, BM_ProcessQueryThroughput)(benchmark::State& state) {
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.02;
  DeepSeaEngine engine(&catalog_, opts);
  RangeGenerator gen(Interval(0, 400000), Selectivity::kSmall, Skew::kHeavy, 3);
  for (auto _ : state) {
    const Interval r = gen.Next();
    auto plan = BigBenchTemplates::Build("Q30", r.lo, r.hi);
    benchmark::DoNotOptimize(engine.ProcessQuery(*plan));
  }
}

// Same pipeline with a TraceObserver attached: the delta vs
// BM_ProcessQueryThroughput is the cost of the observer seam (stage
// wall-clock timing + event dispatch), which should stay in the noise.
BENCHMARK_F(WorkloadFixture, BM_ProcessQueryThroughputObserved)(benchmark::State& state) {
  EngineOptions opts;
  opts.benefit_cost_threshold = 0.02;
  DeepSeaEngine engine(&catalog_, opts);
  TraceObserver observer("bench", nullptr);
  engine.set_observer(&observer);
  RangeGenerator gen(Interval(0, 400000), Selectivity::kSmall, Skew::kHeavy, 3);
  for (auto _ : state) {
    const Interval r = gen.Next();
    auto plan = BigBenchTemplates::Build("Q30", r.lo, r.hi);
    benchmark::DoNotOptimize(engine.ProcessQuery(*plan));
  }
}

}  // namespace
}  // namespace deepsea

BENCHMARK_MAIN();
