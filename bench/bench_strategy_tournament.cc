// Strategy tournament: compares the pluggable selection strategies
// (greedy / local_search / cluster_greedy / cluster_local_search; see
// DESIGN.md, "Selection strategies") head to head.
//
// Section 1 resolves seeded synthetic knapsack instances directly
// through the SelectionStrategy seam and compares the full knapsack
// objective (SelectionResolution::objective_value — admitted Φ, kept
// pool content included). This section carries the CI invariant:
// local search seeds from greedy and only applies strictly improving
// moves, so its objective is never below greedy's on the same
// instance — the bench aborts if that ever fails, in smoke and full
// mode alike (same check for the cluster pair).
//
// Section 2 runs end-to-end workloads through ExperimentRunner, one
// fresh engine per strategy, and reports total simulated seconds,
// aggregate decision benefit, and the strategy telemetry counters.
//
// Run:  bench_strategy_tournament [--smoke] [--json=PATH] [--csv=PATH]
// --smoke shrinks both sections to CI size. JSON results land in
// BENCH_strategy_tournament.json by default; EXPERIMENTS.md documents
// the schema.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/selection_strategy.h"

using namespace deepsea;

namespace {

constexpr SelectionStrategyKind kAllStrategies[] = {
    SelectionStrategyKind::kGreedy,
    SelectionStrategyKind::kLocalSearch,
    SelectionStrategyKind::kClusterGreedy,
    SelectionStrategyKind::kClusterLocalSearch,
};

// --- section 1: seeded synthetic knapsack instances -----------------

/// A contended random instance: mixed pool/new candidates, ~40% of the
/// summed size as budget. Fragment-kind items get random ranges on a
/// handful of partitions so the clustering pre-pass has real overlap
/// structure to merge.
SelectionInput RandomInstance(uint64_t seed, int items, int parts) {
  Rng rng(seed);
  SelectionInput in;
  double total_size = 0.0;
  in.items.reserve(static_cast<size_t>(items));
  for (int i = 0; i < items; ++i) {
    SelectionCandidate c;
    c.kind = static_cast<SelectionCandidate::Kind>(rng.UniformInt(0, 4));
    // A slice of zero-value items exercises the "evict but never
    // admit" paths; otherwise value and size are independent so the
    // greedy value-order scan leaves real gaps for swaps to close.
    c.value = rng.Bernoulli(0.15) ? 0.0 : rng.Uniform(0.1, 100.0);
    c.size = rng.Uniform(1e6, 5e8);
    if (c.kind == SelectionCandidate::Kind::kNewFragment ||
        c.kind == SelectionCandidate::Kind::kNewViewFragment) {
      c.part_ord = static_cast<int>(rng.UniformInt(0, parts - 1));
      c.mergeable = true;
      const double lo = rng.Uniform(0.0, 350000.0);
      c.interval = Interval(lo, lo + rng.Uniform(1000.0, 50000.0));
    }
    total_size += c.size;
    in.items.push_back(c);
  }
  in.budget_bytes = 0.4 * total_size;
  return in;
}

struct DecisionAgg {
  const char* strategy = nullptr;
  int instances = 0;
  double aggregate_benefit = 0.0;
  long long swaps = 0;
  long long merged = 0;
};

std::vector<DecisionAgg> RunPerDecision(int instances, int items, int parts) {
  std::vector<DecisionAgg> aggs;
  for (SelectionStrategyKind kind : kAllStrategies) {
    aggs.push_back({SelectionStrategyName(kind), instances, 0.0, 0, 0});
  }
  for (int s = 0; s < instances; ++s) {
    const SelectionInput base = RandomInstance(9000 + s, items, parts);
    std::vector<double> values;
    for (size_t k = 0; k < aggs.size(); ++k) {
      SelectionInput in = base;
      in.config.kind = kAllStrategies[k];
      const SelectionResolution res =
          SelectionStrategy::ForKind(kAllStrategies[k])->Resolve(in);
      aggs[k].aggregate_benefit += res.objective_value;
      aggs[k].swaps += res.swaps_applied;
      aggs[k].merged += res.candidates_merged;
      values.push_back(res.objective_value);
    }
    // The never-worse invariants, per instance, on the full knapsack
    // objective (admitted Φ incl. kept pool content — benefit_score
    // alone can legitimately drop when a move trades a new item for
    // pool content): LS >= greedy and cluster LS >= cluster greedy
    // (same candidate set post-merge).
    if (values[1] < values[0] - 1e-9 || values[3] < values[2] - 1e-9) {
      std::fprintf(stderr,
                   "FAIL seed %d: local search below its greedy seed "
                   "(greedy=%.6f ls=%.6f cg=%.6f cls=%.6f)\n",
                   9000 + s, values[0], values[1], values[2], values[3]);
      std::abort();
    }
  }
  return aggs;
}

// --- section 2: end-to-end workloads ---------------------------------

struct WorkloadRow {
  const char* workload = nullptr;
  const char* strategy = nullptr;
  double total_seconds = 0.0;
  double aggregate_benefit = 0.0;
  long long swaps = 0;
  long long merged = 0;
  long long views = 0;
  long long fragments = 0;
  double pool_bytes = 0.0;
};

/// One hot region queried intensely, then an excursion — selection
/// stays contended because the pool is sized well below the working
/// set (same shape as examples/strategy_faceoff).
std::vector<WorkloadQuery> FocusedWorkload(int queries) {
  std::vector<WorkloadQuery> out;
  RangeGenerator::Config cfg;
  cfg.domain = bench::ItemSkDomain();
  cfg.selectivity_fraction = 0.02;
  cfg.skew = Skew::kHeavy;
  cfg.center = 120000.0;
  RangeGenerator hot(cfg, 100);
  const int hot_n = queries * 4 / 5;
  for (int i = 0; i < hot_n; ++i) out.push_back({"Q30", hot.Next()});
  cfg.center = 300000.0;
  RangeGenerator excursion(cfg, 101);
  for (int i = hot_n; i < queries; ++i)
    out.push_back({"Q30", excursion.Next()});
  return out;
}

}  // namespace

// --- output -----------------------------------------------------------

static std::string ToJson(bool smoke, const std::vector<DecisionAgg>& aggs,
                          const std::vector<WorkloadRow>& rows) {
  std::string out;
  char buf[512];
  out += "{\n  \"bench\": \"strategy_tournament\",\n";
  std::snprintf(buf, sizeof(buf), "  \"smoke\": %s,\n",
                smoke ? "true" : "false");
  out += buf;
  out += "  \"per_decision\": [\n";
  for (size_t i = 0; i < aggs.size(); ++i) {
    const DecisionAgg& a = aggs[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"strategy\": \"%s\", \"instances\": %d, "
                  "\"aggregate_benefit\": %.9g, \"swaps\": %lld, "
                  "\"merged_candidates\": %lld}%s\n",
                  a.strategy, a.instances, a.aggregate_benefit, a.swaps,
                  a.merged, i + 1 < aggs.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"workloads\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const WorkloadRow& r = rows[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"workload\": \"%s\", \"strategy\": \"%s\", "
                  "\"total_seconds\": %.3f, \"aggregate_benefit\": %.9g, "
                  "\"swaps\": %lld, \"merged_candidates\": %lld, "
                  "\"views\": %lld, \"fragments\": %lld, "
                  "\"pool_bytes\": %.0f}%s\n",
                  r.workload, r.strategy, r.total_seconds,
                  r.aggregate_benefit, r.swaps, r.merged, r.views,
                  r.fragments, r.pool_bytes,
                  i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

static std::string ToCsv(const std::vector<DecisionAgg>& aggs,
                         const std::vector<WorkloadRow>& rows) {
  std::string out =
      "section,workload,strategy,total_seconds,aggregate_benefit,swaps,"
      "merged_candidates\n";
  char buf[256];
  for (const DecisionAgg& a : aggs) {
    std::snprintf(buf, sizeof(buf), "per_decision,,%s,,%.9g,%lld,%lld\n",
                  a.strategy, a.aggregate_benefit, a.swaps, a.merged);
    out += buf;
  }
  for (const WorkloadRow& r : rows) {
    std::snprintf(buf, sizeof(buf), "workload,%s,%s,%.3f,%.9g,%lld,%lld\n",
                  r.workload, r.strategy, r.total_seconds,
                  r.aggregate_benefit, r.swaps, r.merged);
    out += buf;
  }
  return out;
}

static bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && n == content.size();
}

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_strategy_tournament.json";
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--csv=", 6) == 0) csv_path = argv[i] + 6;
  }
  bench::Banner("Strategy tournament",
                smoke ? "selection strategies head to head (smoke)"
                      : "selection strategies head to head");

  // Section 1: the pure-knapsack tournament. Every instance is checked
  // for the local-search never-worse invariant; an abort here is a
  // regression in the strategy seam, not noise.
  const int instances = smoke ? 32 : 256;
  std::printf("\n-- per-decision knapsack value, %d seeded instances --\n",
              instances);
  const std::vector<DecisionAgg> aggs =
      RunPerDecision(instances, /*items=*/smoke ? 48 : 96, /*parts=*/6);
  {
    TablePrinter table;
    table.Header({"strategy", "sum value", "vs greedy", "swaps", "merged"});
    const double greedy = aggs[0].aggregate_benefit;
    for (const DecisionAgg& a : aggs) {
      table.Row({a.strategy, StrFormat("%.4g", a.aggregate_benefit),
                 FmtRatio(a.aggregate_benefit / std::max(greedy, 1e-12)),
                 std::to_string(a.swaps), std::to_string(a.merged)});
    }
  }
  std::printf("invariant OK: local search never below its greedy seed\n");

  // Section 2: end-to-end, one fresh engine per (workload, strategy).
  struct Scenario {
    const char* name;
    std::vector<WorkloadQuery> workload;
  };
  const Scenario scenarios[] = {
      {"focused", FocusedWorkload(smoke ? 40 : 75)},
      {"sdss", bench::SdssWorkload(smoke ? 120 : 600, /*seed=*/2017)},
  };
  ExperimentRunner runner(bench::Dataset(100.0, /*sdss_distribution=*/true));
  std::vector<WorkloadRow> rows;
  for (const Scenario& scenario : scenarios) {
    std::printf("\n-- workload: %s (%zu queries) --\n", scenario.name,
                scenario.workload.size());
    TablePrinter table;
    table.Header({"strategy", "total (s)", "vs greedy", "benefit", "swaps",
                  "merged", "frags"});
    double greedy_seconds = 0.0;
    for (SelectionStrategyKind kind : kAllStrategies) {
      StrategySpec spec = bench::DeepSea();
      spec.label = SelectionStrategyName(kind);
      spec.options.selection.kind = kind;
      spec.options.pool_limit_bytes = 2e9;  // tight: selection stays contended
      auto result = runner.Run(spec, scenario.workload);
      if (!result.ok()) {
        std::fprintf(stderr, "run %s/%s failed: %s\n", scenario.name,
                     spec.label.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      if (greedy_seconds == 0.0) greedy_seconds = result->total_seconds;
      WorkloadRow row;
      row.workload = scenario.name;
      row.strategy = SelectionStrategyName(kind);
      row.total_seconds = result->total_seconds;
      row.aggregate_benefit = result->totals.selection_benefit;
      row.swaps = result->totals.selection_swaps;
      row.merged = result->totals.selection_merged_candidates;
      row.views = result->totals.views_created;
      row.fragments = result->totals.fragments_created;
      row.pool_bytes = result->final_pool_bytes;
      rows.push_back(row);
      table.Row({row.strategy, FmtSeconds(row.total_seconds),
                 FmtRatio(row.total_seconds / std::max(greedy_seconds, 1.0)),
                 StrFormat("%.4g", row.aggregate_benefit),
                 std::to_string(row.swaps), std::to_string(row.merged),
                 std::to_string(row.fragments)});
    }
    // End-to-end never-worse check on the fixed seeds: unlike the
    // per-instance invariant above this is empirical, not structural —
    // decisions diverge the pool trajectory, so later rounds see
    // different candidate sets — but the workloads are seeded and the
    // simulator is deterministic, so a drop below greedy's aggregate
    // objective here is a real regression in the strategy seam.
    const size_t base = rows.size() - 4;
    if (rows[base + 1].aggregate_benefit <
            rows[base + 0].aggregate_benefit - 1e-12 ||
        rows[base + 3].aggregate_benefit <
            rows[base + 2].aggregate_benefit - 1e-12) {
      std::fprintf(stderr,
                   "FAIL workload %s: local search aggregate objective "
                   "below its greedy seed\n",
                   scenario.name);
      return 1;
    }
  }

  const std::string json = ToJson(smoke, aggs, rows);
  if (!WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  if (!csv_path.empty()) {
    if (!WriteFile(csv_path, ToCsv(aggs, rows))) {
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", csv_path.c_str());
  }
  std::printf(
      "\nPer-decision: local search closes greedy's value-order gaps"
      "\n(never worse by construction); clustering trades a few merged"
      "\nnear-duplicates for fewer, wider fragments. End-to-end totals"
      "\nfold in materialization cost, so the ordering can differ.\n");
  return 0;
}
