// Ablation: the benefit decay function DEC (Section 7.1). On a
// regime-shifting workload under a tight pool, decay lets DeepSea evict
// views/fragments fitted to the old access pattern; without decay,
// stale benefits keep them competitive and the pool adapts slowly.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

using namespace deepsea;

int main() {
  bench::Banner("Ablation", "Benefit decay on a shifting workload, pool-limited");
  ExperimentRunner runner(bench::Dataset(100.0, /*sdss_distribution=*/false));

  // Three regimes across the domain; tight pool forces eviction choices.
  std::vector<WorkloadQuery> workload;
  int seed = 0;
  for (double center : {50000.0, 200000.0, 350000.0}) {
    RangeGenerator::Config cfg;
    cfg.domain = bench::ItemSkDomain();
    cfg.selectivity_fraction = 0.05;
    cfg.skew = Skew::kHeavy;
    cfg.center = center;
    RangeGenerator gen(cfg, static_cast<uint64_t>(900 + seed++));
    auto part = bench::TemplateWorkload("Q30", 30, &gen);
    workload.insert(workload.end(), part.begin(), part.end());
  }

  TablePrinter table;
  table.Header({"variant", "total (s)", "evictions", "from views"});
  for (bool decay_enabled : {true, false}) {
    StrategySpec spec = bench::DeepSea();
    spec.label = decay_enabled ? "DS (decay on)" : "DS (decay off)";
    spec.options.decay.enabled = decay_enabled;
    spec.options.decay.t_max = 40.0;
    spec.options.pool_limit_bytes = 4e9;
    spec.options.benefit_cost_threshold = 0.0;
    auto result = runner.Run(spec, workload);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    table.Row({result->label, FmtSeconds(result->total_seconds),
               std::to_string(result->totals.fragments_evicted),
               std::to_string(result->totals.queries_answered_from_views)});
  }
  std::printf(
      "\nExpected: decay-on adapts to each regime shift and accumulates less"
      "\ntotal time than decay-off under the same pool limit.\n");
  return 0;
}
