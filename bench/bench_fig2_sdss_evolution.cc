// Reproduces Figure 2: evolution of SDSS selection ranges over the
// first 10,000 queries. The paper's plot shows the first ~3,000
// queries focused on the 200-300 degree band, a later shift to values
// around 100 degrees, and occasional whole-domain selections.

#include <algorithm>
#include <cstdio>

#include "common/str_util.h"

#include "bench_util.h"
#include "workload/sdss.h"

using namespace deepsea;

int main() {
  bench::Banner("Figure 2", "Evolution of selection ranges on SDSS (10000 queries)");
  SdssTraceModel model(SdssTraceModel::Config{}, 2017);
  const auto trace = model.GenerateTrace(10000);

  TablePrinter table(12);
  table.Header({"query", "range lo", "range hi", "midpoint"});
  for (size_t i = 0; i < trace.size(); i += 500) {
    table.Row({std::to_string(i + 1), StrFormat("%.1f", trace[i].lo),
               StrFormat("%.1f", trace[i].hi), StrFormat("%.1f", trace[i].Mid())});
  }

  // Phase statistics matching the paper's description.
  auto phase_mean = [&](size_t from, size_t to) {
    double acc = 0.0;
    for (size_t i = from; i < to; ++i) acc += trace[i].Mid();
    return acc / static_cast<double>(to - from);
  };
  int full_domain = 0;
  for (const Interval& iv : trace) {
    if (iv.Width() > 350.0) ++full_domain;
  }
  std::printf("\nmean midpoint queries 1-3000:    %.1f deg (paper: 200-300 band)\n",
              phase_mean(0, 3000));
  std::printf("mean midpoint queries 3001-10000: %.1f deg (paper: shift toward 100)\n",
              phase_mean(3000, 10000));
  std::printf("whole-domain selections: %d (paper: vertical line near query 1000)\n",
              full_domain);
  return 0;
}
