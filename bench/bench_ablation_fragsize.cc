// Ablation: fragment size bounding (Section 9, "Bounding Fragment
// Size"). When early queries touch only a narrow hot range, unbounded
// creation leaves one huge cold fragment; if the workload later moves
// into that cold region, queries over-read until repartitioning catches
// up. The phi bound splits oversized fragments at creation time.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

using namespace deepsea;

int main() {
  bench::Banner("Ablation", "Fragment size bounding (phi), 100GB");
  ExperimentRunner runner(bench::Dataset(100.0, /*sdss_distribution=*/false));

  // Phase 1: narrow hot range; phase 2: jump into the formerly cold area.
  std::vector<WorkloadQuery> workload;
  {
    RangeGenerator::Config cfg;
    cfg.domain = bench::ItemSkDomain();
    cfg.selectivity_fraction = 0.01;
    cfg.skew = Skew::kHeavy;
    cfg.center = 30000.0;
    RangeGenerator phase1(cfg, 61);
    auto first = bench::TemplateWorkload("Q30", 8, &phase1);
    cfg.center = 280000.0;
    RangeGenerator phase2(cfg, 62);
    auto second = bench::TemplateWorkload("Q30", 12, &phase2);
    workload = first;
    workload.insert(workload.end(), second.begin(), second.end());
  }

  TablePrinter table;
  table.Header({"phi", "total (s)", "phase2 (s)", "frags"});
  for (double phi : {0.0, 0.25, 0.10}) {
    StrategySpec spec = bench::DeepSea();
    spec.label = phi <= 0.0 ? "unbounded" : StrFormat("phi=%.2f", phi);
    spec.options.max_fragment_fraction = phi;
    spec.options.benefit_cost_threshold = 0.0;
    auto result = runner.Run(spec, workload);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const double phase2 = result->CumulativeAt(20) - result->CumulativeAt(8);
    table.Row({result->label, FmtSeconds(result->total_seconds),
               FmtSeconds(phase2),
               std::to_string(result->totals.fragments_created)});
  }
  std::printf(
      "\nExpected: bounding phi reduces phase-2 over-reads of the cold"
      "\nfragment at a modest extra creation cost.\n");
  return 0;
}
