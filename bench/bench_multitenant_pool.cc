// Multi-tenant pool bench: is one shared pool of S_max better than
// partitioning the same budget into k private pools of S_max/k? The
// paper's pool is workload-aware (Phi ranks views by decayed benefit
// per byte), so a shared pool can shift capacity toward whichever
// tenant currently earns it — static partitioning cannot. The effect
// is largest on skewed tenant mixes: the hot tenant's views starve in
// a S_max/k slice while the cold tenants' slices sit half empty.
//
// Usage:
//   bench_multitenant_pool [--smoke] [--csv=PATH]
// --smoke runs a CI-sized workload (same shape, 10x fewer queries);
// --csv writes the per-query telemetry rows (QueryTrace schema) to
// PATH instead of stdout.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/shared_pool.h"
#include "exp/trace.h"

using namespace deepsea;

namespace {

constexpr double kSMaxBytes = 12e9;

struct TenantSpec {
  std::string name;
  uint64_t seed;
  int queries;
};

struct TenantOutcome {
  int queries = 0;
  double total_seconds = 0.0;
  double base_seconds = 0.0;
};

/// Deterministic interleaving of the tenants' streams: the tenant query
/// counts are laid out round-robin and shuffled with a fixed seed, so
/// both variants process the same global order.
std::vector<int> MakeSchedule(const std::vector<TenantSpec>& tenants) {
  std::vector<int> schedule;
  std::vector<int> remaining;
  for (const TenantSpec& t : tenants) remaining.push_back(t.queries);
  bool any = true;
  while (any) {
    any = false;
    for (size_t t = 0; t < remaining.size(); ++t) {
      if (remaining[t] <= 0) continue;
      schedule.push_back(static_cast<int>(t));
      --remaining[t];
      any = true;
    }
  }
  Rng rng(99);
  for (size_t i = schedule.size(); i > 1; --i) {
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(schedule[i - 1], schedule[j]);
  }
  return schedule;
}

/// Runs the interleaved workload with every tenant attached to ONE
/// shared pool of `pool_bytes` (shared=true) or each tenant on a
/// private engine limited to `pool_bytes / k` (shared=false). Returns
/// per-tenant totals; per-query rows land in `trace` under
/// "<variant>/<tenant>" labels.
std::vector<TenantOutcome> RunVariant(
    bool shared, const std::vector<TenantSpec>& tenants,
    const std::vector<std::vector<WorkloadQuery>>& workloads,
    const std::vector<int>& schedule, double pool_bytes, QueryTrace* trace) {
  const std::string variant = shared ? "shared" : "split";
  EngineOptions options = bench::DeepSea().options;
  options.pool_limit_bytes =
      shared ? pool_bytes : pool_bytes / static_cast<double>(tenants.size());

  // The shared variant needs one catalog for all tenants (they see each
  // other's registered view tables); private engines each get their own
  // catalog, exactly as ExperimentRunner isolates strategies.
  std::vector<std::unique_ptr<Catalog>> catalogs;
  std::unique_ptr<SharedPool> pool;
  std::vector<std::unique_ptr<DeepSeaEngine>> engines;
  std::vector<std::unique_ptr<TraceObserver>> observers;
  const auto data = bench::Dataset(100.0, /*sdss_distribution=*/true);
  if (shared) {
    catalogs.push_back(std::make_unique<Catalog>());
    if (!BigBenchDataset::Generate(data, catalogs.back().get()).ok()) return {};
    pool = std::make_unique<SharedPool>(catalogs.back().get(), options);
  }
  for (const TenantSpec& t : tenants) {
    if (shared) {
      engines.push_back(std::make_unique<DeepSeaEngine>(catalogs.back().get(),
                                                        pool.get(), t.name));
    } else {
      catalogs.push_back(std::make_unique<Catalog>());
      if (!BigBenchDataset::Generate(data, catalogs.back().get()).ok()) {
        return {};
      }
      engines.push_back(
          std::make_unique<DeepSeaEngine>(catalogs.back().get(), options));
    }
    observers.push_back(
        std::make_unique<TraceObserver>(variant + "/" + t.name, trace));
    engines.back()->set_observer(observers.back().get());
  }

  std::vector<TenantOutcome> out(tenants.size());
  std::vector<size_t> next(tenants.size(), 0);
  for (int who : schedule) {
    const size_t t = static_cast<size_t>(who);
    const WorkloadQuery& q = workloads[t][next[t]++];
    auto plan = BigBenchTemplates::Build(q.template_name, q.range.lo, q.range.hi);
    if (!plan.ok()) continue;
    auto report = engines[t]->ProcessQuery(*plan);
    if (!report.ok()) {
      std::fprintf(stderr, "%s/%s query failed: %s\n", variant.c_str(),
                   tenants[t].name.c_str(),
                   report.status().ToString().c_str());
      continue;
    }
    ++out[t].queries;
    out[t].total_seconds += report->total_seconds;
    out[t].base_seconds += report->base_seconds;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--csv=", 6) == 0) csv_path = argv[i] + 6;
  }

  const int scale = smoke ? 1 : 10;
  // Skewed mix: one hot tenant issues 60% of the traffic.
  const std::vector<TenantSpec> tenants = {
      {"hot", 2017, 60 * scale},
      {"warm", 4034, 20 * scale},
      {"cold", 6051, 20 * scale},
  };
  bench::Banner("Multi-tenant pool",
                smoke ? "shared S_max vs k pools of S_max/k (smoke)"
                      : "shared S_max vs k pools of S_max/k, 100GB");

  std::vector<std::vector<WorkloadQuery>> workloads;
  for (const TenantSpec& t : tenants) {
    workloads.push_back(bench::SdssWorkload(t.queries, t.seed));
  }
  const std::vector<int> schedule = MakeSchedule(tenants);

  QueryTrace trace;
  const auto shared = RunVariant(true, tenants, workloads, schedule,
                                 kSMaxBytes, &trace);
  const auto split = RunVariant(false, tenants, workloads, schedule,
                                kSMaxBytes, &trace);
  if (shared.size() != tenants.size() || split.size() != tenants.size()) {
    std::fprintf(stderr, "variant run failed\n");
    return 1;
  }

  TablePrinter table;
  table.Header({"tenant", "queries", "shared (s)", "split (s)", "base (s)",
                "shared/split"});
  double shared_total = 0.0, split_total = 0.0, base_total = 0.0;
  for (size_t t = 0; t < tenants.size(); ++t) {
    shared_total += shared[t].total_seconds;
    split_total += split[t].total_seconds;
    base_total += shared[t].base_seconds;
    table.Row({tenants[t].name, std::to_string(shared[t].queries),
               FmtSeconds(shared[t].total_seconds),
               FmtSeconds(split[t].total_seconds),
               FmtSeconds(shared[t].base_seconds),
               FmtRatio(split[t].total_seconds > 0.0
                            ? shared[t].total_seconds / split[t].total_seconds
                            : 0.0)});
  }
  table.Row({"ALL", "-", FmtSeconds(shared_total), FmtSeconds(split_total),
             FmtSeconds(base_total),
             FmtRatio(split_total > 0.0 ? shared_total / split_total : 0.0)});
  std::printf(
      "\nExpected: the workload-aware shared pool tracks the skew (the hot"
      "\ntenant gets most of S_max), beating the static S_max/k slices on"
      "\naggregate cost.\n\n");

  if (csv_path.empty()) {
    std::printf("%s", trace.ToCsv().c_str());
  } else {
    Status w = trace.WriteCsv(csv_path);
    if (!w.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n", w.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu telemetry rows to %s\n", trace.size(),
                csv_path.c_str());
  }
  return 0;
}
