// Reproduces Figure 6: adaptive (DeepSea) vs equi-depth partitioning
// over 10 instances of query template Q30 (small selectivity, heavy
// skew) on the 100 GB instance, with unbounded fragment size:
//   (a) cost of the instrumented first query materializing the view,
//   (b) average time of the rewritten queries Q30_2..Q30_10,
//   (c) cumulative time over the whole sequence,
// plus the Section 10.2 cluster-utilization observation (equi-depth
// issues 40-50% more map tasks than DeepSea for the reuse queries).
//
// Paper result: creation cost grows with fragment count (E-60 highest);
// E-6 reuse is slower than DS (bigger fragments must be read); E-60
// reuse is worse than E-30 (small-files penalty); DS has the lowest
// cumulative time.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

using namespace deepsea;

int main() {
  bench::Banner("Figure 6", "Equi-depth vs adaptive partitioning, Q30 x10, 100GB");
  RangeGenerator gen(bench::ItemSkDomain(), Selectivity::kSmall, Skew::kHeavy,
                     /*seed=*/42);
  const auto workload = bench::TemplateWorkload("Q30", 10, &gen);
  ExperimentRunner runner(bench::Dataset(100.0, /*sdss_distribution=*/false));

  std::vector<StrategySpec> specs = {bench::DeepSea(), bench::EquiDepth(6),
                                     bench::EquiDepth(15), bench::EquiDepth(30),
                                     bench::EquiDepth(60)};
  for (StrategySpec& spec : specs) {
    // Fig. 6 setup: "we do not bound the size of the largest fragment"
    // (the block-size lower bound stays active, Section 9).
    spec.options.max_fragment_fraction = 0.0;
    spec.options.benefit_cost_threshold = 0.0;  // materialize on Q30_1
  }

  TablePrinter table;
  table.Header({"strategy", "Q30_1 (s)", "avg 2..10 (s)", "cumulative (s)",
                "map tasks", "frags"});
  double ds_tasks = 0.0;
  for (const StrategySpec& spec : specs) {
    auto result = runner.Run(spec, workload);
    if (!result.ok()) {
      std::printf("run %s failed: %s\n", spec.label.c_str(),
                  result.status().ToString().c_str());
      return 1;
    }
    double reuse_total = 0.0;
    for (size_t i = 1; i < result->per_query_seconds.size(); ++i) {
      reuse_total += result->per_query_seconds[i];
    }
    const double avg_reuse = reuse_total / 9.0;
    // Map tasks of the reuse queries: subtract the first query's share
    // by re-deriving from totals (the first query dominates creation
    // but we report the workload total; relative comparison is what
    // matters for the 10.2 observation).
    const double tasks = static_cast<double>(result->totals.map_tasks);
    if (spec.label == "DS") ds_tasks = tasks;
    table.Row({result->label, FmtSeconds(result->per_query_seconds[0]),
               FmtSeconds(avg_reuse), FmtSeconds(result->total_seconds),
               StrFormat("%.0f (%.2fx DS)", tasks,
                         tasks / std::max(ds_tasks, 1.0)),
               std::to_string(result->totals.fragments_created)});
  }
  std::printf(
      "\nPaper: creation cost rises with fragment count; DS reuse fastest;"
      "\nE-60 reuse worse than E-30 (small files); equi-depth issues 40-50%%"
      " more map tasks than DS.\n");
  return 0;
}
