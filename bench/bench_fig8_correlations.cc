// Reproduces Figure 8: exploitation of fragment correlations.
//   (a) Workload of 10 Q30 queries with big selectivity + heavy skew
//       followed by 40 small heavy-skew queries scattered around the
//       hot centre, 500 GB instance, tight pool: DeepSea's MLE
//       smoothing keeps fragments that neighbor hot fragments, beating
//       Nectar's hit-count-only selection which evicts and re-creates.
//   (b) Selection ranges whose midpoints follow a Zipf distribution
//       (radically non-Normal): DeepSea must not do worse than Nectar.
// An extra "DS-noMLE" series isolates the smoothing (ablation).
//
// Paper result: DS << N under Normal-like hits; DS ~= N (not worse)
// under Zipf.

#include <cstdio>

#include "bench_util.h"
#include "common/math_util.h"
#include "common/str_util.h"

using namespace deepsea;

namespace {

StrategySpec DeepSeaNoMle() {
  StrategySpec s = deepsea::bench::DeepSea();
  s.label = "DS-noMLE";
  s.options.use_mle_smoothing = false;
  return s;
}

}  // namespace

int main() {
  bench::Banner("Figure 8", "Fragment correlations: Normal (8a) and Zipf (8b)");
  ExperimentRunner runner(bench::Dataset(500.0, /*sdss_distribution=*/false));

  // ---- 8a: big+small heavy-skew sequence, tight pool ----
  // The pool is sized so the jittering small queries' hot fragments do
  // not all fit: eviction decisions differentiate the strategies (the
  // paper's point: Nectar evicts low-hit neighbors of hot fragments and
  // pays re-creation; DeepSea's smoothing keeps them).
  std::printf("\n[8a] 10 big + 50 small heavy-skew Q30 queries, pool 4GB\n");
  std::vector<WorkloadQuery> workload_a;
  {
    RangeGenerator big(bench::ItemSkDomain(), Selectivity::kBig, Skew::kHeavy, 7);
    // Small queries scatter around the hot centre widely enough (sigma
    // ~2% of the domain) that their fragments cannot all stay resident:
    // the strategies must choose which neighbors of the hot spot to
    // keep — the decision the probabilistic model improves.
    RangeGenerator::Config small_cfg;
    small_cfg.domain = bench::ItemSkDomain();
    small_cfg.selectivity_fraction = 0.01;
    small_cfg.skew = Skew::kHeavy;
    RangeGenerator small(small_cfg, 8);
    auto first = bench::TemplateWorkload("Q30", 10, &big);
    workload_a = first;
    Rng spread(99);
    for (int i = 0; i < 50; ++i) {
      Interval r = small.Next();
      const double offset = spread.Gaussian(0.0, 8000.0);
      workload_a.push_back(
          {"Q30", Interval(Clamp(r.lo + offset, 0.0, 396000.0),
                           Clamp(r.hi + offset, 4000.0, 400000.0))});
    }
  }
  TablePrinter table;
  table.Header({"strategy", "cumulative (s)", "evictions", "from views"});
  for (StrategySpec spec : {bench::Nectar(), DeepSeaNoMle(), bench::DeepSea()}) {
    spec.options.pool_limit_bytes = 4e9;
    spec.options.benefit_cost_threshold = 0.0;
    auto result = runner.Run(spec, workload_a);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    table.Row({result->label, FmtSeconds(result->total_seconds),
               std::to_string(result->totals.fragments_evicted),
               std::to_string(result->totals.queries_answered_from_views)});
  }

  // ---- 8b: Zipf-distributed selections, pool sweep ----
  std::printf("\n[8b] Zipf-distributed selection midpoints, N vs DS\n");
  TablePrinter tb;
  tb.Header({"pool (GB)", "N (s)", "DS (s)", "DS/N"});
  for (double pool_gb : {4.0, 8.0, 25.0}) {
    ZipfRangeGenerator zipf(bench::ItemSkDomain(), 0.01, /*buckets=*/64,
                            /*exponent=*/1.3, /*seed=*/11);
    std::vector<WorkloadQuery> workload_b;
    for (int i = 0; i < 40; ++i) workload_b.push_back({"Q30", zipf.Next()});
    std::vector<double> totals;
    for (StrategySpec spec : {bench::Nectar(), bench::DeepSea()}) {
      spec.options.pool_limit_bytes = pool_gb * 1e9;
      spec.options.benefit_cost_threshold = 0.0;
      auto result = runner.Run(spec, workload_b);
      if (!result.ok()) {
        std::printf("run failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      totals.push_back(result->total_seconds);
    }
    tb.Row({StrFormat("%.0f", pool_gb), FmtSeconds(totals[0]),
            FmtSeconds(totals[1]), FmtRatio(totals[1] / totals[0])});
  }
  std::printf(
      "\nPaper: DS significantly beats N when hits are Normal-like (8a); DS"
      "\nis not worse than N under Zipf (8b).\n");
  return 0;
}
