// Reproduces Figure 1: histogram of selection ranges on SDSS attribute
// `ra` of PhotoPrimary (hits per 30-degree bin over one year of
// queries). The paper's trace shows a dominant hot band between 200 and
// 300 degrees, a secondary hot spot near 100 degrees, and long cold
// tails; our synthetic trace model reproduces those properties (the
// real trace is not redistributable — see DESIGN.md).

#include <algorithm>
#include <cstdio>

#include "common/str_util.h"

#include "bench_util.h"
#include "workload/sdss.h"

using namespace deepsea;

int main() {
  bench::Banner("Figure 1", "Histogram of selection ranges on SDSS (10000 queries)");
  SdssTraceModel model(SdssTraceModel::Config{}, 2017);
  const auto trace = model.GenerateTrace(10000);
  const Interval domain(-20.0, 400.0);
  const auto hist = SdssTraceModel::HitHistogram(trace, domain, 30.0);

  TablePrinter table(12);
  table.Header({"ra bin", "hits", "bar"});
  double max_count = 1.0;
  for (int b = 0; b < hist.num_bins(); ++b) {
    max_count = std::max(max_count, hist.bin_count(b));
  }
  for (int b = 0; b < hist.num_bins(); ++b) {
    const Interval bi = hist.bin_interval(b);
    const int bar = static_cast<int>(40.0 * hist.bin_count(b) / max_count);
    table.Row({StrFormat("%.0f..%.0f", bi.lo, bi.hi),
               StrFormat("%.0f", hist.bin_count(b)), std::string(bar, '#')});
  }
  std::printf(
      "\nShape check (paper): hot band 200-300 deg >> cold tails; secondary"
      " spot near 100 deg.\n");
  const double hot = hist.MassInRange(Interval(220, 280));
  const double secondary = hist.MassInRange(Interval(90, 120));
  const double cold = hist.MassInRange(Interval(320, 400));
  std::printf("hot(220-280)=%.0f  secondary(90-120)=%.0f  cold(320-400)=%.0f\n",
              hot, secondary, cold);
  return 0;
}
