// Reproduces Figure 5a: total elapsed time of the SDSS-patterned
// BigBench workload (1000 queries, 500 GB instance, no pool limit)
// under vanilla Hive (H), materialization without partitioning (NP),
// and DeepSea (DS).
//
// Paper result: NP ~= 65.6% of H; DS ~= 64.2% of NP.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

using namespace deepsea;

int main() {
  bench::Banner("Figure 5a",
                "SDSS-patterned workload (1000 queries), 500GB, DS vs NP vs H");
  const auto workload = bench::SdssWorkload(1000, /*seed=*/2017);
  ExperimentRunner runner(bench::Dataset(500.0, /*sdss_distribution=*/true));

  TablePrinter table;
  table.Header({"strategy", "elapsed (s)", "% of H", "views", "frags", "from views"});
  double hive_total = 0.0;
  for (const StrategySpec& spec :
       {bench::Hive(), bench::NoPartition(), bench::DeepSea()}) {
    auto result = runner.Run(spec, workload);
    if (!result.ok()) {
      std::printf("run %s failed: %s\n", spec.label.c_str(),
                  result.status().ToString().c_str());
      return 1;
    }
    if (spec.label == "H") hive_total = result->total_seconds;
    table.Row({result->label, FmtSeconds(result->total_seconds),
               StrFormat("%.1f%%", 100.0 * result->total_seconds /
                                        std::max(hive_total, 1.0)),
               std::to_string(result->totals.views_created),
               std::to_string(result->totals.fragments_created),
               std::to_string(result->totals.queries_answered_from_views)});
  }
  std::printf("\nPaper: NP ~= 65.6%% of H, DS ~= 64.2%% of NP (~42%% of H).\n");
  return 0;
}
