// Reproduces Figure 5b: elapsed time of the SDSS-patterned workload
// under the Nectar (N), Nectar+ (N+), and DeepSea (DS) selection
// strategies as the materialized-view pool limit shrinks from 100% to
// 10% of the base-table size.
//
// Paper result: N+ consistently beats N, DS consistently beats N+; the
// gap is marginal at 100% pool and large at 10% (DS ~= 28% of N).

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

using namespace deepsea;

int main() {
  bench::Banner("Figure 5b",
                "Selection strategies vs pool size (% of base tables), 500GB");
  const auto workload = bench::SdssWorkload(1000, /*seed=*/2017);
  ExperimentRunner runner(bench::Dataset(500.0, /*sdss_distribution=*/true));
  auto base_bytes = runner.BaseTableBytes();
  if (!base_bytes.ok()) {
    std::printf("dataset failed: %s\n", base_bytes.status().ToString().c_str());
    return 1;
  }

  TablePrinter table;
  table.Header({"pool size", "N (s)", "N+ (s)", "DS (s)", "DS/N"});
  for (double fraction : {0.10, 0.25, 0.50, 1.00}) {
    std::vector<double> row_totals;
    for (StrategySpec spec :
         {bench::Nectar(), bench::NectarPlus(), bench::DeepSea()}) {
      spec.options.pool_limit_bytes = fraction * (*base_bytes);
      auto result = runner.Run(spec, workload);
      if (!result.ok()) {
        std::printf("run %s failed: %s\n", spec.label.c_str(),
                    result.status().ToString().c_str());
        return 1;
      }
      row_totals.push_back(result->total_seconds);
    }
    table.Row({StrFormat("%.0f%%", fraction * 100.0), FmtSeconds(row_totals[0]),
               FmtSeconds(row_totals[1]), FmtSeconds(row_totals[2]),
               FmtRatio(row_totals[2] / std::max(row_totals[0], 1.0))});
  }
  std::printf(
      "\nPaper: DS < N+ < N everywhere; marginal at 100%% pool, DS ~= 0.28x N"
      " at 10%% pool.\n");
  return 0;
}
