#ifndef DEEPSEA_BENCH_BENCH_UTIL_H_
#define DEEPSEA_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction harnesses. Each bench
// binary regenerates one table/figure of the paper's evaluation
// (Section 10); see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.

#include <cstdio>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "workload/range_generator.h"
#include "workload/sdss.h"

namespace deepsea {
namespace bench {

/// The item_sk domain used throughout ([0, 400000], the domain quoted
/// in Section 10.4).
inline Interval ItemSkDomain() { return Interval(0.0, 400000.0); }

/// Engine options for a named baseline strategy, mirroring the paper's
/// experiment setups: eager materialization (the controlled sequences
/// materialize on the first query) and fragment-size bounding off
/// unless stated otherwise.
inline EngineOptions BaseOptions() {
  EngineOptions o;
  o.benefit_cost_threshold = 0.02;
  o.enforce_block_lower_bound = true;
  // Fragment-size bounding is the paper's default (Section 9); Fig. 6
  // explicitly disables the upper bound and overrides this.
  o.max_fragment_fraction = 0.1;
  return o;
}

inline StrategySpec Hive() {
  StrategySpec s{"H", BaseOptions()};
  s.options.strategy = StrategyKind::kHive;
  return s;
}

inline StrategySpec NoPartition() {
  StrategySpec s{"NP", BaseOptions()};
  s.options.strategy = StrategyKind::kNoPartition;
  return s;
}

inline StrategySpec EquiDepth(int k) {
  StrategySpec s{"E-" + std::to_string(k), BaseOptions()};
  s.options.strategy = StrategyKind::kEquiDepth;
  s.options.equi_depth_fragments = k;
  return s;
}

inline StrategySpec NoRefine() {
  StrategySpec s{"NR", BaseOptions()};
  s.options.strategy = StrategyKind::kNoRefine;
  return s;
}

inline StrategySpec DeepSea() {
  StrategySpec s{"DS", BaseOptions()};
  s.options.strategy = StrategyKind::kDeepSea;
  return s;
}

/// DeepSea partitioning with the Nectar / Nectar+ selection models
/// (Section 10.1 compares selection strategies on equal partitioning).
inline StrategySpec Nectar() {
  StrategySpec s{"N", BaseOptions()};
  s.options.value_model = ValueModel::kNectar;
  s.options.use_mle_smoothing = false;
  return s;
}

inline StrategySpec NectarPlus() {
  StrategySpec s{"N+", BaseOptions()};
  s.options.value_model = ValueModel::kNectarPlus;
  s.options.use_mle_smoothing = false;
  return s;
}

/// Workload of `n` instances of one template with ranges drawn from a
/// RangeGenerator.
inline std::vector<WorkloadQuery> TemplateWorkload(const std::string& tmpl,
                                                   int n, RangeGenerator* gen) {
  std::vector<WorkloadQuery> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back({tmpl, gen->Next()});
  return out;
}

/// The Section 10.1 workload: SDSS selection ranges mapped onto
/// item_sk, applied to randomly chosen join templates.
inline std::vector<WorkloadQuery> SdssWorkload(int n, uint64_t seed) {
  SdssTraceModel sdss(SdssTraceModel::Config{}, seed);
  const auto trace = sdss.GenerateTrace(n);
  const Interval ra(-20.0, 400.0);
  Rng rng(seed + 1);
  const auto names = BigBenchTemplates::Names();
  std::vector<WorkloadQuery> out;
  out.reserve(trace.size());
  for (const Interval& r : trace) {
    const std::string& name =
        names[static_cast<size_t>(rng.UniformInt(0, names.size() - 1))];
    out.push_back({name, SdssTraceModel::MapRange(r, ra, ItemSkDomain())});
  }
  return out;
}

/// Dataset options for the paper's instance sizes. The SDSS-patterned
/// experiments sample item_sk from the SDSS access density (the paper
/// samples from the real SDSS ra histogram); synthetic experiments use
/// the uniform default.
inline BigBenchDataset::Options Dataset(double gigabytes, bool sdss_distribution,
                                        uint64_t seed = 7) {
  BigBenchDataset::Options o;
  o.total_bytes = gigabytes * 1e9;
  o.sample_rows_per_fact = 256;  // physical sample irrelevant to cost runs
  o.sample_rows_per_dim = 64;
  o.seed = seed;
  if (sdss_distribution) {
    SdssTraceModel sdss(SdssTraceModel::Config{}, 2017);
    o.item_sk_distribution = sdss.AccessDensity(420);
  }
  return o;
}

inline void Banner(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s - %s\n", figure, description);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace deepsea

#endif  // DEEPSEA_BENCH_BENCH_UTIL_H_
