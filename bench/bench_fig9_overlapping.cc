// Reproduces Figure 9: overlapping vs horizontal partitioning over a
// workload of 30 Q30 queries (small selectivity, heavy skew) whose
// selection midpoints jump from 20,000 (Q30_1..10) to 40,000
// (Q30_11..20) to 60,000 (Q30_21..30) over the item_sk domain
// [0, 400000] — the regime-shift pattern observed in SDSS.
//
// Paper result: overlapping partitioning is more robust to the shifts
// because it avoids rewriting the large fragment that extends from the
// current selection bound to the end of the (unqueried) domain.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

using namespace deepsea;

int main() {
  bench::Banner("Figure 9",
                "Horizontal vs overlapping partitioning (Q30_1..Q30_30), 100GB");
  ExperimentRunner runner(bench::Dataset(100.0, /*sdss_distribution=*/false));

  std::vector<WorkloadQuery> workload;
  for (double center : {20000.0, 40000.0, 60000.0}) {
    RangeGenerator::Config cfg;
    cfg.domain = bench::ItemSkDomain();
    cfg.selectivity_fraction = 0.01;
    cfg.skew = Skew::kHeavy;
    cfg.center = center;
    RangeGenerator gen(cfg, /*seed=*/static_cast<uint64_t>(center));
    auto part = bench::TemplateWorkload("Q30", 10, &gen);
    workload.insert(workload.end(), part.begin(), part.end());
  }

  StrategySpec horizontal = bench::DeepSea();
  horizontal.label = "Horizontal";
  horizontal.options.overlapping_fragments = false;
  horizontal.options.benefit_cost_threshold = 0.0;
  // The experiment studies the cost of splitting the large fragment
  // that runs to the end of the yet-unqueried domain; the phi bound
  // would pre-split it and mask the effect.
  horizontal.options.max_fragment_fraction = 0.0;
  StrategySpec overlapping = bench::DeepSea();
  overlapping.label = "Overlapping";
  overlapping.options.overlapping_fragments = true;
  overlapping.options.benefit_cost_threshold = 0.0;
  overlapping.options.max_fragment_fraction = 0.0;

  TablePrinter table;
  table.Header({"strategy", "cum @Q10 (s)", "cum @Q20 (s)", "cum @Q30 (s)",
                "frags", "bytes written"});
  std::vector<double> totals;
  for (const StrategySpec& spec : {horizontal, overlapping}) {
    auto result = runner.Run(spec, workload);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    totals.push_back(result->total_seconds);
    table.Row({result->label, FmtSeconds(result->CumulativeAt(10)),
               FmtSeconds(result->CumulativeAt(20)),
               FmtSeconds(result->CumulativeAt(30)),
               std::to_string(result->totals.fragments_created),
               StrFormat("%.1f GB", result->totals.fragments_created >= 0
                                        ? result->final_pool_bytes / 1e9
                                        : 0.0)});
  }
  std::printf("\nOverlapping/Horizontal cumulative ratio: %.2f\n",
              totals[1] / std::max(totals[0], 1.0));
  std::printf(
      "Paper: overlapping partitioning accumulates less time after the"
      " midpoint shifts at Q30_11 and Q30_21.\n");
  return 0;
}
