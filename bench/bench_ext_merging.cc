// Extension bench: fragment merging (paper Section 11, "merge
// consecutive fragments that are mostly accessed together"). A
// workload of queries spanning the same pair of adjacent ranges leaves
// co-accessed fragments; merging them reduces cover sizes, map-task
// counts and per-file overheads for the rest of the workload.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

using namespace deepsea;

int main() {
  bench::Banner("Extension", "Fragment merging (Section 11 future work), 100GB");
  ExperimentRunner runner(bench::Dataset(100.0, /*sdss_distribution=*/false));

  // Phase 1 creates a fragment for [100000, 140000]; phase 2 widens to
  // [100000, 180000], adding a refinement fragment next to it. From
  // then on every query reads BOTH fragments (co-access ~1): exactly
  // the "consecutive fragments mostly accessed together" the merge
  // extension targets.
  std::vector<WorkloadQuery> workload;
  for (int i = 0; i < 15; ++i) {
    workload.push_back({"Q30", Interval(100000, 140000)});
  }
  for (int i = 0; i < 45; ++i) {
    workload.push_back({"Q30", Interval(100000, 180000)});
  }

  TablePrinter table;
  table.Header({"variant", "total (s)", "map tasks", "merges", "frags"});
  for (bool merging : {false, true}) {
    StrategySpec spec = bench::DeepSea();
    spec.label = merging ? "DS + merging" : "DS";
    spec.options.benefit_cost_threshold = 0.02;
    spec.options.merge.enabled = merging;
    spec.options.merge.min_co_access = 0.75;
    spec.options.merge.max_merged_fraction = 0.6;
    spec.options.merge.min_hits = 4;
    auto result = runner.Run(spec, workload);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    table.Row({result->label, FmtSeconds(result->total_seconds),
               std::to_string(result->totals.map_tasks),
               std::to_string(result->totals.fragments_merged),
               std::to_string(result->totals.fragments_created)});
  }
  std::printf(
      "\nExpected: merging consolidates the co-accessed pair; the merged"
      "\nlayout reads fewer files (fewer map tasks) for the same answers.\n");
  return 0;
}
