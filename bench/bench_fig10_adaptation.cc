// Reproduces Figure 10: adaptation to workload changes. 200 instances
// of template Q5 (big selectivity, heavy skew) on the 100 GB instance;
// the selection-midpoint distribution switches at query 101.
//   (a) cumulative elapsed time under NP, E-5, NR (DeepSea without
//       repartitioning) and DS,
//   (b) the ratio DS / NR of cumulative time over queries 101..200:
//       DS pays repartitioning cost first (ratio > 1), then amortizes
//       it (ratio falls below 1).
//
// Paper result: DS beats NR by ~7% and E-5 by ~27% on the changing
// workload; the DS/NR ratio exceeds 1 for roughly 30 queries after the
// shift, then drops below 1.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

using namespace deepsea;

int main() {
  bench::Banner("Figure 10", "Adaptation to workload changes, Q5 x200, 100GB");
  ExperimentRunner runner(bench::Dataset(100.0, /*sdss_distribution=*/false));

  std::vector<WorkloadQuery> workload;
  {
    RangeGenerator::Config cfg;
    cfg.domain = bench::ItemSkDomain();
    cfg.selectivity_fraction = SelectivityFraction(Selectivity::kBig);
    cfg.skew = Skew::kHeavy;
    cfg.center = 100000.0;
    RangeGenerator phase1(cfg, /*seed=*/51);
    auto first = bench::TemplateWorkload("Q5", 100, &phase1);
    cfg.center = 300000.0;
    RangeGenerator phase2(cfg, /*seed=*/52);
    auto second = bench::TemplateWorkload("Q5", 100, &phase2);
    workload = first;
    workload.insert(workload.end(), second.begin(), second.end());
  }

  std::vector<StrategySpec> specs = {bench::NoPartition(), bench::EquiDepth(5),
                                     bench::NoRefine(), bench::DeepSea()};
  for (StrategySpec& spec : specs) {
    spec.options.benefit_cost_threshold = 0.0;
    // Fig. 10 relies on progressive repartitioning to fix the initial
    // layout after the shift; fragment-size bounding would mask the
    // giant-cold-fragment problem the experiment studies.
    spec.options.max_fragment_fraction = 0.0;
  }

  TablePrinter table;
  table.Header({"strategy", "cum 101..200 (s)", "total (s)", "frags"});
  RunResult nr_result, ds_result;
  for (const StrategySpec& spec : specs) {
    auto result = runner.Run(spec, workload);
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const double tail = result->CumulativeAt(200) - result->CumulativeAt(100);
    table.Row({result->label, FmtSeconds(tail),
               FmtSeconds(result->total_seconds),
               std::to_string(result->totals.fragments_created)});
    if (result->label == "NR") nr_result = *result;
    if (result->label == "DS") ds_result = *result;
  }

  std::printf("\n[10b] cumulative-time ratio DS/NR from query 101\n");
  TablePrinter ratio_table(12);
  ratio_table.Header({"at query", "DS/NR"});
  for (size_t q : {110, 120, 130, 140, 160, 180, 200}) {
    const double nr = nr_result.CumulativeAt(q) - nr_result.CumulativeAt(100);
    const double ds = ds_result.CumulativeAt(q) - ds_result.CumulativeAt(100);
    ratio_table.Row({std::to_string(q), FmtRatio(ds / std::max(nr, 1.0))});
  }
  std::printf(
      "\nPaper: DS beats NR by ~7%% and E-5 by ~27%% overall; DS/NR > 1 for"
      "\n~30 queries after the shift (repartitioning cost), then < 1.\n");
  return 0;
}
