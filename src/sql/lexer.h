#ifndef DEEPSEA_SQL_LEXER_H_
#define DEEPSEA_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace deepsea {

/// Token kinds of the small SQL dialect (see sql/parser.h for the
/// grammar). Keywords are case-insensitive.
enum class TokenKind {
  kIdentifier,   // store_sales, item_sk  (dotted names are composed by
                 // the parser from identifier '.' identifier)
  kNumber,       // 123, 4.5, .5, 1e9
  kString,       // 'abc'
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kEq,           // =
  kNe,           // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
  // Keywords.
  kSelect,
  kFrom,
  kJoin,
  kOn,
  kWhere,
  kGroup,
  kBy,
  kAs,
  kAnd,
  kOr,
  kNot,
  kBetween,
  kOrder,
  kLimit,
  kAsc,
  kDesc,
  kEnd,          // end of input
};

const char* TokenKindName(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< raw text (identifier/string contents, number)
  double number = 0.0;  ///< parsed value for kNumber
  size_t position = 0;  ///< byte offset in the input (for error messages)
};

/// Tokenizes `sql`. Fails with InvalidArgument on unknown characters or
/// unterminated strings; the error message carries the byte offset.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace deepsea

#endif  // DEEPSEA_SQL_LEXER_H_
