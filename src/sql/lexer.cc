#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "common/str_util.h"

namespace deepsea {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kJoin:
      return "JOIN";
    case TokenKind::kOn:
      return "ON";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kGroup:
      return "GROUP";
    case TokenKind::kBy:
      return "BY";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kOr:
      return "OR";
    case TokenKind::kNot:
      return "NOT";
    case TokenKind::kBetween:
      return "BETWEEN";
    case TokenKind::kOrder:
      return "ORDER";
    case TokenKind::kLimit:
      return "LIMIT";
    case TokenKind::kAsc:
      return "ASC";
    case TokenKind::kDesc:
      return "DESC";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

const std::map<std::string, TokenKind>& Keywords() {
  static const auto* kKeywords = new std::map<std::string, TokenKind>{
      {"select", TokenKind::kSelect}, {"from", TokenKind::kFrom},
      {"join", TokenKind::kJoin},     {"on", TokenKind::kOn},
      {"where", TokenKind::kWhere},   {"group", TokenKind::kGroup},
      {"by", TokenKind::kBy},         {"as", TokenKind::kAs},
      {"and", TokenKind::kAnd},       {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},       {"between", TokenKind::kBetween},
      {"order", TokenKind::kOrder},   {"limit", TokenKind::kLimit},
      {"asc", TokenKind::kAsc},       {"desc", TokenKind::kDesc},
      {"inner", TokenKind::kJoin},    // INNER JOIN tolerated: INNER is a
                                      // no-op prefix handled by the parser
  };
  return *kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  auto push = [&](TokenKind kind, std::string text, size_t pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.position = pos;
    out.push_back(std::move(t));
  };
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      const auto it = Keywords().find(Lower(word));
      if (it != Keywords().end()) {
        // "INNER" maps to kJoin but only as a prefix; drop it when the
        // next word is JOIN (parser never sees it).
        if (Lower(word) == "inner") {
          i = j;
          continue;
        }
        push(it->second, std::move(word), start);
      } else {
        push(TokenKind::kIdentifier, std::move(word), start);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      char* end = nullptr;
      const double value = std::strtod(sql.c_str() + i, &end);
      const size_t j = static_cast<size_t>(end - sql.c_str());
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = sql.substr(i, j - i);
      t.number = value;
      t.position = start;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      while (j < n && sql[j] != '\'') text += sql[j++];
      if (j >= n) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      push(TokenKind::kString, std::move(text), start);
      i = j + 1;
      continue;
    }
    auto two = [&](char second) { return i + 1 < n && sql[i + 1] == second; };
    switch (c) {
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, ".", start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        break;
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe, "!=", start);
          i += 2;
          break;
        }
        return Status::InvalidArgument(
            StrFormat("unexpected '!' at offset %zu", start));
      case '<':
        if (two('=')) {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else if (two('>')) {
          push(TokenKind::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        break;
      case '+':
        push(TokenKind::kPlus, "+", start);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, "-", start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, "/", start);
        ++i;
        break;
      case ';':
        ++i;  // trailing semicolons are tolerated
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  push(TokenKind::kEnd, "", n);
  return out;
}

}  // namespace deepsea
