#ifndef DEEPSEA_SQL_PARSER_H_
#define DEEPSEA_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "plan/plan.h"

namespace deepsea {

/// Parses a small SQL dialect into a DeepSea logical plan. Grammar:
///
///   query       := SELECT select_list
///                  FROM ident (JOIN ident ON expr)*
///                  (WHERE expr)? (GROUP BY column (',' column)*)?
///   select_list := '*' | select_item (',' select_item)*
///   select_item := expr (AS ident)?
///                | (COUNT '(' '*' ')' | SUM|MIN|MAX|AVG '(' column ')')
///                  AS ident
///   expr        := or-precedence expression over comparisons
///                  (=, !=, <>, <, <=, >, >=), BETWEEN ... AND ...,
///                  arithmetic (+,-,*,/), AND/OR/NOT, parentheses,
///                  numeric and 'string' literals, dotted columns
///
/// The produced plan is in *DeepSea form*: the WHERE predicate sits
/// ABOVE the join tree (so join/projection subqueries are view
/// candidates and the selection drives partition candidates); apply
/// PushDownSelections for the conventional plan. Joins are left-deep in
/// FROM order. When the select list contains aggregates, the remaining
/// select items must be the GROUP BY columns and the plan gains an
/// Aggregate root; otherwise a non-'*' select list becomes a Project.
///
/// The parser is purely syntactic — table/column existence is checked
/// later by OutputSchema / the executor against a Catalog.
Result<PlanPtr> ParseSql(const std::string& sql);

/// Parses a standalone scalar expression in the same dialect (used by
/// plan deserialization: Expr::ToString output is fully parenthesized
/// and round-trips through this parser, except boolean/NULL literals).
Result<ExprPtr> ParseSqlExpression(const std::string& expression);

}  // namespace deepsea

#endif  // DEEPSEA_SQL_PARSER_H_
