#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace deepsea {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::optional<AggFunc> AggFuncFromName(const std::string& name) {
  const std::string n = Lower(name);
  if (n == "count") return AggFunc::kCount;
  if (n == "sum") return AggFunc::kSum;
  if (n == "min") return AggFunc::kMin;
  if (n == "max") return AggFunc::kMax;
  if (n == "avg") return AggFunc::kAvg;
  return std::nullopt;
}

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PlanPtr> ParseQuery();

  /// Parses a standalone expression and requires end-of-input.
  Result<ExprPtr> ParseExpressionOnly() {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return e;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = std::min(pos_ + static_cast<size_t>(ahead),
                              tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::OK();
    return Status::InvalidArgument(
        StrFormat("expected %s but found %s ('%s') at offset %zu",
                  TokenKindName(kind), TokenKindName(Peek().kind),
                  Peek().text.c_str(), Peek().position));
  }

  /// identifier ('.' identifier)? as a dotted column/table name.
  Result<std::string> ParseDottedName();

  // Expression grammar, loosest binding first.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  struct SelectItem {
    // Either a plain expression...
    ExprPtr expr;
    // ...or an aggregate call.
    std::optional<AggFunc> agg;
    std::string agg_input;  // column, empty for COUNT(*)
    std::string name;       // output name (AS alias or derived)
  };
  Result<SelectItem> ParseSelectItem();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<std::string> Parser::ParseDottedName() {
  if (!Check(TokenKind::kIdentifier)) {
    return Status::InvalidArgument(
        StrFormat("expected identifier at offset %zu", Peek().position));
  }
  std::string name = Advance().text;
  if (Match(TokenKind::kDot)) {
    if (!Check(TokenKind::kIdentifier)) {
      return Status::InvalidArgument(
          StrFormat("expected identifier after '.' at offset %zu",
                    Peek().position));
    }
    name += "." + Advance().text;
  }
  return name;
}

Result<ExprPtr> Parser::ParseOr() {
  DEEPSEA_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Match(TokenKind::kOr)) {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Or(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  DEEPSEA_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Match(TokenKind::kAnd)) {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = And(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Match(TokenKind::kNot)) {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return Not(std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  DEEPSEA_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // BETWEEN a AND b desugars to (left >= a AND left <= b).
  if (Match(TokenKind::kBetween)) {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kAnd));
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    return And(Cmp(CompareOp::kGe, left, std::move(lo)),
               Cmp(CompareOp::kLe, left, std::move(hi)));
  }
  CompareOp op;
  switch (Peek().kind) {
    case TokenKind::kEq:
      op = CompareOp::kEq;
      break;
    case TokenKind::kNe:
      op = CompareOp::kNe;
      break;
    case TokenKind::kLt:
      op = CompareOp::kLt;
      break;
    case TokenKind::kLe:
      op = CompareOp::kLe;
      break;
    case TokenKind::kGt:
      op = CompareOp::kGt;
      break;
    case TokenKind::kGe:
      op = CompareOp::kGe;
      break;
    default:
      return left;  // no comparison
  }
  Advance();
  DEEPSEA_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
  return Cmp(op, std::move(left), std::move(right));
}

Result<ExprPtr> Parser::ParseAdditive() {
  DEEPSEA_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
    const ArithOp op =
        Advance().kind == TokenKind::kPlus ? ArithOp::kAdd : ArithOp::kSub;
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = Arith(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  DEEPSEA_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
    const ArithOp op =
        Advance().kind == TokenKind::kStar ? ArithOp::kMul : ArithOp::kDiv;
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
    left = Arith(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenKind::kMinus)) {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return Arith(ArithOp::kSub, LitD(0.0), std::move(operand));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  if (Check(TokenKind::kNumber)) {
    const Token& t = Advance();
    // Integral literals stay int64 for exact comparisons.
    if (t.text.find('.') == std::string::npos &&
        t.text.find('e') == std::string::npos &&
        t.text.find('E') == std::string::npos) {
      return LitI(static_cast<int64_t>(t.number));
    }
    return LitD(t.number);
  }
  if (Check(TokenKind::kString)) {
    return LitS(Advance().text);
  }
  if (Match(TokenKind::kLParen)) {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
    DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return inner;
  }
  if (Check(TokenKind::kIdentifier)) {
    DEEPSEA_ASSIGN_OR_RETURN(std::string name, ParseDottedName());
    return Col(std::move(name));
  }
  return Status::InvalidArgument(
      StrFormat("expected expression but found %s at offset %zu",
                TokenKindName(Peek().kind), Peek().position));
}

Result<Parser::SelectItem> Parser::ParseSelectItem() {
  SelectItem item;
  // Aggregate call: ident '(' ... ')'.
  if (Check(TokenKind::kIdentifier) && Peek(1).kind == TokenKind::kLParen) {
    const auto agg = AggFuncFromName(Peek().text);
    if (agg.has_value()) {
      const std::string fn_name = Advance().text;
      DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      item.agg = *agg;
      if (*agg == AggFunc::kCount && Match(TokenKind::kStar)) {
        item.agg_input.clear();
      } else {
        DEEPSEA_ASSIGN_OR_RETURN(item.agg_input, ParseDottedName());
      }
      DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      if (Match(TokenKind::kAs)) {
        if (!Check(TokenKind::kIdentifier)) {
          return Status::InvalidArgument("expected alias after AS");
        }
        item.name = Advance().text;
      } else {
        item.name = Lower(fn_name) + "_" +
                    (item.agg_input.empty() ? "all" : item.agg_input);
      }
      return item;
    }
  }
  DEEPSEA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (Match(TokenKind::kAs)) {
    if (!Check(TokenKind::kIdentifier)) {
      return Status::InvalidArgument("expected alias after AS");
    }
    item.name = Advance().text;
  } else if (item.expr->kind() == ExprKind::kColumnRef) {
    item.name = item.expr->column_name();
  } else {
    item.name = item.expr->ToString();
  }
  return item;
}

Result<PlanPtr> Parser::ParseQuery() {
  DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kSelect));

  // Select list (deferred until the FROM clause is known).
  bool select_star = false;
  std::vector<SelectItem> items;
  if (Match(TokenKind::kStar)) {
    select_star = true;
  } else {
    do {
      DEEPSEA_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      items.push_back(std::move(item));
    } while (Match(TokenKind::kComma));
  }

  // FROM + JOINs (left-deep in syntactic order).
  DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kFrom));
  DEEPSEA_ASSIGN_OR_RETURN(std::string first_table, ParseDottedName());
  PlanPtr plan = Scan(std::move(first_table));
  while (Match(TokenKind::kJoin)) {
    DEEPSEA_ASSIGN_OR_RETURN(std::string table, ParseDottedName());
    DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kOn));
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr condition, ParseExpr());
    plan = Join(std::move(plan), Scan(std::move(table)), std::move(condition));
  }

  // WHERE above the join tree (DeepSea form; see header).
  if (Match(TokenKind::kWhere)) {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr predicate, ParseExpr());
    plan = Select(std::move(plan), std::move(predicate));
  }

  // GROUP BY.
  std::vector<std::string> group_by;
  if (Match(TokenKind::kGroup)) {
    DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kBy));
    do {
      DEEPSEA_ASSIGN_OR_RETURN(std::string col, ParseDottedName());
      group_by.push_back(std::move(col));
    } while (Match(TokenKind::kComma));
  }

  // ORDER BY.
  std::vector<SortKey> order_by;
  if (Match(TokenKind::kOrder)) {
    DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kBy));
    do {
      SortKey key;
      DEEPSEA_ASSIGN_OR_RETURN(key.column, ParseDottedName());
      if (Match(TokenKind::kDesc)) {
        key.ascending = false;
      } else {
        (void)Match(TokenKind::kAsc);
      }
      order_by.push_back(std::move(key));
    } while (Match(TokenKind::kComma));
  }

  // LIMIT.
  std::optional<int64_t> limit;
  if (Match(TokenKind::kLimit)) {
    if (!Check(TokenKind::kNumber)) {
      return Status::InvalidArgument("expected number after LIMIT");
    }
    limit = static_cast<int64_t>(Advance().number);
  }

  DEEPSEA_RETURN_IF_ERROR(Expect(TokenKind::kEnd));

  const bool has_aggregates =
      std::any_of(items.begin(), items.end(),
                  [](const SelectItem& it) { return it.agg.has_value(); });
  if (has_aggregates) {
    if (select_star) {
      return Status::InvalidArgument("SELECT * cannot be combined with aggregates");
    }
    std::vector<AggregateSpec> aggs;
    for (const SelectItem& item : items) {
      if (item.agg.has_value()) {
        aggs.push_back({*item.agg, item.agg_input, item.name});
        continue;
      }
      // Non-aggregate select items must be GROUP BY columns.
      if (item.expr->kind() != ExprKind::kColumnRef ||
          std::find(group_by.begin(), group_by.end(),
                    item.expr->column_name()) == group_by.end()) {
        return Status::InvalidArgument(
            "non-aggregate select item '" + item.name +
            "' must be a GROUP BY column");
      }
    }
    plan = Aggregate(std::move(plan), std::move(group_by), std::move(aggs));
  } else {
    if (!group_by.empty()) {
      return Status::InvalidArgument("GROUP BY requires aggregate select items");
    }
    if (!select_star) {
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (SelectItem& item : items) {
        exprs.push_back(std::move(item.expr));
        names.push_back(std::move(item.name));
      }
      plan = Project(std::move(plan), std::move(exprs), std::move(names));
    }
  }
  if (!order_by.empty()) plan = Sort(std::move(plan), std::move(order_by));
  if (limit.has_value()) plan = Limit(std::move(plan), *limit);
  return plan;
}

}  // namespace

Result<PlanPtr> ParseSql(const std::string& sql) {
  DEEPSEA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ExprPtr> ParseSqlExpression(const std::string& expression) {
  DEEPSEA_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(expression));
  Parser parser(std::move(tokens));
  return parser.ParseExpressionOnly();
}

}  // namespace deepsea
