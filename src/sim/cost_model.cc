#include "sim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace deepsea {

namespace {

// "table.column" -> "table"; empty when unqualified.
std::string TableOfColumn(const std::string& column) {
  const size_t pos = column.rfind('.');
  return pos == std::string::npos ? std::string() : column.substr(0, pos);
}

}  // namespace

double PlanCostEstimator::RangeFraction(const std::string& column,
                                        const Interval& iv) const {
  const std::string table_name = TableOfColumn(column);
  if (!table_name.empty()) {
    auto table = catalog_->Get(table_name);
    if (table.ok()) {
      const AttributeHistogram* hist = (*table)->GetHistogram(column);
      if (hist != nullptr && !hist->empty()) {
        return hist->FractionInRange(iv);
      }
      // Fall back to width ratio over the sample min/max domain.
      auto domain = (*table)->SampleMinMax(column);
      if (domain.ok() && domain->Width() > 0.0) {
        return Clamp(iv.OverlapWidth(*domain) / domain->Width(), 0.0, 1.0);
      }
    }
  }
  return 0.1;
}

double PlanCostEstimator::ColumnNdv(const std::string& column,
                                    double fallback_rows) const {
  const std::string table_name = TableOfColumn(column);
  if (!table_name.empty()) {
    auto table = catalog_->Get(table_name);
    if (table.ok()) {
      const double v = (*table)->ndv(column);
      if (v > 0.0) return v;
    }
  }
  return std::pow(std::max(fallback_rows, 1.0), cfg_.default_group_exponent);
}

Result<double> PlanCostEstimator::EstimateSelectivity(
    const ExprPtr& predicate) const {
  if (!predicate) return 1.0;
  const RangeExtraction ex = ExtractRanges(predicate);
  double sel = 1.0;
  for (const ColumnRange& r : ex.ranges) {
    const Interval iv(r.lo, r.hi, r.lo_inclusive, r.hi_inclusive);
    sel *= RangeFraction(r.column, iv);
  }
  for (size_t i = 0; i < ex.residuals.size(); ++i) sel *= cfg_.residual_selectivity;
  // Column equalities in a filter context behave like residuals.
  for (size_t i = 0; i < ex.column_equalities.size(); ++i) {
    sel *= cfg_.residual_selectivity;
  }
  return Clamp(sel, 0.0, 1.0);
}

Result<PlanCost> PlanCostEstimator::Estimate(const PlanPtr& plan) const {
  return EstimateNode(plan);
}

Result<PlanCost> PlanCostEstimator::EstimateNode(const PlanPtr& plan) const {
  switch (plan->kind()) {
    case PlanKind::kScan: {
      DEEPSEA_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(plan->table_name()));
      PlanCost cost;
      cost.out_rows = static_cast<double>(table->logical_row_count());
      cost.avg_row_bytes = table->avg_row_bytes();
      cost.out_bytes = table->logical_bytes();
      cost.bytes_read = cost.out_bytes;
      cost.map_tasks = cluster_->MapTasksForFiles({cost.out_bytes});
      cost.seconds = cluster_->MapPhaseSeconds({cost.out_bytes});
      return cost;
    }
    case PlanKind::kViewRef: {
      DEEPSEA_ASSIGN_OR_RETURN(TablePtr view, catalog_->Get(plan->table_name()));
      PlanCost cost;
      cost.avg_row_bytes = view->avg_row_bytes();
      const double view_bytes = view->logical_bytes();
      const double view_rows = static_cast<double>(view->logical_row_count());
      std::vector<double> file_bytes;
      if (plan->view_fragments().empty()) {
        file_bytes.push_back(view_bytes);
        cost.out_rows = view_rows;
      } else {
        const AttributeHistogram* hist =
            view->GetHistogram(plan->view_partition_attr());
        double total_fraction = 0.0;
        for (const Interval& iv : plan->view_fragments()) {
          double fraction;
          if (hist != nullptr && !hist->empty()) {
            fraction = hist->FractionInRange(iv);
          } else {
            auto domain = view->SampleMinMax(plan->view_partition_attr());
            fraction = (domain.ok() && domain->Width() > 0.0)
                           ? Clamp(iv.OverlapWidth(*domain) / domain->Width(),
                                   0.0, 1.0)
                           : 1.0 / static_cast<double>(plan->view_fragments().size());
          }
          file_bytes.push_back(fraction * view_bytes);
          total_fraction += fraction;
        }
        cost.out_rows = Clamp(total_fraction, 0.0, 1.0) * view_rows;
      }
      for (double b : file_bytes) cost.bytes_read += b;
      cost.out_bytes = cost.out_rows * cost.avg_row_bytes;
      cost.map_tasks = cluster_->MapTasksForFiles(file_bytes);
      cost.seconds = cluster_->MapPhaseSeconds(file_bytes);
      return cost;
    }
    case PlanKind::kSelect: {
      DEEPSEA_ASSIGN_OR_RETURN(PlanCost cost, EstimateNode(plan->child(0)));
      DEEPSEA_ASSIGN_OR_RETURN(double sel, EstimateSelectivity(plan->predicate()));
      cost.out_rows *= sel;
      cost.out_bytes = cost.out_rows * cost.avg_row_bytes;
      // Selection is fused into the producing map/reduce phase: no extra
      // time beyond the child.
      return cost;
    }
    case PlanKind::kProject: {
      DEEPSEA_ASSIGN_OR_RETURN(PlanCost cost, EstimateNode(plan->child(0)));
      DEEPSEA_ASSIGN_OR_RETURN(Schema in_schema,
                               plan->child(0)->OutputSchema(*catalog_));
      const double in_cols = std::max<size_t>(in_schema.num_columns(), 1);
      const double out_cols = std::max<size_t>(plan->project_exprs().size(), 1);
      const double ratio = std::min(1.0, out_cols / in_cols);
      cost.avg_row_bytes *= ratio;
      cost.out_bytes = cost.out_rows * cost.avg_row_bytes;
      return cost;
    }
    case PlanKind::kJoin: {
      DEEPSEA_ASSIGN_OR_RETURN(PlanCost l, EstimateNode(plan->child(0)));
      DEEPSEA_ASSIGN_OR_RETURN(PlanCost r, EstimateNode(plan->child(1)));
      PlanCost cost;
      cost.seconds = l.seconds + r.seconds;
      cost.map_tasks = l.map_tasks + r.map_tasks;
      cost.bytes_read = l.bytes_read + r.bytes_read;
      cost.bytes_shuffled = l.bytes_shuffled + r.bytes_shuffled;
      cost.bytes_written = l.bytes_written + r.bytes_written;
      cost.num_jobs = l.num_jobs + r.num_jobs + 1;
      cost.out_rows = std::max(l.out_rows, r.out_rows) * cfg_.join_expansion;
      // Range/residual parts of the join condition filter the output.
      const RangeExtraction ex = ExtractRanges(plan->predicate());
      double sel = 1.0;
      for (const ColumnRange& rr : ex.ranges) {
        const Interval iv(rr.lo, rr.hi, rr.lo_inclusive, rr.hi_inclusive);
        sel *= RangeFraction(rr.column, iv);
      }
      for (size_t i = 0; i < ex.residuals.size(); ++i) {
        sel *= cfg_.residual_selectivity;
      }
      cost.out_rows *= Clamp(sel, 0.0, 1.0);
      cost.avg_row_bytes = l.avg_row_bytes + r.avg_row_bytes;
      cost.out_bytes = cost.out_rows * cost.avg_row_bytes;
      // Shuffle both inputs, reduce-side join, temp-write the output.
      const double shuffle_bytes = l.out_bytes + r.out_bytes;
      cost.bytes_shuffled += shuffle_bytes;
      cost.bytes_written += cost.out_bytes;
      cost.seconds += cluster_->config().job_startup_seconds +
                      cluster_->ShuffleSeconds(shuffle_bytes) +
                      cluster_->TempWriteSeconds(cost.out_bytes);
      return cost;
    }
    case PlanKind::kSort: {
      // A sort is an MR job: shuffle the input by key range.
      DEEPSEA_ASSIGN_OR_RETURN(PlanCost cost, EstimateNode(plan->child(0)));
      cost.num_jobs += 1;
      cost.bytes_shuffled += cost.out_bytes;
      cost.seconds += cluster_->config().job_startup_seconds +
                      cluster_->ShuffleSeconds(cost.out_bytes);
      return cost;
    }
    case PlanKind::kLimit: {
      DEEPSEA_ASSIGN_OR_RETURN(PlanCost cost, EstimateNode(plan->child(0)));
      cost.out_rows = std::min(cost.out_rows,
                               static_cast<double>(plan->limit()));
      cost.out_bytes = cost.out_rows * cost.avg_row_bytes;
      return cost;
    }
    case PlanKind::kAggregate: {
      DEEPSEA_ASSIGN_OR_RETURN(PlanCost in, EstimateNode(plan->child(0)));
      PlanCost cost = in;
      cost.num_jobs += 1;
      double groups = 1.0;
      for (const std::string& g : plan->group_by()) {
        groups *= ColumnNdv(g, in.out_rows);
      }
      groups = std::min(groups, std::max(in.out_rows, 1.0));
      cost.out_rows = plan->group_by().empty() ? 1.0 : groups;
      cost.avg_row_bytes = cfg_.agg_output_row_bytes;
      cost.out_bytes = cost.out_rows * cost.avg_row_bytes;
      cost.bytes_shuffled += in.out_bytes;
      cost.bytes_written += cost.out_bytes;
      cost.seconds += cluster_->config().job_startup_seconds +
                      cluster_->ShuffleSeconds(in.out_bytes) +
                      cluster_->TempWriteSeconds(cost.out_bytes);
      return cost;
    }
  }
  return Status::Internal("bad plan kind");
}

}  // namespace deepsea
