#include "sim/cluster.h"

#include <algorithm>
#include <cmath>

namespace deepsea {

int64_t ClusterModel::MapTasksForFile(double bytes) const {
  if (bytes <= 0.0) return 0;
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(bytes / cfg_.block_bytes)));
}

int64_t ClusterModel::MapTasksForFiles(const std::vector<double>& file_bytes) const {
  int64_t tasks = 0;
  for (double b : file_bytes) tasks += MapTasksForFile(b);
  return tasks;
}

double ClusterModel::MapPhaseSeconds(const std::vector<double>& file_bytes) const {
  const int64_t tasks = MapTasksForFiles(file_bytes);
  if (tasks == 0) return 0.0;
  double total_bytes = 0.0;
  for (double b : file_bytes) total_bytes += std::max(b, 0.0);
  // Scheduling cost: one startup per wave of concurrently running tasks
  // (many small files mean many tasks, hence extra waves and startups).
  const int64_t slots = cfg_.total_map_slots();
  const int64_t waves = (tasks + slots - 1) / slots;
  const double startup = static_cast<double>(waves) * cfg_.task_startup_seconds;
  // I/O cost: parallel bandwidth grows with concurrent tasks but is
  // capped by the cluster's aggregate disk/CPU throughput.
  const int64_t concurrent = std::min(tasks, slots);
  const double bandwidth =
      std::min(static_cast<double>(concurrent) * cfg_.read_bytes_per_second,
               cfg_.cluster_read_bytes_per_second());
  // Per-file open/metadata overhead.
  int64_t files = 0;
  for (double b : file_bytes) {
    if (b > 0.0) ++files;
  }
  return startup + static_cast<double>(files) * cfg_.file_open_seconds +
         total_bytes / bandwidth;
}

double ClusterModel::ShuffleSeconds(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  return bytes / (cfg_.shuffle_bytes_per_second * cfg_.num_workers);
}

double ClusterModel::WriteSeconds(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  return bytes / (cfg_.write_bytes_per_second * cfg_.num_workers);
}

double ClusterModel::TempWriteSeconds(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  return bytes / (cfg_.temp_write_bytes_per_second * cfg_.num_workers);
}

double ClusterModel::ClusterReadSeconds(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  return bytes / cfg_.cluster_read_bytes_per_second();
}

double ClusterModel::PartitionedWriteSeconds(double bytes,
                                             int64_t num_fragments) const {
  return WriteSeconds(bytes) +
         cfg_.per_file_overhead_seconds * static_cast<double>(num_fragments);
}

}  // namespace deepsea
