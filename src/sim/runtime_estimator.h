#ifndef DEEPSEA_SIM_RUNTIME_ESTIMATOR_H_
#define DEEPSEA_SIM_RUNTIME_ESTIMATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/math_util.h"

namespace deepsea {

/// The paper's simulator (Section 9) gathers per-query-template
/// observations and, once enough statistics exist, estimates the
/// runtime of future executions of a template via linear regression.
/// This class implements that mechanism: observations are (x, seconds)
/// pairs keyed by template id, where x is any size-like covariate (we
/// use bytes touched / selection width).
class RuntimeEstimator {
 public:
  /// Minimum observations per template before Project() trusts the fit.
  explicit RuntimeEstimator(size_t min_observations = 3)
      : min_observations_(min_observations) {}

  void Record(const std::string& template_id, double x, double seconds);

  size_t NumObservations(const std::string& template_id) const;

  /// Predicted seconds for a future execution with covariate `x`.
  /// Before enough observations exist, returns the mean of what was
  /// seen (or `fallback` when nothing was). Predictions are clamped to
  /// be non-negative.
  double Project(const std::string& template_id, double x,
                 double fallback = 0.0) const;

  /// Fits cumulative time over the query sequence and extrapolates the
  /// cumulative total at `target_queries` (used for Fig. 7a: "project
  /// the time for 100 queries"). `per_query_seconds` holds the observed
  /// per-query times in sequence order. With fewer than 2 observations,
  /// scales the mean.
  static double ProjectCumulative(const std::vector<double>& per_query_seconds,
                                  int target_queries);

 private:
  struct Samples {
    std::vector<double> xs;
    std::vector<double> ys;
  };
  size_t min_observations_;
  std::map<std::string, Samples> samples_;
};

}  // namespace deepsea

#endif  // DEEPSEA_SIM_RUNTIME_ESTIMATOR_H_
