#include "sim/runtime_estimator.h"

#include <algorithm>

namespace deepsea {

void RuntimeEstimator::Record(const std::string& template_id, double x,
                              double seconds) {
  Samples& s = samples_[template_id];
  s.xs.push_back(x);
  s.ys.push_back(seconds);
}

size_t RuntimeEstimator::NumObservations(const std::string& template_id) const {
  auto it = samples_.find(template_id);
  return it == samples_.end() ? 0 : it->second.xs.size();
}

double RuntimeEstimator::Project(const std::string& template_id, double x,
                                 double fallback) const {
  auto it = samples_.find(template_id);
  if (it == samples_.end() || it->second.xs.empty()) return fallback;
  const Samples& s = it->second;
  if (s.xs.size() >= min_observations_) {
    const LinearFit fit = FitLinear(s.xs, s.ys);
    if (fit.valid) return std::max(0.0, fit.Predict(x));
  }
  return std::max(0.0, Mean(s.ys));
}

double RuntimeEstimator::ProjectCumulative(
    const std::vector<double>& per_query_seconds, int target_queries) {
  if (per_query_seconds.empty() || target_queries <= 0) return 0.0;
  const size_t n = per_query_seconds.size();
  if (static_cast<int>(n) >= target_queries) {
    double total = 0.0;
    for (int i = 0; i < target_queries; ++i) total += per_query_seconds[i];
    return total;
  }
  if (n < 2) {
    return per_query_seconds[0] * target_queries;
  }
  // Fit cumulative(i) over i = 1..n, extrapolate at target. The first
  // query (which typically pays materialization cost) is kept in the
  // cumulative sum but the slope is dominated by steady-state queries,
  // matching the paper's projection methodology.
  std::vector<double> xs, ys;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += per_query_seconds[i];
    xs.push_back(static_cast<double>(i + 1));
    ys.push_back(acc);
  }
  const LinearFit fit = FitLinear(xs, ys);
  if (!fit.valid) return acc / n * target_queries;
  return std::max(0.0, fit.Predict(static_cast<double>(target_queries)));
}

}  // namespace deepsea
