#ifndef DEEPSEA_SIM_CLUSTER_H_
#define DEEPSEA_SIM_CLUSTER_H_

#include <cstdint>
#include <vector>

namespace deepsea {

/// Configuration of the simulated shared-nothing cluster. Defaults
/// mirror the paper's testbed (Section 10): 31 worker nodes with 6
/// threads each, HDFS with 128 MB blocks, and writes substantially more
/// expensive than reads (w_write >> w_read, Section 7.2).
struct ClusterConfig {
  int num_workers = 31;
  int map_slots_per_worker = 6;

  double block_bytes = 128.0 * 1024 * 1024;

  /// Fixed per-map-task overhead (JVM spawn, scheduling) in seconds.
  /// This is what makes many-small-files layouts slow (Fig. 6b, E-60).
  double task_startup_seconds = 1.5;

  /// Per-task streaming read rate in bytes/second (a single mapper's
  /// effective throughput including deserialization). High relative to
  /// the per-worker cap so that a handful of tasks already saturates
  /// the cluster: reading half the bytes then takes about half the
  /// time, which is what partition pruning exploits.
  double read_bytes_per_second = 60.0 * 1024 * 1024;
  /// Aggregate cluster read throughput cap *per worker* (disk and CPU
  /// contention across that worker's slots; Hive-era deserialization
  /// keeps this well below raw disk speed).
  double worker_read_bytes_per_second = 20.0 * 1024 * 1024;
  /// Durable HDFS write throughput per worker (3x replication); writes
  /// are much more expensive than reads (Section 7.2).
  double write_bytes_per_second = 4.0 * 1024 * 1024;
  /// Intermediate (temp, single-replica) write rate per worker.
  double temp_write_bytes_per_second = 20.0 * 1024 * 1024;
  /// Cluster-wide shuffle rate in bytes/second per worker.
  double shuffle_bytes_per_second = 30.0 * 1024 * 1024;

  /// Per output file overhead (file-sink open/commit) in seconds; paid
  /// once per fragment when a partitioned view is written.
  double per_file_overhead_seconds = 5.0;

  /// Per input file overhead (split computation, footer reads, NameNode
  /// metadata) in seconds; paid once per file a map phase reads. This
  /// is what fragment merging (Section 11 extension) reduces.
  double file_open_seconds = 0.3;

  /// Fixed per-MR-job latency (job setup, scheduling) in seconds.
  double job_startup_seconds = 5.0;

  int total_map_slots() const { return num_workers * map_slots_per_worker; }
  double cluster_read_bytes_per_second() const {
    return worker_read_bytes_per_second * num_workers;
  }
};

/// Cost primitives of the MapReduce execution model. All returned times
/// are deterministic simulated seconds.
class ClusterModel {
 public:
  explicit ClusterModel(ClusterConfig config = ClusterConfig())
      : cfg_(config) {}

  const ClusterConfig& config() const { return cfg_; }
  ClusterConfig* mutable_config() { return &cfg_; }

  /// Number of map tasks spawned to scan a single file of `bytes`
  /// (one per block, minimum one per non-empty file).
  int64_t MapTasksForFile(double bytes) const;

  /// Total map tasks to scan a set of files.
  int64_t MapTasksForFiles(const std::vector<double>& file_bytes) const;

  /// Seconds for the map phase scanning `file_bytes`, using wave-based
  /// scheduling: ceil(tasks/slots) waves, each wave as long as its
  /// average task (startup + bytes/rate). Small files still pay full
  /// startup per task, modelling the small-files penalty.
  double MapPhaseSeconds(const std::vector<double>& file_bytes) const;

  /// Seconds to shuffle `bytes` across the cluster.
  double ShuffleSeconds(double bytes) const;

  /// Seconds to write `bytes` to HDFS (replicated, durable).
  double WriteSeconds(double bytes) const;

  /// Seconds to write `bytes` as single-replica temp output (the
  /// between-jobs intermediate that ReStore-style systems reuse).
  double TempWriteSeconds(double bytes) const;

  /// Seconds to write a partitioned view of `bytes` total into
  /// `num_fragments` fragment files: HDFS write plus per-file overhead.
  double PartitionedWriteSeconds(double bytes, int64_t num_fragments) const;

  /// Seconds to stream `bytes` at the saturated cluster read rate
  /// (useful for bulk repartition reads).
  double ClusterReadSeconds(double bytes) const;

 private:
  ClusterConfig cfg_;
};

}  // namespace deepsea

#endif  // DEEPSEA_SIM_CLUSTER_H_
