#ifndef DEEPSEA_SIM_COST_MODEL_H_
#define DEEPSEA_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "plan/plan.h"
#include "sim/cluster.h"

namespace deepsea {

/// Estimation knobs independent of cluster hardware.
struct EstimatorConfig {
  /// Selectivity assumed for residual (non-range) predicates.
  double residual_selectivity = 0.25;
  /// Join output rows = max(l, r) * join_expansion (PK-FK joins in the
  /// BigBench-style workloads have expansion ~1).
  double join_expansion = 1.0;
  /// Bytes per output row of an aggregation.
  double agg_output_row_bytes = 64.0;
  /// Fallback group count when no NDV statistic exists: rows^exponent.
  double default_group_exponent = 0.5;
};

/// Estimated execution profile of a (logical-scale) plan.
struct PlanCost {
  double seconds = 0.0;        ///< simulated elapsed time
  double out_rows = 0.0;       ///< estimated output cardinality
  double out_bytes = 0.0;      ///< estimated output size
  double avg_row_bytes = 0.0;  ///< estimated output row width
  int64_t map_tasks = 0;       ///< total map tasks issued
  double bytes_read = 0.0;
  double bytes_shuffled = 0.0;
  double bytes_written = 0.0;  ///< inter-job temp writes
  int64_t num_jobs = 0;        ///< MR job boundaries (joins/aggregates)
};

/// Estimates the execution cost of logical plans against the simulated
/// cluster. Operates purely on logical statistics (table logical bytes,
/// histograms, NDVs) — the physical sample is never consulted — so the
/// same estimator prices 100 GB and 500 GB instances.
///
/// Execution model: scans/fused selections+projections form map phases;
/// every Join and Aggregate is an MR job boundary adding a shuffle and a
/// temp write of its output (the intermediate results that ReStore-style
/// systems and DeepSea consider for materialization).
class PlanCostEstimator {
 public:
  PlanCostEstimator(const ClusterModel* cluster, const Catalog* catalog,
                    EstimatorConfig config = EstimatorConfig())
      : cluster_(cluster), catalog_(catalog), cfg_(config) {}

  const EstimatorConfig& config() const { return cfg_; }

  /// Full-plan estimate. `plan` may contain ViewRef nodes; fragment
  /// sizes are derived from the view table's histogram on the partition
  /// attribute (the pool keeps that histogram up to date).
  Result<PlanCost> Estimate(const PlanPtr& plan) const;

  /// Estimated selectivity (fraction of child rows retained) of a
  /// predicate, combining histogram mass for range conjuncts with the
  /// configured residual selectivity.
  Result<double> EstimateSelectivity(const ExprPtr& predicate) const;

 private:
  Result<PlanCost> EstimateNode(const PlanPtr& plan) const;

  /// Fraction of the base table's rows inside `iv` for qualified column
  /// `table.column`; falls back to interval-width ratio, then 0.1.
  double RangeFraction(const std::string& column, const Interval& iv) const;

  double ColumnNdv(const std::string& column, double fallback_rows) const;

  const ClusterModel* cluster_;
  const Catalog* catalog_;
  EstimatorConfig cfg_;
};

}  // namespace deepsea

#endif  // DEEPSEA_SIM_COST_MODEL_H_
