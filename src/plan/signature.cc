#include "plan/signature.h"

#include <algorithm>

#include "common/str_util.h"

namespace deepsea {

namespace {

// Merges column `b` into the equivalence class structure containing `a`
// (union-find over small vectors; class counts are tiny).
void AddEquivalence(std::vector<std::set<std::string>>* classes,
                    const std::string& a, const std::string& b) {
  int ia = -1, ib = -1;
  for (size_t i = 0; i < classes->size(); ++i) {
    if ((*classes)[i].count(a)) ia = static_cast<int>(i);
    if ((*classes)[i].count(b)) ib = static_cast<int>(i);
  }
  if (ia < 0 && ib < 0) {
    classes->push_back({a, b});
  } else if (ia >= 0 && ib < 0) {
    (*classes)[static_cast<size_t>(ia)].insert(b);
  } else if (ia < 0 && ib >= 0) {
    (*classes)[static_cast<size_t>(ib)].insert(a);
  } else if (ia != ib) {
    auto& ca = (*classes)[static_cast<size_t>(ia)];
    auto& cb = (*classes)[static_cast<size_t>(ib)];
    ca.insert(cb.begin(), cb.end());
    classes->erase(classes->begin() + ib);
  }
}

// Intersects `update` into the stored range for its column.
void MergeRange(std::map<std::string, ColumnRange>* ranges, const ColumnRange& r) {
  auto it = ranges->find(r.column);
  if (it == ranges->end()) {
    (*ranges)[r.column] = r;
    return;
  }
  ColumnRange& cur = it->second;
  if (r.lo > cur.lo || (r.lo == cur.lo && !r.lo_inclusive)) {
    cur.lo = r.lo;
    cur.lo_inclusive = r.lo_inclusive;
  }
  if (r.hi < cur.hi || (r.hi == cur.hi && !r.hi_inclusive)) {
    cur.hi = r.hi;
    cur.hi_inclusive = r.hi_inclusive;
  }
}

void AbsorbPredicate(PlanSignature* sig, const ExprPtr& pred) {
  const RangeExtraction ex = ExtractRanges(pred);
  for (const ColumnRange& r : ex.ranges) MergeRange(&sig->ranges, r);
  for (const auto& [a, b] : ex.column_equalities) {
    AddEquivalence(&sig->equiv_classes, a, b);
  }
  for (const ExprPtr& res : ex.residuals) {
    if (sig->residuals.insert(res->ToString()).second) {
      sig->residual_exprs.push_back(res);
    }
  }
}

}  // namespace

std::set<std::string> PlanSignature::ClassOf(const std::string& column) const {
  for (const auto& cls : equiv_classes) {
    if (cls.count(column)) return cls;
  }
  return {column};
}

std::string PlanSignature::RelationKey() const { return Join(relations, ","); }

std::string PlanSignature::ToString() const {
  std::string out = "relations=[" + RelationKey() + "]";
  out += " equiv={";
  std::vector<std::string> cls_strs;
  for (const auto& cls : equiv_classes) {
    cls_strs.push_back("{" + Join({cls.begin(), cls.end()}, ",") + "}");
  }
  std::sort(cls_strs.begin(), cls_strs.end());
  out += Join(cls_strs, ",") + "}";
  out += " ranges={";
  std::vector<std::string> range_strs;
  for (const auto& [col, r] : ranges) {
    range_strs.push_back(col + ":" + StrFormat("%s%.6g,%.6g%s",
                                               r.lo_inclusive ? "[" : "(", r.lo,
                                               r.hi, r.hi_inclusive ? "]" : ")"));
  }
  out += Join(range_strs, ",") + "}";
  out += " residuals={" + Join({residuals.begin(), residuals.end()}, ",") + "}";
  out += " outputs={" + Join({output_columns.begin(), output_columns.end()}, ",") + "}";
  if (!computed_outputs.empty()) {
    out += " computed={" +
           Join({computed_outputs.begin(), computed_outputs.end()}, ",") + "}";
  }
  if (has_aggregate) {
    out += " groupby=[" + Join(group_by, ",") + "]";
    out += " aggs={" + Join({agg_specs.begin(), agg_specs.end()}, ",") + "}";
  }
  return out;
}

bool PlanSignature::operator==(const PlanSignature& other) const {
  return ToString() == other.ToString();
}

Result<PlanSignature> ComputeSignature(const PlanPtr& plan, const Catalog& catalog) {
  PlanSignature sig;
  switch (plan->kind()) {
    case PlanKind::kScan:
    case PlanKind::kViewRef: {
      sig.relations.push_back(plan->table_name());
      DEEPSEA_ASSIGN_OR_RETURN(Schema schema, plan->OutputSchema(catalog));
      for (const auto& col : schema.columns()) sig.output_columns.insert(col.name);
      return sig;
    }
    case PlanKind::kSort:
      // Sorting does not change content; signatures see through it.
      return ComputeSignature(plan->child(0), catalog);
    case PlanKind::kLimit:
      // LIMIT changes content non-semantically (row subset): such
      // subplans are neither matched nor offered as view candidates.
      return Status::NotImplemented("signatures for LIMIT are not supported");
    case PlanKind::kSelect: {
      DEEPSEA_ASSIGN_OR_RETURN(sig, ComputeSignature(plan->child(0), catalog));
      if (sig.has_aggregate) {
        // Selections above an aggregate act on aggregate output; treat
        // them as residuals so matching stays sound (a view without the
        // post-aggregate filter is still a superset).
        for (const ExprPtr& conj : SplitConjuncts(plan->predicate())) {
          sig.residuals.insert("post-agg:" + conj->ToString());
        }
        return sig;
      }
      AbsorbPredicate(&sig, plan->predicate());
      return sig;
    }
    case PlanKind::kJoin: {
      DEEPSEA_ASSIGN_OR_RETURN(PlanSignature l, ComputeSignature(plan->child(0), catalog));
      DEEPSEA_ASSIGN_OR_RETURN(PlanSignature r, ComputeSignature(plan->child(1), catalog));
      if (l.has_aggregate || r.has_aggregate) {
        return Status::NotImplemented(
            "signatures for joins over aggregates are not supported");
      }
      sig.relations = l.relations;
      sig.relations.insert(sig.relations.end(), r.relations.begin(),
                           r.relations.end());
      std::sort(sig.relations.begin(), sig.relations.end());
      sig.equiv_classes = l.equiv_classes;
      for (const auto& cls : r.equiv_classes) {
        auto it = cls.begin();
        const std::string& first = *it;
        for (++it; it != cls.end(); ++it) {
          AddEquivalence(&sig.equiv_classes, first, *it);
        }
      }
      sig.ranges = l.ranges;
      for (const auto& [col, rr] : r.ranges) MergeRange(&sig.ranges, rr);
      sig.residuals = l.residuals;
      sig.residuals.insert(r.residuals.begin(), r.residuals.end());
      sig.residual_exprs = l.residual_exprs;
      for (const ExprPtr& e : r.residual_exprs) {
        if (!l.residuals.count(e->ToString())) sig.residual_exprs.push_back(e);
      }
      sig.output_columns = l.output_columns;
      sig.output_columns.insert(r.output_columns.begin(), r.output_columns.end());
      sig.computed_outputs = l.computed_outputs;
      sig.computed_outputs.insert(r.computed_outputs.begin(),
                                  r.computed_outputs.end());
      AbsorbPredicate(&sig, plan->predicate());
      return sig;
    }
    case PlanKind::kProject: {
      DEEPSEA_ASSIGN_OR_RETURN(sig, ComputeSignature(plan->child(0), catalog));
      std::set<std::string> new_outputs;
      for (size_t i = 0; i < plan->project_exprs().size(); ++i) {
        const ExprPtr& e = plan->project_exprs()[i];
        const std::string& name = plan->project_names()[i];
        if (e->kind() == ExprKind::kColumnRef && e->column_name() == name) {
          new_outputs.insert(name);
        } else {
          sig.computed_outputs.insert(e->ToString() + " AS " + name);
          new_outputs.insert(name);
        }
      }
      sig.output_columns = std::move(new_outputs);
      return sig;
    }
    case PlanKind::kAggregate: {
      DEEPSEA_ASSIGN_OR_RETURN(sig, ComputeSignature(plan->child(0), catalog));
      if (sig.has_aggregate) {
        return Status::NotImplemented("nested aggregates are not supported");
      }
      sig.has_aggregate = true;
      sig.group_by = plan->group_by();
      std::sort(sig.group_by.begin(), sig.group_by.end());
      for (const auto& a : plan->aggregates()) sig.agg_specs.insert(a.ToString());
      std::set<std::string> new_outputs(plan->group_by().begin(),
                                        plan->group_by().end());
      for (const auto& a : plan->aggregates()) new_outputs.insert(a.output_name);
      sig.output_columns = std::move(new_outputs);
      return sig;
    }
  }
  return Status::Internal("bad plan kind");
}

MatchResult SignatureSubsumes(const PlanSignature& view_sig,
                              const PlanSignature& query_sig) {
  MatchResult out;
  // 1. Relation classes must be equal.
  if (view_sig.relations != query_sig.relations) {
    out.reason = "relation classes differ";
    return out;
  }
  // 2. Every view equivalence class must be contained in a query class:
  //    the view enforces no equality the query does not also enforce.
  for (const auto& vcls : view_sig.equiv_classes) {
    bool contained = false;
    for (const auto& qcls : query_sig.equiv_classes) {
      if (std::includes(qcls.begin(), qcls.end(), vcls.begin(), vcls.end())) {
        contained = true;
        break;
      }
    }
    if (!contained) {
      out.reason = "view equivalence class not implied by query";
      return out;
    }
  }
  // 3. View ranges must contain query ranges (view at least as wide).
  for (const auto& [col, vrange] : view_sig.ranges) {
    const auto qit = query_sig.ranges.find(col);
    if (qit == query_sig.ranges.end()) {
      out.reason = "view constrains column the query does not: " + col;
      return out;
    }
    const ColumnRange& qrange = qit->second;
    const Interval vi(vrange.lo, vrange.hi, vrange.lo_inclusive,
                      vrange.hi_inclusive);
    const Interval qi(qrange.lo, qrange.hi, qrange.lo_inclusive,
                      qrange.hi_inclusive);
    if (!vi.Contains(qi)) {
      out.reason = "view range on " + col + " does not contain query range";
      return out;
    }
  }
  // 4. View residuals must be a subset of query residuals.
  if (!std::includes(query_sig.residuals.begin(), query_sig.residuals.end(),
                     view_sig.residuals.begin(), view_sig.residuals.end())) {
    out.reason = "view residual predicates not implied by query";
    return out;
  }
  // 5. Aggregation compatibility.
  if (view_sig.has_aggregate != query_sig.has_aggregate) {
    out.reason = "aggregate presence differs";
    return out;
  }
  if (view_sig.has_aggregate) {
    if (view_sig.group_by != query_sig.group_by ||
        view_sig.agg_specs != query_sig.agg_specs) {
      out.reason = "aggregate spec differs";
      return out;
    }
    // Compensating predicates (query constraints the view lacks) must be
    // expressible over the aggregate output, i.e. reference only
    // group-by columns.
    const std::set<std::string> gb(view_sig.group_by.begin(),
                                   view_sig.group_by.end());
    for (const auto& [col, qrange] : query_sig.ranges) {
      const auto vit = view_sig.ranges.find(col);
      const bool identical =
          vit != view_sig.ranges.end() && vit->second.lo == qrange.lo &&
          vit->second.hi == qrange.hi &&
          vit->second.lo_inclusive == qrange.lo_inclusive &&
          vit->second.hi_inclusive == qrange.hi_inclusive;
      if (!identical && !gb.count(col)) {
        out.reason = "compensating range on non-group-by column " + col;
        return out;
      }
    }
    for (const auto& res : query_sig.residuals) {
      if (!view_sig.residuals.count(res)) {
        out.reason = "compensating residual over aggregate not supported";
        return out;
      }
    }
  }
  // 6. Output availability: the view must expose every column the query
  //    outputs and every column needed by compensating predicates.
  for (const auto& col : query_sig.output_columns) {
    if (!view_sig.output_columns.count(col)) {
      out.reason = "view missing output column " + col;
      return out;
    }
  }
  for (const auto& comp : query_sig.computed_outputs) {
    if (!view_sig.computed_outputs.count(comp) ) {
      // A computed output can be re-derived if the view still has the
      // raw columns, but our compensation only selects/projects by name;
      // be conservative.
      out.reason = "view missing computed output " + comp;
      return out;
    }
  }
  if (!view_sig.has_aggregate) {
    for (const auto& [col, qrange] : query_sig.ranges) {
      (void)qrange;
      if (!view_sig.output_columns.count(col)) {
        out.reason = "view missing column needed for compensation: " + col;
        return out;
      }
    }
  }
  out.matches = true;
  return out;
}

}  // namespace deepsea
