#include "plan/plan_serde.h"

#include <vector>

#include "common/str_util.h"
#include "sql/parser.h"

namespace deepsea {

namespace {

void SerializeNode(const PlanPtr& plan, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth), ' ');
  switch (plan->kind()) {
    case PlanKind::kScan:
      *out += "SCAN " + plan->table_name();
      break;
    case PlanKind::kViewRef: {
      *out += "VIEWREF " + plan->table_name();
      if (!plan->view_partition_attr().empty()) {
        *out += " attr=" + plan->view_partition_attr();
        std::vector<std::string> frags;
        for (const Interval& iv : plan->view_fragments()) {
          frags.push_back(StrFormat("%.17g:%.17g:%d:%d", iv.lo, iv.hi,
                                    iv.lo_inclusive ? 1 : 0,
                                    iv.hi_inclusive ? 1 : 0));
        }
        *out += " frags=" + Join(frags, ";");
      }
      break;
    }
    case PlanKind::kSelect:
      *out += "SELECT " + plan->predicate()->ToString();
      break;
    case PlanKind::kJoin:
      *out += "JOIN " + plan->predicate()->ToString();
      break;
    case PlanKind::kProject: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < plan->project_exprs().size(); ++i) {
        parts.push_back(plan->project_exprs()[i]->ToString() + " AS " +
                        plan->project_names()[i]);
      }
      *out += "PROJECT " + Join(parts, "; ");
      break;
    }
    case PlanKind::kAggregate: {
      std::vector<std::string> aggs;
      for (const AggregateSpec& a : plan->aggregates()) {
        aggs.push_back(a.ToString());
      }
      *out += "AGGREGATE by=" + Join(plan->group_by(), ",") +
              " aggs=" + Join(aggs, "; ");
      break;
    }
    case PlanKind::kSort: {
      std::vector<std::string> keys;
      for (const SortKey& k : plan->sort_keys()) keys.push_back(k.ToString());
      *out += "SORT " + Join(keys, "; ");
      break;
    }
    case PlanKind::kLimit:
      *out += "LIMIT " + std::to_string(plan->limit());
      break;
  }
  *out += "\n";
  for (const PlanPtr& child : plan->children()) {
    SerializeNode(child, depth + 1, out);
  }
}

struct Line {
  int depth = 0;
  std::string op;    // SCAN, SELECT, ...
  std::string rest;  // remainder after the op keyword
};

Result<std::vector<Line>> ParseLines(const std::string& text) {
  std::vector<Line> out;
  for (const std::string& raw : Split(text, '\n')) {
    if (raw.empty()) continue;
    Line line;
    size_t i = 0;
    while (i < raw.size() && raw[i] == ' ') ++i;
    line.depth = static_cast<int>(i);
    const size_t sp = raw.find(' ', i);
    line.op = raw.substr(i, sp == std::string::npos ? std::string::npos : sp - i);
    if (sp != std::string::npos) line.rest = raw.substr(sp + 1);
    out.push_back(std::move(line));
  }
  if (out.empty()) return Status::InvalidArgument("empty plan text");
  return out;
}

Result<AggregateSpec> ParseAggSpec(const std::string& text) {
  // "SUM(col) AS name" / "COUNT(*) AS name".
  const size_t lparen = text.find('(');
  const size_t rparen = text.find(')');
  const size_t as = text.find(" AS ");
  if (lparen == std::string::npos || rparen == std::string::npos ||
      as == std::string::npos || rparen < lparen || as < rparen) {
    return Status::InvalidArgument("malformed aggregate spec: " + text);
  }
  AggregateSpec spec;
  const std::string fn = text.substr(0, lparen);
  if (fn == "COUNT") {
    spec.fn = AggFunc::kCount;
  } else if (fn == "SUM") {
    spec.fn = AggFunc::kSum;
  } else if (fn == "MIN") {
    spec.fn = AggFunc::kMin;
  } else if (fn == "MAX") {
    spec.fn = AggFunc::kMax;
  } else if (fn == "AVG") {
    spec.fn = AggFunc::kAvg;
  } else {
    return Status::InvalidArgument("unknown aggregate function: " + fn);
  }
  const std::string arg = text.substr(lparen + 1, rparen - lparen - 1);
  if (arg != "*") spec.input_column = arg;
  spec.output_name = text.substr(as + 4);
  return spec;
}

Result<PlanPtr> BuildNode(const std::vector<Line>& lines, size_t* index,
                          int expected_depth) {
  if (*index >= lines.size() || lines[*index].depth != expected_depth) {
    return Status::InvalidArgument(
        StrFormat("malformed plan tree near line %zu", *index));
  }
  const Line& line = lines[(*index)++];
  // Gather children (all following lines one level deeper).
  auto parse_children = [&](int count) -> Result<std::vector<PlanPtr>> {
    std::vector<PlanPtr> children;
    for (int c = 0; c < count; ++c) {
      DEEPSEA_ASSIGN_OR_RETURN(PlanPtr child,
                               BuildNode(lines, index, expected_depth + 1));
      children.push_back(std::move(child));
    }
    return children;
  };
  if (line.op == "SCAN") {
    if (line.rest.empty()) return Status::InvalidArgument("SCAN needs a table");
    return Scan(line.rest);
  }
  if (line.op == "VIEWREF") {
    // "<name> [attr=<attr> frags=lo:hi:li:hi;...]"
    const auto parts = Split(line.rest, ' ');
    std::string name = parts.empty() ? "" : parts[0];
    std::string attr;
    std::vector<Interval> frags;
    for (size_t i = 1; i < parts.size(); ++i) {
      if (parts[i].rfind("attr=", 0) == 0) attr = parts[i].substr(5);
      if (parts[i].rfind("frags=", 0) == 0) {
        for (const std::string& f : Split(parts[i].substr(6), ';')) {
          const auto nums = Split(f, ':');
          if (nums.size() != 4) {
            return Status::InvalidArgument("malformed fragment: " + f);
          }
          frags.push_back(Interval(std::stod(nums[0]), std::stod(nums[1]),
                                   nums[2] == "1", nums[3] == "1"));
        }
      }
    }
    return ViewRef(std::move(name), std::move(attr), std::move(frags));
  }
  if (line.op == "SELECT" || line.op == "JOIN") {
    DEEPSEA_ASSIGN_OR_RETURN(ExprPtr predicate, ParseSqlExpression(line.rest));
    if (line.op == "SELECT") {
      DEEPSEA_ASSIGN_OR_RETURN(auto children, parse_children(1));
      return Select(children[0], std::move(predicate));
    }
    DEEPSEA_ASSIGN_OR_RETURN(auto children, parse_children(2));
    return Join(children[0], children[1], std::move(predicate));
  }
  if (line.op == "PROJECT") {
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const std::string& item : Split(line.rest, ';')) {
      std::string trimmed = item;
      while (!trimmed.empty() && trimmed.front() == ' ') trimmed.erase(0, 1);
      const size_t as = trimmed.rfind(" AS ");
      if (as == std::string::npos) {
        return Status::InvalidArgument("PROJECT item missing AS: " + item);
      }
      DEEPSEA_ASSIGN_OR_RETURN(ExprPtr e,
                               ParseSqlExpression(trimmed.substr(0, as)));
      exprs.push_back(std::move(e));
      names.push_back(trimmed.substr(as + 4));
    }
    DEEPSEA_ASSIGN_OR_RETURN(auto children, parse_children(1));
    return Project(children[0], std::move(exprs), std::move(names));
  }
  if (line.op == "SORT") {
    std::vector<SortKey> keys;
    for (const std::string& item : Split(line.rest, ';')) {
      std::string trimmed = item;
      while (!trimmed.empty() && trimmed.front() == ' ') trimmed.erase(0, 1);
      if (trimmed.empty()) continue;
      SortKey key;
      if (trimmed.size() > 4 && trimmed.substr(trimmed.size() - 4) == " ASC") {
        key.column = trimmed.substr(0, trimmed.size() - 4);
        key.ascending = true;
      } else if (trimmed.size() > 5 &&
                 trimmed.substr(trimmed.size() - 5) == " DESC") {
        key.column = trimmed.substr(0, trimmed.size() - 5);
        key.ascending = false;
      } else {
        return Status::InvalidArgument("malformed sort key: " + trimmed);
      }
      keys.push_back(std::move(key));
    }
    DEEPSEA_ASSIGN_OR_RETURN(auto children, parse_children(1));
    return Sort(children[0], std::move(keys));
  }
  if (line.op == "LIMIT") {
    DEEPSEA_ASSIGN_OR_RETURN(auto children, parse_children(1));
    return Limit(children[0], std::atoll(line.rest.c_str()));
  }
  if (line.op == "AGGREGATE") {
    // "by=a,b aggs=SPEC; SPEC"
    const size_t aggs_pos = line.rest.find(" aggs=");
    if (line.rest.rfind("by=", 0) != 0 || aggs_pos == std::string::npos) {
      return Status::InvalidArgument("malformed AGGREGATE: " + line.rest);
    }
    std::vector<std::string> group_by;
    const std::string by = line.rest.substr(3, aggs_pos - 3);
    if (!by.empty()) {
      for (const std::string& g : Split(by, ',')) group_by.push_back(g);
    }
    std::vector<AggregateSpec> aggs;
    for (const std::string& item : Split(line.rest.substr(aggs_pos + 6), ';')) {
      std::string trimmed = item;
      while (!trimmed.empty() && trimmed.front() == ' ') trimmed.erase(0, 1);
      if (trimmed.empty()) continue;
      DEEPSEA_ASSIGN_OR_RETURN(AggregateSpec spec, ParseAggSpec(trimmed));
      aggs.push_back(std::move(spec));
    }
    DEEPSEA_ASSIGN_OR_RETURN(auto children, parse_children(1));
    return Aggregate(children[0], std::move(group_by), std::move(aggs));
  }
  return Status::InvalidArgument("unknown plan operator: " + line.op);
}

}  // namespace

std::string SerializePlan(const PlanPtr& plan) {
  std::string out;
  SerializeNode(plan, 0, &out);
  return out;
}

Result<PlanPtr> DeserializePlan(const std::string& text) {
  DEEPSEA_ASSIGN_OR_RETURN(std::vector<Line> lines, ParseLines(text));
  size_t index = 0;
  DEEPSEA_ASSIGN_OR_RETURN(PlanPtr plan, BuildNode(lines, &index, 0));
  if (index != lines.size()) {
    return Status::InvalidArgument("trailing lines after plan root");
  }
  return plan;
}

}  // namespace deepsea
