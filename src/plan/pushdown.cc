#include "plan/pushdown.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace deepsea {

namespace {

// "table.column" -> "table"; empty when unqualified.
std::string TableOfColumn(const std::string& column) {
  const size_t pos = column.rfind('.');
  return pos == std::string::npos ? std::string() : column.substr(0, pos);
}

// The single base table all columns of `e` belong to, or empty.
std::string SingleTableOf(const ExprPtr& e) {
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  std::string table;
  for (const std::string& c : cols) {
    const std::string t = TableOfColumn(c);
    if (t.empty()) return "";
    if (table.empty()) {
      table = t;
    } else if (table != t) {
      return "";
    }
  }
  return table;
}

// Rebuilds `plan` inserting Select(conjunct) directly above the scan of
// `table`. Returns nullptr when the scan is absent.
PlanPtr InsertAboveScan(const PlanPtr& plan, const std::string& table,
                        const ExprPtr& conjunct) {
  if (plan->kind() == PlanKind::kScan && plan->table_name() == table) {
    return Select(plan, conjunct);
  }
  bool changed = false;
  std::vector<PlanPtr> new_children;
  for (const PlanPtr& c : plan->children()) {
    if (!changed) {
      PlanPtr nc = InsertAboveScan(c, table, conjunct);
      if (nc) {
        new_children.push_back(std::move(nc));
        changed = true;
        continue;
      }
    }
    new_children.push_back(c);
  }
  if (!changed) return nullptr;
  switch (plan->kind()) {
    case PlanKind::kSelect:
      return Select(new_children[0], plan->predicate());
    case PlanKind::kProject:
      return Project(new_children[0], plan->project_exprs(), plan->project_names());
    case PlanKind::kJoin:
      return Join(new_children[0], new_children[1], plan->predicate());
    case PlanKind::kAggregate:
      return Aggregate(new_children[0], plan->group_by(), plan->aggregates());
    case PlanKind::kSort:
      return Sort(new_children[0], plan->sort_keys());
    case PlanKind::kLimit:
      return Limit(new_children[0], plan->limit());
    default:
      return nullptr;
  }
}

}  // namespace

PlanPtr PushDownSelections(const PlanPtr& plan, const Catalog& catalog) {
  if (!plan) return plan;
  // Recurse first so nested selects are handled bottom-up.
  std::vector<PlanPtr> new_children;
  bool child_changed = false;
  for (const PlanPtr& c : plan->children()) {
    PlanPtr nc = PushDownSelections(c, catalog);
    child_changed = child_changed || nc.get() != c.get();
    new_children.push_back(std::move(nc));
  }
  PlanPtr cur = plan;
  if (child_changed) {
    switch (plan->kind()) {
      case PlanKind::kSelect:
        cur = Select(new_children[0], plan->predicate());
        break;
      case PlanKind::kProject:
        cur = Project(new_children[0], plan->project_exprs(),
                      plan->project_names());
        break;
      case PlanKind::kJoin:
        cur = Join(new_children[0], new_children[1], plan->predicate());
        break;
      case PlanKind::kAggregate:
        cur = Aggregate(new_children[0], plan->group_by(), plan->aggregates());
        break;
      case PlanKind::kSort:
        cur = Sort(new_children[0], plan->sort_keys());
        break;
      case PlanKind::kLimit:
        cur = Limit(new_children[0], plan->limit());
        break;
      default:
        break;
    }
  }
  if (cur->kind() != PlanKind::kSelect) return cur;
  // Don't move predicates over aggregates (they constrain aggregate
  // output, not base rows) or limits (they would change the row subset).
  if (cur->child(0)->kind() == PlanKind::kAggregate ||
      cur->child(0)->kind() == PlanKind::kLimit) {
    return cur;
  }

  // Group pushable conjuncts by target table so each scan gains at most
  // one Select node.
  std::vector<ExprPtr> kept;
  std::map<std::string, std::vector<ExprPtr>> by_table;
  for (const ExprPtr& conj : SplitConjuncts(cur->predicate())) {
    const std::string table = SingleTableOf(conj);
    if (table.empty()) {
      kept.push_back(conj);
    } else {
      by_table[table].push_back(conj);
    }
  }
  PlanPtr input = cur->child(0);
  for (const auto& [table, conjuncts] : by_table) {
    PlanPtr pushed = InsertAboveScan(input, table, AndAll(conjuncts));
    if (pushed) {
      input = std::move(pushed);
    } else {
      kept.insert(kept.end(), conjuncts.begin(), conjuncts.end());
    }
  }
  const ExprPtr rest = AndAll(kept);
  return rest ? Select(input, rest) : input;
}

}  // namespace deepsea
