#ifndef DEEPSEA_PLAN_SIGNATURE_H_
#define DEEPSEA_PLAN_SIGNATURE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "plan/plan.h"

namespace deepsea {

/// Goldstein-Larson-style query signature (paper Section 8.1): a mostly
/// syntax-independent abstraction of an SPJG plan used to test the
/// sufficient view-matching condition. Signatures abstract away join
/// order and selection placement: all range constraints, column
/// equivalences and residual predicates are pulled together regardless
/// of where they appear in the plan.
struct PlanSignature {
  /// Relation classes: sorted multiset of base-table names.
  std::vector<std::string> relations;

  /// Attribute equivalence classes induced by column-equality
  /// predicates; each class is a sorted set of qualified column names.
  std::vector<std::set<std::string>> equiv_classes;

  /// Per-column range constraints from `col OP literal` conjuncts
  /// (the signature's "attribute value ranges").
  std::map<std::string, ColumnRange> ranges;

  /// Canonical strings of conjuncts that are neither ranges nor column
  /// equalities ("remaining selection predicates").
  std::set<std::string> residuals;

  /// The actual expression trees behind `residuals`, kept so the
  /// rewriter can re-apply them as compensation. Not part of signature
  /// identity/canonical form.
  std::vector<ExprPtr> residual_exprs;

  /// Columns available in the plan output (qualified names).
  std::set<std::string> output_columns;

  /// Canonical "expr AS name" strings for computed projections.
  std::set<std::string> computed_outputs;

  /// Aggregation part. When has_aggregate, group_by is sorted and
  /// agg_specs holds canonical AggregateSpec strings.
  bool has_aggregate = false;
  std::vector<std::string> group_by;
  std::set<std::string> agg_specs;

  /// The equivalence class containing `column`, or a singleton.
  std::set<std::string> ClassOf(const std::string& column) const;

  /// Canonical key of the relation classes (filter-tree level 1).
  std::string RelationKey() const;

  /// Full canonical rendering; equal signatures compare equal strings.
  std::string ToString() const;

  bool operator==(const PlanSignature& other) const;
};

/// Computes the signature of an SPJG plan bottom-up. ViewRef nodes are
/// treated as opaque relations named after the view (signatures are
/// normally computed on pre-rewrite plans). Fails on malformed plans.
Result<PlanSignature> ComputeSignature(const PlanPtr& plan, const Catalog& catalog);

/// Outcome of testing the sufficient matching condition between a view
/// signature and a query-subplan signature.
struct MatchResult {
  bool matches = false;
  /// Human-readable reason when matches == false (for logs and tests).
  std::string reason;
};

/// Sufficient condition (Section 8.1): the view's result is a superset
/// of the subquery's and the difference is compensable by selections /
/// projections on the view output. Conditions checked:
///  1. equal relation classes,
///  2. every view equivalence class contained in a query class,
///  3. view range ⊇ query range per constrained column,
///  4. view residuals ⊆ query residuals,
///  5. aggregate parts equal when present (and compensating predicates
///     restricted to group-by columns),
///  6. view outputs ⊇ query outputs and compensation columns.
MatchResult SignatureSubsumes(const PlanSignature& view_sig,
                              const PlanSignature& query_sig);

}  // namespace deepsea

#endif  // DEEPSEA_PLAN_SIGNATURE_H_
