#ifndef DEEPSEA_PLAN_PLAN_H_
#define DEEPSEA_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "core/interval.h"
#include "expr/expr.h"

namespace deepsea {

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// Logical operator kinds. The engine's algebra is
/// select-project-join-aggregate over base-table scans, which covers the
/// BigBench-style workloads the paper evaluates. kViewRef is introduced
/// by the rewriter when a subplan is replaced by a materialized view
/// (optionally restricted to a set of fragments).
enum class PlanKind {
  kScan,
  kSelect,
  kProject,
  kJoin,
  kAggregate,
  kViewRef,
  kSort,
  kLimit,
};

const char* PlanKindName(PlanKind k);

/// Aggregate functions supported by the Aggregate operator.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc f);

/// One aggregate output: fn(input_column) AS output_name. kCount ignores
/// input_column (COUNT(*)).
struct AggregateSpec {
  AggFunc fn = AggFunc::kCount;
  std::string input_column;
  std::string output_name;

  std::string ToString() const;
};

/// One ORDER BY key.
struct SortKey {
  std::string column;
  bool ascending = true;

  std::string ToString() const;
};

/// Immutable logical plan node. Build with the factory functions below;
/// nodes are shared and never mutated, so rewritten plans can share
/// subtrees with the original.
class PlanNode {
 public:
  PlanKind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i) const { return children_[i]; }

  // kScan / kViewRef
  const std::string& table_name() const { return table_name_; }
  /// kViewRef only: fragments of the view's partition chosen by the
  /// rewriter to cover the query range; empty means "whole view".
  const std::vector<Interval>& view_fragments() const { return view_fragments_; }
  /// kViewRef only: partition attribute of the fragments above.
  const std::string& view_partition_attr() const { return view_partition_attr_; }

  // kSelect / kJoin
  const ExprPtr& predicate() const { return predicate_; }

  // kProject
  const std::vector<ExprPtr>& project_exprs() const { return project_exprs_; }
  const std::vector<std::string>& project_names() const { return project_names_; }

  // kAggregate
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }

  // kSort
  const std::vector<SortKey>& sort_keys() const { return sort_keys_; }
  // kLimit
  int64_t limit() const { return limit_; }

  /// Derives the output schema given base-table schemas in `catalog`.
  Result<Schema> OutputSchema(const Catalog& catalog) const;

  /// Canonical, deterministic rendering (indented tree).
  std::string ToString(int indent = 0) const;

  /// Multiset (sorted vector) of base tables reached through scans and
  /// view references' *underlying* relations are NOT expanded — callers
  /// that need logical provenance should consult the view catalog.
  std::vector<std::string> BaseTables() const;

  struct PrivateTag {};
  explicit PlanNode(PrivateTag) {}

 private:
  friend PlanPtr Scan(std::string table);
  friend PlanPtr Select(PlanPtr input, ExprPtr predicate);
  friend PlanPtr Project(PlanPtr input, std::vector<ExprPtr> exprs,
                         std::vector<std::string> names);
  friend PlanPtr Join(PlanPtr left, PlanPtr right, ExprPtr condition);
  friend PlanPtr Aggregate(PlanPtr input, std::vector<std::string> group_by,
                           std::vector<AggregateSpec> aggs);
  friend PlanPtr ViewRef(std::string view_name, std::string partition_attr,
                         std::vector<Interval> fragments);
  friend PlanPtr Sort(PlanPtr input, std::vector<SortKey> keys);
  friend PlanPtr Limit(PlanPtr input, int64_t n);

  PlanKind kind_ = PlanKind::kScan;
  std::vector<PlanPtr> children_;
  std::string table_name_;
  std::vector<Interval> view_fragments_;
  std::string view_partition_attr_;
  ExprPtr predicate_;
  std::vector<ExprPtr> project_exprs_;
  std::vector<std::string> project_names_;
  std::vector<std::string> group_by_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<SortKey> sort_keys_;
  int64_t limit_ = 0;

  // Memoized pre-order shared pointer to self is not stored; factories
  // return shared_ptr and CollectSubplans reconstructs via children.
};

/// Scan of a base table (or of a materialized view's sample table, when
/// named accordingly).
PlanPtr Scan(std::string table);
/// Filter by a boolean predicate.
PlanPtr Select(PlanPtr input, ExprPtr predicate);
/// Projection: exprs[i] AS names[i].
PlanPtr Project(PlanPtr input, std::vector<ExprPtr> exprs,
                std::vector<std::string> names);
/// Inner equi-join; `condition` is a conjunction that must include at
/// least one column-equality across the inputs.
PlanPtr Join(PlanPtr left, PlanPtr right, ExprPtr condition);
/// Group-by aggregation. Empty `group_by` yields a single global row.
PlanPtr Aggregate(PlanPtr input, std::vector<std::string> group_by,
                  std::vector<AggregateSpec> aggs);
/// Reference to a materialized view restricted to `fragments` of its
/// partition on `partition_attr` (empty = full view).
PlanPtr ViewRef(std::string view_name, std::string partition_attr,
                std::vector<Interval> fragments);
/// Sorts rows by the given keys (stable; NULLs first per Value order).
PlanPtr Sort(PlanPtr input, std::vector<SortKey> keys);
/// Keeps the first `n` rows of the input.
PlanPtr Limit(PlanPtr input, int64_t n);

/// All subplans of `plan` (including the root), pre-order.
void CollectSubplans(const PlanPtr& plan, std::vector<PlanPtr>* out);

/// Returns a copy of `root` with the subtree whose node identity equals
/// `target` replaced by `replacement`. Untouched subtrees are shared
/// with the original. Returns `root` unchanged when target is absent.
PlanPtr ReplacePlanNode(const PlanPtr& root, const PlanNode* target,
                        const PlanPtr& replacement);

}  // namespace deepsea

#endif  // DEEPSEA_PLAN_PLAN_H_
