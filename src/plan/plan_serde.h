#ifndef DEEPSEA_PLAN_PLAN_SERDE_H_
#define DEEPSEA_PLAN_PLAN_SERDE_H_

#include <string>

#include "common/result.h"
#include "plan/plan.h"

namespace deepsea {

/// Serializes a logical plan into a stable, human-readable text form
/// that DeserializePlan round-trips. One node per line, children
/// indented by one space; expressions use Expr::ToString (which the SQL
/// expression parser reads back). Example:
///
///   AGGREGATE by=item.category_id aggs=SUM(ss.net_paid) AS revenue
///    SELECT ((ss.item_sk >= 10) AND (ss.item_sk <= 20))
///     JOIN (ss.item_sk = item.item_sk)
///      SCAN store_sales
///      SCAN item
///
/// Used by the engine's state persistence (SaveState/LoadState): view
/// definitions survive process restarts and signatures are recomputed
/// from the deserialized plans.
///
/// Limitations: boolean and NULL literals inside expressions do not
/// round-trip (the expression grammar has no such literals); ViewRef
/// nodes serialize their name and fragment list.
std::string SerializePlan(const PlanPtr& plan);

/// Inverse of SerializePlan. Fails with InvalidArgument on malformed
/// input.
Result<PlanPtr> DeserializePlan(const std::string& text);

}  // namespace deepsea

#endif  // DEEPSEA_PLAN_PLAN_SERDE_H_
