#include "plan/plan.h"

#include <algorithm>

#include "common/str_util.h"

namespace deepsea {

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kSelect:
      return "Select";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kViewRef:
      return "ViewRef";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

std::string SortKey::ToString() const {
  return column + (ascending ? " ASC" : " DESC");
}

std::string AggregateSpec::ToString() const {
  const std::string arg = fn == AggFunc::kCount && input_column.empty()
                              ? "*"
                              : input_column;
  return std::string(AggFuncName(fn)) + "(" + arg + ") AS " + output_name;
}

PlanPtr Scan(std::string table) {
  auto n = std::make_shared<PlanNode>(PlanNode::PrivateTag{});
  n->kind_ = PlanKind::kScan;
  n->table_name_ = std::move(table);
  return n;
}

PlanPtr Select(PlanPtr input, ExprPtr predicate) {
  auto n = std::make_shared<PlanNode>(PlanNode::PrivateTag{});
  n->kind_ = PlanKind::kSelect;
  n->children_ = {std::move(input)};
  n->predicate_ = std::move(predicate);
  return n;
}

PlanPtr Project(PlanPtr input, std::vector<ExprPtr> exprs,
                std::vector<std::string> names) {
  auto n = std::make_shared<PlanNode>(PlanNode::PrivateTag{});
  n->kind_ = PlanKind::kProject;
  n->children_ = {std::move(input)};
  n->project_exprs_ = std::move(exprs);
  n->project_names_ = std::move(names);
  return n;
}

PlanPtr Join(PlanPtr left, PlanPtr right, ExprPtr condition) {
  auto n = std::make_shared<PlanNode>(PlanNode::PrivateTag{});
  n->kind_ = PlanKind::kJoin;
  n->children_ = {std::move(left), std::move(right)};
  n->predicate_ = std::move(condition);
  return n;
}

PlanPtr Aggregate(PlanPtr input, std::vector<std::string> group_by,
                  std::vector<AggregateSpec> aggs) {
  auto n = std::make_shared<PlanNode>(PlanNode::PrivateTag{});
  n->kind_ = PlanKind::kAggregate;
  n->children_ = {std::move(input)};
  n->group_by_ = std::move(group_by);
  n->aggregates_ = std::move(aggs);
  return n;
}

PlanPtr ViewRef(std::string view_name, std::string partition_attr,
                std::vector<Interval> fragments) {
  auto n = std::make_shared<PlanNode>(PlanNode::PrivateTag{});
  n->kind_ = PlanKind::kViewRef;
  n->table_name_ = std::move(view_name);
  n->view_partition_attr_ = std::move(partition_attr);
  n->view_fragments_ = std::move(fragments);
  return n;
}

PlanPtr Sort(PlanPtr input, std::vector<SortKey> keys) {
  auto n = std::make_shared<PlanNode>(PlanNode::PrivateTag{});
  n->kind_ = PlanKind::kSort;
  n->children_ = {std::move(input)};
  n->sort_keys_ = std::move(keys);
  return n;
}

PlanPtr Limit(PlanPtr input, int64_t limit) {
  auto n = std::make_shared<PlanNode>(PlanNode::PrivateTag{});
  n->kind_ = PlanKind::kLimit;
  n->children_ = {std::move(input)};
  n->limit_ = limit;
  return n;
}

Result<Schema> PlanNode::OutputSchema(const Catalog& catalog) const {
  switch (kind_) {
    case PlanKind::kScan:
    case PlanKind::kViewRef: {
      DEEPSEA_ASSIGN_OR_RETURN(TablePtr table, catalog.Get(table_name_));
      return table->schema();
    }
    case PlanKind::kSelect:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return children_[0]->OutputSchema(catalog);
    case PlanKind::kProject: {
      DEEPSEA_ASSIGN_OR_RETURN(Schema in, children_[0]->OutputSchema(catalog));
      Schema out;
      for (size_t i = 0; i < project_exprs_.size(); ++i) {
        const ExprPtr& e = project_exprs_[i];
        DataType t = DataType::kDouble;
        if (e->kind() == ExprKind::kColumnRef) {
          const auto idx = in.FindColumn(e->column_name());
          if (!idx.has_value()) {
            return Status::NotFound("project column not found: " +
                                    e->column_name());
          }
          t = in.column(*idx).type;
        } else if (e->kind() == ExprKind::kLiteral) {
          t = e->literal().type();
        } else if (e->kind() == ExprKind::kComparison ||
                   e->kind() == ExprKind::kLogical) {
          t = DataType::kBool;
        }
        out.AddColumn(ColumnDef{project_names_[i], t});
      }
      return out;
    }
    case PlanKind::kJoin: {
      DEEPSEA_ASSIGN_OR_RETURN(Schema l, children_[0]->OutputSchema(catalog));
      DEEPSEA_ASSIGN_OR_RETURN(Schema r, children_[1]->OutputSchema(catalog));
      return l.Concat(r);
    }
    case PlanKind::kAggregate: {
      DEEPSEA_ASSIGN_OR_RETURN(Schema in, children_[0]->OutputSchema(catalog));
      Schema out;
      for (const std::string& g : group_by_) {
        const auto idx = in.FindColumn(g);
        if (!idx.has_value()) {
          return Status::NotFound("group-by column not found: " + g);
        }
        out.AddColumn(in.column(*idx));
      }
      for (const AggregateSpec& a : aggregates_) {
        DataType t = DataType::kDouble;
        if (a.fn == AggFunc::kCount) {
          t = DataType::kInt64;
        } else {
          const auto idx = in.FindColumn(a.input_column);
          if (!idx.has_value()) {
            return Status::NotFound("aggregate input column not found: " +
                                    a.input_column);
          }
          if (a.fn == AggFunc::kMin || a.fn == AggFunc::kMax) {
            t = in.column(*idx).type;
          } else if (a.fn == AggFunc::kSum &&
                     in.column(*idx).type == DataType::kInt64) {
            t = DataType::kInt64;
          }
        }
        out.AddColumn(ColumnDef{a.output_name, t});
      }
      return out;
    }
  }
  return Status::Internal("bad plan kind");
}

std::string PlanNode::ToString(int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string line = pad + PlanKindName(kind_);
  switch (kind_) {
    case PlanKind::kScan:
      line += "(" + table_name_ + ")";
      break;
    case PlanKind::kViewRef: {
      line += "(" + table_name_;
      if (!view_fragments_.empty()) {
        std::vector<std::string> frags;
        for (const auto& iv : view_fragments_) frags.push_back(iv.ToString());
        line += " frags[" + view_partition_attr_ + "]=" + Join(frags, ",");
      }
      line += ")";
      break;
    }
    case PlanKind::kSelect:
    case PlanKind::kJoin:
      if (predicate_) line += "(" + predicate_->ToString() + ")";
      break;
    case PlanKind::kProject: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < project_exprs_.size(); ++i) {
        parts.push_back(project_exprs_[i]->ToString() + " AS " + project_names_[i]);
      }
      line += "(" + Join(parts, ", ") + ")";
      break;
    }
    case PlanKind::kAggregate: {
      std::vector<std::string> parts;
      for (const auto& a : aggregates_) parts.push_back(a.ToString());
      line += "(by=[" + Join(group_by_, ",") + "] " + Join(parts, ", ") + ")";
      break;
    }
    case PlanKind::kSort: {
      std::vector<std::string> parts;
      for (const auto& k : sort_keys_) parts.push_back(k.ToString());
      line += "(" + Join(parts, ", ") + ")";
      break;
    }
    case PlanKind::kLimit:
      line += "(" + std::to_string(limit_) + ")";
      break;
  }
  std::string out = line;
  for (const auto& c : children_) {
    out += "\n" + c->ToString(indent + 1);
  }
  return out;
}

std::vector<std::string> PlanNode::BaseTables() const {
  std::vector<std::string> out;
  if (kind_ == PlanKind::kScan || kind_ == PlanKind::kViewRef) {
    out.push_back(table_name_);
  }
  for (const auto& c : children_) {
    auto sub = c->BaseTables();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CollectSubplans(const PlanPtr& plan, std::vector<PlanPtr>* out) {
  if (!plan) return;
  out->push_back(plan);
  for (const auto& c : plan->children()) CollectSubplans(c, out);
}

PlanPtr ReplacePlanNode(const PlanPtr& root, const PlanNode* target,
                        const PlanPtr& replacement) {
  if (!root) return root;
  if (root.get() == target) return replacement;
  // Rebuild children; reuse this node when nothing below changed.
  std::vector<PlanPtr> new_children;
  bool changed = false;
  for (const PlanPtr& c : root->children()) {
    PlanPtr nc = ReplacePlanNode(c, target, replacement);
    changed = changed || nc.get() != c.get();
    new_children.push_back(std::move(nc));
  }
  if (!changed) return root;
  switch (root->kind()) {
    case PlanKind::kScan:
    case PlanKind::kViewRef:
      return root;  // leaves have no children to replace
    case PlanKind::kSelect:
      return Select(new_children[0], root->predicate());
    case PlanKind::kProject:
      return Project(new_children[0], root->project_exprs(),
                     root->project_names());
    case PlanKind::kJoin:
      return Join(new_children[0], new_children[1], root->predicate());
    case PlanKind::kAggregate:
      return Aggregate(new_children[0], root->group_by(), root->aggregates());
    case PlanKind::kSort:
      return Sort(new_children[0], root->sort_keys());
    case PlanKind::kLimit:
      return Limit(new_children[0], root->limit());
  }
  return root;
}

}  // namespace deepsea
