#ifndef DEEPSEA_PLAN_PUSHDOWN_H_
#define DEEPSEA_PLAN_PUSHDOWN_H_

#include "catalog/table.h"
#include "plan/plan.h"

namespace deepsea {

/// Pushes single-table selection conjuncts down to directly above the
/// scans of their tables, modelling what a conventional optimizer (and
/// vanilla Hive) does. DeepSea deliberately does NOT push selections
/// when instrumenting a query for materialization (Section 10.2: "Our
/// materialization strategy requires that selections are not pushed
/// down and hence we incur a performance hit initially"), so the engine
/// costs the pushed-down variant for the Hive baseline / non-
/// materializing executions and the original plan for instrumented
/// ones.
///
/// Conjuncts whose columns span multiple tables (join predicates,
/// residuals over several relations) stay where they are. Selections
/// above aggregates are not moved.
PlanPtr PushDownSelections(const PlanPtr& plan, const Catalog& catalog);

}  // namespace deepsea

#endif  // DEEPSEA_PLAN_PUSHDOWN_H_
