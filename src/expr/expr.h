#ifndef DEEPSEA_EXPR_EXPR_H_
#define DEEPSEA_EXPR_EXPR_H_

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace deepsea {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Kinds of expression tree nodes.
enum class ExprKind {
  kColumnRef,
  kLiteral,
  kComparison,
  kLogical,
  kArithmetic,
};

/// Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Logical connectives. kNot is unary (only `left` set).
enum class LogicalOp { kAnd, kOr, kNot };

/// Arithmetic operators.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpSymbol(CompareOp op);
const char* LogicalOpSymbol(LogicalOp op);
const char* ArithOpSymbol(ArithOp op);

/// Immutable scalar expression tree. Construct via the factory functions
/// below (Col, Lit, Cmp, ...). Expressions are shared (shared_ptr) and
/// never mutated after construction, so plans can alias subtrees freely.
class Expr {
 public:
  ExprKind kind() const { return kind_; }

  // --- kColumnRef ---
  const std::string& column_name() const { return column_name_; }

  // --- kLiteral ---
  const Value& literal() const { return literal_; }

  // --- kComparison / kLogical / kArithmetic ---
  CompareOp compare_op() const { return compare_op_; }
  LogicalOp logical_op() const { return logical_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  /// Evaluates the expression against `row` positionally described by
  /// `schema`. Column resolution failures and type errors surface as
  /// error Statuses (never exceptions).
  Result<Value> Eval(const Row& row, const Schema& schema) const;

  /// Canonical rendering used for signatures and residual-predicate
  /// comparison; stable across structurally equal expressions.
  std::string ToString() const;

  /// Collects the names of all columns referenced by this expression.
  void CollectColumns(std::vector<std::string>* out) const;

  // Node constructors are internal; use the factories below.
  struct PrivateTag {};
  explicit Expr(PrivateTag) {}

 private:
  friend ExprPtr Col(std::string name);
  friend ExprPtr Lit(Value v);
  friend ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  friend ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  friend ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  friend ExprPtr Not(ExprPtr operand);
  friend ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

  ExprKind kind_ = ExprKind::kLiteral;
  std::string column_name_;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  LogicalOp logical_op_ = LogicalOp::kAnd;
  ArithOp arith_op_ = ArithOp::kAdd;
  ExprPtr left_;
  ExprPtr right_;
};

/// Column reference by (possibly qualified) name.
ExprPtr Col(std::string name);
/// Literal constant.
ExprPtr Lit(Value v);
inline ExprPtr LitI(int64_t v) { return Lit(Value(v)); }
inline ExprPtr LitD(double v) { return Lit(Value(v)); }
inline ExprPtr LitS(std::string v) { return Lit(Value(std::move(v))); }
/// Binary comparison lhs OP rhs.
ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs);
/// Conjunction / disjunction / negation.
ExprPtr And(ExprPtr lhs, ExprPtr rhs);
ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
ExprPtr Not(ExprPtr operand);
/// Binary arithmetic lhs OP rhs (numeric operands).
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

/// Convenience: conjunction of all expressions in `conjuncts`; nullptr
/// for an empty list.
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

/// Convenience: the range predicate lo <= col <= hi on a numeric column.
ExprPtr RangePredicate(const std::string& column, double lo, double hi);

/// Splits a predicate into its top-level AND conjuncts (flattening nested
/// ANDs). A null expr yields an empty list.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);

/// A closed numeric bound constraint on one column extracted from
/// conjuncts of the form `col OP literal`. Missing bounds are +/-inf.
struct ColumnRange {
  std::string column;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_inclusive = true;
  bool hi_inclusive = true;

  bool IsUnbounded() const;
  std::string ToString() const;
};

/// Extraction result: per-column ranges plus the conjuncts that are not
/// simple single-column range constraints (the "residual" predicates in
/// Goldstein-Larson signature terms).
struct RangeExtraction {
  std::vector<ColumnRange> ranges;
  std::vector<ExprPtr> residuals;
  /// Conjuncts of the form colA = colB (join predicates / equivalence
  /// class edges), as (left column, right column) pairs.
  std::vector<std::pair<std::string, std::string>> column_equalities;
};

/// Analyzes the top-level conjuncts of `pred` and extracts single-column
/// numeric range constraints, column-equality pairs, and residuals.
/// Multiple constraints on the same column are intersected.
RangeExtraction ExtractRanges(const ExprPtr& pred);

}  // namespace deepsea

#endif  // DEEPSEA_EXPR_EXPR_H_
