#include "expr/expr.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace deepsea {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* LogicalOpSymbol(LogicalOp op) {
  switch (op) {
    case LogicalOp::kAnd:
      return "AND";
    case LogicalOp::kOr:
      return "OR";
    case LogicalOp::kNot:
      return "NOT";
  }
  return "?";
}

const char* ArithOpSymbol(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

ExprPtr Col(std::string name) {
  auto e = std::make_shared<Expr>(Expr::PrivateTag{});
  e->kind_ = ExprKind::kColumnRef;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>(Expr::PrivateTag{});
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Cmp(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>(Expr::PrivateTag{});
  e->kind_ = ExprKind::kComparison;
  e->compare_op_ = op;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>(Expr::PrivateTag{});
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = LogicalOp::kAnd;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>(Expr::PrivateTag{});
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = LogicalOp::kOr;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr Not(ExprPtr operand) {
  auto e = std::make_shared<Expr>(Expr::PrivateTag{});
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = LogicalOp::kNot;
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>(Expr::PrivateTag{});
  e->kind_ = ExprKind::kArithmetic;
  e->arith_op_ = op;
  e->left_ = std::move(lhs);
  e->right_ = std::move(rhs);
  return e;
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const auto& c : conjuncts) {
    if (!c) continue;
    acc = acc ? And(acc, c) : c;
  }
  return acc;
}

ExprPtr RangePredicate(const std::string& column, double lo, double hi) {
  return And(Cmp(CompareOp::kGe, Col(column), LitD(lo)),
             Cmp(CompareOp::kLe, Col(column), LitD(hi)));
}

Result<Value> Expr::Eval(const Row& row, const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      const auto idx = schema.FindColumn(column_name_);
      if (!idx.has_value()) {
        return Status::NotFound("column not in schema: " + column_name_);
      }
      if (*idx >= row.size()) {
        return Status::Internal("row narrower than schema");
      }
      return row[*idx];
    }
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kComparison: {
      DEEPSEA_ASSIGN_OR_RETURN(Value l, left_->Eval(row, schema));
      DEEPSEA_ASSIGN_OR_RETURN(Value r, right_->Eval(row, schema));
      if (l.is_null() || r.is_null()) return Value(false);  // SQL-ish: null fails
      const int c = l.Compare(r);
      switch (compare_op_) {
        case CompareOp::kEq:
          return Value(c == 0);
        case CompareOp::kNe:
          return Value(c != 0);
        case CompareOp::kLt:
          return Value(c < 0);
        case CompareOp::kLe:
          return Value(c <= 0);
        case CompareOp::kGt:
          return Value(c > 0);
        case CompareOp::kGe:
          return Value(c >= 0);
      }
      return Status::Internal("bad compare op");
    }
    case ExprKind::kLogical: {
      DEEPSEA_ASSIGN_OR_RETURN(Value l, left_->Eval(row, schema));
      if (!l.is_bool()) return Status::InvalidArgument("logical operand not bool");
      if (logical_op_ == LogicalOp::kNot) return Value(!l.AsBool());
      // Short-circuit.
      if (logical_op_ == LogicalOp::kAnd && !l.AsBool()) return Value(false);
      if (logical_op_ == LogicalOp::kOr && l.AsBool()) return Value(true);
      DEEPSEA_ASSIGN_OR_RETURN(Value r, right_->Eval(row, schema));
      if (!r.is_bool()) return Status::InvalidArgument("logical operand not bool");
      return Value(r.AsBool());
    }
    case ExprKind::kArithmetic: {
      DEEPSEA_ASSIGN_OR_RETURN(Value l, left_->Eval(row, schema));
      DEEPSEA_ASSIGN_OR_RETURN(Value r, right_->Eval(row, schema));
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.is_numeric() || !r.is_numeric()) {
        return Status::InvalidArgument("arithmetic on non-numeric operands");
      }
      // Integer arithmetic stays integral except division.
      if (l.is_int64() && r.is_int64() && arith_op_ != ArithOp::kDiv) {
        const int64_t a = l.AsInt64();
        const int64_t b = r.AsInt64();
        switch (arith_op_) {
          case ArithOp::kAdd:
            return Value(a + b);
          case ArithOp::kSub:
            return Value(a - b);
          case ArithOp::kMul:
            return Value(a * b);
          default:
            break;
        }
      }
      const double a = l.AsNumeric();
      const double b = r.AsNumeric();
      switch (arith_op_) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        case ArithOp::kDiv:
          if (b == 0.0) return Value::Null();
          return Value(a / b);
      }
      return Status::Internal("bad arith op");
    }
  }
  return Status::Internal("bad expr kind");
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return column_name_;
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kComparison:
      return "(" + left_->ToString() + " " + CompareOpSymbol(compare_op_) + " " +
             right_->ToString() + ")";
    case ExprKind::kLogical:
      if (logical_op_ == LogicalOp::kNot) {
        return "(NOT " + left_->ToString() + ")";
      }
      return "(" + left_->ToString() + " " + LogicalOpSymbol(logical_op_) + " " +
             right_->ToString() + ")";
    case ExprKind::kArithmetic:
      return "(" + left_->ToString() + " " + ArithOpSymbol(arith_op_) + " " +
             right_->ToString() + ")";
  }
  return "?";
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    out->push_back(column_name_);
    return;
  }
  if (left_) left_->CollectColumns(out);
  if (right_) right_->CollectColumns(out);
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (!pred) return out;
  if (pred->kind() == ExprKind::kLogical && pred->logical_op() == LogicalOp::kAnd) {
    auto l = SplitConjuncts(pred->left());
    auto r = SplitConjuncts(pred->right());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(pred);
  return out;
}

bool ColumnRange::IsUnbounded() const {
  return std::isinf(lo) && lo < 0 && std::isinf(hi) && hi > 0;
}

std::string ColumnRange::ToString() const {
  return StrFormat("%s%s%.6g, %.6g%s on %s", lo_inclusive ? "[" : "(",
                   "", lo, hi, hi_inclusive ? "]" : ")", column.c_str());
}

namespace {

// Returns true and fills (column, op, bound) when `e` is `col OP lit` or
// `lit OP col` with numeric literal (flipping the operator for the latter).
bool MatchColumnLiteralCompare(const ExprPtr& e, std::string* column,
                               CompareOp* op, double* bound) {
  if (e->kind() != ExprKind::kComparison) return false;
  const ExprPtr& l = e->left();
  const ExprPtr& r = e->right();
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral &&
      r->literal().is_numeric()) {
    *column = l->column_name();
    *op = e->compare_op();
    *bound = r->literal().AsNumeric();
    return true;
  }
  if (r->kind() == ExprKind::kColumnRef && l->kind() == ExprKind::kLiteral &&
      l->literal().is_numeric()) {
    *column = r->column_name();
    *bound = l->literal().AsNumeric();
    switch (e->compare_op()) {
      case CompareOp::kLt:
        *op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        *op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        *op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        *op = CompareOp::kLe;
        break;
      default:
        *op = e->compare_op();
        break;
    }
    return true;
  }
  return false;
}

void TightenRange(ColumnRange* range, CompareOp op, double bound) {
  switch (op) {
    case CompareOp::kEq:
      if (bound > range->lo || (bound == range->lo && !range->lo_inclusive)) {
        range->lo = bound;
        range->lo_inclusive = true;
      }
      if (bound < range->hi || (bound == range->hi && !range->hi_inclusive)) {
        range->hi = bound;
        range->hi_inclusive = true;
      }
      break;
    case CompareOp::kLt:
      if (bound < range->hi || (bound == range->hi && range->hi_inclusive)) {
        range->hi = bound;
        range->hi_inclusive = false;
      }
      break;
    case CompareOp::kLe:
      if (bound < range->hi) {
        range->hi = bound;
        range->hi_inclusive = true;
      }
      break;
    case CompareOp::kGt:
      if (bound > range->lo || (bound == range->lo && range->lo_inclusive)) {
        range->lo = bound;
        range->lo_inclusive = false;
      }
      break;
    case CompareOp::kGe:
      if (bound > range->lo) {
        range->lo = bound;
        range->lo_inclusive = true;
      }
      break;
    case CompareOp::kNe:
      break;  // not a range constraint; caller treats as residual
  }
}

}  // namespace

RangeExtraction ExtractRanges(const ExprPtr& pred) {
  RangeExtraction out;
  for (const ExprPtr& conj : SplitConjuncts(pred)) {
    std::string column;
    CompareOp op;
    double bound;
    if (MatchColumnLiteralCompare(conj, &column, &op, &bound) &&
        op != CompareOp::kNe) {
      auto it = std::find_if(out.ranges.begin(), out.ranges.end(),
                             [&](const ColumnRange& r) { return r.column == column; });
      if (it == out.ranges.end()) {
        out.ranges.push_back(ColumnRange{column});
        it = std::prev(out.ranges.end());
      }
      TightenRange(&*it, op, bound);
      continue;
    }
    // Column equality (equi-join edge): colA = colB.
    if (conj->kind() == ExprKind::kComparison &&
        conj->compare_op() == CompareOp::kEq &&
        conj->left()->kind() == ExprKind::kColumnRef &&
        conj->right()->kind() == ExprKind::kColumnRef) {
      out.column_equalities.emplace_back(conj->left()->column_name(),
                                         conj->right()->column_name());
      continue;
    }
    out.residuals.push_back(conj);
  }
  return out;
}

}  // namespace deepsea
