#ifndef DEEPSEA_COMMON_MATH_UTIL_H_
#define DEEPSEA_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace deepsea {

/// Arithmetic mean of `xs`; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Unbiased (Bessel-corrected, n-1 denominator) sample variance; 0 when
/// fewer than two samples. This matches the paper's adjusted sample
/// variance used for the fragment-hit MLE (Section 7.1).
double SampleVariance(const std::vector<double>& xs);

/// Population (n denominator) variance; 0 for an empty vector.
double PopulationVariance(const std::vector<double>& xs);

/// Weighted mean of `xs` with non-negative weights `ws`. Returns 0 when
/// the total weight is 0. Sizes must match.
double WeightedMean(const std::vector<double>& xs, const std::vector<double>& ws);

/// Weighted sample variance with Bessel-style correction using effective
/// sample size; 0 when total weight is ~0.
double WeightedSampleVariance(const std::vector<double>& xs,
                              const std::vector<double>& ws);

/// Standard normal cumulative distribution function P(X <= x).
double NormalCdf(double x);

/// Normal CDF for N(mean, stddev): P(X <= x). stddev <= 0 degenerates to
/// a step function at `mean`.
double NormalCdf(double x, double mean, double stddev);

/// Maximum-likelihood estimate of a Normal distribution from weighted
/// observations (the paper fits hit counts over domain "parts", Sec 7.1).
struct NormalFit {
  double mean = 0.0;
  double stddev = 0.0;
  double total_weight = 0.0;
  /// True when the fit had enough mass to be meaningful (total weight > 0
  /// and at least two distinct observation points).
  bool valid = false;
};

/// Fits N(mu, sigma) by MLE to observations `xs` with weights `ws`
/// (weights are the per-part hit counts). Uses the adjusted (unbiased)
/// variance as in the paper.
NormalFit FitNormalMle(const std::vector<double>& xs,
                       const std::vector<double>& ws);

/// Ordinary least squares fit y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0,1]; 0 when undefined.
  double r_squared = 0.0;
  bool valid = false;

  double Predict(double x) const { return intercept + slope * x; }
};

/// Least-squares linear regression; requires xs.size() == ys.size().
/// Invalid when fewer than two points or zero x-variance.
LinearFit FitLinear(const std::vector<double>& xs, const std::vector<double>& ys);

/// Clamps v into [lo, hi].
double Clamp(double v, double lo, double hi);

}  // namespace deepsea

#endif  // DEEPSEA_COMMON_MATH_UTIL_H_
