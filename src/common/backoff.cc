#include "common/backoff.h"

namespace deepsea {

namespace {

/// SplitMix64 finalizer: a high-quality 64 -> 64 bit mixer (the same
/// construction rng.cc uses for seeding). Pure, so the jitter of retry
/// k is a function of (seed, k) alone.
uint64_t Mix(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

double DeterministicBackoff::DelaySeconds(int retry) const {
  if (retry < 0) retry = 0;
  double delay = config_.base_seconds;
  // Repeated multiplication instead of pow(): bit-identical across
  // libm implementations, and retry counts are small. multiplier == 1
  // short-circuits so the default config charges base_seconds exactly.
  if (config_.multiplier != 1.0) {
    for (int k = 0; k < retry && delay < config_.cap_seconds; ++k) {
      delay *= config_.multiplier;
    }
  }
  if (delay > config_.cap_seconds) delay = config_.cap_seconds;
  if (config_.jitter_fraction > 0.0) {
    const uint64_t bits = Mix(seed_ ^ (static_cast<uint64_t>(retry) + 1));
    // 53-bit mantissa draw in [0, 1), mapped to [-1, 1).
    const double u =
        static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
    delay *= 1.0 + config_.jitter_fraction * (2.0 * u - 1.0);
  }
  return delay;
}

}  // namespace deepsea
