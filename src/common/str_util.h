#ifndef DEEPSEA_COMMON_STR_UTIL_H_
#define DEEPSEA_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace deepsea {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` on the character `sep`; no empty-token suppression.
std::vector<std::string> Split(const std::string& s, char sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a byte count with binary units ("1.50 GB").
std::string HumanBytes(double bytes);

/// Formats a duration given in (simulated) seconds as "1234.5 s" or
/// "2h 05m" style for larger magnitudes.
std::string HumanSeconds(double seconds);

}  // namespace deepsea

#endif  // DEEPSEA_COMMON_STR_UTIL_H_
