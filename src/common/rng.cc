#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace deepsea {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n >= 1);
  assert(s > 0.0);
  // Rejection-inversion sampling (W. Hormann, G. Derflinger) is overkill
  // here; we use the classic inverse transform on the generalized
  // harmonic CDF with on-the-fly partial sums for small n, falling back
  // to an approximate continuous inversion for large n.
  if (n <= 1024) {
    double norm = 0.0;
    for (int64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
    double u = NextDouble() * norm;
    double acc = 0.0;
    for (int64_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s);
      if (u <= acc) return k;
    }
    return n;
  }
  // Continuous approximation: integral of x^-s from 1 to n.
  const double u = NextDouble();
  if (s == 1.0) {
    const double ln_n = std::log(static_cast<double>(n));
    return static_cast<int64_t>(std::exp(u * ln_n));
  }
  const double one_minus_s = 1.0 - s;
  const double t = std::pow(static_cast<double>(n), one_minus_s);
  const double x = std::pow(u * (t - 1.0) + 1.0, 1.0 / one_minus_s);
  int64_t k = static_cast<int64_t>(x);
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace deepsea
