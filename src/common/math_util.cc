#include "common/math_util.h"

#include <cassert>
#include <cmath>

namespace deepsea {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

double PopulationVariance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double WeightedMean(const std::vector<double>& xs, const std::vector<double>& ws) {
  assert(xs.size() == ws.size());
  double wsum = 0.0, acc = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    wsum += ws[i];
    acc += ws[i] * xs[i];
  }
  if (wsum <= 0.0) return 0.0;
  return acc / wsum;
}

double WeightedSampleVariance(const std::vector<double>& xs,
                              const std::vector<double>& ws) {
  assert(xs.size() == ws.size());
  double wsum = 0.0;
  for (double w : ws) wsum += w;
  if (wsum <= 1.0) return 0.0;
  const double mu = WeightedMean(xs, ws);
  double acc = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) acc += ws[i] * (xs[i] - mu) * (xs[i] - mu);
  // Effective (n-1)-style correction with weights interpreted as counts.
  return acc / (wsum - 1.0);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x * M_SQRT1_2); }

double NormalCdf(double x, double mean, double stddev) {
  if (stddev <= 0.0) return x >= mean ? 1.0 : 0.0;
  return NormalCdf((x - mean) / stddev);
}

NormalFit FitNormalMle(const std::vector<double>& xs,
                       const std::vector<double>& ws) {
  assert(xs.size() == ws.size());
  NormalFit fit;
  for (double w : ws) fit.total_weight += w;
  if (fit.total_weight <= 0.0) return fit;
  fit.mean = WeightedMean(xs, ws);
  const double var = WeightedSampleVariance(xs, ws);
  fit.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  // Count distinct observation points carrying weight.
  int distinct_weighted = 0;
  double first = 0.0;
  bool have_first = false;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (ws[i] <= 0.0) continue;
    if (!have_first) {
      first = xs[i];
      have_first = true;
      distinct_weighted = 1;
    } else if (xs[i] != first) {
      distinct_weighted = 2;
      break;
    }
  }
  fit.valid = distinct_weighted >= 1;
  return fit;
}

LinearFit FitLinear(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const size_t n = xs.size();
  if (n < 2) return fit;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  fit.valid = true;
  return fit;
}

double Clamp(double v, double lo, double hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return v;
}

}  // namespace deepsea
