#ifndef DEEPSEA_COMMON_RESULT_H_
#define DEEPSEA_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace deepsea {

/// Result<T> carries either a value of type T or an error Status.
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a Result-returning expression, otherwise binds
/// the unwrapped value to `lhs`. Usable in functions returning Status or
/// Result<U>.
#define DEEPSEA_ASSIGN_OR_RETURN(lhs, expr)     \
  auto DEEPSEA_CONCAT_(_res_, __LINE__) = (expr);          \
  if (!DEEPSEA_CONCAT_(_res_, __LINE__).ok())              \
    return DEEPSEA_CONCAT_(_res_, __LINE__).status();      \
  lhs = std::move(DEEPSEA_CONCAT_(_res_, __LINE__)).value()

#define DEEPSEA_CONCAT_INNER_(a, b) a##b
#define DEEPSEA_CONCAT_(a, b) DEEPSEA_CONCAT_INNER_(a, b)

}  // namespace deepsea

#endif  // DEEPSEA_COMMON_RESULT_H_
