#ifndef DEEPSEA_COMMON_BACKOFF_H_
#define DEEPSEA_COMMON_BACKOFF_H_

#include <cstdint>
#include <limits>

namespace deepsea {

/// Capped exponential backoff with deterministic jitter, shared by the
/// engine's inline fault-retry loop and the background materialization
/// workers (see DESIGN.md, "Failure model and recovery").
///
/// The delay for retry k (k = 0 for the first retry) is
///
///   min(cap_seconds, base_seconds * multiplier^k) * (1 + jitter)
///
/// where jitter is drawn uniformly from [-jitter_fraction,
/// +jitter_fraction] by a pure function of (seed, k) — the same seed
/// always produces the same schedule, so fault-injected runs stay
/// replayable bit-for-bit (the library-wide determinism rule; no
/// wall-clock entropy). With the defaults (multiplier 1, no cap, no
/// jitter) DelaySeconds(k) returns base_seconds exactly, preserving the
/// historical fixed-backoff charge.
struct BackoffConfig {
  double base_seconds = 0.0;
  double multiplier = 1.0;
  double cap_seconds = std::numeric_limits<double>::infinity();
  /// Relative jitter half-width in [0, 1): 0.2 spreads each delay over
  /// +/-20% of its nominal value.
  double jitter_fraction = 0.0;
};

class DeterministicBackoff {
 public:
  DeterministicBackoff(const BackoffConfig& config, uint64_t seed)
      : config_(config), seed_(seed) {}

  /// Delay in (simulated) seconds to charge for retry `retry` (>= 0).
  /// Pure: the same (config, seed, retry) triple always yields the same
  /// value, and consecutive calls need no state.
  double DelaySeconds(int retry) const;

  const BackoffConfig& config() const { return config_; }

 private:
  BackoffConfig config_;
  uint64_t seed_;
};

}  // namespace deepsea

#endif  // DEEPSEA_COMMON_BACKOFF_H_
