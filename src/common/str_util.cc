#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace deepsea {

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  double v = bytes;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", v, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 3600.0) return StrFormat("%.1f s", seconds);
  const int hours = static_cast<int>(seconds / 3600.0);
  const int minutes = static_cast<int>((seconds - hours * 3600.0) / 60.0);
  return StrFormat("%dh %02dm", hours, minutes);
}

}  // namespace deepsea
