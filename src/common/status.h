#ifndef DEEPSEA_COMMON_STATUS_H_
#define DEEPSEA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace deepsea {

/// Error codes used across the DeepSea library. Library code never throws
/// exceptions across API boundaries; fallible operations return a Status
/// (or Result<T>, see result.h) in the style of RocksDB / Arrow.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kNotImplemented,
  kInternal,
  /// Transient failure: the operation may succeed if retried (storage
  /// temporarily unreachable, job preempted). Contrast with
  /// kResourceExhausted / kInternal, which are permanent for the
  /// purposes of the engine's fault handling.
  kUnavailable,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A Status holds the outcome of an operation: either success (OK) or an
/// error code plus a message. Statuses are cheap to copy for the OK case
/// and small otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True for faults worth retrying (see StatusCode::kUnavailable).
  bool IsTransient() const { return code_ == StatusCode::kUnavailable; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define DEEPSEA_RETURN_IF_ERROR(expr)           \
  do {                                          \
    ::deepsea::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace deepsea

#endif  // DEEPSEA_COMMON_STATUS_H_
