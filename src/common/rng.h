#ifndef DEEPSEA_COMMON_RNG_H_
#define DEEPSEA_COMMON_RNG_H_

#include <cstdint>

namespace deepsea {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). All randomness in the library flows through explicitly
/// seeded Rng instances so that every experiment is reproducible
/// bit-for-bit; library code never reads wall-clock entropy.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (mean 0, stddev 1).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed rank in [1, n] with exponent s > 0 (rank 1 is the
  /// most frequent). Uses inverse-CDF over the precomputable harmonic
  /// normalization; O(log n) per draw via binary search would need state,
  /// so this uses rejection-free cumulative scan for small n and the
  /// approximation of Gray et al. otherwise.
  int64_t Zipf(int64_t n, double s);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

 private:
  uint64_t s_[4];
  // Box-Muller produces pairs; cache the spare value.
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace deepsea

#endif  // DEEPSEA_COMMON_RNG_H_
