#ifndef DEEPSEA_EXEC_EXECUTOR_H_
#define DEEPSEA_EXEC_EXECUTOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "core/interval.h"
#include "plan/plan.h"

namespace deepsea {

/// The materialized output of a plan (or subplan): schema plus rows.
struct ExecResult {
  Schema schema;
  std::vector<Row> rows;
};

/// Tuple-at-a-time recursive executor over the physical sample data in a
/// Catalog. Deliberately simple and fully materializing: DeepSea's
/// contributions live in *what* gets materialized and partitioned, not
/// in operator micro-efficiency, and the simulated cluster cost model —
/// not wall-clock of this executor — provides experiment timings.
///
/// The executor doubles as the paper's "instrumented query" mechanism
/// (Section 5, Algorithm 1 line 7): callers can register subplans to
/// capture, and their intermediate outputs are retained for view
/// materialization (the Hive partition-operator + file-sink pipeline of
/// Section 9 corresponds to PartitionRows below).
class Executor {
 public:
  explicit Executor(const Catalog* catalog) : catalog_(catalog) {}

  /// Marks a subplan (by node identity) whose intermediate result should
  /// be captured during the next Execute call.
  void CaptureSubplan(const PlanNode* node) { capture_.insert(node); }
  void ClearCaptures() {
    capture_.clear();
    captured_.clear();
  }

  /// Executes the plan, returning its full result. Captured subplan
  /// outputs are available from captured() afterwards.
  Result<ExecResult> Execute(const PlanPtr& plan);

  /// Intermediate results captured during the last Execute.
  const std::map<const PlanNode*, ExecResult>& captured() const {
    return captured_;
  }

 private:
  Result<ExecResult> ExecNode(const PlanPtr& plan);
  Result<ExecResult> ExecScan(const PlanPtr& plan);
  Result<ExecResult> ExecViewRef(const PlanPtr& plan);
  Result<ExecResult> ExecSelect(const PlanPtr& plan);
  Result<ExecResult> ExecProject(const PlanPtr& plan);
  Result<ExecResult> ExecJoin(const PlanPtr& plan);
  Result<ExecResult> ExecAggregate(const PlanPtr& plan);
  Result<ExecResult> ExecSort(const PlanPtr& plan);
  Result<ExecResult> ExecLimit(const PlanPtr& plan);

  const Catalog* catalog_;
  std::set<const PlanNode*> capture_;
  std::map<const PlanNode*, ExecResult> captured_;
};

/// Splits `input` rows into one bucket per interval based on the numeric
/// value of `partition_attr` (the paper's partition operator, Section
/// 9). A row lands in *every* interval containing its key, so the same
/// routine serves horizontal and overlapping partitionings. Rows whose
/// key is NULL or outside all intervals are dropped (they would form the
/// implicit remainder fragment; DeepSea always keeps fragmentations
/// covering the domain so this only happens for malformed input).
Result<std::vector<std::vector<Row>>> PartitionRows(
    const ExecResult& input, const std::string& partition_attr,
    const std::vector<Interval>& intervals);

}  // namespace deepsea

#endif  // DEEPSEA_EXEC_EXECUTOR_H_
