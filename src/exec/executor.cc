#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

namespace deepsea {

Result<ExecResult> Executor::Execute(const PlanPtr& plan) {
  captured_.clear();
  return ExecNode(plan);
}

Result<ExecResult> Executor::ExecNode(const PlanPtr& plan) {
  Result<ExecResult> result = [&]() -> Result<ExecResult> {
    switch (plan->kind()) {
      case PlanKind::kScan:
        return ExecScan(plan);
      case PlanKind::kViewRef:
        return ExecViewRef(plan);
      case PlanKind::kSelect:
        return ExecSelect(plan);
      case PlanKind::kProject:
        return ExecProject(plan);
      case PlanKind::kJoin:
        return ExecJoin(plan);
      case PlanKind::kAggregate:
        return ExecAggregate(plan);
      case PlanKind::kSort:
        return ExecSort(plan);
      case PlanKind::kLimit:
        return ExecLimit(plan);
    }
    return Status::Internal("bad plan kind");
  }();
  if (result.ok() && capture_.count(plan.get())) {
    captured_[plan.get()] = *result;
  }
  return result;
}

Result<ExecResult> Executor::ExecScan(const PlanPtr& plan) {
  DEEPSEA_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(plan->table_name()));
  ExecResult out;
  out.schema = table->schema();
  out.rows = table->rows();
  return out;
}

Result<ExecResult> Executor::ExecViewRef(const PlanPtr& plan) {
  DEEPSEA_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(plan->table_name()));
  ExecResult out;
  out.schema = table->schema();
  if (plan->view_fragments().empty()) {
    out.rows = table->rows();
    return out;
  }
  const auto idx = out.schema.FindColumn(plan->view_partition_attr());
  if (!idx.has_value()) {
    return Status::NotFound("view partition attribute not in view schema: " +
                            plan->view_partition_attr());
  }
  for (const Row& row : table->rows()) {
    const Value& v = row[*idx];
    if (!v.is_numeric()) continue;
    const double key = v.AsNumeric();
    // Overlapping fragments can cover a key more than once; emit the row
    // only once (the rewriter's greedy cover already dedups reads, but a
    // defensive check keeps results duplicate-free).
    for (const Interval& iv : plan->view_fragments()) {
      if (iv.Contains(key)) {
        out.rows.push_back(row);
        break;
      }
    }
  }
  return out;
}

Result<ExecResult> Executor::ExecSelect(const PlanPtr& plan) {
  DEEPSEA_ASSIGN_OR_RETURN(ExecResult in, ExecNode(plan->child(0)));
  ExecResult out;
  out.schema = in.schema;
  for (Row& row : in.rows) {
    DEEPSEA_ASSIGN_OR_RETURN(Value keep, plan->predicate()->Eval(row, in.schema));
    if (keep.is_bool() && keep.AsBool()) out.rows.push_back(std::move(row));
  }
  return out;
}

Result<ExecResult> Executor::ExecProject(const PlanPtr& plan) {
  DEEPSEA_ASSIGN_OR_RETURN(ExecResult in, ExecNode(plan->child(0)));
  DEEPSEA_ASSIGN_OR_RETURN(Schema out_schema, plan->OutputSchema(*catalog_));
  ExecResult out;
  out.schema = out_schema;
  out.rows.reserve(in.rows.size());
  for (const Row& row : in.rows) {
    Row projected;
    projected.reserve(plan->project_exprs().size());
    for (const ExprPtr& e : plan->project_exprs()) {
      DEEPSEA_ASSIGN_OR_RETURN(Value v, e->Eval(row, in.schema));
      projected.push_back(std::move(v));
    }
    out.rows.push_back(std::move(projected));
  }
  return out;
}

Result<ExecResult> Executor::ExecJoin(const PlanPtr& plan) {
  DEEPSEA_ASSIGN_OR_RETURN(ExecResult left, ExecNode(plan->child(0)));
  DEEPSEA_ASSIGN_OR_RETURN(ExecResult right, ExecNode(plan->child(1)));
  ExecResult out;
  out.schema = left.schema.Concat(right.schema);

  // Partition the join condition into hashable equi-key pairs and a
  // residual applied post-concatenation.
  const RangeExtraction ex = ExtractRanges(plan->predicate());
  std::vector<std::pair<size_t, size_t>> key_pairs;  // (left idx, right idx)
  std::vector<ExprPtr> residual_conjuncts = ex.residuals;
  for (const ColumnRange& r : ex.ranges) {
    // Range constraints inside a join condition act as filters; rebuild
    // them as residual predicates on the concatenated schema.
    ExprPtr cond;
    if (std::isfinite(r.lo)) {
      cond = Cmp(r.lo_inclusive ? CompareOp::kGe : CompareOp::kGt, Col(r.column),
                 LitD(r.lo));
    }
    if (std::isfinite(r.hi)) {
      ExprPtr hi_cond = Cmp(r.hi_inclusive ? CompareOp::kLe : CompareOp::kLt,
                            Col(r.column), LitD(r.hi));
      cond = cond ? And(cond, hi_cond) : hi_cond;
    }
    if (cond) residual_conjuncts.push_back(cond);
  }
  for (const auto& [a, b] : ex.column_equalities) {
    const auto la = left.schema.FindColumn(a);
    const auto rb = right.schema.FindColumn(b);
    if (la.has_value() && rb.has_value()) {
      key_pairs.emplace_back(*la, *rb);
      continue;
    }
    const auto lb = left.schema.FindColumn(b);
    const auto ra = right.schema.FindColumn(a);
    if (lb.has_value() && ra.has_value()) {
      key_pairs.emplace_back(*lb, *ra);
      continue;
    }
    // Same-side equality: treat as residual filter.
    residual_conjuncts.push_back(Cmp(CompareOp::kEq, Col(a), Col(b)));
  }
  if (key_pairs.empty()) {
    return Status::InvalidArgument(
        "join condition contains no cross-input column equality: " +
        (plan->predicate() ? plan->predicate()->ToString() : "<null>"));
  }
  const ExprPtr residual = AndAll(residual_conjuncts);

  // Build on the smaller input.
  const bool build_right = right.rows.size() <= left.rows.size();
  const ExecResult& build = build_right ? right : left;
  const ExecResult& probe = build_right ? left : right;

  auto build_key = [&](const Row& row) {
    Row key;
    key.reserve(key_pairs.size());
    for (const auto& [li, ri] : key_pairs) {
      key.push_back(row[build_right ? ri : li]);
    }
    return key;
  };
  auto probe_key = [&](const Row& row) {
    Row key;
    key.reserve(key_pairs.size());
    for (const auto& [li, ri] : key_pairs) {
      key.push_back(row[build_right ? li : ri]);
    }
    return key;
  };

  std::unordered_multimap<size_t, size_t> table;  // hash -> build row index
  table.reserve(build.rows.size());
  for (size_t i = 0; i < build.rows.size(); ++i) {
    table.emplace(HashRow(build_key(build.rows[i])), i);
  }
  for (const Row& prow : probe.rows) {
    const Row pkey = probe_key(prow);
    auto [begin, end] = table.equal_range(HashRow(pkey));
    for (auto it = begin; it != end; ++it) {
      const Row& brow = build.rows[it->second];
      if (build_key(brow) != pkey) continue;  // hash collision
      Row joined;
      const Row& lrow = build_right ? prow : brow;
      const Row& rrow = build_right ? brow : prow;
      joined.reserve(lrow.size() + rrow.size());
      joined.insert(joined.end(), lrow.begin(), lrow.end());
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      if (residual) {
        DEEPSEA_ASSIGN_OR_RETURN(Value keep, residual->Eval(joined, out.schema));
        if (!keep.is_bool() || !keep.AsBool()) continue;
      }
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

namespace {

struct AggState {
  double sum = 0.0;
  int64_t count = 0;
  Value min;
  Value max;
  bool sum_is_integral = true;
  int64_t isum = 0;
};

}  // namespace

Result<ExecResult> Executor::ExecAggregate(const PlanPtr& plan) {
  DEEPSEA_ASSIGN_OR_RETURN(ExecResult in, ExecNode(plan->child(0)));
  DEEPSEA_ASSIGN_OR_RETURN(Schema out_schema, plan->OutputSchema(*catalog_));

  std::vector<size_t> group_idx;
  for (const std::string& g : plan->group_by()) {
    const auto idx = in.schema.FindColumn(g);
    if (!idx.has_value()) return Status::NotFound("group-by column: " + g);
    group_idx.push_back(*idx);
  }
  std::vector<std::optional<size_t>> agg_idx;
  for (const AggregateSpec& a : plan->aggregates()) {
    if (a.fn == AggFunc::kCount && a.input_column.empty()) {
      agg_idx.push_back(std::nullopt);
      continue;
    }
    const auto idx = in.schema.FindColumn(a.input_column);
    if (!idx.has_value()) {
      return Status::NotFound("aggregate input column: " + a.input_column);
    }
    agg_idx.push_back(*idx);
  }

  // Group rows by key hash, verifying equality to resolve collisions.
  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::unordered_map<size_t, std::vector<Group>> groups;
  const size_t num_aggs = plan->aggregates().size();
  for (const Row& row : in.rows) {
    Row key;
    key.reserve(group_idx.size());
    for (size_t gi : group_idx) key.push_back(row[gi]);
    const size_t h = HashRow(key);
    auto& bucket = groups[h];
    Group* group = nullptr;
    for (Group& g : bucket) {
      if (g.key == key) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(Group{key, std::vector<AggState>(num_aggs)});
      group = &bucket.back();
    }
    for (size_t ai = 0; ai < num_aggs; ++ai) {
      AggState& st = group->states[ai];
      if (!agg_idx[ai].has_value()) {  // COUNT(*)
        ++st.count;
        continue;
      }
      const Value& v = row[*agg_idx[ai]];
      if (v.is_null()) continue;
      ++st.count;
      if (v.is_numeric()) {
        st.sum += v.AsNumeric();
        if (v.is_int64()) {
          st.isum += v.AsInt64();
        } else {
          st.sum_is_integral = false;
        }
      }
      if (st.min.is_null() || v < st.min) st.min = v;
      if (st.max.is_null() || v > st.max) st.max = v;
    }
  }

  ExecResult out;
  out.schema = out_schema;
  // Deterministic output order: sort groups by key.
  std::vector<const Group*> ordered;
  for (const auto& [_, bucket] : groups) {
    for (const Group& g : bucket) ordered.push_back(&g);
  }
  std::sort(ordered.begin(), ordered.end(), [](const Group* a, const Group* b) {
    const size_t n = std::min(a->key.size(), b->key.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = a->key[i].Compare(b->key[i]);
      if (c != 0) return c < 0;
    }
    return a->key.size() < b->key.size();
  });
  // Global aggregate over empty input: emit one row of zeros/NULLs.
  if (ordered.empty() && group_idx.empty()) {
    Row row;
    for (size_t ai = 0; ai < num_aggs; ++ai) {
      row.push_back(plan->aggregates()[ai].fn == AggFunc::kCount
                        ? Value(static_cast<int64_t>(0))
                        : Value::Null());
    }
    out.rows.push_back(std::move(row));
    return out;
  }
  for (const Group* g : ordered) {
    Row row = g->key;
    for (size_t ai = 0; ai < num_aggs; ++ai) {
      const AggState& st = g->states[ai];
      switch (plan->aggregates()[ai].fn) {
        case AggFunc::kCount:
          row.push_back(Value(st.count));
          break;
        case AggFunc::kSum:
          if (st.count == 0) {
            row.push_back(Value::Null());
          } else if (st.sum_is_integral) {
            row.push_back(Value(st.isum));
          } else {
            row.push_back(Value(st.sum));
          }
          break;
        case AggFunc::kMin:
          row.push_back(st.min);
          break;
        case AggFunc::kMax:
          row.push_back(st.max);
          break;
        case AggFunc::kAvg:
          row.push_back(st.count == 0 ? Value::Null()
                                      : Value(st.sum / static_cast<double>(st.count)));
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<ExecResult> Executor::ExecSort(const PlanPtr& plan) {
  DEEPSEA_ASSIGN_OR_RETURN(ExecResult in, ExecNode(plan->child(0)));
  std::vector<size_t> key_idx;
  std::vector<bool> ascending;
  for (const SortKey& k : plan->sort_keys()) {
    const auto idx = in.schema.FindColumn(k.column);
    if (!idx.has_value()) return Status::NotFound("sort column: " + k.column);
    key_idx.push_back(*idx);
    ascending.push_back(k.ascending);
  }
  std::stable_sort(in.rows.begin(), in.rows.end(),
                   [&](const Row& a, const Row& b) {
                     for (size_t i = 0; i < key_idx.size(); ++i) {
                       const int c = a[key_idx[i]].Compare(b[key_idx[i]]);
                       if (c != 0) return ascending[i] ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return in;
}

Result<ExecResult> Executor::ExecLimit(const PlanPtr& plan) {
  DEEPSEA_ASSIGN_OR_RETURN(ExecResult in, ExecNode(plan->child(0)));
  const size_t n = static_cast<size_t>(std::max<int64_t>(plan->limit(), 0));
  if (in.rows.size() > n) in.rows.resize(n);
  return in;
}

Result<std::vector<std::vector<Row>>> PartitionRows(
    const ExecResult& input, const std::string& partition_attr,
    const std::vector<Interval>& intervals) {
  const auto idx = input.schema.FindColumn(partition_attr);
  if (!idx.has_value()) {
    return Status::NotFound("partition attribute not in schema: " + partition_attr);
  }
  std::vector<std::vector<Row>> buckets(intervals.size());
  for (const Row& row : input.rows) {
    const Value& v = row[*idx];
    if (!v.is_numeric()) continue;
    const double key = v.AsNumeric();
    for (size_t i = 0; i < intervals.size(); ++i) {
      if (intervals[i].Contains(key)) buckets[i].push_back(row);
    }
  }
  return buckets;
}

}  // namespace deepsea
