#include "exp/experiment.h"

#include <cstdio>

#include "common/str_util.h"

namespace deepsea {

Result<RunResult> ExperimentRunner::Run(const StrategySpec& strategy,
                                        const std::vector<WorkloadQuery>& workload,
                                        EngineObserver* observer) const {
  Catalog catalog;
  DEEPSEA_RETURN_IF_ERROR(BigBenchDataset::Generate(data_options_, &catalog));
  DeepSeaEngine engine(&catalog, strategy.options);
  if (observer != nullptr) engine.set_observer(observer);

  RunResult out;
  out.label = strategy.label;
  out.per_query_seconds.reserve(workload.size());
  out.cumulative_seconds.reserve(workload.size() + 1);
  out.cumulative_seconds.push_back(0.0);
  for (const WorkloadQuery& wq : workload) {
    DEEPSEA_ASSIGN_OR_RETURN(
        PlanPtr plan,
        BigBenchTemplates::Build(wq.template_name, wq.range.lo, wq.range.hi));
    DEEPSEA_ASSIGN_OR_RETURN(QueryReport report, engine.ProcessQuery(plan));
    out.total_seconds += report.total_seconds;
    out.base_total_seconds += report.base_seconds;
    out.per_query_seconds.push_back(report.total_seconds);
    out.cumulative_seconds.push_back(out.total_seconds);
  }
  out.totals = engine.totals();
  out.final_pool_bytes = engine.PoolBytes();
  return out;
}

Result<double> ExperimentRunner::BaseTableBytes() const {
  Catalog catalog;
  DEEPSEA_RETURN_IF_ERROR(BigBenchDataset::Generate(data_options_, &catalog));
  return catalog.TotalLogicalBytes();
}

void TablePrinter::Header(const std::vector<std::string>& cols) const {
  Row(cols);
  std::string sep;
  for (size_t i = 0; i < cols.size(); ++i) {
    sep += std::string(static_cast<size_t>(width_), '-');
    if (i + 1 < cols.size()) sep += "-+-";
  }
  std::printf("%s\n", sep.c_str());
}

void TablePrinter::Row(const std::vector<std::string>& cells) const {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    line += StrFormat("%*s", width_, cells[i].c_str());
    if (i + 1 < cells.size()) line += " | ";
  }
  std::printf("%s\n", line.c_str());
}

std::string FmtSeconds(double s) { return StrFormat("%.0f", s); }

std::string FmtRatio(double r) { return StrFormat("%.2f", r); }

}  // namespace deepsea
