#include "exp/metrics.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

#include "common/str_util.h"
#include "core/engine_options.h"
#include "core/materialization_service.h"

namespace deepsea {

constexpr double MetricsObserver::kBucketBounds[];
const char* const MetricsObserver::kBucketLabels[kFiniteBuckets] = {
    "1e-06", "1e-05", "0.0001", "0.001", "0.01", "0.1",
    "1",     "10",    "100",    "1000",  "10000", "100000"};
const char* const
    MetricsObserver::kExclusiveReasonNames[kExclusiveReasonCount] = {
        "merge",        "eviction", "physical", "new_view", "catalog_put",
        "index_insert", "attach",   "replan",   "other"};
// Must track SelectionStrategyName / SelectionStrategyKind order
// (selection_strategy_test pins the correspondence).
const char* const
    MetricsObserver::kSelectionStrategyNames[kSelectionStrategyCount] = {
        "greedy", "local_search", "cluster_greedy", "cluster_local_search"};

namespace {

/// Index into kSelectionStrategyNames, or kSelectionStrategyCount when
/// the name is unknown/empty (the sample is then dropped rather than
/// mislabeled).
size_t SelectionStrategyIndex(const char* name) {
  if (name == nullptr) return MetricsObserver::kSelectionStrategyCount;
  for (size_t i = 0; i < MetricsObserver::kSelectionStrategyCount; ++i) {
    if (std::strcmp(MetricsObserver::kSelectionStrategyNames[i], name) == 0) {
      return i;
    }
  }
  return MetricsObserver::kSelectionStrategyCount;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// fetch_add for atomic<double> without relying on C++20 atomic-float
/// support in the toolchain: a relaxed CAS loop (the hot path adds are
/// per-tenant shards, so contention is a same-tenant race only).
void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
  }
}

/// Prometheus sample-value formatting: %.17g round-trips doubles, with
/// the spec spellings for the non-finite values.
std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return StrFormat("%.17g", v);
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

size_t MetricsObserver::BucketIndex(double value) {
  for (size_t i = 0; i < kFiniteBuckets; ++i) {
    if (value <= kBucketBounds[i]) return i;
  }
  return kFiniteBuckets;  // +Inf
}

void MetricsObserver::set_pool(const PoolManager* pool) {
  pool_ = pool;
  attach_held_seconds_ =
      pool != nullptr ? pool->commit_lock_stats().held_seconds : 0.0;
  attach_wall_ns_ = SteadyNowNs();
}

MetricsObserver::TenantMetrics* MetricsObserver::Tenant(
    const std::string& tenant) {
  {
    std::shared_lock<std::shared_mutex> lock(tenants_mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(tenants_mu_);
  auto& slot = tenants_[tenant];
  if (slot == nullptr) slot = std::make_unique<TenantMetrics>();
  return slot.get();
}

void MetricsObserver::OnStageEnd(EngineStage stage, const QueryContext& ctx,
                                 double sim_seconds, double wall_seconds) {
  TenantMetrics* t = Tenant(ctx.tenant());
  StageSeries& s = t->stages[static_cast<size_t>(stage)];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&s.sim_sum, sim_seconds);
  AtomicAddDouble(&s.wall_sum, wall_seconds);
  s.sim_buckets[BucketIndex(sim_seconds)].fetch_add(1,
                                                    std::memory_order_relaxed);
  s.wall_buckets[BucketIndex(wall_seconds)].fetch_add(
      1, std::memory_order_relaxed);
  // Selection latency additionally lands in the per-strategy histogram
  // (the engine stamps the context before the stage closes).
  if (stage == EngineStage::kSelection) {
    const size_t idx = SelectionStrategyIndex(ctx.selection_strategy);
    if (idx < kSelectionStrategyCount) {
      QuerySeries& w = t->selection_wall[idx];
      w.count.fetch_add(1, std::memory_order_relaxed);
      AtomicAddDouble(&w.sum, wall_seconds);
      w.buckets[BucketIndex(wall_seconds)].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
}

void MetricsObserver::OnMaterializeView(const ViewInfo& view,
                                        double sim_seconds,
                                        const std::string& tenant) {
  (void)sim_seconds;
  TenantMetrics* t = Tenant(tenant);
  t->views_materialized.fetch_add(1, std::memory_order_relaxed);
  // Whole-view (NP-style) materialization carries no per-fragment
  // events; its bytes enter the pool here. A partitioned creation's
  // bytes arrive through its OnMaterializeFragment events instead.
  if (view.whole_materialized) {
    AtomicAddDouble(&t->materialized_bytes, view.stats.size_bytes);
  }
}

void MetricsObserver::OnMaterializeFragment(const ViewInfo& view,
                                            const std::string& attr,
                                            const Interval& interval,
                                            double bytes,
                                            const std::string& tenant) {
  (void)view;
  (void)attr;
  (void)interval;
  TenantMetrics* t = Tenant(tenant);
  t->fragments_materialized.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&t->materialized_bytes, bytes);
}

void MetricsObserver::OnEvict(const ViewInfo& view, const std::string& attr,
                              const Interval& interval, double bytes,
                              const std::string& tenant) {
  (void)view;
  (void)attr;
  (void)interval;
  TenantMetrics* t = Tenant(tenant);
  t->evictions.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&t->evicted_bytes, bytes);
}

void MetricsObserver::OnMerge(const ViewInfo& view, const std::string& attr,
                              const Interval& merged, double bytes,
                              const std::string& tenant) {
  (void)view;
  (void)attr;
  (void)merged;
  TenantMetrics* t = Tenant(tenant);
  t->merges.fetch_add(1, std::memory_order_relaxed);
  // The merged fragment is a fresh pool write; the two parents it
  // replaces leave through their own OnEvict events.
  AtomicAddDouble(&t->materialized_bytes, bytes);
}

void MetricsObserver::OnFault(EngineStage stage, const std::string& view_id,
                              const Status& status, int attempt,
                              const std::string& tenant) {
  (void)stage;
  (void)view_id;
  (void)status;
  (void)attempt;
  Tenant(tenant)->faults.fetch_add(1, std::memory_order_relaxed);
}

void MetricsObserver::OnRetry(EngineStage stage, int next_attempt,
                              const std::string& tenant) {
  (void)stage;
  (void)next_attempt;
  Tenant(tenant)->retries.fetch_add(1, std::memory_order_relaxed);
}

void MetricsObserver::OnDegrade(EngineStage stage, const std::string& view_id,
                                const Status& status,
                                const std::string& tenant) {
  (void)stage;
  (void)view_id;
  (void)status;
  Tenant(tenant)->degrades.fetch_add(1, std::memory_order_relaxed);
}

void MetricsObserver::OnQueryEnd(const QueryReport& report) {
  TenantMetrics* t = Tenant(report.tenant_id);
  t->queries.fetch_add(1, std::memory_order_relaxed);
  if (report.replanned) {
    t->replanned_queries.fetch_add(1, std::memory_order_relaxed);
    if (report.replan_conflict) {
      t->replans_conflict.fetch_add(1, std::memory_order_relaxed);
    }
    if (report.replan_spurious) {
      t->replans_spurious.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (report.exclusive_reason.empty()) {
    t->commits_sharded.fetch_add(1, std::memory_order_relaxed);
  } else {
    size_t reason = kExclusiveReasonCount - 1;  // "other"
    for (size_t r = 0; r < kExclusiveReasonCount; ++r) {
      if (report.exclusive_reason == kExclusiveReasonNames[r]) {
        reason = r;
        break;
      }
    }
    t->commits_exclusive_reason[reason].fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  if (!report.used_view.empty()) {
    t->queries_from_views.fetch_add(1, std::memory_order_relaxed);
  }
  if (report.degraded) {
    t->degraded_queries.fetch_add(1, std::memory_order_relaxed);
  }
  t->fragments_read.fetch_add(report.fragments_read,
                              std::memory_order_relaxed);
  const size_t strat = SelectionStrategyIndex(
      report.selection_strategy.empty() ? nullptr
                                        : report.selection_strategy.c_str());
  if (strat < kSelectionStrategyCount) {
    t->selection_decisions[strat].fetch_add(1, std::memory_order_relaxed);
    AtomicAddDouble(&t->selection_benefit[strat], report.selection_benefit);
    t->selection_swaps[strat].fetch_add(report.selection_swaps,
                                        std::memory_order_relaxed);
    t->selection_merged[strat].fetch_add(report.selection_merged_candidates,
                                         std::memory_order_relaxed);
  }
  t->query_sim.count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&t->query_sim.sum, report.total_seconds);
  t->query_sim.buckets[BucketIndex(report.total_seconds)].fetch_add(
      1, std::memory_order_relaxed);
}

namespace {

using Snapshot = MetricsObserver::MetricsSnapshot;

void CopyHistogram(const std::atomic<int64_t>& count,
                   const std::atomic<double>& sum,
                   const std::array<std::atomic<uint64_t>,
                                    MetricsObserver::kBucketCount>& buckets,
                   Snapshot::Histogram* out) {
  out->count = count.load(std::memory_order_relaxed);
  out->sum = sum.load(std::memory_order_relaxed);
  for (size_t b = 0; b < MetricsObserver::kBucketCount; ++b) {
    out->buckets[b] = buckets[b].load(std::memory_order_relaxed);
  }
}

void AddHistogram(const Snapshot::Histogram& in, Snapshot::Histogram* out) {
  out->count += in.count;
  out->sum += in.sum;
  for (size_t b = 0; b < MetricsObserver::kBucketCount; ++b) {
    out->buckets[b] += in.buckets[b];
  }
}

}  // namespace

MetricsObserver::MetricsSnapshot::Tenant
MetricsObserver::MetricsSnapshot::Totals() const {
  Tenant total;
  for (const auto& [name, t] : tenants) {
    (void)name;
    total.queries += t.queries;
    total.replanned_queries += t.replanned_queries;
    total.replans_conflict += t.replans_conflict;
    total.replans_spurious += t.replans_spurious;
    total.commits_sharded += t.commits_sharded;
    for (size_t r = 0; r < kExclusiveReasonCount; ++r) {
      total.commits_exclusive_reason[r] += t.commits_exclusive_reason[r];
    }
    total.queries_from_views += t.queries_from_views;
    total.degraded_queries += t.degraded_queries;
    total.fragments_read += t.fragments_read;
    total.views_materialized += t.views_materialized;
    total.fragments_materialized += t.fragments_materialized;
    total.evictions += t.evictions;
    total.merges += t.merges;
    total.faults += t.faults;
    total.retries += t.retries;
    total.degrades += t.degrades;
    total.materialized_bytes += t.materialized_bytes;
    total.evicted_bytes += t.evicted_bytes;
    for (size_t i = 0; i < kSelectionStrategyCount; ++i) {
      total.selection_decisions[i] += t.selection_decisions[i];
      total.selection_benefit[i] += t.selection_benefit[i];
      total.selection_swaps[i] += t.selection_swaps[i];
      total.selection_merged[i] += t.selection_merged[i];
      AddHistogram(t.selection_wall[i], &total.selection_wall[i]);
    }
    for (size_t s = 0; s < kStageCount; ++s) {
      AddHistogram(t.stage_sim[s], &total.stage_sim[s]);
      AddHistogram(t.stage_wall[s], &total.stage_wall[s]);
    }
    AddHistogram(t.query_sim, &total.query_sim);
  }
  return total;
}

MetricsObserver::MetricsSnapshot MetricsObserver::TakeSnapshot() const {
  MetricsSnapshot snap;
  {
    std::shared_lock<std::shared_mutex> lock(tenants_mu_);
    for (const auto& [name, t] : tenants_) {
      MetricsSnapshot::Tenant& out = snap.tenants[name];
      out.queries = t->queries.load(std::memory_order_relaxed);
      out.replanned_queries =
          t->replanned_queries.load(std::memory_order_relaxed);
      out.replans_conflict =
          t->replans_conflict.load(std::memory_order_relaxed);
      out.replans_spurious =
          t->replans_spurious.load(std::memory_order_relaxed);
      out.commits_sharded = t->commits_sharded.load(std::memory_order_relaxed);
      for (size_t r = 0; r < kExclusiveReasonCount; ++r) {
        out.commits_exclusive_reason[r] =
            t->commits_exclusive_reason[r].load(std::memory_order_relaxed);
      }
      out.queries_from_views =
          t->queries_from_views.load(std::memory_order_relaxed);
      out.degraded_queries =
          t->degraded_queries.load(std::memory_order_relaxed);
      out.fragments_read = t->fragments_read.load(std::memory_order_relaxed);
      out.views_materialized =
          t->views_materialized.load(std::memory_order_relaxed);
      out.fragments_materialized =
          t->fragments_materialized.load(std::memory_order_relaxed);
      out.evictions = t->evictions.load(std::memory_order_relaxed);
      out.merges = t->merges.load(std::memory_order_relaxed);
      out.faults = t->faults.load(std::memory_order_relaxed);
      out.retries = t->retries.load(std::memory_order_relaxed);
      out.degrades = t->degrades.load(std::memory_order_relaxed);
      out.materialized_bytes =
          t->materialized_bytes.load(std::memory_order_relaxed);
      out.evicted_bytes = t->evicted_bytes.load(std::memory_order_relaxed);
      for (size_t i = 0; i < kSelectionStrategyCount; ++i) {
        out.selection_decisions[i] =
            t->selection_decisions[i].load(std::memory_order_relaxed);
        out.selection_benefit[i] =
            t->selection_benefit[i].load(std::memory_order_relaxed);
        out.selection_swaps[i] =
            t->selection_swaps[i].load(std::memory_order_relaxed);
        out.selection_merged[i] =
            t->selection_merged[i].load(std::memory_order_relaxed);
        CopyHistogram(t->selection_wall[i].count, t->selection_wall[i].sum,
                      t->selection_wall[i].buckets, &out.selection_wall[i]);
      }
      for (size_t s = 0; s < kStageCount; ++s) {
        const StageSeries& series = t->stages[s];
        CopyHistogram(series.calls, series.sim_sum, series.sim_buckets,
                      &out.stage_sim[s]);
        CopyHistogram(series.calls, series.wall_sum, series.wall_buckets,
                      &out.stage_wall[s]);
      }
      CopyHistogram(t->query_sim.count, t->query_sim.sum,
                    t->query_sim.buckets, &out.query_sim);
    }
  }
  if (pool_ != nullptr) {
    // One shared-lock pass over the pool makes the gauges mutually
    // consistent (never call from inside the commit section).
    auto shared = pool_->SharedLock();
    MetricsSnapshot::PoolGauges& g = snap.pool;
    g.present = true;
    g.pool_bytes = pool_->PoolBytes();
    g.pool_limit_bytes = pool_->options().pool_limit_bytes;
    g.commit_clock = pool_->clock();
    for (const ViewInfo* v : pool_->views().AllViews()) {
      ++g.views_tracked;
      if (v->InPool()) ++g.views_materialized;
      if (v->Quarantined(g.commit_clock)) ++g.views_quarantined;
      for (const auto& [attr, part] : v->partitions) {
        (void)attr;
        for (const FragmentStats& f : part.fragments) {
          ++g.fragments_tracked;
          if (f.materialized) ++g.fragments_materialized;
        }
      }
    }
    const PoolManager::CommitLockStats lock_stats =
        pool_->commit_lock_stats();
    g.commits = lock_stats.commits;
    g.commit_lock_held_seconds = lock_stats.held_seconds;
    g.commit_shards = pool_->commit_shard_stats();
    const double wall =
        static_cast<double>(SteadyNowNs() - attach_wall_ns_) * 1e-9;
    g.commit_lock_hold_fraction =
        wall > 0.0
            ? (lock_stats.held_seconds - attach_held_seconds_) / wall
            : 0.0;
    if (const MaterializationService* mat =
            pool_->materialization_service()) {
      // Queue gauges take the service's internal lock; the commit
      // shared lock held here and the queue lock nest in the same
      // order everywhere (commit -> queue), so this cannot deadlock
      // against Submit (which enqueues from inside a commit).
      MetricsSnapshot::PoolGauges::Materialization& m = g.materialization;
      m.configured = true;
      m.queue_depth = static_cast<int64_t>(mat->QueueDepth());
      m.queue_bytes = mat->QueueBytes();
      m.oldest_age_seconds = mat->OldestAgeSeconds();
      const MaterializationService::StatsSnapshot s = mat->stats();
      m.submitted = s.submitted;
      m.executed = s.executed;
      m.failed = s.failed;
      m.shed = s.shed;
      m.coalesced = s.coalesced;
      m.stale_dropped = s.stale_dropped;
      m.background_sim_seconds = s.background_sim_seconds;
      m.enqueue_to_fold.count = s.latency_count;
      m.enqueue_to_fold.sum = s.latency_sum_seconds;
      static_assert(MaterializationService::kLatencyBuckets ==
                        MetricsObserver::kFiniteBuckets,
                    "service and exporter histograms must share bounds");
      for (size_t b = 0; b < kBucketCount; ++b) {
        m.enqueue_to_fold.buckets[b] = s.latency_buckets[b];
      }
    }
  }
  return snap;
}

// --- Prometheus rendering --------------------------------------------

namespace {

const MetricInfo* FindInfo(const std::vector<MetricInfo>& registry,
                           const char* name) {
  for (const MetricInfo& m : registry) {
    if (std::strcmp(m.name, name) == 0) return &m;
  }
  return nullptr;
}

}  // namespace

const std::vector<MetricInfo>& MetricsObserver::Registry() {
  static const std::vector<MetricInfo> kRegistry = {
      {"deepsea_queries_total", "counter",
       "Queries processed (OnQueryEnd).", "tenant", false, false},
      {"deepsea_replanned_queries_total", "counter",
       "Queries whose speculative shared-lock plan was invalidated by a "
       "foreign commit and replanned under the exclusive lock.",
       "tenant", false, false},
      {"deepsea_replans_conflict_total", "counter",
       "Replans caused by a genuine read-set conflict: a foreign commit "
       "published after the plan's read epoch (or still in flight) wrote "
       "something the plan read.",
       "tenant", false, false},
      {"deepsea_replans_spurious_total", "counter",
       "Replans forced without a proven conflict because the bounded "
       "epoch table no longer covered the plan's read epoch.",
       "tenant", false, false},
      {"deepsea_commits_sharded_total", "counter",
       "Queries that committed on the sharded (IX + per-view shard "
       "locks) path after read-set validation.",
       "tenant", false, false},
      {"deepsea_commits_exclusive_reason_total", "counter",
       "Queries that committed on the exclusive (X) path, by reason: "
       "merge (merge pass enabled), eviction (decision evicts inline), "
       "physical (physical execution), new_view / catalog_put / "
       "index_insert / attach (replanned commit carrying that "
       "structural content), replan (replanned, no structural "
       "content), other. Only nonzero cells are exported.",
       "reason,tenant", false, false},
      {"deepsea_queries_from_views_total", "counter",
       "Queries answered from a materialized view.", "tenant", false, false},
      {"deepsea_degraded_queries_total", "counter",
       "Queries whose selection decision was abandoned after storage "
       "faults (answered from pre-fault pool state).",
       "tenant", false, false},
      {"deepsea_fragments_read_total", "counter",
       "Materialized fragments read by chosen rewritings.", "tenant", false,
       false},
      {"deepsea_views_materialized_total", "counter",
       "View materializations committed (whole-view or initial "
       "partitioned creation).",
       "tenant", false, false},
      {"deepsea_fragments_materialized_total", "counter",
       "Fragments that entered the pool (initial fragments and "
       "refinements).",
       "tenant", false, false},
      {"deepsea_evictions_total", "counter",
       "Fragments/whole views that left the pool (policy evictions, "
       "split parents, merge parents).",
       "tenant", false, false},
      {"deepsea_merges_total", "counter",
       "Fragment pairs merged by the maintenance pass.", "tenant", false,
       false},
      {"deepsea_faults_total", "counter",
       "Decision-execution attempts that failed and rolled back.", "tenant",
       false, false},
      {"deepsea_retries_total", "counter",
       "Rolled-back attempts that were retried (transient faults).",
       "tenant", false, false},
      {"deepsea_degrades_total", "counter",
       "Degrade events (abandoned Apply or merge pass; a query can "
       "contribute several).",
       "tenant", false, false},
      {"deepsea_materialized_bytes_total", "counter",
       "Bytes written into the pool (views, fragments, merged "
       "fragments).",
       "tenant", false, false},
      {"deepsea_evicted_bytes_total", "counter",
       "Bytes evicted from the pool (the reconfiguration cost side of "
       "Def. 4).",
       "tenant", false, false},
      {"deepsea_selection_strategy_info", "gauge",
       "1 for every selection strategy that has resolved at least one "
       "decision for the tenant (greedy, local_search, cluster_greedy, "
       "cluster_local_search). Join target for the per-strategy "
       "counters; a healthy single-strategy deployment exports exactly "
       "one cell per tenant.",
       "strategy,tenant", false, false},
      {"deepsea_selection_decisions_total", "counter",
       "Selection rounds resolved, by strategy. Only strategies with at "
       "least one decision are exported.",
       "strategy,tenant", false, false},
      {"deepsea_selection_objective_total", "counter",
       "Summed knapsack objective value (admitted benefit, kept pool "
       "content included) of the decisions each strategy produced — "
       "the decision-quality numerator: divide by "
       "deepsea_selection_decisions_total for mean objective. This is "
       "the quantity local search never lowers vs its greedy seed.",
       "strategy,tenant", false, false},
      {"deepsea_selection_swaps_total", "counter",
       "Local-search improving swaps applied (0 for greedy and "
       "cluster_greedy).",
       "strategy,tenant", false, false},
      {"deepsea_selection_merged_candidates_total", "counter",
       "Candidates merged away by the clustering pre-pass (0 for "
       "greedy and local_search).",
       "strategy,tenant", false, false},
      {"deepsea_selection_wall_seconds", "histogram",
       "Host wall-clock seconds spent in the selection stage, by "
       "strategy (the strategy-overhead side of the decision-quality "
       "trade).",
       "strategy,tenant", true, false},
      {"deepsea_stage_sim_seconds", "histogram",
       "Simulated seconds charged per pipeline stage invocation.",
       "stage,tenant", false, false},
      {"deepsea_stage_wall_seconds", "histogram",
       "Host wall-clock seconds spent per pipeline stage invocation "
       "(measured only while an observer is attached).",
       "stage,tenant", true, false},
      {"deepsea_query_sim_seconds", "histogram",
       "Total simulated seconds charged per query (best plan + "
       "materialization overheads).",
       "tenant", false, false},
      {"deepsea_pool_bytes", "gauge",
       "Current pool occupancy S(C) in bytes.", "", false, true},
      {"deepsea_pool_limit_bytes", "gauge",
       "Configured pool limit S_max in bytes (+Inf when unbounded).", "",
       false, true},
      {"deepsea_pool_views_tracked", "gauge",
       "Views tracked in STAT (materialized or candidate).", "", false,
       true},
      {"deepsea_pool_views_materialized", "gauge",
       "Tracked views with at least one materialized piece.", "", false,
       true},
      {"deepsea_pool_fragments_tracked", "gauge",
       "Fragments tracked across all partitions.", "", false, true},
      {"deepsea_pool_fragments_materialized", "gauge",
       "Tracked fragments currently materialized in the pool.", "", false,
       true},
      {"deepsea_pool_views_quarantined", "gauge",
       "Views currently quarantined after repeated permanent faults.", "",
       false, true},
      {"deepsea_commit_clock", "gauge",
       "The pool's global commit clock (ticked commits across all "
       "tenants).",
       "", false, true},
      {"deepsea_commits_total", "counter",
       "Commit sections entered (includes non-ticking commits such as "
       "engine construction and state loads).",
       "", false, true},
      {"deepsea_commit_lock_held_seconds_total", "counter",
       "Aggregate host wall-clock time commit sections have been held "
       "(exclusive and sharded; concurrent sharded commits each "
       "contribute their full span).",
       "", true, true},
      {"deepsea_commit_shard_held_seconds_total", "counter",
       "Aggregate host wall-clock time each commit shard has been held "
       "by sharded commits; only shards with at least one acquisition "
       "are exported.",
       "shard", true, true},
      {"deepsea_commit_lock_hold_fraction", "gauge",
       "Commit-lock hold time over wall time since the pool was "
       "attached to this observer.",
       "", true, true},
      {"deepsea_mat_queue_depth", "gauge",
       "Decision intents queued in the background materialization "
       "service (0 in inline/drain modes).",
       "", false, true},
      {"deepsea_mat_queue_bytes", "gauge",
       "Summed admitted (estimated materialization) bytes of queued "
       "intents, the byte side of the admission bound.",
       "", false, true},
      {"deepsea_mat_queue_oldest_age_seconds", "gauge",
       "Host age of the oldest queued intent; a growing value means the "
       "workers cannot keep up with submission.",
       "", true, true},
      {"deepsea_mat_enqueued_total", "counter",
       "Decision intents submitted to the materialization service "
       "(async enqueues and drain-mode admissions).",
       "", false, true},
      {"deepsea_mat_executed_total", "counter",
       "Intents whose decision was folded into the pool.", "", false,
       true},
      {"deepsea_mat_shed_total", "counter",
       "Intents dropped by admission control (queue depth or byte "
       "bound exceeded; lowest knapsack benefit shed first).",
       "", false, true},
      {"deepsea_mat_coalesced_total", "counter",
       "Queued intents superseded in place by a newer intent targeting "
       "the same view/range set.",
       "", false, true},
      {"deepsea_mat_stale_dropped_total", "counter",
       "Intents dropped by staleness revalidation: a foreign commit "
       "changed a target partition after the intent was planned.",
       "", false, true},
      {"deepsea_mat_failed_total", "counter",
       "Intents abandoned after a permanent background fault or "
       "exhausted retries (the target view takes the quarantine hit).",
       "", false, true},
      {"deepsea_mat_background_seconds_total", "counter",
       "Simulated materialization seconds folded by background workers "
       "(time the issuing queries were NOT charged).",
       "", false, true},
      {"deepsea_mat_enqueue_to_fold_seconds", "histogram",
       "Host wall-clock latency from intent enqueue to completed "
       "background fold (executed intents only).",
       "", true, true},
  };
  return kRegistry;
}

std::string MetricsObserver::RenderPrometheusText(
    const RenderOptions& options) const {
  const MetricsSnapshot snap = TakeSnapshot();
  const std::vector<MetricInfo>& registry = Registry();
  std::string out;
  out.reserve(1 << 14);

  auto header = [&](const char* name) -> const MetricInfo* {
    const MetricInfo* info = FindInfo(registry, name);
    if (info == nullptr) return nullptr;  // registry/render drift bug
    if (!options.include_host_metrics && info->host_time) return nullptr;
    out += StrFormat("# HELP %s %s\n", info->name, info->help);
    out += StrFormat("# TYPE %s %s\n", info->name, info->type);
    return info;
  };
  auto tenant_counter = [&](const char* name, auto value_of) {
    if (header(name) == nullptr) return;
    for (const auto& [tenant, t] : snap.tenants) {
      out += StrFormat("%s{tenant=\"%s\"} %s\n", name,
                       EscapeLabelValue(tenant).c_str(),
                       FormatValue(value_of(t)).c_str());
    }
  };
  // Histogram series with an optional extra fixed label ("stage=...").
  auto histogram_series = [&](const char* name, const std::string& extra,
                              const std::string& tenant,
                              const MetricsSnapshot::Histogram& h) {
    const std::string labels =
        extra + (extra.empty() ? "" : ",") + "tenant=\"" +
        EscapeLabelValue(tenant) + "\"";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < kFiniteBuckets; ++b) {
      cumulative += h.buckets[b];
      out += StrFormat("%s_bucket{%s,le=\"%s\"} %llu\n", name, labels.c_str(),
                       kBucketLabels[b],
                       static_cast<unsigned long long>(cumulative));
    }
    cumulative += h.buckets[kFiniteBuckets];
    out += StrFormat("%s_bucket{%s,le=\"+Inf\"} %llu\n", name, labels.c_str(),
                     static_cast<unsigned long long>(cumulative));
    out += StrFormat("%s_sum{%s} %s\n", name, labels.c_str(),
                     FormatValue(h.sum).c_str());
    out += StrFormat("%s_count{%s} %lld\n", name, labels.c_str(),
                     static_cast<long long>(h.count));
  };
  auto gauge = [&](const char* name, const std::string& value) {
    if (header(name) == nullptr) return;
    out += StrFormat("%s %s\n", name, value.c_str());
  };

  tenant_counter("deepsea_queries_total",
                 [](const auto& t) { return double(t.queries); });
  tenant_counter("deepsea_replanned_queries_total",
                 [](const auto& t) { return double(t.replanned_queries); });
  tenant_counter("deepsea_replans_conflict_total",
                 [](const auto& t) { return double(t.replans_conflict); });
  tenant_counter("deepsea_replans_spurious_total",
                 [](const auto& t) { return double(t.replans_spurious); });
  tenant_counter("deepsea_commits_sharded_total",
                 [](const auto& t) { return double(t.commits_sharded); });
  if (header("deepsea_commits_exclusive_reason_total") != nullptr) {
    for (const auto& [tenant, t] : snap.tenants) {
      for (size_t r = 0; r < kExclusiveReasonCount; ++r) {
        if (t.commits_exclusive_reason[r] == 0) continue;
        out += StrFormat(
            "deepsea_commits_exclusive_reason_total{reason=\"%s\","
            "tenant=\"%s\"} %lld\n",
            kExclusiveReasonNames[r], EscapeLabelValue(tenant).c_str(),
            static_cast<long long>(t.commits_exclusive_reason[r]));
      }
    }
  }
  tenant_counter("deepsea_queries_from_views_total",
                 [](const auto& t) { return double(t.queries_from_views); });
  tenant_counter("deepsea_degraded_queries_total",
                 [](const auto& t) { return double(t.degraded_queries); });
  tenant_counter("deepsea_fragments_read_total",
                 [](const auto& t) { return double(t.fragments_read); });
  tenant_counter("deepsea_views_materialized_total",
                 [](const auto& t) { return double(t.views_materialized); });
  tenant_counter("deepsea_fragments_materialized_total", [](const auto& t) {
    return double(t.fragments_materialized);
  });
  tenant_counter("deepsea_evictions_total",
                 [](const auto& t) { return double(t.evictions); });
  tenant_counter("deepsea_merges_total",
                 [](const auto& t) { return double(t.merges); });
  tenant_counter("deepsea_faults_total",
                 [](const auto& t) { return double(t.faults); });
  tenant_counter("deepsea_retries_total",
                 [](const auto& t) { return double(t.retries); });
  tenant_counter("deepsea_degrades_total",
                 [](const auto& t) { return double(t.degrades); });
  tenant_counter("deepsea_materialized_bytes_total",
                 [](const auto& t) { return t.materialized_bytes; });
  tenant_counter("deepsea_evicted_bytes_total",
                 [](const auto& t) { return t.evicted_bytes; });

  // Per-strategy selection series: like the exclusive-reason counter,
  // the headers always render but only strategies that resolved at
  // least one decision export cells (the schema is label-sparse by
  // design — a deployment normally runs one strategy).
  auto strategy_counter = [&](const char* name, auto value_of) {
    if (header(name) == nullptr) return;
    for (const auto& [tenant, t] : snap.tenants) {
      for (size_t i = 0; i < kSelectionStrategyCount; ++i) {
        if (t.selection_decisions[i] == 0) continue;
        out += StrFormat("%s{strategy=\"%s\",tenant=\"%s\"} %s\n", name,
                         kSelectionStrategyNames[i],
                         EscapeLabelValue(tenant).c_str(),
                         FormatValue(value_of(t, i)).c_str());
      }
    }
  };
  strategy_counter("deepsea_selection_strategy_info",
                   [](const auto& t, size_t i) {
                     (void)t;
                     (void)i;
                     return 1.0;
                   });
  strategy_counter("deepsea_selection_decisions_total",
                   [](const auto& t, size_t i) {
                     return double(t.selection_decisions[i]);
                   });
  strategy_counter("deepsea_selection_objective_total",
                   [](const auto& t, size_t i) {
                     return t.selection_benefit[i];
                   });
  strategy_counter("deepsea_selection_swaps_total",
                   [](const auto& t, size_t i) {
                     return double(t.selection_swaps[i]);
                   });
  strategy_counter("deepsea_selection_merged_candidates_total",
                   [](const auto& t, size_t i) {
                     return double(t.selection_merged[i]);
                   });
  if (header("deepsea_selection_wall_seconds") != nullptr) {
    for (const auto& [tenant, t] : snap.tenants) {
      for (size_t i = 0; i < kSelectionStrategyCount; ++i) {
        if (t.selection_wall[i].count == 0) continue;
        histogram_series(
            "deepsea_selection_wall_seconds",
            StrFormat("strategy=\"%s\"", kSelectionStrategyNames[i]), tenant,
            t.selection_wall[i]);
      }
    }
  }

  // Stage histograms: unobserved (zero-call) stage/tenant series are
  // omitted, the standard client behaviour for unused series.
  if (header("deepsea_stage_sim_seconds") != nullptr) {
    for (const auto& [tenant, t] : snap.tenants) {
      for (size_t s = 0; s < kStageCount; ++s) {
        if (t.stage_sim[s].count == 0) continue;
        histogram_series(
            "deepsea_stage_sim_seconds",
            StrFormat("stage=\"%s\"",
                      EngineStageName(static_cast<EngineStage>(s))),
            tenant, t.stage_sim[s]);
      }
    }
  }
  if (header("deepsea_stage_wall_seconds") != nullptr) {
    for (const auto& [tenant, t] : snap.tenants) {
      for (size_t s = 0; s < kStageCount; ++s) {
        if (t.stage_wall[s].count == 0) continue;
        histogram_series(
            "deepsea_stage_wall_seconds",
            StrFormat("stage=\"%s\"",
                      EngineStageName(static_cast<EngineStage>(s))),
            tenant, t.stage_wall[s]);
      }
    }
  }
  if (header("deepsea_query_sim_seconds") != nullptr) {
    for (const auto& [tenant, t] : snap.tenants) {
      if (t.query_sim.count == 0) continue;
      histogram_series("deepsea_query_sim_seconds", "", tenant, t.query_sim);
    }
  }

  if (snap.pool.present) {
    const MetricsSnapshot::PoolGauges& g = snap.pool;
    gauge("deepsea_pool_bytes", FormatValue(g.pool_bytes));
    gauge("deepsea_pool_limit_bytes", FormatValue(g.pool_limit_bytes));
    gauge("deepsea_pool_views_tracked",
          StrFormat("%lld", static_cast<long long>(g.views_tracked)));
    gauge("deepsea_pool_views_materialized",
          StrFormat("%lld", static_cast<long long>(g.views_materialized)));
    gauge("deepsea_pool_fragments_tracked",
          StrFormat("%lld", static_cast<long long>(g.fragments_tracked)));
    gauge("deepsea_pool_fragments_materialized",
          StrFormat("%lld",
                    static_cast<long long>(g.fragments_materialized)));
    gauge("deepsea_pool_views_quarantined",
          StrFormat("%lld", static_cast<long long>(g.views_quarantined)));
    gauge("deepsea_commit_clock",
          StrFormat("%lld", static_cast<long long>(g.commit_clock)));
    gauge("deepsea_commits_total",
          StrFormat("%llu", static_cast<unsigned long long>(g.commits)));
    gauge("deepsea_commit_lock_held_seconds_total",
          FormatValue(g.commit_lock_held_seconds));
    if (header("deepsea_commit_shard_held_seconds_total") != nullptr) {
      for (size_t i = 0; i < g.commit_shards.size(); ++i) {
        if (g.commit_shards[i].acquisitions == 0) continue;
        out += StrFormat(
            "deepsea_commit_shard_held_seconds_total{shard=\"%zu\"} %s\n", i,
            FormatValue(g.commit_shards[i].held_seconds).c_str());
      }
    }
    gauge("deepsea_commit_lock_hold_fraction",
          FormatValue(g.commit_lock_hold_fraction));

    // Materialization-service series render whenever a pool is
    // attached — zeros in inline mode — so the scrape schema is
    // independent of MaterializationConfig::Mode.
    const MetricsSnapshot::PoolGauges::Materialization& m =
        g.materialization;
    gauge("deepsea_mat_queue_depth",
          StrFormat("%lld", static_cast<long long>(m.queue_depth)));
    gauge("deepsea_mat_queue_bytes", FormatValue(m.queue_bytes));
    gauge("deepsea_mat_queue_oldest_age_seconds",
          FormatValue(m.oldest_age_seconds));
    gauge("deepsea_mat_enqueued_total",
          StrFormat("%lld", static_cast<long long>(m.submitted)));
    gauge("deepsea_mat_executed_total",
          StrFormat("%lld", static_cast<long long>(m.executed)));
    gauge("deepsea_mat_shed_total",
          StrFormat("%lld", static_cast<long long>(m.shed)));
    gauge("deepsea_mat_coalesced_total",
          StrFormat("%lld", static_cast<long long>(m.coalesced)));
    gauge("deepsea_mat_stale_dropped_total",
          StrFormat("%lld", static_cast<long long>(m.stale_dropped)));
    gauge("deepsea_mat_failed_total",
          StrFormat("%lld", static_cast<long long>(m.failed)));
    gauge("deepsea_mat_background_seconds_total",
          FormatValue(m.background_sim_seconds));
    if (header("deepsea_mat_enqueue_to_fold_seconds") != nullptr) {
      uint64_t cumulative = 0;
      for (size_t b = 0; b < kFiniteBuckets; ++b) {
        cumulative += m.enqueue_to_fold.buckets[b];
        out += StrFormat(
            "deepsea_mat_enqueue_to_fold_seconds_bucket{le=\"%s\"} %llu\n",
            kBucketLabels[b], static_cast<unsigned long long>(cumulative));
      }
      cumulative += m.enqueue_to_fold.buckets[kFiniteBuckets];
      out += StrFormat(
          "deepsea_mat_enqueue_to_fold_seconds_bucket{le=\"+Inf\"} %llu\n",
          static_cast<unsigned long long>(cumulative));
      out += StrFormat("deepsea_mat_enqueue_to_fold_seconds_sum %s\n",
                       FormatValue(m.enqueue_to_fold.sum).c_str());
      out += StrFormat("deepsea_mat_enqueue_to_fold_seconds_count %lld\n",
                       static_cast<long long>(m.enqueue_to_fold.count));
    }
  }
  return out;
}

// --- exposition-format validator -------------------------------------

namespace {

bool ValidMetricName(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(s[0])) return false;
  for (size_t i = 1; i < s.size(); ++i) {
    if (!tail(s[i])) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(s[0])) return false;
  for (size_t i = 1; i < s.size(); ++i) {
    if (!head(s[i]) && !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
  }
  return true;
}

bool ParseSampleValue(const std::string& s, double* out) {
  if (s == "+Inf" || s == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

struct ParsedSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
  size_t line = 0;
};

struct FamilyState {
  std::string type;  ///< "" until a TYPE line is seen
  bool help_seen = false;
  bool samples_seen = false;
  bool closed = false;  ///< a different family started after this one
  std::vector<ParsedSample> samples;
};

Status LineError(size_t line, const std::string& message) {
  return Status::InvalidArgument(
      StrFormat("exposition line %zu: %s", line, message.c_str()));
}

/// Parses `name{labels} value [timestamp]`.
Status ParseSample(const std::string& text, size_t line, ParsedSample* out) {
  size_t i = 0;
  const size_t n = text.size();
  while (i < n && text[i] != '{' && text[i] != ' ' && text[i] != '\t') ++i;
  out->name = text.substr(0, i);
  out->line = line;
  if (!ValidMetricName(out->name)) {
    return LineError(line, "invalid metric name '" + out->name + "'");
  }
  if (i < n && text[i] == '{') {
    ++i;
    while (true) {
      while (i < n && (text[i] == ' ' || text[i] == '\t')) ++i;
      if (i < n && text[i] == '}') {
        ++i;
        break;
      }
      size_t name_start = i;
      while (i < n && text[i] != '=') ++i;
      if (i >= n) return LineError(line, "unterminated label set");
      std::string label = text.substr(name_start, i - name_start);
      if (!ValidLabelName(label)) {
        return LineError(line, "invalid label name '" + label + "'");
      }
      ++i;  // '='
      if (i >= n || text[i] != '"') {
        return LineError(line, "label value must be double-quoted");
      }
      ++i;
      std::string value;
      bool terminated = false;
      while (i < n) {
        char c = text[i];
        if (c == '\\') {
          if (i + 1 >= n) return LineError(line, "dangling escape");
          char esc = text[i + 1];
          if (esc == '\\') {
            value += '\\';
          } else if (esc == '"') {
            value += '"';
          } else if (esc == 'n') {
            value += '\n';
          } else {
            return LineError(line,
                             StrFormat("invalid escape '\\%c'", esc));
          }
          i += 2;
          continue;
        }
        if (c == '"') {
          terminated = true;
          ++i;
          break;
        }
        value += c;
        ++i;
      }
      if (!terminated) return LineError(line, "unterminated label value");
      if (out->labels.count(label) != 0) {
        return LineError(line, "duplicate label '" + label + "'");
      }
      out->labels[label] = value;
      if (i < n && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < n && text[i] == '}') {
        ++i;
        break;
      }
      return LineError(line, "expected ',' or '}' in label set");
    }
  }
  while (i < n && (text[i] == ' ' || text[i] == '\t')) ++i;
  size_t value_start = i;
  while (i < n && text[i] != ' ' && text[i] != '\t') ++i;
  const std::string value_token = text.substr(value_start, i - value_start);
  if (!ParseSampleValue(value_token, &out->value)) {
    return LineError(line, "invalid sample value '" + value_token + "'");
  }
  while (i < n && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i < n) {
    // Optional timestamp: a (signed) integer in milliseconds.
    size_t ts_start = i;
    if (text[i] == '-' || text[i] == '+') ++i;
    while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
    if (i != n || i == ts_start) {
      return LineError(line, "trailing garbage after sample value");
    }
  }
  return Status::OK();
}

std::string SeriesKey(const ParsedSample& s) {
  std::string key = s.name;
  for (const auto& [k, v] : s.labels) key += "|" + k + "=" + v;
  return key;
}

/// The family a sample belongs to: for histogram/summary suffixes the
/// declared base family, otherwise the sample name itself.
std::string FamilyOf(const std::string& sample_name,
                     const std::map<std::string, FamilyState>& families) {
  static const char* kSuffixes[] = {"_bucket", "_sum", "_count"};
  for (const char* suffix : kSuffixes) {
    const size_t len = std::strlen(suffix);
    if (sample_name.size() > len &&
        sample_name.compare(sample_name.size() - len, len, suffix) == 0) {
      const std::string base = sample_name.substr(0, sample_name.size() - len);
      auto it = families.find(base);
      if (it != families.end() &&
          (it->second.type == "histogram" || it->second.type == "summary")) {
        return base;
      }
    }
  }
  return sample_name;
}

Status CheckHistogramFamily(const std::string& family,
                            const FamilyState& state) {
  // Group samples by their label set minus `le`.
  struct Group {
    std::vector<std::pair<double, double>> buckets;  ///< (le, value)
    bool have_sum = false;
    bool have_count = false;
    double count = 0.0;
    size_t line = 0;
  };
  std::map<std::string, Group> groups;
  for (const ParsedSample& s : state.samples) {
    std::map<std::string, std::string> labels = s.labels;
    double le = 0.0;
    const bool is_bucket = s.name == family + "_bucket";
    if (is_bucket) {
      auto it = labels.find("le");
      if (it == labels.end()) {
        return LineError(s.line, family + "_bucket sample without le label");
      }
      if (!ParseSampleValue(it->second, &le)) {
        return LineError(s.line, "unparseable le value '" + it->second + "'");
      }
      labels.erase(it);
    }
    std::string key;
    for (const auto& [k, v] : labels) key += k + "=" + v + "|";
    Group& g = groups[key];
    g.line = s.line;
    if (is_bucket) {
      g.buckets.emplace_back(le, s.value);
    } else if (s.name == family + "_sum") {
      g.have_sum = true;
    } else if (s.name == family + "_count") {
      g.have_count = true;
      g.count = s.value;
    } else {
      return LineError(s.line, "histogram family " + family +
                                   " may only expose _bucket/_sum/_count "
                                   "samples, got " + s.name);
    }
  }
  for (const auto& [key, g] : groups) {
    (void)key;
    if (g.buckets.empty()) {
      return LineError(g.line,
                       "histogram series of " + family + " has no buckets");
    }
    std::vector<std::pair<double, double>> sorted = g.buckets;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double prev = -1.0;
    bool first = true;
    for (const auto& [le, value] : sorted) {
      if (!first && value < prev) {
        return LineError(g.line, "histogram " + family +
                                     " buckets are not cumulative "
                                     "non-decreasing");
      }
      prev = value;
      first = false;
    }
    if (!std::isinf(sorted.back().first)) {
      return LineError(g.line,
                       "histogram " + family + " is missing the +Inf bucket");
    }
    if (!g.have_sum) {
      return LineError(g.line, "histogram " + family + " is missing _sum");
    }
    if (!g.have_count) {
      return LineError(g.line, "histogram " + family + " is missing _count");
    }
    if (g.count != sorted.back().second) {
      return LineError(g.line, "histogram " + family +
                                   " _count disagrees with the +Inf bucket");
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidatePrometheusText(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty exposition");
  if (text.back() != '\n') {
    return Status::InvalidArgument("exposition must end with a newline");
  }
  std::map<std::string, FamilyState> families;
  std::set<std::string> series_seen;
  std::string current_family;
  size_t line_no = 0;

  auto enter_family = [&](const std::string& family,
                          size_t line) -> Status {
    if (family == current_family) return Status::OK();
    if (!current_family.empty()) families[current_family].closed = true;
    FamilyState& state = families[family];
    if (state.closed) {
      return LineError(line, "samples of metric family '" + family +
                                 "' are not contiguous");
    }
    current_family = family;
    return Status::OK();
  };

  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name doc" / "# TYPE name type" / free-form comment.
      std::vector<std::string> tokens = Split(line, ' ');
      if (tokens.size() >= 3 && tokens[1] == "HELP") {
        const std::string& name = tokens[2];
        if (!ValidMetricName(name)) {
          return LineError(line_no, "HELP for invalid metric name");
        }
        DEEPSEA_RETURN_IF_ERROR(enter_family(name, line_no));
        FamilyState& state = families[name];
        if (state.help_seen) {
          return LineError(line_no, "second HELP for metric " + name);
        }
        if (state.samples_seen) {
          return LineError(line_no, "HELP after samples of " + name);
        }
        state.help_seen = true;
      } else if (tokens.size() >= 3 && tokens[1] == "TYPE") {
        if (tokens.size() != 4) {
          return LineError(line_no, "malformed TYPE line");
        }
        const std::string& name = tokens[2];
        const std::string& type = tokens[3];
        if (!ValidMetricName(name)) {
          return LineError(line_no, "TYPE for invalid metric name");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return LineError(line_no, "unknown metric type '" + type + "'");
        }
        DEEPSEA_RETURN_IF_ERROR(enter_family(name, line_no));
        FamilyState& state = families[name];
        if (!state.type.empty()) {
          return LineError(line_no, "second TYPE for metric " + name);
        }
        if (state.samples_seen) {
          return LineError(line_no, "TYPE after samples of " + name);
        }
        state.type = type;
      }
      // Any other # line is a comment; ignore.
      continue;
    }
    ParsedSample sample;
    DEEPSEA_RETURN_IF_ERROR(ParseSample(line, line_no, &sample));
    const std::string family = FamilyOf(sample.name, families);
    DEEPSEA_RETURN_IF_ERROR(enter_family(family, line_no));
    FamilyState& state = families[family];
    state.samples_seen = true;
    const std::string key = SeriesKey(sample);
    if (!series_seen.insert(key).second) {
      return LineError(line_no, "duplicate series " + sample.name);
    }
    if (state.type == "counter" &&
        (std::isnan(sample.value) || sample.value < 0.0)) {
      return LineError(line_no, "counter " + sample.name +
                                    " has a negative or NaN value");
    }
    if (state.type == "histogram" && sample.name == family) {
      return LineError(line_no, "histogram " + family +
                                    " exposes a bare sample (expected "
                                    "_bucket/_sum/_count)");
    }
    state.samples.push_back(std::move(sample));
  }

  for (const auto& [family, state] : families) {
    if (state.type == "histogram") {
      DEEPSEA_RETURN_IF_ERROR(CheckHistogramFamily(family, state));
    }
  }
  return Status::OK();
}

}  // namespace deepsea
