#ifndef DEEPSEA_EXP_EXPERIMENT_H_
#define DEEPSEA_EXP_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/engine_observer.h"
#include "workload/bigbench.h"

namespace deepsea {

/// One workload element: a template instantiated with a selection range
/// on its fact table's item_sk.
struct WorkloadQuery {
  std::string template_name;
  Interval range;
};

/// A named engine configuration to run a workload under.
struct StrategySpec {
  std::string label;
  EngineOptions options;
};

/// Outcome of running one workload under one strategy.
struct RunResult {
  std::string label;
  double total_seconds = 0.0;        ///< execution + materialization
  double base_total_seconds = 0.0;   ///< what vanilla Hive would cost
  std::vector<double> per_query_seconds;
  std::vector<double> cumulative_seconds;
  EngineTotals totals;
  double final_pool_bytes = 0.0;

  /// Cumulative time after query i (1-based prefix sums).
  double CumulativeAt(size_t i) const { return cumulative_seconds.at(i); }
};

/// Drives workloads through DeepSeaEngine instances over freshly
/// generated BigBench-like catalogs. Each Run() builds its own catalog
/// (same seed => identical data) so strategies never share state.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(BigBenchDataset::Options data_options)
      : data_options_(data_options) {}

  const BigBenchDataset::Options& data_options() const { return data_options_; }

  /// Runs `workload` under `strategy` on a fresh catalog. When
  /// `observer` is non-null it is attached to the engine for the run
  /// (e.g. a TraceObserver collecting per-query telemetry and
  /// per-stage timing; see exp/trace.h).
  Result<RunResult> Run(const StrategySpec& strategy,
                        const std::vector<WorkloadQuery>& workload,
                        EngineObserver* observer = nullptr) const;

  /// Total logical bytes of the base tables (for pool-size fractions).
  Result<double> BaseTableBytes() const;

 private:
  BigBenchDataset::Options data_options_;
};

/// Fixed-width table printer for bench output: call Header once, then
/// Row per line. Columns are right-aligned to `width`.
class TablePrinter {
 public:
  explicit TablePrinter(int width = 14) : width_(width) {}
  void Header(const std::vector<std::string>& cols) const;
  void Row(const std::vector<std::string>& cells) const;

 private:
  int width_;
};

/// Formats seconds with no decimals ("12345").
std::string FmtSeconds(double s);
/// Formats a ratio as "0.64".
std::string FmtRatio(double r);

}  // namespace deepsea

#endif  // DEEPSEA_EXP_EXPERIMENT_H_
