#include "exp/trace.h"

#include <cstdio>

#include "common/str_util.h"

namespace deepsea {

void QueryTrace::Record(const std::string& label, const QueryReport& report) {
  double cumulative = report.total_seconds;
  for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
    if (it->label == label) {
      cumulative += it->cumulative_seconds;
      break;
    }
  }
  TraceRow row;
  row.label = label;
  row.query_index = report.query_index;
  row.base_seconds = report.base_seconds;
  row.best_seconds = report.best_seconds;
  row.materialize_seconds = report.materialize_seconds;
  row.total_seconds = report.total_seconds;
  row.cumulative_seconds = cumulative;
  row.used_view = report.used_view;
  row.fragments_read = report.fragments_read;
  row.created_views = static_cast<int>(report.created_views.size());
  row.created_fragments = report.created_fragments;
  row.evicted_fragments = report.evicted_fragments;
  row.pool_bytes = report.pool_bytes_after;
  rows_.push_back(std::move(row));
}

std::string QueryTrace::ToCsv() const {
  std::string out =
      "label,query,base_s,best_s,materialize_s,total_s,cumulative_s,"
      "used_view,fragments_read,created_views,created_fragments,"
      "evicted_fragments,pool_gb\n";
  for (const TraceRow& r : rows_) {
    out += StrFormat("%s,%lld,%.3f,%.3f,%.3f,%.3f,%.3f,%s,%d,%d,%d,%d,%.3f\n",
                     r.label.c_str(), static_cast<long long>(r.query_index),
                     r.base_seconds, r.best_seconds, r.materialize_seconds,
                     r.total_seconds, r.cumulative_seconds,
                     r.used_view.c_str(), r.fragments_read, r.created_views,
                     r.created_fragments, r.evicted_fragments,
                     r.pool_bytes / 1e9);
  }
  return out;
}

Status QueryTrace::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  const std::string csv = ToCsv();
  const size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  if (written != csv.size()) return Status::Internal("short write to " + path);
  return Status::OK();
}

double QueryTrace::CumulativeSeconds(const std::string& label) const {
  for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
    if (it->label == label) return it->cumulative_seconds;
  }
  return 0.0;
}

void TraceObserver::OnStageEnd(EngineStage stage, const QueryContext& ctx,
                               double sim_seconds, double wall_seconds) {
  (void)ctx;
  StageStats& s = stages_[static_cast<size_t>(stage)];
  ++s.calls;
  s.sim_seconds += sim_seconds;
  s.wall_seconds += wall_seconds;
}

void TraceObserver::OnMaterializeView(const ViewInfo& view, double sim_seconds,
                                      const std::string& tenant) {
  (void)view;
  (void)sim_seconds;
  ++views_materialized_;
  ++tenants_[tenant].views_materialized;
}

void TraceObserver::OnMaterializeFragment(const ViewInfo& view,
                                          const std::string& attr,
                                          const Interval& interval,
                                          double bytes,
                                          const std::string& tenant) {
  (void)view;
  (void)attr;
  (void)interval;
  (void)bytes;
  ++fragments_materialized_;
  ++tenants_[tenant].fragments_materialized;
}

void TraceObserver::OnEvict(const ViewInfo& view, const std::string& attr,
                            const Interval& interval, double bytes,
                            const std::string& tenant) {
  (void)view;
  (void)attr;
  (void)interval;
  (void)bytes;
  ++evictions_;
  ++tenants_[tenant].evictions;
}

void TraceObserver::OnMerge(const ViewInfo& view, const std::string& attr,
                            const Interval& merged, double bytes,
                            const std::string& tenant) {
  (void)view;
  (void)attr;
  (void)merged;
  (void)bytes;
  ++merges_;
  ++tenants_[tenant].merges;
}

void TraceObserver::OnFault(EngineStage stage, const std::string& view_id,
                            const Status& status, int attempt,
                            const std::string& tenant) {
  ++faults_;
  ++tenants_[tenant].faults;
  fault_events_.push_back({"fault", stage, view_id,
                           StatusCodeName(status.code()), attempt, tenant});
}

void TraceObserver::OnRetry(EngineStage stage, int next_attempt,
                            const std::string& tenant) {
  ++retries_;
  ++tenants_[tenant].retries;
  fault_events_.push_back({"retry", stage, "", "", next_attempt, tenant});
}

void TraceObserver::OnDegrade(EngineStage stage, const std::string& view_id,
                              const Status& status,
                              const std::string& tenant) {
  ++degrades_;
  ++tenants_[tenant].degrades;
  fault_events_.push_back(
      {"degrade", stage, view_id, StatusCodeName(status.code()), 0, tenant});
}

void TraceObserver::OnQueryEnd(const QueryReport& report) {
  ++queries_;
  ++tenants_[report.tenant_id].queries;
  if (trace_ != nullptr) trace_->Record(label_, report);
}

std::string TraceObserver::FaultEventsCsv() const {
  std::string out = "label,event,stage,view,code,attempt,tenant\n";
  for (const FaultEvent& e : fault_events_) {
    out += StrFormat("%s,%s,%s,%s,%s,%d,%s\n", label_.c_str(),
                     e.event.c_str(), EngineStageName(e.stage),
                     e.view.c_str(), e.code.c_str(), e.attempt,
                     e.tenant.c_str());
  }
  return out;
}

std::string TraceObserver::StageSummaryCsv() const {
  std::string out = "label,stage,calls,sim_s,wall_s\n";
  for (size_t i = 0; i < kStageCount; ++i) {
    const StageStats& s = stages_[i];
    if (s.calls == 0) continue;
    out += StrFormat("%s,%s,%lld,%.3f,%.6f\n", label_.c_str(),
                     EngineStageName(static_cast<EngineStage>(i)),
                     static_cast<long long>(s.calls), s.sim_seconds,
                     s.wall_seconds);
  }
  return out;
}

}  // namespace deepsea
