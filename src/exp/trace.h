#ifndef DEEPSEA_EXP_TRACE_H_
#define DEEPSEA_EXP_TRACE_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace deepsea {

/// Per-query telemetry collector: append QueryReports as a workload
/// runs, then export the trace as CSV for offline analysis/plotting.
/// The CSV mirrors the measurements the paper's figures are built from
/// (per-query elapsed time, cumulative time, materialization overhead,
/// pool occupancy, fragments read).
class QueryTrace {
 public:
  /// Records one processed query. `label` tags the series (strategy
  /// name); reports from several engines can share one trace.
  void Record(const std::string& label, const QueryReport& report);

  size_t size() const { return rows_.size(); }

  /// CSV with header:
  /// label,query,base_s,best_s,materialize_s,total_s,cumulative_s,
  /// used_view,fragments_read,created_views,created_fragments,
  /// evicted_fragments,pool_gb
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`; fails on IO errors.
  Status WriteCsv(const std::string& path) const;

  /// Cumulative total seconds of one label's series.
  double CumulativeSeconds(const std::string& label) const;

 private:
  struct TraceRow {
    std::string label;
    int64_t query_index;
    double base_seconds;
    double best_seconds;
    double materialize_seconds;
    double total_seconds;
    double cumulative_seconds;
    std::string used_view;
    int fragments_read;
    int created_views;
    int created_fragments;
    int evicted_fragments;
    double pool_bytes;
  };
  std::vector<TraceRow> rows_;
};

}  // namespace deepsea

#endif  // DEEPSEA_EXP_TRACE_H_
