#ifndef DEEPSEA_EXP_TRACE_H_
#define DEEPSEA_EXP_TRACE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/engine_observer.h"

namespace deepsea {

/// Per-query telemetry collector: append QueryReports as a workload
/// runs, then export the trace as CSV for offline analysis/plotting.
/// The CSV mirrors the measurements the paper's figures are built from
/// (per-query elapsed time, cumulative time, materialization overhead,
/// pool occupancy, fragments read).
class QueryTrace {
 public:
  /// Records one processed query. `label` tags the series (strategy
  /// name); reports from several engines can share one trace.
  void Record(const std::string& label, const QueryReport& report);

  size_t size() const { return rows_.size(); }

  /// CSV with header:
  /// label,query,base_s,best_s,materialize_s,total_s,cumulative_s,
  /// used_view,fragments_read,created_views,created_fragments,
  /// evicted_fragments,pool_gb
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`; fails on IO errors.
  Status WriteCsv(const std::string& path) const;

  /// Cumulative total seconds of one label's series.
  double CumulativeSeconds(const std::string& label) const;

 private:
  struct TraceRow {
    std::string label;
    int64_t query_index;
    double base_seconds;
    double best_seconds;
    double materialize_seconds;
    double total_seconds;
    double cumulative_seconds;
    std::string used_view;
    int fragments_read;
    int created_views;
    int created_fragments;
    int evicted_fragments;
    double pool_bytes;
  };
  std::vector<TraceRow> rows_;
};

/// EngineObserver that feeds a QueryTrace: attach it to an engine via
/// `engine.set_observer(&obs)` and every processed query lands in the
/// trace automatically — no per-query Record calls in the driver. On
/// top of the per-query CSV rows it aggregates per-stage simulated and
/// wall-clock time plus pool-mutation counts across the run —
/// aggregate and broken down by the tenant that committed each
/// mutation. One TraceObserver may serve several engines sharing a
/// pool only if their queries are externally serialized (e.g. the
/// turnstile in tests/multitenant_harness.h): planning-stage hooks now
/// fire under the pool's *shared* lock and may run concurrently across
/// engines, and the counters carry no locking of their own. With
/// free-running engines, give each its own TraceObserver.
class TraceObserver : public EngineObserver {
 public:
  /// `trace` may be null: the observer then only aggregates stage
  /// timings (useful for profiling without telemetry rows).
  TraceObserver(std::string label, QueryTrace* trace)
      : label_(std::move(label)), trace_(trace) {}

  void OnStageEnd(EngineStage stage, const QueryContext& ctx,
                  double sim_seconds, double wall_seconds) override;
  void OnMaterializeView(const ViewInfo& view, double sim_seconds,
                         const std::string& tenant) override;
  void OnMaterializeFragment(const ViewInfo& view, const std::string& attr,
                             const Interval& interval, double bytes,
                             const std::string& tenant) override;
  void OnEvict(const ViewInfo& view, const std::string& attr,
               const Interval& interval, double bytes,
               const std::string& tenant) override;
  void OnMerge(const ViewInfo& view, const std::string& attr,
               const Interval& merged, double bytes,
               const std::string& tenant) override;
  void OnFault(EngineStage stage, const std::string& view_id,
               const Status& status, int attempt,
               const std::string& tenant) override;
  void OnRetry(EngineStage stage, int next_attempt,
               const std::string& tenant) override;
  void OnDegrade(EngineStage stage, const std::string& view_id,
                 const Status& status, const std::string& tenant) override;
  void OnQueryEnd(const QueryReport& report) override;

  /// Cumulative timing of one pipeline stage across all queries seen.
  struct StageStats {
    int64_t calls = 0;
    double sim_seconds = 0.0;
    double wall_seconds = 0.0;
  };
  const StageStats& stage(EngineStage s) const {
    return stages_[static_cast<size_t>(s)];
  }

  int64_t queries() const { return queries_; }
  int64_t views_materialized() const { return views_materialized_; }
  int64_t fragments_materialized() const { return fragments_materialized_; }
  int64_t evictions() const { return evictions_; }
  int64_t merges() const { return merges_; }
  int64_t faults() const { return faults_; }
  int64_t retries() const { return retries_; }
  int64_t degrades() const { return degrades_; }

  /// Per-tenant slice of the mutation counters (keyed by tenant id; ""
  /// is the single-tenant default). Values sum to the aggregates above.
  struct TenantStats {
    int64_t queries = 0;
    int64_t views_materialized = 0;
    int64_t fragments_materialized = 0;
    int64_t evictions = 0;
    int64_t merges = 0;
    int64_t faults = 0;
    int64_t retries = 0;
    int64_t degrades = 0;
  };
  const std::map<std::string, TenantStats>& tenants() const { return tenants_; }

  /// CSV of the stage aggregates:
  /// label,stage,calls,sim_s,wall_s
  std::string StageSummaryCsv() const;

  /// CSV of every fault-handling event in occurrence order:
  /// label,event,stage,view,code,attempt,tenant
  /// where event is fault|retry|degrade; view and code are empty for
  /// retry rows. Fault-free runs return just the header.
  std::string FaultEventsCsv() const;

 private:
  static constexpr size_t kStageCount =
      static_cast<size_t>(EngineStage::kPhysical) + 1;

  std::string label_;
  QueryTrace* trace_;
  std::array<StageStats, kStageCount> stages_{};
  int64_t queries_ = 0;
  int64_t views_materialized_ = 0;
  int64_t fragments_materialized_ = 0;
  int64_t evictions_ = 0;
  int64_t merges_ = 0;
  int64_t faults_ = 0;
  int64_t retries_ = 0;
  int64_t degrades_ = 0;
  struct FaultEvent {
    std::string event;  ///< "fault" | "retry" | "degrade"
    EngineStage stage;
    std::string view;
    std::string code;   ///< StatusCodeName of the injected status
    int attempt = 0;
    std::string tenant;
  };
  std::vector<FaultEvent> fault_events_;
  std::map<std::string, TenantStats> tenants_;
};

}  // namespace deepsea

#endif  // DEEPSEA_EXP_TRACE_H_
