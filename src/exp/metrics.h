#ifndef DEEPSEA_EXP_METRICS_H_
#define DEEPSEA_EXP_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine_observer.h"
#include "core/pool_manager.h"

namespace deepsea {

/// One entry of the metrics registry: everything OBSERVABILITY.md must
/// document about an exported series. `host_time` marks series derived
/// from host clocks (wall-clock histograms, lock hold times) — they are
/// the only nondeterministic output and can be excluded from a render
/// for byte-stable goldens. `pool_sourced` marks series read from an
/// attached PoolManager at scrape time rather than accumulated from
/// observer hooks.
struct MetricInfo {
  const char* name;    ///< full series name, e.g. "deepsea_evictions_total"
  const char* type;    ///< "counter" | "gauge" | "histogram"
  const char* help;    ///< HELP docstring (one line, no newlines)
  const char* labels;  ///< label set, e.g. "tenant" or "stage,tenant"
  bool host_time;
  bool pool_sourced;
};

/// Production metrics sink for the EngineObserver seam: a thread-safe,
/// allocation-light aggregator exporting Prometheus text exposition
/// format. Where TraceObserver collects per-query CSV rows for offline
/// experiment plots, MetricsObserver maintains the fixed-cardinality
/// series an operator scrapes while the engine serves live traffic:
///
///  * log-scale histogram sketches of per-stage simulated and wall-clock
///    latency (one series per EngineStage, labeled by tenant) plus a
///    per-query simulated-cost histogram;
///  * monotonic counters for queries, replans, degradations, pool
///    mutations (views/fragments materialized, evictions, merges),
///    faults/retries, and bytes into / out of the pool;
///  * gauges for pool occupancy vs S_max, view/fragment counts,
///    quarantine, and commit-lock hold time, sourced from an attached
///    PoolManager at scrape time (`set_pool`).
///
/// Concurrency: unlike TraceObserver, one MetricsObserver may be shared
/// by free-running engines. The hot path honors the locking contract in
/// engine_observer.h — planning-stage hooks fire concurrently from
/// multiple engine threads under the pool's shared lock — by sharding
/// state per tenant: each tenant's slot is all relaxed atomics, and the
/// slot map itself is behind a shared_mutex that is write-locked only
/// the first time a tenant is seen (steady state is a read-locked map
/// find, no allocation, no shared counter contention across tenants).
///
/// Scrape path: RenderPrometheusText / TakeSnapshot read the attached
/// pool's gauges under the pool's *shared* commit lock, so they are safe
/// from any monitoring thread but must NOT be called from observer
/// hooks or any code inside the commit section (self-deadlock — the
/// same rule as PoolManager::PoolBytesSnapshot).
class MetricsObserver : public EngineObserver {
 public:
  /// Fixed log-scale bucket boundaries (seconds) shared by every
  /// latency histogram: 12 upper bounds spanning 1 µs .. ~28 h, plus
  /// the implicit +Inf bucket. A value lands in the first bucket whose
  /// bound is >= the value (Prometheus `le` semantics, inclusive).
  static constexpr int kFiniteBuckets = 12;
  static constexpr int kBucketCount = kFiniteBuckets + 1;  // + "+Inf"
  static constexpr double kBucketBounds[kFiniteBuckets] = {
      1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5};
  /// `le` label values rendered for kBucketBounds, in order.
  static const char* const kBucketLabels[kFiniteBuckets];

  static constexpr size_t kStageCount =
      static_cast<size_t>(EngineStage::kPhysical) + 1;

  /// Fixed label set of deepsea_commits_exclusive_reason_total, in
  /// render order. Matches the QueryReport::exclusive_reason values;
  /// an unrecognized non-empty reason lands in "other".
  static constexpr size_t kExclusiveReasonCount = 9;
  static const char* const kExclusiveReasonNames[kExclusiveReasonCount];

  /// Fixed label set of the per-strategy selection series, in render
  /// order; indices follow SelectionStrategyKind, names match
  /// SelectionStrategyName. Only strategies that resolved at least one
  /// decision are exported.
  static constexpr size_t kSelectionStrategyCount = 4;
  static const char* const kSelectionStrategyNames[kSelectionStrategyCount];

  MetricsObserver() = default;
  MetricsObserver(const MetricsObserver&) = delete;
  MetricsObserver& operator=(const MetricsObserver&) = delete;

  /// Attaches the pool whose gauges scrapes should report (nullptr
  /// detaches; gauges are then omitted). Also baselines the commit-lock
  /// hold fraction: `deepsea_commit_lock_hold_fraction` is lock time
  /// over wall time *since attach*. Call before traffic starts; not
  /// thread-safe against concurrent scrapes. The pool must outlive
  /// every subsequent scrape — detach (set_pool(nullptr)) before the
  /// pool is destroyed if the observer lives longer.
  void set_pool(const PoolManager* pool);
  const PoolManager* pool() const { return pool_; }

  /// Index of the histogram bucket `value` falls in (kFiniteBuckets =
  /// the +Inf bucket). Exposed for bucket-boundary tests.
  static size_t BucketIndex(double value);

  // --- EngineObserver hooks (hot path) ---

  void OnStageEnd(EngineStage stage, const QueryContext& ctx,
                  double sim_seconds, double wall_seconds) override;
  void OnMaterializeView(const ViewInfo& view, double sim_seconds,
                         const std::string& tenant) override;
  void OnMaterializeFragment(const ViewInfo& view, const std::string& attr,
                             const Interval& interval, double bytes,
                             const std::string& tenant) override;
  void OnEvict(const ViewInfo& view, const std::string& attr,
               const Interval& interval, double bytes,
               const std::string& tenant) override;
  void OnMerge(const ViewInfo& view, const std::string& attr,
               const Interval& merged, double bytes,
               const std::string& tenant) override;
  void OnFault(EngineStage stage, const std::string& view_id,
               const Status& status, int attempt,
               const std::string& tenant) override;
  void OnRetry(EngineStage stage, int next_attempt,
               const std::string& tenant) override;
  void OnDegrade(EngineStage stage, const std::string& view_id,
                 const Status& status, const std::string& tenant) override;
  void OnQueryEnd(const QueryReport& report) override;

  // --- programmatic snapshot ---

  /// Point-in-time copy of everything the observer exports, for
  /// assertions without parsing exposition text. Integer counters are
  /// exact; double sums reflect the accumulation order of the run.
  struct MetricsSnapshot {
    struct Histogram {
      int64_t count = 0;
      double sum = 0.0;
      /// Per-bucket (NOT cumulative) observation counts; index
      /// kFiniteBuckets is the +Inf bucket.
      std::array<uint64_t, kBucketCount> buckets{};
    };
    struct Tenant {
      int64_t queries = 0;
      int64_t replanned_queries = 0;
      int64_t replans_conflict = 0;  ///< genuine read-set conflicts
      int64_t replans_spurious = 0;  ///< epoch-table coverage loss
      int64_t commits_sharded = 0;   ///< queries committed on the IX path
      /// Exclusive (X-path) commits by reason; index into
      /// kExclusiveReasonNames. Sums to the tenant's exclusive commits.
      std::array<int64_t, kExclusiveReasonCount> commits_exclusive_reason{};
      int64_t queries_from_views = 0;
      int64_t degraded_queries = 0;
      int64_t fragments_read = 0;
      int64_t views_materialized = 0;
      int64_t fragments_materialized = 0;
      int64_t evictions = 0;
      int64_t merges = 0;
      int64_t faults = 0;
      int64_t retries = 0;
      int64_t degrades = 0;
      double materialized_bytes = 0.0;
      double evicted_bytes = 0.0;
      /// Per selection strategy (index into kSelectionStrategyNames):
      /// decisions resolved, summed benefit scores, local-search swaps,
      /// clustering merges, and the selection stage's wall latency.
      std::array<int64_t, kSelectionStrategyCount> selection_decisions{};
      std::array<double, kSelectionStrategyCount> selection_benefit{};
      std::array<int64_t, kSelectionStrategyCount> selection_swaps{};
      std::array<int64_t, kSelectionStrategyCount> selection_merged{};
      std::array<Histogram, kSelectionStrategyCount> selection_wall{};
      std::array<Histogram, kStageCount> stage_sim{};
      std::array<Histogram, kStageCount> stage_wall{};
      Histogram query_sim;
    };
    struct PoolGauges {
      bool present = false;  ///< false when no pool was attached
      double pool_bytes = 0.0;
      double pool_limit_bytes = 0.0;
      int64_t views_tracked = 0;
      int64_t views_materialized = 0;
      int64_t fragments_tracked = 0;
      int64_t fragments_materialized = 0;
      int64_t views_quarantined = 0;
      int64_t commit_clock = 0;
      uint64_t commits = 0;
      double commit_lock_held_seconds = 0.0;
      double commit_lock_hold_fraction = 0.0;
      /// Per commit shard: acquisitions and cumulative hold seconds
      /// (index = shard id; see PoolManager::commit_shard_stats()).
      std::vector<PoolManager::CommitShardStats> commit_shards;

      /// Background materialization service gauges/counters, read from
      /// the pool's MaterializationService at scrape time. All zero
      /// (with `configured` false) when the pool runs inline — the
      /// series are still rendered so the scrape schema does not change
      /// with the mode.
      struct Materialization {
        bool configured = false;  ///< pool has a service (kDrain/kAsync)
        int64_t queue_depth = 0;
        double queue_bytes = 0.0;
        /// Host age of the oldest queued intent (0 when empty).
        double oldest_age_seconds = 0.0;
        int64_t submitted = 0;
        int64_t executed = 0;
        int64_t failed = 0;
        int64_t shed = 0;
        int64_t coalesced = 0;
        int64_t stale_dropped = 0;
        double background_sim_seconds = 0.0;
        /// Host-clock enqueue-to-fold latency of executed jobs.
        Histogram enqueue_to_fold;
      };
      Materialization materialization;
    };

    std::map<std::string, Tenant> tenants;  ///< keyed by tenant id
    PoolGauges pool;

    /// Sum of every tenant's monotonic counters (histograms included).
    Tenant Totals() const;
  };

  /// See the class comment for the locking contract (takes the pool's
  /// shared lock when a pool is attached).
  MetricsSnapshot TakeSnapshot() const;

  // --- Prometheus text exposition ---

  struct RenderOptions {
    /// When false, every series whose MetricInfo is marked host_time
    /// (wall-clock histograms, commit-lock hold series) is omitted, so
    /// the remaining output is a pure function of the simulated
    /// workload — byte-stable across runs and machines. Used by the
    /// metrics goldens; production scrapes keep the default.
    bool include_host_metrics = true;
  };

  /// Renders the scrape in Prometheus text exposition format (HELP/TYPE
  /// headers, `_bucket`/`_sum`/`_count` histogram series, tenant/stage
  /// labels). Output passes ValidatePrometheusText. Same locking
  /// contract as TakeSnapshot.
  std::string RenderPrometheusText(const RenderOptions& options) const;
  std::string RenderPrometheusText() const {
    return RenderPrometheusText(RenderOptions());
  }

  /// Every series this observer can export, in render order. The
  /// OBSERVABILITY.md documentation test enumerates this registry and
  /// fails on any name the doc does not mention.
  static const std::vector<MetricInfo>& Registry();

 private:
  struct StageSeries {
    std::atomic<int64_t> calls{0};
    std::atomic<double> sim_sum{0.0};
    std::atomic<double> wall_sum{0.0};
    std::array<std::atomic<uint64_t>, kBucketCount> sim_buckets{};
    std::array<std::atomic<uint64_t>, kBucketCount> wall_buckets{};
  };
  struct QuerySeries {
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
    std::array<std::atomic<uint64_t>, kBucketCount> buckets{};
  };
  /// One tenant's shard: all relaxed atomics, touched only by hooks
  /// carrying this tenant's id, so cross-tenant hooks never contend.
  struct TenantMetrics {
    std::atomic<int64_t> queries{0};
    std::atomic<int64_t> replanned_queries{0};
    std::atomic<int64_t> replans_conflict{0};
    std::atomic<int64_t> replans_spurious{0};
    std::atomic<int64_t> commits_sharded{0};
    std::array<std::atomic<int64_t>, kExclusiveReasonCount>
        commits_exclusive_reason{};
    std::atomic<int64_t> queries_from_views{0};
    std::atomic<int64_t> degraded_queries{0};
    std::atomic<int64_t> fragments_read{0};
    std::atomic<int64_t> views_materialized{0};
    std::atomic<int64_t> fragments_materialized{0};
    std::atomic<int64_t> evictions{0};
    std::atomic<int64_t> merges{0};
    std::atomic<int64_t> faults{0};
    std::atomic<int64_t> retries{0};
    std::atomic<int64_t> degrades{0};
    std::atomic<double> materialized_bytes{0.0};
    std::atomic<double> evicted_bytes{0.0};
    std::array<std::atomic<int64_t>, kSelectionStrategyCount>
        selection_decisions{};
    std::array<std::atomic<double>, kSelectionStrategyCount>
        selection_benefit{};
    std::array<std::atomic<int64_t>, kSelectionStrategyCount>
        selection_swaps{};
    std::array<std::atomic<int64_t>, kSelectionStrategyCount>
        selection_merged{};
    std::array<QuerySeries, kSelectionStrategyCount> selection_wall{};
    std::array<StageSeries, kStageCount> stages{};
    QuerySeries query_sim{};
  };

  /// Read-mostly tenant lookup: shared-locked find in steady state; the
  /// unique lock is taken only the first time a tenant id appears.
  TenantMetrics* Tenant(const std::string& tenant);

  mutable std::shared_mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantMetrics>> tenants_;

  const PoolManager* pool_ = nullptr;
  // Commit-lock baselines captured by set_pool, so the hold fraction
  // covers exactly the observed span.
  double attach_held_seconds_ = 0.0;
  int64_t attach_wall_ns_ = 0;
};

/// Strict validator for the Prometheus text exposition format, used by
/// the metrics tests and the `promlint` CI tool. Checks line syntax
/// (HELP/TYPE/comment/sample), metric and label name validity, label
/// escaping, TYPE-before-samples, family grouping (all samples of one
/// family contiguous), duplicate series, and histogram consistency
/// (cumulative non-decreasing buckets, a `+Inf` bucket equal to
/// `_count`, `_sum` present). Returns OK or the first violation with
/// its line number.
Status ValidatePrometheusText(const std::string& text);

}  // namespace deepsea

#endif  // DEEPSEA_EXP_METRICS_H_
