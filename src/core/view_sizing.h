#ifndef DEEPSEA_CORE_VIEW_SIZING_H_
#define DEEPSEA_CORE_VIEW_SIZING_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "core/engine_options.h"
#include "core/interval.h"
#include "core/view_catalog.h"

namespace deepsea {

// Size / distribution estimation helpers shared by the pipeline stages
// (CandidateGenerator, SelectionPlanner, PoolManager). These were
// private methods of the monolithic DeepSeaEngine; they are pure
// functions of catalog + options + view state, so they live here where
// every stage (and test) can call them directly.

/// Domain of `column` from its base table histogram/sample.
Result<Interval> ColumnDomain(const Catalog& catalog, const std::string& column);

/// Fraction of the base table's rows whose `column` value lies in `iv`
/// (1.0 when no statistics exist).
double RangeFractionOfBaseColumn(const Catalog& catalog,
                                 const std::string& column, const Interval& iv);

/// Histogram for a view's partition attribute, derived from the base
/// table's distribution scaled to the view's cardinality.
Result<AttributeHistogram> DeriveViewHistogram(const Catalog& catalog,
                                               const EngineOptions& options,
                                               const ViewInfo& view,
                                               const std::string& attr);

/// Estimated bytes of fragment `iv` of `view` partitioned on `attr`.
double FragmentBytes(const Catalog& catalog, const ViewInfo& view,
                     const std::string& attr, const Interval& iv);

/// Variant that takes the partition state explicitly (the no-histogram
/// fallback scales by the partition domain). Planning code passes its
/// PlanningDelta shadow partition here, which may not exist on `view`
/// itself yet.
double FragmentBytes(const Catalog& catalog, const ViewInfo& view,
                     const std::string& attr, const Interval& iv,
                     const PartitionState* part);

/// Paper's uniform-within-fragment size estimate for a candidate
/// (Section 7.2) over the currently tracked fragments.
double EstimateCandidateBytes(const PartitionState& part, const Interval& iv);

/// SimFs path of one materialized fragment file.
std::string FragmentPath(const ViewInfo& view, const std::string& attr,
                         const Interval& iv);

/// The initial fragmentation used when first materializing a view
/// partition under the configured strategy.
std::vector<Interval> InitialFragmentation(const Catalog& catalog,
                                           const EngineOptions& options,
                                           ViewInfo* view,
                                           const std::string& attr);

/// Variant over an explicit partition state (shadow or real).
std::vector<Interval> InitialFragmentation(const Catalog& catalog,
                                           const EngineOptions& options,
                                           const ViewInfo& view,
                                           const std::string& attr,
                                           const PartitionState& part);

/// Applies the fragment size bounds (Section 9): splits any interval
/// whose estimated size exceeds max_fragment_fraction * S(V), then
/// merges adjacent fragments smaller than one FS block.
std::vector<Interval> ApplyFragmentBounds(const Catalog& catalog,
                                          const EngineOptions& options,
                                          const ViewInfo& view,
                                          const std::string& attr,
                                          std::vector<Interval> frags);

/// Variant over an explicit partition state (threads `part` into the
/// internal FragmentBytes calls).
std::vector<Interval> ApplyFragmentBounds(const Catalog& catalog,
                                          const EngineOptions& options,
                                          const ViewInfo& view,
                                          const std::string& attr,
                                          const PartitionState* part,
                                          std::vector<Interval> frags);

}  // namespace deepsea

#endif  // DEEPSEA_CORE_VIEW_SIZING_H_
