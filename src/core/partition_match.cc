#include "core/partition_match.h"

namespace deepsea {

Result<std::vector<size_t>> PartitionMatch(const std::vector<Interval>& fragments,
                                           const Interval& range) {
  std::vector<size_t> cover;
  if (range.IsEmpty()) return cover;
  // Frontier semantics: `u_covered` is the highest point covered so far
  // (inclusively when frontier_inclusive). Initialized just below the
  // range's lower bound so that the first chosen fragment must contain
  // the lower endpoint itself.
  double u_covered = range.lo;
  bool frontier_inclusive = !range.lo_inclusive;  // lo open => point lo needs no cover
  while (u_covered < range.hi ||
         (u_covered == range.hi && range.hi_inclusive && !frontier_inclusive)) {
    // Candidates: fragments that cover the frontier point (or extend
    // coverage past it when the frontier is already inclusive).
    int best = -1;
    for (size_t i = 0; i < fragments.size(); ++i) {
      const Interval& f = fragments[i];
      if (f.IsEmpty()) continue;
      const bool starts_ok =
          f.lo < u_covered ||
          (f.lo == u_covered && (f.lo_inclusive || frontier_inclusive));
      if (!starts_ok) continue;
      const bool extends =
          f.hi > u_covered ||
          (f.hi == u_covered && f.hi_inclusive && !frontier_inclusive);
      if (!extends) continue;
      // Greedy: largest lower bound among qualifying fragments. Ties
      // are broken to minimize over-read: if a fragment already reaches
      // the end of the query range, the *smallest* such fragment wins;
      // otherwise the one reaching furthest wins.
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const Interval& b = fragments[static_cast<size_t>(best)];
      if (f.lo > b.lo) {
        best = static_cast<int>(i);
      } else if (f.lo == b.lo && f.hi != b.hi) {
        const bool f_finishes =
            f.hi > range.hi || (f.hi == range.hi && (f.hi_inclusive ||
                                                     !range.hi_inclusive));
        const bool b_finishes =
            b.hi > range.hi || (b.hi == range.hi && (b.hi_inclusive ||
                                                     !range.hi_inclusive));
        if (f_finishes && b_finishes) {
          if (f.hi < b.hi) best = static_cast<int>(i);
        } else if (f_finishes != b_finishes) {
          if (f_finishes) best = static_cast<int>(i);
        } else if (f.hi > b.hi) {
          best = static_cast<int>(i);
        }
      }
    }
    if (best < 0) {
      return Status::NotFound("fragments do not cover query range " +
                              range.ToString());
    }
    const Interval& chosen = fragments[static_cast<size_t>(best)];
    u_covered = chosen.hi;
    frontier_inclusive = chosen.hi_inclusive;
    cover.push_back(static_cast<size_t>(best));
  }
  return cover;
}

Result<std::vector<Interval>> PartitionMatchIntervals(
    const std::vector<Interval>& fragments, const Interval& range) {
  DEEPSEA_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                           PartitionMatch(fragments, range));
  std::vector<Interval> out;
  out.reserve(idx.size());
  for (size_t i : idx) out.push_back(fragments[i]);
  return out;
}

}  // namespace deepsea
