#include "core/mle_model.h"

#include <algorithm>
#include <cmath>

namespace deepsea {

int MleFragmentModel::ChoosePartCount(const std::vector<FragmentStats>& fragments,
                                      const Interval& domain) const {
  const double domain_width = domain.Width();
  if (domain_width <= 0.0) return 1;
  // Smallest fragment width determines the finest grid we need so that
  // every fragment spans at least one whole part.
  double min_frag_width = domain_width;
  for (const FragmentStats& f : fragments) {
    const double w = f.interval.Width();
    if (w > 0.0) min_frag_width = std::min(min_frag_width, w);
  }
  int parts = cfg_.target_parts;
  const int needed = static_cast<int>(std::ceil(domain_width / min_frag_width));
  parts = std::max(parts, needed);
  parts = std::min(parts, cfg_.max_parts);
  return std::max(parts, 1);
}

MleFragmentModel::AdjustedHits MleFragmentModel::Adjust(
    const std::vector<FragmentStats>& fragments, const Interval& domain,
    double t_now, const DecayFunction& dec,
    const std::vector<const FragmentStats*>* bases) const {
  AdjustedHits out;
  out.hits.assign(fragments.size(), 0.0);
  if (fragments.empty() || domain.Width() <= 0.0) return out;

  auto base_of = [bases](size_t i) -> const FragmentStats* {
    return bases != nullptr && i < bases->size() ? (*bases)[i] : nullptr;
  };

  // H(I) per fragment and H_total. With a base, accumulate base-then-
  // local exactly as the folded fragment's own DecayedHits would.
  std::vector<double> frag_hits(fragments.size(), 0.0);
  for (size_t i = 0; i < fragments.size(); ++i) {
    const FragmentStats* base = base_of(i);
    if (base == nullptr) {
      frag_hits[i] = fragments[i].DecayedHits(t_now, dec);
    } else if (!dec.config().enabled) {
      frag_hits[i] = static_cast<double>(base->hits().size() +
                                         fragments[i].hits().size());
    } else {
      double acc = base->DecayedHits(t_now, dec);
      for (const FragmentHit& h : fragments[i].hits()) acc += dec(t_now, h.time);
      frag_hits[i] = acc;
    }
    out.total += frag_hits[i];
  }
  if (out.total <= 0.0) return out;

  // Split the domain into equi-size parts and spread each fragment's
  // hits over the parts it covers (the paper splits hits evenly over
  // contained parts; we use overlap-proportional spreading, which
  // coincides when boundaries align with the part grid).
  const int num_parts = ChoosePartCount(fragments, domain);
  const double part_width = domain.Width() / num_parts;
  std::vector<double> part_hits(static_cast<size_t>(num_parts), 0.0);
  std::vector<double> part_mids(static_cast<size_t>(num_parts), 0.0);
  for (int p = 0; p < num_parts; ++p) {
    part_mids[static_cast<size_t>(p)] = domain.lo + part_width * (p + 0.5);
  }
  auto spread_hit = [&](const Interval& iv, const FragmentHit& hit) {
    const double w = dec(t_now, hit.time);
    if (w <= 0.0) return;
    // Spread the hit over the region the query actually touched
    // (hit.range, clamped to the fragment) when recorded; otherwise
    // over the whole fragment (the paper's even split).
    Interval region = iv;
    if (hit.has_range) {
      const auto clamped = hit.range.Intersect(iv);
      if (clamped.has_value()) region = *clamped;
    }
    const double region_width = region.Width();
    if (region_width <= 0.0) {
      int p = static_cast<int>((region.lo - domain.lo) / part_width);
      p = std::clamp(p, 0, num_parts - 1);
      part_hits[static_cast<size_t>(p)] += w;
      return;
    }
    // Only parts overlapping the region can receive mass.
    int first = static_cast<int>((region.lo - domain.lo) / part_width);
    int last = static_cast<int>((region.hi - domain.lo) / part_width);
    first = std::clamp(first, 0, num_parts - 1);
    last = std::clamp(last, 0, num_parts - 1);
    for (int p = first; p <= last; ++p) {
      const Interval part(domain.lo + part_width * p,
                          domain.lo + part_width * (p + 1));
      const double ow = part.OverlapWidth(region);
      if (ow > 0.0) {
        part_hits[static_cast<size_t>(p)] += w * ow / region_width;
      }
    }
  };
  for (size_t i = 0; i < fragments.size(); ++i) {
    if (frag_hits[i] <= 0.0) continue;
    const Interval& iv = fragments[i].interval;
    if (const FragmentStats* base = base_of(i)) {
      for (const FragmentHit& hit : base->hits()) spread_hit(iv, hit);
    }
    for (const FragmentHit& hit : fragments[i].hits()) spread_hit(iv, hit);
  }

  // MLE Normal fit over part midpoints weighted by part hits.
  out.fit = FitNormalMle(part_mids, part_hits);
  if (!out.fit.valid ||
      out.fit.stddev > cfg_.max_stddev_fraction * domain.Width()) {
    // Nothing to smooth, or the access pattern is too dispersed for a
    // Normal (see MleConfig::max_stddev_fraction): use raw hits.
    out.hits = frag_hits;
    return out;
  }

  // Adjusted hits per fragment through the fitted CDF.
  for (size_t i = 0; i < fragments.size(); ++i) {
    const Interval& iv = fragments[i].interval;
    const double p_hi = NormalCdf(iv.hi, out.fit.mean, out.fit.stddev);
    const double p_lo = NormalCdf(iv.lo, out.fit.mean, out.fit.stddev);
    out.hits[i] = out.total * std::max(0.0, p_hi - p_lo);
  }
  return out;
}

}  // namespace deepsea
