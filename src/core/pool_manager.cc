#include "core/pool_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "core/materialization_service.h"
#include "core/merge.h"
#include "core/view_sizing.h"

namespace deepsea {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sorted, deduplicated shard indices of every view a write footprint
/// touches. `all` footprints have no shard set (they take the X path).
std::vector<int> ShardSetOf(const CommitFootprint& fp) {
  std::vector<int> shards;
  auto add = [&shards](const std::string& view_id) {
    shards.push_back(PoolManager::ShardOf(view_id));
  };
  for (const std::string& v : fp.views) add(v);
  for (const auto& [v, attr] : fp.partitions) {
    (void)attr;
    add(v);
  }
  for (const CommitFootprint::FragRange& f : fp.fragments) add(f.view);
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

}  // namespace

// --- PoolLock ---

void PoolLock::LockShared() {
  std::unique_lock<std::mutex> lock(mu_);
  // A waiting commit (X or IX) bars new shared entrants: without this a
  // steady stream of planners across many tenants could hold shared_ >
  // 0 forever and starve commits indefinitely.
  cv_.wait(lock, [this] {
    return intent_ == 0 && intent_waiting_ == 0 && !exclusive_ &&
           exclusive_waiting_ == 0;
  });
  ++shared_;
}

void PoolLock::UnlockShared() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(shared_ > 0);
  if (--shared_ == 0) cv_.notify_all();
}

void PoolLock::LockIntent() {
  std::unique_lock<std::mutex> lock(mu_);
  // Registered as waiting so new shared entrants hold back (see
  // LockShared); existing shared holders drain, then we enter. A
  // waiting X still has priority over us.
  ++intent_waiting_;
  cv_.wait(lock, [this] {
    return shared_ == 0 && !exclusive_ && exclusive_waiting_ == 0;
  });
  --intent_waiting_;
  ++intent_;
}

void PoolLock::UnlockIntent() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(intent_ > 0);
  if (--intent_ == 0) cv_.notify_all();
}

void PoolLock::LockExclusive() {
  std::unique_lock<std::mutex> lock(mu_);
  ++exclusive_waiting_;
  cv_.wait(lock, [this] { return shared_ == 0 && intent_ == 0 && !exclusive_; });
  --exclusive_waiting_;
  exclusive_ = true;
}

void PoolLock::UnlockExclusive() {
  std::lock_guard<std::mutex> lock(mu_);
  assert(exclusive_);
  exclusive_ = false;
  cv_.notify_all();
}

// --- construction / teardown ---

PoolManager::PoolManager(Catalog* catalog, const EngineOptions* options,
                         const ClusterModel* cluster,
                         const PlanCostEstimator* estimator)
    : catalog_(catalog),
      options_(options),
      cluster_(cluster),
      estimator_(estimator),
      fs_(options->cluster.block_bytes),
      decay_(options->decay) {
  if (options->materialization.mode != MaterializationConfig::Mode::kInline) {
    service_ =
        std::make_unique<MaterializationService>(this, options->materialization);
  }
}

PoolManager::~PoolManager() {
  // Join the workers and drain leftover jobs while the pool is still
  // fully alive — jobs take commits on this pool.
  if (service_ != nullptr) service_->Shutdown();
}

MaterializationService* PoolManager::materialization_service() const {
  return service_.get();
}

void PoolManager::QuiesceMaterialization() const {
  if (service_ != nullptr) service_->Quiesce();
}

// --- commit context ---

struct PoolManager::CommitCtx {
  PoolManager* pool = nullptr;  ///< non-null while this thread commits
  bool exclusive = false;       ///< X (true) vs sharded IX (false)
  std::vector<int> shards;      ///< held shard indices, ascending
  CommitFootprint publish_fp;   ///< published to the epoch table on release
  uint64_t inflight_id = 0;     ///< in-flight registry key (sharded only)
  int64_t entered_ns = 0;
  EngineObserver* observer = nullptr;
  std::string tenant;
  int32_t tenant_ord = 0;
  bool txn_active = false;
  std::vector<TxnViewImage> txn_views;
  std::vector<TxnFileImage> txn_files;
  std::vector<TxnEvent> txn_events;
};

PoolManager::CommitCtx& PoolManager::Ctx() {
  static thread_local CommitCtx ctx;
  return ctx;
}

void CommitGuard::Release() {
  if (pool_ == nullptr) return;
  pool_->ReleaseCommit();
  pool_ = nullptr;
}

CommitGuard PoolManager::EnterCommitLocked(bool exclusive,
                                           EngineObserver* observer,
                                           std::string tenant,
                                           int32_t tenant_ord,
                                           CommitFootprint publish_fp) {
  CommitCtx& ctx = Ctx();
  assert(ctx.pool == nullptr);
  ctx.pool = this;
  ctx.exclusive = exclusive;
  ctx.publish_fp = std::move(publish_fp);
  ctx.inflight_id = 0;
  ctx.entered_ns = NowNs();
  ctx.observer = observer;
  ctx.tenant = std::move(tenant);
  ctx.tenant_ord = tenant_ord;
  commits_entered_.fetch_add(1, std::memory_order_relaxed);
  return CommitGuard(this);
}

CommitGuard PoolManager::BeginCommit(EngineObserver* observer,
                                     std::string tenant, int32_t tenant_ord) {
  assert(!CommitHeldByThisThread() && "commit section is not re-entrant");
  lock_.LockExclusive();
  CommitFootprint everything;
  everything.all = true;
  return EnterCommitLocked(/*exclusive=*/true, observer, std::move(tenant),
                           tenant_ord, std::move(everything));
}

CommitGuard PoolManager::TryBeginShardedCommit(
    EngineObserver* observer, std::string tenant, int32_t tenant_ord,
    CommitFootprint write_fp, const CommitFootprint& read_fp,
    uint64_t read_epoch, bool* conflict_genuine, double admitted_bytes,
    uint64_t ignore_seq) {
  assert(!CommitHeldByThisThread() && "commit section is not re-entrant");
  if (write_fp.all) {
    // A structural (`all`) footprint has no shard set: entering under
    // IX would publish `all` while holding no per-view serialization at
    // all. Refuse (defined behavior in release builds, unlike the old
    // debug-only assert) so the caller escalates to BeginCommit.
    if (conflict_genuine != nullptr) *conflict_genuine = true;
    return CommitGuard();
  }
  lock_.LockIntent();
  std::vector<int> shards = ShardSetOf(write_fp);
  for (int s : shards) {
    shard_mu_[static_cast<size_t>(s)].lock();
    shard_acct_[static_cast<size_t>(s)].acquisitions.fetch_add(
        1, std::memory_order_relaxed);
  }
  uint64_t inflight_id = 0;
  {
    std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
    bool ok =
        ValidateReadSetLocked(read_fp, read_epoch, conflict_genuine, ignore_seq);
    if (ok && !AdmittedBytesFitLocked(admitted_bytes)) {
      ok = false;
      // Lost headroom is a genuine conflict: the pool really did grow
      // under this plan's feet.
      if (conflict_genuine != nullptr) *conflict_genuine = true;
    }
    if (!ok) {
      // Conflict: undo the entry (shards in reverse order, then IX) and
      // let the caller escalate to the exclusive path.
      for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
        shard_mu_[static_cast<size_t>(*it)].unlock();
      }
      lock_.UnlockIntent();
      return CommitGuard();
    }
    // Register the write set while still under epoch_mu_, so no other
    // commit can validate in the window between our validation and our
    // registration.
    inflight_id = next_inflight_id_++;
    inflight_.push_back(InflightCommit{inflight_id, write_fp, admitted_bytes});
  }
  if (conflict_genuine != nullptr) *conflict_genuine = false;
  CommitGuard guard = EnterCommitLocked(/*exclusive=*/false, observer,
                                        std::move(tenant), tenant_ord,
                                        std::move(write_fp));
  CommitCtx& ctx = Ctx();
  ctx.shards = std::move(shards);
  ctx.inflight_id = inflight_id;
  return guard;
}

void PoolManager::ReleaseCommit() {
  CommitCtx& ctx = Ctx();
  assert(ctx.pool == this);
  assert(!ctx.txn_active && "commit released with an open pool transaction");
  const int64_t now_ns = NowNs();
  commit_held_ns_.fetch_add(now_ns - ctx.entered_ns, std::memory_order_relaxed);
  {
    // Publish the write footprint (and retire the in-flight entry)
    // BEFORE dropping any lock: once another commit can validate, the
    // epoch table must already cover this commit's writes.
    std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
    if (ctx.inflight_id != 0) {
      for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
        if (it->id == ctx.inflight_id) {
          inflight_.erase(it);
          break;
        }
      }
    }
    if (!ctx.publish_fp.Empty()) {
      const uint64_t seq = commit_seq_.load(std::memory_order_relaxed) + 1;
      published_.push_back(PublishedWrite{seq, std::move(ctx.publish_fp)});
      if (published_.size() > kEpochRingCapacity) published_.pop_front();
      commit_seq_.store(seq, std::memory_order_release);
    }
  }
  for (auto it = ctx.shards.rbegin(); it != ctx.shards.rend(); ++it) {
    shard_acct_[static_cast<size_t>(*it)].held_ns.fetch_add(
        now_ns - ctx.entered_ns, std::memory_order_relaxed);
    shard_mu_[static_cast<size_t>(*it)].unlock();
  }
  const bool exclusive = ctx.exclusive;
  ctx = CommitCtx{};
  if (exclusive) {
    lock_.UnlockExclusive();
  } else {
    lock_.UnlockIntent();
  }
}

bool PoolManager::ValidateReadSetLocked(const CommitFootprint& read_fp,
                                        uint64_t read_epoch,
                                        bool* conflict_genuine,
                                        uint64_t ignore_seq) const {
  const uint64_t seq_now = commit_seq_.load(std::memory_order_relaxed);
  if (seq_now > read_epoch) {
    // Can the bounded ring still cover everything published after the
    // plan's read epoch? If the oldest retained publish is newer than
    // read_epoch + 1, publishes have been dropped and we must assume
    // the worst (a spurious invalidation, by construction).
    const uint64_t oldest =
        published_.empty() ? seq_now + 1 : published_.front().seq;
    if (oldest > read_epoch + 1) {
      if (conflict_genuine != nullptr) *conflict_genuine = false;
      return false;
    }
    for (const PublishedWrite& p : published_) {
      if (p.seq <= read_epoch) continue;
      // A background job skips its own query's statistics publish: the
      // job's plan already accounts for those writes.
      if (ignore_seq != 0 && p.seq == ignore_seq) continue;
      if (FootprintsConflict(read_fp, p.fp)) {
        if (conflict_genuine != nullptr) *conflict_genuine = true;
        return false;
      }
    }
  }
  for (const InflightCommit& c : inflight_) {
    if (FootprintsConflict(read_fp, c.fp)) {
      if (conflict_genuine != nullptr) *conflict_genuine = true;
      return false;
    }
  }
  return true;
}

bool PoolManager::AdmittedBytesFitLocked(double admitted_bytes) const {
  if (admitted_bytes <= 0.0) return true;
  double claimed = 0.0;
  for (const InflightCommit& c : inflight_) claimed += c.admitted_bytes;
  // Occupancy under the shared catalog-structure lock: a foreign
  // sharded commit's fold may be adopting views into the catalog's
  // list concurrently. (epoch_mu_ -> catalog_mu_ is the sanctioned
  // order; folds never touch epoch_mu_.)
  double occupancy;
  {
    std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
    occupancy = views_.PoolBytes();
  }
  // The tolerance absorbs float-summation-order differences between the
  // knapsack's sequential budget subtraction and the per-view occupancy
  // cache sum, so a solo tenant whose plan exactly fills the budget is
  // never invalidated by rounding.
  const double limit = options_->pool_limit_bytes;
  return occupancy + claimed + admitted_bytes <= limit + 1e-9 * limit;
}

bool PoolManager::ValidateReadSet(const CommitGuard& commit,
                                  const CommitFootprint& read_fp,
                                  uint64_t read_epoch, bool* conflict_genuine,
                                  double admitted_bytes,
                                  uint64_t ignore_seq) const {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  if (!ValidateReadSetLocked(read_fp, read_epoch, conflict_genuine,
                             ignore_seq)) {
    return false;
  }
  if (!AdmittedBytesFitLocked(admitted_bytes)) {
    if (conflict_genuine != nullptr) *conflict_genuine = true;
    return false;
  }
  if (conflict_genuine != nullptr) *conflict_genuine = false;
  return true;
}

void PoolManager::SetCommitFootprint(const CommitGuard& commit,
                                     CommitFootprint fp) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  CommitCtx& ctx = Ctx();
  // A sharded commit already registered its footprint in the in-flight
  // table; only the exclusive path may narrow what it publishes.
  assert(ctx.exclusive && "SetCommitFootprint is for exclusive commits");
  ctx.publish_fp = std::move(fp);
}

uint64_t PoolManager::PublishCommitEarly(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  CommitCtx& ctx = Ctx();
  assert(ctx.pool == this);
  // Sound only because the commit's pool writes are complete by the
  // time the engine calls this (the async stats commit folds the delta
  // first, then publishes): a plan validating against the published
  // entry sees state that already reflects it. Sharded commits keep
  // their shard locks until release — a later same-shard commit simply
  // waits there.
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  if (ctx.inflight_id != 0) {
    for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
      if (it->id == ctx.inflight_id) {
        inflight_.erase(it);
        break;
      }
    }
    ctx.inflight_id = 0;
  }
  if (ctx.publish_fp.Empty()) return 0;
  const uint64_t seq = commit_seq_.load(std::memory_order_relaxed) + 1;
  published_.push_back(PublishedWrite{seq, std::move(ctx.publish_fp)});
  if (published_.size() > kEpochRingCapacity) published_.pop_front();
  commit_seq_.store(seq, std::memory_order_release);
  ctx.publish_fp = CommitFootprint();
  return seq;
}

bool PoolManager::CommitHeldByThisThread() const {
  return Ctx().pool == this;
}

int PoolManager::ShardOf(const std::string& view_id) {
  // FNV-1a.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : view_id) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<int>(h % static_cast<uint64_t>(kCommitShards));
}

std::vector<PoolManager::CommitShardStats> PoolManager::commit_shard_stats()
    const {
  std::vector<CommitShardStats> out(kCommitShards);
  for (int i = 0; i < kCommitShards; ++i) {
    const ShardAccounting& a = shard_acct_[static_cast<size_t>(i)];
    out[static_cast<size_t>(i)].acquisitions =
        a.acquisitions.load(std::memory_order_relaxed);
    out[static_cast<size_t>(i)].held_seconds =
        static_cast<double>(a.held_ns.load(std::memory_order_relaxed)) * 1e-9;
  }
  return out;
}

ViewCatalog* PoolManager::stat(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &views_;
}

SimFs* PoolManager::fs(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &fs_;
}

FilterTree* PoolManager::rewrite_index(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &rewrite_index_;
}

double PoolManager::PoolBytesSnapshot() const {
  PoolSharedLock lock(&lock_);
#ifndef NDEBUG
  // The cached per-view byte counters must agree with a fresh walk of
  // the fragment lists whenever the pool is quiescent for writes (S
  // mode excludes every commit).
  const double cached = views_.PoolBytes();
  const double exact = views_.PoolBytesExact();
  assert(std::abs(cached - exact) <=
             1e-6 * std::max(1.0, std::max(std::abs(cached), std::abs(exact))) &&
         "cached pool bytes out of sync with fragment state");
#endif
  return views_.PoolBytes();
}

int64_t PoolManager::Tick(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void PoolManager::AdvanceClockTo(const CommitGuard& commit, int64_t t) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  int64_t cur = clock_.load(std::memory_order_relaxed);
  while (t > cur &&
         !clock_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
  }
}

int32_t PoolManager::InternTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i] == name) return static_cast<int32_t>(i);
  }
  tenants_.push_back(name);
  return static_cast<int32_t>(tenants_.size() - 1);
}

std::string PoolManager::TenantName(int32_t ord) const {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  if (ord < 0 || static_cast<size_t>(ord) >= tenants_.size()) return "";
  return tenants_[static_cast<size_t>(ord)];
}

std::vector<std::string> PoolManager::Tenants() const {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  return tenants_;
}

void PoolManager::SetFaultPolicy(FaultPolicy* policy) {
  CommitGuard commit = BeginCommit();
  fs_.set_fault_policy(policy);
}

void PoolManager::RegisterViewTable(ViewInfo* view) {
  assert(CommitHeldByThisThread());
  if (catalog_->Contains(view->id)) return;
  auto schema = view->plan->OutputSchema(*catalog_);
  if (!schema.ok()) return;
  auto est = estimator_->Estimate(view->plan);
  if (!est.ok()) return;
  const double compression = options_->view_storage_compression;
  auto table = std::make_shared<Table>(view->id, *schema);
  table->set_logical_row_count(static_cast<uint64_t>(std::max(est->out_rows, 0.0)));
  table->set_avg_row_bytes(std::max(est->avg_row_bytes * compression, 1.0));
  catalog_->Put(table);
  // Initial (estimated) view statistics: S(V) and COST(V). COST is the
  // cost of computing the defining plan plus writing its (compressed)
  // output.
  view->stats.size_bytes = est->out_bytes * compression;
  view->stats.creation_cost =
      est->seconds + cluster_->WriteSeconds(view->stats.size_bytes);
}

void PoolManager::RegisterViewTablePlanning(ViewInfo* view,
                                            PlanningDelta* delta) const {
  Catalog* planning = delta->planning_catalog();
  if (planning->Contains(view->id)) return;
  auto schema = view->plan->OutputSchema(*planning);
  if (!schema.ok()) return;
  auto est = estimator_->Estimate(view->plan);
  if (!est.ok()) return;
  const double compression = options_->view_storage_compression;
  auto table = std::make_shared<Table>(view->id, *schema);
  table->set_logical_row_count(static_cast<uint64_t>(std::max(est->out_rows, 0.0)));
  table->set_avg_row_bytes(std::max(est->avg_row_bytes * compression, 1.0));
  planning->Put(table);
  delta->DeferCatalogPut(std::move(table));
  view->stats.size_bytes = est->out_bytes * compression;
  view->stats.creation_cost =
      est->seconds + cluster_->WriteSeconds(view->stats.size_bytes);
}

void PoolManager::AdvanceWindowsAfterFold(double t_now) {
  assert(CommitHeldByThisThread());
  CommitCtx& ctx = Ctx();
  auto advance = [this, t_now](ViewInfo* v) {
    v->stats.AdvanceWindow(t_now, decay_);
    for (auto& [attr, part] : v->partitions) {
      (void)attr;
      for (FragmentStats& f : part.fragments) f.AdvanceWindow(t_now, decay_);
    }
  };
  if (ctx.exclusive) {
    for (ViewInfo* v : views_.AllViews()) advance(v);
    return;
  }
  // A sharded commit may only touch the views whose shards it holds:
  // advance exactly the write footprint. Foreign views' cursors advance
  // when their own commits fold — the cursor is an evaluation cache,
  // never part of the pool fingerprint, so partial advancement is
  // sound.
  const CommitFootprint& fp = ctx.publish_fp;
  std::vector<std::string> ids = fp.views;
  for (const auto& [v, attr] : fp.partitions) {
    (void)attr;
    ids.push_back(v);
  }
  for (const CommitFootprint::FragRange& f : fp.fragments) ids.push_back(f.view);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  // Shared hold on the structure lock: the id lookups walk ViewCatalog
  // maps a concurrent foreign fold may be growing.
  std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
  for (const std::string& id : ids) {
    ViewInfo* v = views_.Get(id);
    if (v != nullptr) advance(v);
  }
}

// --- decision transaction ---

void PoolManager::TxnBegin() {
  assert(CommitHeldByThisThread());
  CommitCtx& ctx = Ctx();
  assert(!ctx.txn_active && "pool transactions do not nest");
  ctx.txn_active = true;
}

void PoolManager::TxnCommit() {
  CommitCtx& ctx = Ctx();
  assert(ctx.txn_active);
  ctx.txn_active = false;
  if (ctx.observer != nullptr) {
    for (const TxnEvent& e : ctx.txn_events) {
      switch (e.kind) {
        case TxnEvent::Kind::kMaterializeView:
          ctx.observer->OnMaterializeView(*e.view, e.value, ctx.tenant);
          break;
        case TxnEvent::Kind::kMaterializeFragment:
          ctx.observer->OnMaterializeFragment(*e.view, e.attr, e.interval,
                                              e.value, ctx.tenant);
          break;
        case TxnEvent::Kind::kEvict:
          ctx.observer->OnEvict(*e.view, e.attr, e.interval, e.value,
                                ctx.tenant);
          break;
        case TxnEvent::Kind::kMerge:
          ctx.observer->OnMerge(*e.view, e.attr, e.interval, e.value,
                                ctx.tenant);
          break;
      }
    }
  }
  ctx.txn_events.clear();
  ctx.txn_views.clear();
  ctx.txn_files.clear();
}

void PoolManager::TxnRollback() {
  CommitCtx& ctx = Ctx();
  assert(ctx.txn_active);
  ctx.txn_active = false;
  // Restore view metadata in reverse snapshot order. Partitions are
  // restored in place so PartitionState addresses survive (the retried
  // decision's actions point at them).
  for (auto it = ctx.txn_views.rbegin(); it != ctx.txn_views.rend(); ++it) {
    ViewInfo* v = it->view;
    v->whole_materialized = it->whole_materialized;
    v->stats = it->stats;
    v->fault_count = it->fault_count;
    v->quarantined_until = it->quarantined_until;
    for (auto pit = v->partitions.begin(); pit != v->partitions.end();) {
      auto img = it->partitions.find(pit->first);
      if (img == it->partitions.end()) {
        // Partition added after the snapshot: remove it again.
        pit = v->partitions.erase(pit);
      } else {
        pit->second = img->second;
        ++pit;
      }
    }
    for (const auto& [attr, part] : it->partitions) {
      if (v->partitions.count(attr) == 0) v->partitions.emplace(attr, part);
    }
    v->RefreshCachedBytes();
  }
  for (auto it = ctx.txn_files.rbegin(); it != ctx.txn_files.rend(); ++it) {
    fs_.RestoreForRollback(it->path, it->existed, it->bytes);
  }
  ctx.txn_events.clear();
  ctx.txn_views.clear();
  ctx.txn_files.clear();
}

void PoolManager::TxnSnapshotView(ViewInfo* view) {
  CommitCtx& ctx = Ctx();
  if (!ctx.txn_active) return;
  for (const TxnViewImage& img : ctx.txn_views) {
    if (img.view == view) return;  // first touch already captured
  }
  TxnViewImage img;
  img.view = view;
  img.whole_materialized = view->whole_materialized;
  img.stats = view->stats;
  img.fault_count = view->fault_count;
  img.quarantined_until = view->quarantined_until;
  img.partitions = view->partitions;
  ctx.txn_views.push_back(std::move(img));
}

Status PoolManager::TxnPut(const std::string& path, double bytes) {
  CommitCtx& ctx = Ctx();
  if (!ctx.txn_active) return fs_.Put(path, bytes);
  bool have = false;
  for (const TxnFileImage& img : ctx.txn_files) {
    if (img.path == path) {
      have = true;
      break;
    }
  }
  TxnFileImage img;
  if (!have) {
    auto size = fs_.Size(path);
    img.path = path;
    img.existed = size.ok();
    img.bytes = size.ok() ? *size : 0.0;
  }
  DEEPSEA_RETURN_IF_ERROR(fs_.Put(path, bytes));
  if (!have) ctx.txn_files.push_back(std::move(img));
  return Status::OK();
}

Status PoolManager::TxnDelete(const std::string& path) {
  CommitCtx& ctx = Ctx();
  if (!ctx.txn_active) return fs_.Delete(path);
  bool have = false;
  for (const TxnFileImage& img : ctx.txn_files) {
    if (img.path == path) {
      have = true;
      break;
    }
  }
  TxnFileImage img;
  if (!have) {
    auto size = fs_.Size(path);
    img.path = path;
    img.existed = size.ok();
    img.bytes = size.ok() ? *size : 0.0;
  }
  DEEPSEA_RETURN_IF_ERROR(fs_.Delete(path));
  if (!have) ctx.txn_files.push_back(std::move(img));
  return Status::OK();
}

void PoolManager::NotifyMaterializeView(const ViewInfo* view,
                                        double sim_seconds) {
  CommitCtx& ctx = Ctx();
  if (ctx.observer == nullptr) return;
  if (ctx.txn_active) {
    TxnEvent e;
    e.kind = TxnEvent::Kind::kMaterializeView;
    e.view = view;
    e.value = sim_seconds;
    ctx.txn_events.push_back(std::move(e));
    return;
  }
  ctx.observer->OnMaterializeView(*view, sim_seconds, ctx.tenant);
}

void PoolManager::NotifyMaterializeFragment(const ViewInfo* view,
                                            const std::string& attr,
                                            const Interval& interval,
                                            double bytes) {
  CommitCtx& ctx = Ctx();
  if (ctx.observer == nullptr) return;
  if (ctx.txn_active) {
    TxnEvent e;
    e.kind = TxnEvent::Kind::kMaterializeFragment;
    e.view = view;
    e.attr = attr;
    e.interval = interval;
    e.value = bytes;
    ctx.txn_events.push_back(std::move(e));
    return;
  }
  ctx.observer->OnMaterializeFragment(*view, attr, interval, bytes, ctx.tenant);
}

void PoolManager::NotifyEvict(const ViewInfo* view, const std::string& attr,
                              const Interval& interval, double bytes) {
  CommitCtx& ctx = Ctx();
  if (ctx.observer == nullptr) return;
  if (ctx.txn_active) {
    TxnEvent e;
    e.kind = TxnEvent::Kind::kEvict;
    e.view = view;
    e.attr = attr;
    e.interval = interval;
    e.value = bytes;
    ctx.txn_events.push_back(std::move(e));
    return;
  }
  ctx.observer->OnEvict(*view, attr, interval, bytes, ctx.tenant);
}

void PoolManager::NotifyMerge(const ViewInfo* view, const std::string& attr,
                              const Interval& merged, double bytes) {
  CommitCtx& ctx = Ctx();
  if (ctx.observer == nullptr) return;
  if (ctx.txn_active) {
    TxnEvent e;
    e.kind = TxnEvent::Kind::kMerge;
    e.view = view;
    e.attr = attr;
    e.interval = merged;
    e.value = bytes;
    ctx.txn_events.push_back(std::move(e));
    return;
  }
  ctx.observer->OnMerge(*view, attr, merged, bytes, ctx.tenant);
}

// --- creation / eviction primitives ---

Result<double> PoolManager::MaterializeView(ViewInfo* view,
                                            QueryReport* report) {
  assert(CommitHeldByThisThread());
  TxnSnapshotView(view);
  // Determine the partition attribute: the one with pending state.
  std::string attr;
  for (const auto& [a, p] : view->partitions) {
    (void)p;
    attr = a;
    break;
  }
  double extra_seconds = 0.0;
  auto est = estimator_->Estimate(view->plan);
  const double view_bytes = est.ok()
                                ? est->out_bytes * options_->view_storage_compression
                                : view->stats.size_bytes;
  // Set size *before* fragmentation: FragmentBytes / ApplyFragmentBounds
  // scale fragments by stats.size_bytes. A fault below rolls this back.
  view->stats.size_bytes = view_bytes;
  view->stats.size_is_actual = true;

  if (attr.empty() || options_->strategy == StrategyKind::kNoPartition) {
    // Whole-view materialization (NP).
    const std::string path = StrFormat("pool/%s/full", view->id.c_str());
    assert(!fs_.Exists(path) && "double materialization of whole view");
    DEEPSEA_RETURN_IF_ERROR(TxnPut(path, view_bytes));
    view->whole_materialized = true;
    extra_seconds = cluster_->PartitionedWriteSeconds(view_bytes, 1);
  } else {
    PartitionState* part = view->GetPartition(attr);
    std::vector<Interval> frags = ApplyFragmentBounds(
        *catalog_, *options_, *view, attr,
        InitialFragmentation(*catalog_, *options_, view, attr));
    for (const Interval& iv : frags) {
      const double bytes = FragmentBytes(*catalog_, *view, attr, iv);
      FragmentStats* fstat = part->Track(iv, bytes);
      fstat->size_bytes = bytes;
      const std::string path = FragmentPath(*view, attr, iv);
      assert(!fs_.Exists(path) && "double materialization of fragment");
      DEEPSEA_RETURN_IF_ERROR(TxnPut(path, bytes));
      fstat->materialized = true;
      ++report->created_fragments;
      NotifyMaterializeFragment(view, attr, iv, bytes);
    }
    extra_seconds = cluster_->PartitionedWriteSeconds(
        view_bytes, static_cast<int64_t>(frags.size()));
  }
  // Actual creation cost: computing the defining plan (done as part of
  // the instrumented query) plus the durable partitioned write.
  view->stats.creation_cost =
      (est.ok() ? est->seconds : view->stats.creation_cost) + extra_seconds;
  view->stats.cost_is_actual = true;
  // A successful materialization proves the storage path works again.
  view->fault_count = 0;
  view->quarantined_until = 0;
  view->RefreshCachedBytes();
  report->created_views.push_back(view->id);
  NotifyMaterializeView(view, extra_seconds);
  return extra_seconds;
}

Result<double> PoolManager::MaterializeFragment(ViewInfo* view,
                                                PartitionState* part,
                                                const Interval& iv,
                                                const QueryContext& ctx,
                                                QueryReport* report) {
  assert(CommitHeldByThisThread());
  TxnSnapshotView(view);
  const std::string& attr = part->attr;
  double seconds = 0.0;
  // Fragments currently materialized that overlap the new one. Tracked
  // by interval, not pointer: Track() below may grow the fragment
  // vector and invalidate references.
  std::vector<Interval> parents;
  std::vector<double> parent_bytes_to_read;
  const bool cover_matches =
      view->id == ctx.cover_view() && attr == ctx.cover_attr();
  for (const FragmentStats& f : part->fragments) {
    if (f.materialized && f.interval.Overlaps(iv) && f.interval != iv) {
      parents.push_back(f.interval);
      // Parents the current query's cover already read are free to
      // re-scan: the partition operator forks the new fragment off the
      // same map stream (repartitioning as a by-product of answering).
      const bool read_by_query = cover_matches && ctx.CoverContains(f.interval);
      if (!read_by_query) parent_bytes_to_read.push_back(f.size_bytes);
    }
  }
  // Read the overlapping parents (not already streamed by the query) to
  // extract the new fragment's rows.
  seconds += cluster_->MapPhaseSeconds(parent_bytes_to_read);

  const double bytes = FragmentBytes(*catalog_, *view, attr, iv);
  FragmentStats* fstat = part->Track(iv, bytes);
  fstat->size_bytes = bytes;
  const std::string frag_path = FragmentPath(*view, attr, iv);
  assert(!fs_.Exists(frag_path) && "double materialization of fragment");
  DEEPSEA_RETURN_IF_ERROR(TxnPut(frag_path, bytes));
  fstat->materialized = true;
  ++report->created_fragments;
  seconds += cluster_->PartitionedWriteSeconds(bytes, 1);
  NotifyMaterializeFragment(view, attr, iv, bytes);

  if (!options_->overlapping_fragments) {
    // Horizontal partitioning: the parents must be split — their whole
    // content is rewritten as complement pieces and the parents evicted
    // (Section 1, "Overlapping Fragments": the split cost DeepSea's
    // overlapping mode avoids).
    for (const Interval& p : parents) {
      std::vector<Interval> pieces;
      auto [left, rest] = p.SplitBefore(iv.lo);
      if (!left.IsEmpty() && left.Width() > 0.0 && !iv.Contains(left)) {
        pieces.push_back(left);
      }
      auto [rest2, right] = p.SplitAfter(iv.hi);
      (void)rest;
      (void)rest2;
      if (!right.IsEmpty() && right.Width() > 0.0 && !iv.Contains(right)) {
        pieces.push_back(right);
      }
      for (const Interval& piece : pieces) {
        const double piece_bytes = FragmentBytes(*catalog_, *view, attr, piece);
        FragmentStats* pstat = part->Track(piece, piece_bytes);
        pstat->size_bytes = piece_bytes;
        DEEPSEA_RETURN_IF_ERROR(
            TxnPut(FragmentPath(*view, attr, piece), piece_bytes));
        pstat->materialized = true;
        ++report->created_fragments;
        seconds += cluster_->PartitionedWriteSeconds(piece_bytes, 1);
        NotifyMaterializeFragment(view, attr, piece, piece_bytes);
      }
      // Re-resolve the parent after the Track calls above (the fragment
      // vector may have been reallocated).
      FragmentStats* parent_stat = part->Find(p);
      if (parent_stat != nullptr) {
        DEEPSEA_RETURN_IF_ERROR(EvictFragment(view, part, parent_stat));
        --report->evicted_fragments;  // split, not a policy eviction
      }
    }
  }
  // A successful refinement proves the storage path works again.
  view->fault_count = 0;
  view->quarantined_until = 0;
  view->RefreshCachedBytes();
  return seconds;
}

Status PoolManager::EvictFragment(ViewInfo* view, PartitionState* part,
                                  FragmentStats* frag) {
  assert(CommitHeldByThisThread());
  if (!frag->materialized) return Status::OK();
  TxnSnapshotView(view);
  const std::string path = FragmentPath(*view, part->attr, frag->interval);
  Status st = TxnDelete(path);
  if (st.code() == StatusCode::kNotFound) {
    // A materialized fragment without a backing file is a pool-
    // accounting bug, not a storage fault: surface it loudly instead of
    // silently dropping the delete.
    assert(false && "evicting fragment whose pool file is missing");
    return Status::Internal("eviction of missing pool file: " + path);
  }
  DEEPSEA_RETURN_IF_ERROR(st);
  frag->materialized = false;
  view->RefreshCachedBytes();
  NotifyEvict(view, part->attr, frag->interval, frag->size_bytes);
  return Status::OK();
}

Result<int> PoolManager::EvictWholeView(ViewInfo* view) {
  assert(CommitHeldByThisThread());
  TxnSnapshotView(view);
  int evicted = 0;
  // Materialized fragments go first, through the same per-fragment path
  // (and notifications) policy evictions use.
  for (auto& [attr, part] : view->partitions) {
    (void)attr;
    for (FragmentStats& f : part.fragments) {
      if (!f.materialized) continue;
      DEEPSEA_RETURN_IF_ERROR(EvictFragment(view, &part, &f));
      ++evicted;
    }
  }
  if (view->whole_materialized) {
    const std::string path = StrFormat("pool/%s/full", view->id.c_str());
    Status st = TxnDelete(path);
    if (st.code() == StatusCode::kNotFound) {
      assert(false && "evicting whole view whose pool file is missing");
      return Status::Internal("eviction of missing pool file: " + path);
    }
    DEEPSEA_RETURN_IF_ERROR(st);
    view->whole_materialized = false;
    ++evicted;
    view->RefreshCachedBytes();
    NotifyEvict(view, "", Interval(), view->stats.size_bytes);
  }
  return evicted;
}

void PoolManager::RecordViewFault(const std::string& view_id, int64_t now) {
  assert(CommitHeldByThisThread());
  ViewInfo* view;
  {
    // The id lookup reads ViewCatalog structure a concurrent foreign
    // fold may be growing; the view's own fields are shard-protected.
    std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
    view = views_.Get(view_id);
  }
  if (view == nullptr) return;
  ++view->fault_count;
  const FaultHandlingConfig& fault = options_->fault;
  if (fault.quarantine_threshold > 0 &&
      view->fault_count >= fault.quarantine_threshold) {
    view->quarantined_until = now + fault.quarantine_cooldown_commits;
    view->fault_count = 0;
  }
}

// --- decision execution ---

Status PoolManager::ApplyStaged(const SelectionDecision& decision,
                                const QueryContext& ctx, QueryReport* report,
                                std::string* fault_view) {
  // Admitted initial fragments are created together per view (one
  // instrumented partitioned write). Charge order is the order views
  // first appear in the decision's actions — a pure function of the
  // planner's output. A pointer-keyed map here would order the charges
  // (and created_views) by heap address, which varies across runs and
  // threads even for identical commit orders.
  struct NewViewWork {
    double bytes = 0.0;
    int64_t count = 0;
  };
  std::vector<std::pair<ViewInfo*, NewViewWork>> new_view_work;
  auto work_for = [&new_view_work](ViewInfo* view) -> NewViewWork& {
    for (auto& [v, work] : new_view_work) {
      if (v == view) return work;
    }
    new_view_work.emplace_back(view, NewViewWork{});
    return new_view_work.back().second;
  };

  for (const SelectionAction& a : decision.actions) {
    *fault_view = a.view != nullptr ? a.view->id : "";
    switch (a.kind) {
      case SelectionAction::Kind::kEvictWholeView: {
        // Count exactly the pieces evicted, so QueryReport agrees with
        // the per-piece OnEvict notifications no matter the path.
        DEEPSEA_ASSIGN_OR_RETURN(int evicted, EvictWholeView(a.view));
        report->evicted_fragments += evicted;
        break;
      }
      case SelectionAction::Kind::kEvictFragment: {
        FragmentStats* f = a.part->Find(a.interval);
        if (f != nullptr && f->materialized) {
          DEEPSEA_RETURN_IF_ERROR(EvictFragment(a.view, a.part, f));
          ++report->evicted_fragments;
        }
        break;
      }
      case SelectionAction::Kind::kMaterializeView: {
        DEEPSEA_ASSIGN_OR_RETURN(double seconds,
                                 MaterializeView(a.view, report));
        report->materialize_seconds += seconds;
        break;
      }
      case SelectionAction::Kind::kMaterializeRefinement: {
        DEEPSEA_ASSIGN_OR_RETURN(
            double seconds,
            MaterializeFragment(a.view, a.part, a.interval, ctx, report));
        report->materialize_seconds += seconds;
        break;
      }
      case SelectionAction::Kind::kMaterializeViewFragment: {
        FragmentStats* f = a.part->Find(a.interval);
        if (f == nullptr || f->materialized) continue;
        TxnSnapshotView(a.view);
        f->size_bytes = a.size_bytes;
        const std::string path =
            FragmentPath(*a.view, a.part->attr, a.interval);
        assert(!fs_.Exists(path) && "double materialization of fragment");
        DEEPSEA_RETURN_IF_ERROR(TxnPut(path, a.size_bytes));
        f->materialized = true;
        ++report->created_fragments;
        a.view->RefreshCachedBytes();
        NotifyMaterializeFragment(a.view, a.part->attr, a.interval,
                                  a.size_bytes);
        NewViewWork& work = work_for(a.view);
        work.bytes += a.size_bytes;
        work.count += 1;
        break;
      }
    }
  }
  fault_view->clear();

  for (auto& [view, work] : new_view_work) {
    TxnSnapshotView(view);
    const double extra =
        cluster_->PartitionedWriteSeconds(work.bytes, work.count);
    report->materialize_seconds += extra;
    auto est = estimator_->Estimate(view->plan);
    if (est.ok()) {
      view->stats.size_bytes = est->out_bytes * options_->view_storage_compression;
      view->stats.size_is_actual = true;
      view->stats.creation_cost = est->seconds + extra;
      view->stats.cost_is_actual = true;
    }
    view->fault_count = 0;
    view->quarantined_until = 0;
    view->RefreshCachedBytes();
    report->created_views.push_back(view->id);
    NotifyMaterializeView(view, extra);
  }
  return Status::OK();
}

void PoolManager::FoldDeltaAndRemap(PlanningDelta* delta, double t_now) {
  {
    // Exclusive on the structure lock: the fold adopts views, puts
    // catalog tables, and inserts rewrite-index entries — all visible
    // to concurrent foreign sharded commits. Released before the shared
    // sections below (std::shared_mutex is non-reentrant).
    std::unique_lock<std::shared_mutex> catalog_lock(catalog_mu_);
    delta->Fold(&views_, catalog_, &rewrite_index_);
  }
  // Reserved views were registered (shard set, in-flight entry, pending
  // publish footprint) under placeholder ids; rewrite the publish
  // footprint to the final ids Fold just assigned. Sound because no
  // foreign plan can hold a read on either id: planning never overlaps
  // any commit, so placeholders are unobservable, and the final id did
  // not exist in the catalog before this fold.
  delta->RemapFoldedIds(&Ctx().publish_fp);
  AdvanceWindowsAfterFold(t_now);
}

void PoolManager::FoldPlanningDelta(const CommitGuard& commit,
                                    const QueryContext& ctx) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  PlanningDelta* delta = ctx.delta();
  if (delta == nullptr || delta->folded()) return;
  FoldDeltaAndRemap(delta, ctx.t_now());
}

Status PoolManager::Apply(const SelectionDecision& decision,
                          const QueryContext& ctx, QueryReport* report) {
  assert(CommitHeldByThisThread());
  // Fold the planning delta *before* the decision transaction begins: a
  // storage fault rolls back the decision, not the statistics (the old
  // in-place code recorded them during planning, before Apply, too).
  // Fold is idempotent, so the retry loop in ExecuteDecision may call
  // Apply repeatedly with the same context.
  PlanningDelta* delta = ctx.delta();
  SelectionDecision remapped;
  const SelectionDecision* to_apply = &decision;
  if (delta != nullptr) {
    if (!delta->folded()) FoldDeltaAndRemap(delta, ctx.t_now());
    // Planning captured shadow PartitionState pointers; execute against
    // the real ones they folded into.
    remapped = decision;
    for (SelectionAction& a : remapped.actions) {
      if (a.part != nullptr) a.part = delta->RealPartition(a.part);
    }
    to_apply = &remapped;
  }
  const QueryReport report_backup = *report;
  std::string fault_view;
  TxnBegin();
  Status st;
  {
    // Shared hold across the staged apply: estimators, fragment sizing
    // and schema resolution read the relational catalog, which a
    // foreign sharded commit's fold may be growing concurrently.
    std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
    st = ApplyStaged(*to_apply, ctx, report, &fault_view);
  }
  if (st.ok()) {
    TxnCommit();
    return st;
  }
  TxnRollback();
  *report = report_backup;
  report->fault_view = fault_view;
  report->fault_message = st.ToString();
  return st;
}

Result<double> PoolManager::MergeStaged(double t_now,
                                        const DecayFunction& decay,
                                        QueryReport* report) {
  double seconds = 0.0;
  int merges = 0;
  auto candidates = FindMergeCandidates(&views_, options_->merge, t_now, decay);
  for (const MergeCandidate& cand : candidates) {
    if (merges >= options_->merge.max_merges_per_query) break;
    FragmentStats& a = cand.part->fragments[cand.left_index];
    FragmentStats& b = cand.part->fragments[cand.right_index];
    if (!a.materialized || !b.materialized) continue;  // stale candidate
    // Read both parents, write the merged fragment.
    seconds += cluster_->MapPhaseSeconds({a.size_bytes, b.size_bytes});
    const double merged_bytes = a.size_bytes + b.size_bytes;
    seconds += cluster_->PartitionedWriteSeconds(merged_bytes, 1);
    // Union the hit histories so the merged fragment keeps its record.
    std::vector<FragmentHit> hits = a.hits();
    hits.insert(hits.end(), b.hits().begin(), b.hits().end());
    DEEPSEA_RETURN_IF_ERROR(EvictFragment(cand.view, cand.part, &a));
    DEEPSEA_RETURN_IF_ERROR(EvictFragment(cand.view, cand.part, &b));
    FragmentStats* merged = cand.part->Track(cand.merged, merged_bytes);
    merged->size_bytes = merged_bytes;
    DEEPSEA_RETURN_IF_ERROR(TxnPut(
        FragmentPath(*cand.view, cand.part->attr, cand.merged), merged_bytes));
    merged->materialized = true;
    if (merged->hits().empty()) merged->AdoptHits(std::move(hits));
    cand.view->RefreshCachedBytes();
    ++merges;
    ++report->merged_fragments;
    NotifyMerge(cand.view, cand.part->attr, cand.merged, merged_bytes);
  }
  return seconds;
}

Result<double> PoolManager::RunMergePass(double t_now,
                                         const DecayFunction& decay,
                                         QueryReport* report) {
  assert(CommitHeldByThisThread());
  assert(Ctx().exclusive && "merge passes require the exclusive commit");
  const QueryReport report_backup = *report;
  TxnBegin();
  Result<double> seconds = MergeStaged(t_now, decay, report);
  if (seconds.ok()) {
    TxnCommit();
    return seconds;
  }
  TxnRollback();
  *report = report_backup;
  report->fault_message = seconds.status().ToString();
  return seconds;
}

}  // namespace deepsea
