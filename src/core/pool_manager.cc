#include "core/pool_manager.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "core/merge.h"
#include "core/view_sizing.h"

namespace deepsea {

namespace {

/// Per-thread key for commit ownership: the address of a thread_local
/// is unique among live threads and never 0.
uintptr_t ThisThreadKey() {
  static thread_local const char key = 0;
  return reinterpret_cast<uintptr_t>(&key);
}

}  // namespace

void CommitGuard::Release() {
  if (pool_ == nullptr) return;
  pool_->ReleaseCommit();
  pool_ = nullptr;
}

CommitGuard PoolManager::BeginCommit(EngineObserver* observer,
                                     std::string tenant, int32_t tenant_ord) {
  assert(!CommitHeldByThisThread() && "commit section is not re-entrant");
  commit_mu_.lock();
  commit_owner_.store(ThisThreadKey(), std::memory_order_relaxed);
  commit_observer_ = observer;
  commit_tenant_ = std::move(tenant);
  commit_tenant_ord_ = tenant_ord;
  return CommitGuard(this);
}

void PoolManager::ReleaseCommit() {
  assert(CommitHeldByThisThread());
  commit_observer_ = nullptr;
  commit_tenant_.clear();
  commit_tenant_ord_ = 0;
  commit_owner_.store(0, std::memory_order_relaxed);
  commit_mu_.unlock();
}

bool PoolManager::CommitHeldByThisThread() const {
  return commit_owner_.load(std::memory_order_relaxed) == ThisThreadKey();
}

ViewCatalog* PoolManager::stat(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &views_;
}

SimFs* PoolManager::fs(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &fs_;
}

FilterTree* PoolManager::rewrite_index(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &rewrite_index_;
}

double PoolManager::PoolBytesSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(commit_mu_);
  return views_.PoolBytes();
}

int64_t PoolManager::Tick(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void PoolManager::AdvanceClockTo(const CommitGuard& commit, int64_t t) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  if (t > clock_.load(std::memory_order_relaxed)) {
    clock_.store(t, std::memory_order_relaxed);
  }
}

int32_t PoolManager::InternTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i] == name) return static_cast<int32_t>(i);
  }
  tenants_.push_back(name);
  return static_cast<int32_t>(tenants_.size() - 1);
}

std::string PoolManager::TenantName(int32_t ord) const {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  if (ord < 0 || static_cast<size_t>(ord) >= tenants_.size()) return "";
  return tenants_[static_cast<size_t>(ord)];
}

std::vector<std::string> PoolManager::Tenants() const {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  return tenants_;
}

void PoolManager::RegisterViewTable(ViewInfo* view) {
  assert(CommitHeldByThisThread());
  if (catalog_->Contains(view->id)) return;
  auto schema = view->plan->OutputSchema(*catalog_);
  if (!schema.ok()) return;
  auto est = estimator_->Estimate(view->plan);
  if (!est.ok()) return;
  const double compression = options_->view_storage_compression;
  auto table = std::make_shared<Table>(view->id, *schema);
  table->set_logical_row_count(static_cast<uint64_t>(std::max(est->out_rows, 0.0)));
  table->set_avg_row_bytes(std::max(est->avg_row_bytes * compression, 1.0));
  catalog_->Put(table);
  // Initial (estimated) view statistics: S(V) and COST(V). COST is the
  // cost of computing the defining plan plus writing its (compressed)
  // output.
  view->stats.size_bytes = est->out_bytes * compression;
  view->stats.creation_cost =
      est->seconds + cluster_->WriteSeconds(view->stats.size_bytes);
}

double PoolManager::MaterializeView(ViewInfo* view, QueryReport* report) {
  assert(CommitHeldByThisThread());
  // Determine the partition attribute: the one with pending state.
  std::string attr;
  for (const auto& [a, p] : view->partitions) {
    (void)p;
    attr = a;
    break;
  }
  double extra_seconds = 0.0;
  auto est = estimator_->Estimate(view->plan);
  const double view_bytes = est.ok()
                                ? est->out_bytes * options_->view_storage_compression
                                : view->stats.size_bytes;
  view->stats.size_bytes = view_bytes;
  view->stats.size_is_actual = true;

  if (attr.empty() || options_->strategy == StrategyKind::kNoPartition) {
    // Whole-view materialization (NP).
    fs_.Put(StrFormat("pool/%s/full", view->id.c_str()), view_bytes);
    view->whole_materialized = true;
    extra_seconds = cluster_->PartitionedWriteSeconds(view_bytes, 1);
  } else {
    PartitionState* part = view->GetPartition(attr);
    std::vector<Interval> frags = ApplyFragmentBounds(
        *catalog_, *options_, *view, attr,
        InitialFragmentation(*catalog_, *options_, view, attr));
    for (const Interval& iv : frags) {
      const double bytes = FragmentBytes(*catalog_, *view, attr, iv);
      FragmentStats* fstat = part->Track(iv, bytes);
      fstat->size_bytes = bytes;
      fstat->materialized = true;
      fs_.Put(FragmentPath(*view, attr, iv), bytes);
      ++report->created_fragments;
      if (commit_observer_ != nullptr) {
        commit_observer_->OnMaterializeFragment(*view, attr, iv, bytes,
                                                commit_tenant_);
      }
    }
    extra_seconds = cluster_->PartitionedWriteSeconds(
        view_bytes, static_cast<int64_t>(frags.size()));
  }
  // Actual creation cost: computing the defining plan (done as part of
  // the instrumented query) plus the durable partitioned write.
  view->stats.creation_cost =
      (est.ok() ? est->seconds : view->stats.creation_cost) + extra_seconds;
  view->stats.cost_is_actual = true;
  report->created_views.push_back(view->id);
  if (commit_observer_ != nullptr) {
    commit_observer_->OnMaterializeView(*view, extra_seconds, commit_tenant_);
  }
  return extra_seconds;
}

double PoolManager::MaterializeFragment(ViewInfo* view, PartitionState* part,
                                        const Interval& iv,
                                        const QueryContext& ctx,
                                        QueryReport* report) {
  assert(CommitHeldByThisThread());
  const std::string& attr = part->attr;
  double seconds = 0.0;
  // Fragments currently materialized that overlap the new one. Tracked
  // by interval, not pointer: Track() below may grow the fragment
  // vector and invalidate references.
  std::vector<Interval> parents;
  std::vector<double> parent_bytes_to_read;
  const bool cover_matches =
      view->id == ctx.cover_view() && attr == ctx.cover_attr();
  for (const FragmentStats& f : part->fragments) {
    if (f.materialized && f.interval.Overlaps(iv) && f.interval != iv) {
      parents.push_back(f.interval);
      // Parents the current query's cover already read are free to
      // re-scan: the partition operator forks the new fragment off the
      // same map stream (repartitioning as a by-product of answering).
      const bool read_by_query = cover_matches && ctx.CoverContains(f.interval);
      if (!read_by_query) parent_bytes_to_read.push_back(f.size_bytes);
    }
  }
  // Read the overlapping parents (not already streamed by the query) to
  // extract the new fragment's rows.
  seconds += cluster_->MapPhaseSeconds(parent_bytes_to_read);

  const double bytes = FragmentBytes(*catalog_, *view, attr, iv);
  FragmentStats* fstat = part->Track(iv, bytes);
  fstat->size_bytes = bytes;
  fstat->materialized = true;
  fs_.Put(FragmentPath(*view, attr, iv), bytes);
  ++report->created_fragments;
  seconds += cluster_->PartitionedWriteSeconds(bytes, 1);
  if (commit_observer_ != nullptr) {
    commit_observer_->OnMaterializeFragment(*view, attr, iv, bytes,
                                            commit_tenant_);
  }

  if (!options_->overlapping_fragments) {
    // Horizontal partitioning: the parents must be split — their whole
    // content is rewritten as complement pieces and the parents evicted
    // (Section 1, "Overlapping Fragments": the split cost DeepSea's
    // overlapping mode avoids).
    for (const Interval& p : parents) {
      std::vector<Interval> pieces;
      auto [left, rest] = p.SplitBefore(iv.lo);
      if (!left.IsEmpty() && left.Width() > 0.0 && !iv.Contains(left)) {
        pieces.push_back(left);
      }
      auto [rest2, right] = p.SplitAfter(iv.hi);
      (void)rest;
      (void)rest2;
      if (!right.IsEmpty() && right.Width() > 0.0 && !iv.Contains(right)) {
        pieces.push_back(right);
      }
      for (const Interval& piece : pieces) {
        const double piece_bytes = FragmentBytes(*catalog_, *view, attr, piece);
        FragmentStats* pstat = part->Track(piece, piece_bytes);
        pstat->size_bytes = piece_bytes;
        pstat->materialized = true;
        fs_.Put(FragmentPath(*view, attr, piece), piece_bytes);
        ++report->created_fragments;
        seconds += cluster_->PartitionedWriteSeconds(piece_bytes, 1);
        if (commit_observer_ != nullptr) {
          commit_observer_->OnMaterializeFragment(*view, attr, piece,
                                                  piece_bytes, commit_tenant_);
        }
      }
      // Re-resolve the parent after the Track calls above (the fragment
      // vector may have been reallocated).
      FragmentStats* parent_stat = part->Find(p);
      if (parent_stat != nullptr) {
        EvictFragment(view, part, parent_stat);
        --report->evicted_fragments;  // split, not a policy eviction
      }
    }
  }
  return seconds;
}

void PoolManager::EvictFragment(ViewInfo* view, PartitionState* part,
                                FragmentStats* frag) {
  assert(CommitHeldByThisThread());
  if (!frag->materialized) return;
  frag->materialized = false;
  (void)fs_.Delete(FragmentPath(*view, part->attr, frag->interval));
  if (commit_observer_ != nullptr) {
    commit_observer_->OnEvict(*view, part->attr, frag->interval,
                              frag->size_bytes, commit_tenant_);
  }
}

int PoolManager::EvictWholeView(ViewInfo* view) {
  assert(CommitHeldByThisThread());
  int evicted = 0;
  // Materialized fragments go first, through the same per-fragment path
  // (and notifications) policy evictions use.
  for (auto& [attr, part] : view->partitions) {
    (void)attr;
    for (FragmentStats& f : part.fragments) {
      if (!f.materialized) continue;
      EvictFragment(view, &part, &f);
      ++evicted;
    }
  }
  if (view->whole_materialized) {
    view->whole_materialized = false;
    (void)fs_.Delete(StrFormat("pool/%s/full", view->id.c_str()));
    ++evicted;
    if (commit_observer_ != nullptr) {
      commit_observer_->OnEvict(*view, "", Interval(), view->stats.size_bytes,
                                commit_tenant_);
    }
  }
  return evicted;
}

void PoolManager::Apply(const SelectionDecision& decision,
                        const QueryContext& ctx, QueryReport* report) {
  assert(CommitHeldByThisThread());
  // Admitted initial fragments are created together per view (one
  // instrumented partitioned write). Charge order is the order views
  // first appear in the decision's actions — a pure function of the
  // planner's output. A pointer-keyed map here would order the charges
  // (and created_views) by heap address, which varies across runs and
  // threads even for identical commit orders.
  struct NewViewWork {
    double bytes = 0.0;
    int64_t count = 0;
  };
  std::vector<std::pair<ViewInfo*, NewViewWork>> new_view_work;
  auto work_for = [&new_view_work](ViewInfo* view) -> NewViewWork& {
    for (auto& [v, work] : new_view_work) {
      if (v == view) return work;
    }
    new_view_work.emplace_back(view, NewViewWork{});
    return new_view_work.back().second;
  };

  for (const SelectionAction& a : decision.actions) {
    switch (a.kind) {
      case SelectionAction::Kind::kEvictWholeView:
        // Count exactly the pieces evicted, so QueryReport agrees with
        // the per-piece OnEvict notifications no matter the path.
        report->evicted_fragments += EvictWholeView(a.view);
        break;
      case SelectionAction::Kind::kEvictFragment: {
        FragmentStats* f = a.part->Find(a.interval);
        if (f != nullptr && f->materialized) {
          EvictFragment(a.view, a.part, f);
          ++report->evicted_fragments;
        }
        break;
      }
      case SelectionAction::Kind::kMaterializeView:
        report->materialize_seconds += MaterializeView(a.view, report);
        break;
      case SelectionAction::Kind::kMaterializeRefinement:
        report->materialize_seconds +=
            MaterializeFragment(a.view, a.part, a.interval, ctx, report);
        break;
      case SelectionAction::Kind::kMaterializeViewFragment: {
        FragmentStats* f = a.part->Find(a.interval);
        if (f == nullptr || f->materialized) continue;
        f->size_bytes = a.size_bytes;
        f->materialized = true;
        fs_.Put(FragmentPath(*a.view, a.part->attr, a.interval), a.size_bytes);
        ++report->created_fragments;
        if (commit_observer_ != nullptr) {
          commit_observer_->OnMaterializeFragment(*a.view, a.part->attr,
                                                  a.interval, a.size_bytes,
                                                  commit_tenant_);
        }
        NewViewWork& work = work_for(a.view);
        work.bytes += a.size_bytes;
        work.count += 1;
        break;
      }
    }
  }

  for (auto& [view, work] : new_view_work) {
    const double extra =
        cluster_->PartitionedWriteSeconds(work.bytes, work.count);
    report->materialize_seconds += extra;
    auto est = estimator_->Estimate(view->plan);
    if (est.ok()) {
      view->stats.size_bytes = est->out_bytes * options_->view_storage_compression;
      view->stats.size_is_actual = true;
      view->stats.creation_cost = est->seconds + extra;
      view->stats.cost_is_actual = true;
    }
    report->created_views.push_back(view->id);
    if (commit_observer_ != nullptr) {
      commit_observer_->OnMaterializeView(*view, extra, commit_tenant_);
    }
  }
}

double PoolManager::RunMergePass(double t_now, const DecayFunction& decay,
                                 QueryReport* report) {
  assert(CommitHeldByThisThread());
  double seconds = 0.0;
  int merges = 0;
  auto candidates = FindMergeCandidates(&views_, options_->merge, t_now, decay);
  for (const MergeCandidate& cand : candidates) {
    if (merges >= options_->merge.max_merges_per_query) break;
    FragmentStats& a = cand.part->fragments[cand.left_index];
    FragmentStats& b = cand.part->fragments[cand.right_index];
    if (!a.materialized || !b.materialized) continue;  // stale candidate
    // Read both parents, write the merged fragment.
    seconds += cluster_->MapPhaseSeconds({a.size_bytes, b.size_bytes});
    const double merged_bytes = a.size_bytes + b.size_bytes;
    seconds += cluster_->PartitionedWriteSeconds(merged_bytes, 1);
    // Union the hit histories so the merged fragment keeps its record.
    std::vector<FragmentHit> hits = a.hits;
    hits.insert(hits.end(), b.hits.begin(), b.hits.end());
    EvictFragment(cand.view, cand.part, &a);
    EvictFragment(cand.view, cand.part, &b);
    FragmentStats* merged = cand.part->Track(cand.merged, merged_bytes);
    merged->size_bytes = merged_bytes;
    merged->materialized = true;
    if (merged->hits.empty()) merged->hits = std::move(hits);
    fs_.Put(FragmentPath(*cand.view, cand.part->attr, cand.merged),
            merged_bytes);
    ++merges;
    ++report->merged_fragments;
    if (commit_observer_ != nullptr) {
      commit_observer_->OnMerge(*cand.view, cand.part->attr, cand.merged,
                                merged_bytes, commit_tenant_);
    }
  }
  return seconds;
}

}  // namespace deepsea
