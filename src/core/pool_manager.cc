#include "core/pool_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "core/merge.h"
#include "core/view_sizing.h"

namespace deepsea {

namespace {

/// Per-thread key for commit ownership: the address of a thread_local
/// is unique among live threads and never 0.
uintptr_t ThisThreadKey() {
  static thread_local const char key = 0;
  return reinterpret_cast<uintptr_t>(&key);
}

}  // namespace

void CommitGuard::Release() {
  if (pool_ == nullptr) return;
  pool_->ReleaseCommit();
  pool_ = nullptr;
}

CommitGuard PoolManager::BeginCommit(EngineObserver* observer,
                                     std::string tenant, int32_t tenant_ord) {
  assert(!CommitHeldByThisThread() && "commit section is not re-entrant");
  commit_mu_.lock();
  ++commit_epoch_;
  commit_entered_at_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count();
  commit_epoch_entered_.fetch_add(1, std::memory_order_relaxed);
  commit_owner_.store(ThisThreadKey(), std::memory_order_relaxed);
  commit_observer_ = observer;
  commit_tenant_ = std::move(tenant);
  commit_tenant_ord_ = tenant_ord;
  return CommitGuard(this);
}

void PoolManager::ReleaseCommit() {
  assert(CommitHeldByThisThread());
  assert(!txn_active_ && "commit released with an open pool transaction");
  const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
  commit_held_ns_.fetch_add(now_ns - commit_entered_at_ns_,
                            std::memory_order_relaxed);
  commit_observer_ = nullptr;
  commit_tenant_.clear();
  commit_tenant_ord_ = 0;
  commit_owner_.store(0, std::memory_order_relaxed);
  commit_mu_.unlock();
}

bool PoolManager::CommitHeldByThisThread() const {
  return commit_owner_.load(std::memory_order_relaxed) == ThisThreadKey();
}

ViewCatalog* PoolManager::stat(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &views_;
}

SimFs* PoolManager::fs(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &fs_;
}

FilterTree* PoolManager::rewrite_index(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return &rewrite_index_;
}

double PoolManager::PoolBytesSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(commit_mu_);
  return views_.PoolBytes();
}

int64_t PoolManager::Tick(const CommitGuard& commit) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void PoolManager::AdvanceClockTo(const CommitGuard& commit, int64_t t) {
  assert(commit.held() && CommitHeldByThisThread());
  (void)commit;
  if (t > clock_.load(std::memory_order_relaxed)) {
    clock_.store(t, std::memory_order_relaxed);
  }
}

int32_t PoolManager::InternTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  for (size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i] == name) return static_cast<int32_t>(i);
  }
  tenants_.push_back(name);
  return static_cast<int32_t>(tenants_.size() - 1);
}

std::string PoolManager::TenantName(int32_t ord) const {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  if (ord < 0 || static_cast<size_t>(ord) >= tenants_.size()) return "";
  return tenants_[static_cast<size_t>(ord)];
}

std::vector<std::string> PoolManager::Tenants() const {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  return tenants_;
}

void PoolManager::SetFaultPolicy(FaultPolicy* policy) {
  CommitGuard commit = BeginCommit();
  fs_.set_fault_policy(policy);
}

void PoolManager::RegisterViewTable(ViewInfo* view) {
  assert(CommitHeldByThisThread());
  if (catalog_->Contains(view->id)) return;
  auto schema = view->plan->OutputSchema(*catalog_);
  if (!schema.ok()) return;
  auto est = estimator_->Estimate(view->plan);
  if (!est.ok()) return;
  const double compression = options_->view_storage_compression;
  auto table = std::make_shared<Table>(view->id, *schema);
  table->set_logical_row_count(static_cast<uint64_t>(std::max(est->out_rows, 0.0)));
  table->set_avg_row_bytes(std::max(est->avg_row_bytes * compression, 1.0));
  catalog_->Put(table);
  // Initial (estimated) view statistics: S(V) and COST(V). COST is the
  // cost of computing the defining plan plus writing its (compressed)
  // output.
  view->stats.size_bytes = est->out_bytes * compression;
  view->stats.creation_cost =
      est->seconds + cluster_->WriteSeconds(view->stats.size_bytes);
}

void PoolManager::RegisterViewTablePlanning(ViewInfo* view,
                                            PlanningDelta* delta) const {
  Catalog* planning = delta->planning_catalog();
  if (planning->Contains(view->id)) return;
  auto schema = view->plan->OutputSchema(*planning);
  if (!schema.ok()) return;
  auto est = estimator_->Estimate(view->plan);
  if (!est.ok()) return;
  const double compression = options_->view_storage_compression;
  auto table = std::make_shared<Table>(view->id, *schema);
  table->set_logical_row_count(static_cast<uint64_t>(std::max(est->out_rows, 0.0)));
  table->set_avg_row_bytes(std::max(est->avg_row_bytes * compression, 1.0));
  planning->Put(table);
  delta->DeferCatalogPut(std::move(table));
  view->stats.size_bytes = est->out_bytes * compression;
  view->stats.creation_cost =
      est->seconds + cluster_->WriteSeconds(view->stats.size_bytes);
}

void PoolManager::AdvanceAllWindows(double t_now) {
  assert(CommitHeldByThisThread());
  for (ViewInfo* v : views_.AllViews()) {
    v->stats.AdvanceWindow(t_now, decay_);
    for (auto& [attr, part] : v->partitions) {
      (void)attr;
      for (FragmentStats& f : part.fragments) f.AdvanceWindow(t_now, decay_);
    }
  }
}

// --- decision transaction ---

void PoolManager::TxnBegin() {
  assert(CommitHeldByThisThread());
  assert(!txn_active_ && "pool transactions do not nest");
  txn_active_ = true;
}

void PoolManager::TxnCommit() {
  assert(txn_active_);
  txn_active_ = false;
  if (commit_observer_ != nullptr) {
    for (const TxnEvent& e : txn_events_) {
      switch (e.kind) {
        case TxnEvent::Kind::kMaterializeView:
          commit_observer_->OnMaterializeView(*e.view, e.value, commit_tenant_);
          break;
        case TxnEvent::Kind::kMaterializeFragment:
          commit_observer_->OnMaterializeFragment(*e.view, e.attr, e.interval,
                                                  e.value, commit_tenant_);
          break;
        case TxnEvent::Kind::kEvict:
          commit_observer_->OnEvict(*e.view, e.attr, e.interval, e.value,
                                    commit_tenant_);
          break;
        case TxnEvent::Kind::kMerge:
          commit_observer_->OnMerge(*e.view, e.attr, e.interval, e.value,
                                    commit_tenant_);
          break;
      }
    }
  }
  txn_events_.clear();
  txn_views_.clear();
  txn_files_.clear();
}

void PoolManager::TxnRollback() {
  assert(txn_active_);
  txn_active_ = false;
  // Restore view metadata in reverse snapshot order. Partitions are
  // restored in place so PartitionState addresses survive (the retried
  // decision's actions point at them).
  for (auto it = txn_views_.rbegin(); it != txn_views_.rend(); ++it) {
    ViewInfo* v = it->view;
    v->whole_materialized = it->whole_materialized;
    v->stats = it->stats;
    v->fault_count = it->fault_count;
    v->quarantined_until = it->quarantined_until;
    for (auto pit = v->partitions.begin(); pit != v->partitions.end();) {
      auto img = it->partitions.find(pit->first);
      if (img == it->partitions.end()) {
        // Partition added after the snapshot: remove it again.
        pit = v->partitions.erase(pit);
      } else {
        pit->second = img->second;
        ++pit;
      }
    }
    for (const auto& [attr, part] : it->partitions) {
      if (v->partitions.count(attr) == 0) v->partitions.emplace(attr, part);
    }
  }
  for (auto it = txn_files_.rbegin(); it != txn_files_.rend(); ++it) {
    fs_.RestoreForRollback(it->path, it->existed, it->bytes);
  }
  txn_events_.clear();
  txn_views_.clear();
  txn_files_.clear();
}

void PoolManager::TxnSnapshotView(ViewInfo* view) {
  if (!txn_active_) return;
  for (const TxnViewImage& img : txn_views_) {
    if (img.view == view) return;  // first touch already captured
  }
  TxnViewImage img;
  img.view = view;
  img.whole_materialized = view->whole_materialized;
  img.stats = view->stats;
  img.fault_count = view->fault_count;
  img.quarantined_until = view->quarantined_until;
  img.partitions = view->partitions;
  txn_views_.push_back(std::move(img));
}

Status PoolManager::TxnPut(const std::string& path, double bytes) {
  if (!txn_active_) return fs_.Put(path, bytes);
  bool have = false;
  for (const TxnFileImage& img : txn_files_) {
    if (img.path == path) {
      have = true;
      break;
    }
  }
  TxnFileImage img;
  if (!have) {
    auto size = fs_.Size(path);
    img.path = path;
    img.existed = size.ok();
    img.bytes = size.ok() ? *size : 0.0;
  }
  DEEPSEA_RETURN_IF_ERROR(fs_.Put(path, bytes));
  if (!have) txn_files_.push_back(std::move(img));
  return Status::OK();
}

Status PoolManager::TxnDelete(const std::string& path) {
  if (!txn_active_) return fs_.Delete(path);
  bool have = false;
  for (const TxnFileImage& img : txn_files_) {
    if (img.path == path) {
      have = true;
      break;
    }
  }
  TxnFileImage img;
  if (!have) {
    auto size = fs_.Size(path);
    img.path = path;
    img.existed = size.ok();
    img.bytes = size.ok() ? *size : 0.0;
  }
  DEEPSEA_RETURN_IF_ERROR(fs_.Delete(path));
  if (!have) txn_files_.push_back(std::move(img));
  return Status::OK();
}

void PoolManager::NotifyMaterializeView(const ViewInfo* view,
                                        double sim_seconds) {
  if (commit_observer_ == nullptr) return;
  if (txn_active_) {
    TxnEvent e;
    e.kind = TxnEvent::Kind::kMaterializeView;
    e.view = view;
    e.value = sim_seconds;
    txn_events_.push_back(std::move(e));
    return;
  }
  commit_observer_->OnMaterializeView(*view, sim_seconds, commit_tenant_);
}

void PoolManager::NotifyMaterializeFragment(const ViewInfo* view,
                                            const std::string& attr,
                                            const Interval& interval,
                                            double bytes) {
  if (commit_observer_ == nullptr) return;
  if (txn_active_) {
    TxnEvent e;
    e.kind = TxnEvent::Kind::kMaterializeFragment;
    e.view = view;
    e.attr = attr;
    e.interval = interval;
    e.value = bytes;
    txn_events_.push_back(std::move(e));
    return;
  }
  commit_observer_->OnMaterializeFragment(*view, attr, interval, bytes,
                                          commit_tenant_);
}

void PoolManager::NotifyEvict(const ViewInfo* view, const std::string& attr,
                              const Interval& interval, double bytes) {
  if (commit_observer_ == nullptr) return;
  if (txn_active_) {
    TxnEvent e;
    e.kind = TxnEvent::Kind::kEvict;
    e.view = view;
    e.attr = attr;
    e.interval = interval;
    e.value = bytes;
    txn_events_.push_back(std::move(e));
    return;
  }
  commit_observer_->OnEvict(*view, attr, interval, bytes, commit_tenant_);
}

void PoolManager::NotifyMerge(const ViewInfo* view, const std::string& attr,
                              const Interval& merged, double bytes) {
  if (commit_observer_ == nullptr) return;
  if (txn_active_) {
    TxnEvent e;
    e.kind = TxnEvent::Kind::kMerge;
    e.view = view;
    e.attr = attr;
    e.interval = merged;
    e.value = bytes;
    txn_events_.push_back(std::move(e));
    return;
  }
  commit_observer_->OnMerge(*view, attr, merged, bytes, commit_tenant_);
}

// --- creation / eviction primitives ---

Result<double> PoolManager::MaterializeView(ViewInfo* view,
                                            QueryReport* report) {
  assert(CommitHeldByThisThread());
  TxnSnapshotView(view);
  // Determine the partition attribute: the one with pending state.
  std::string attr;
  for (const auto& [a, p] : view->partitions) {
    (void)p;
    attr = a;
    break;
  }
  double extra_seconds = 0.0;
  auto est = estimator_->Estimate(view->plan);
  const double view_bytes = est.ok()
                                ? est->out_bytes * options_->view_storage_compression
                                : view->stats.size_bytes;
  // Set size *before* fragmentation: FragmentBytes / ApplyFragmentBounds
  // scale fragments by stats.size_bytes. A fault below rolls this back.
  view->stats.size_bytes = view_bytes;
  view->stats.size_is_actual = true;

  if (attr.empty() || options_->strategy == StrategyKind::kNoPartition) {
    // Whole-view materialization (NP).
    const std::string path = StrFormat("pool/%s/full", view->id.c_str());
    assert(!fs_.Exists(path) && "double materialization of whole view");
    DEEPSEA_RETURN_IF_ERROR(TxnPut(path, view_bytes));
    view->whole_materialized = true;
    extra_seconds = cluster_->PartitionedWriteSeconds(view_bytes, 1);
  } else {
    PartitionState* part = view->GetPartition(attr);
    std::vector<Interval> frags = ApplyFragmentBounds(
        *catalog_, *options_, *view, attr,
        InitialFragmentation(*catalog_, *options_, view, attr));
    for (const Interval& iv : frags) {
      const double bytes = FragmentBytes(*catalog_, *view, attr, iv);
      FragmentStats* fstat = part->Track(iv, bytes);
      fstat->size_bytes = bytes;
      const std::string path = FragmentPath(*view, attr, iv);
      assert(!fs_.Exists(path) && "double materialization of fragment");
      DEEPSEA_RETURN_IF_ERROR(TxnPut(path, bytes));
      fstat->materialized = true;
      ++report->created_fragments;
      NotifyMaterializeFragment(view, attr, iv, bytes);
    }
    extra_seconds = cluster_->PartitionedWriteSeconds(
        view_bytes, static_cast<int64_t>(frags.size()));
  }
  // Actual creation cost: computing the defining plan (done as part of
  // the instrumented query) plus the durable partitioned write.
  view->stats.creation_cost =
      (est.ok() ? est->seconds : view->stats.creation_cost) + extra_seconds;
  view->stats.cost_is_actual = true;
  // A successful materialization proves the storage path works again.
  view->fault_count = 0;
  view->quarantined_until = 0;
  report->created_views.push_back(view->id);
  NotifyMaterializeView(view, extra_seconds);
  return extra_seconds;
}

Result<double> PoolManager::MaterializeFragment(ViewInfo* view,
                                                PartitionState* part,
                                                const Interval& iv,
                                                const QueryContext& ctx,
                                                QueryReport* report) {
  assert(CommitHeldByThisThread());
  TxnSnapshotView(view);
  const std::string& attr = part->attr;
  double seconds = 0.0;
  // Fragments currently materialized that overlap the new one. Tracked
  // by interval, not pointer: Track() below may grow the fragment
  // vector and invalidate references.
  std::vector<Interval> parents;
  std::vector<double> parent_bytes_to_read;
  const bool cover_matches =
      view->id == ctx.cover_view() && attr == ctx.cover_attr();
  for (const FragmentStats& f : part->fragments) {
    if (f.materialized && f.interval.Overlaps(iv) && f.interval != iv) {
      parents.push_back(f.interval);
      // Parents the current query's cover already read are free to
      // re-scan: the partition operator forks the new fragment off the
      // same map stream (repartitioning as a by-product of answering).
      const bool read_by_query = cover_matches && ctx.CoverContains(f.interval);
      if (!read_by_query) parent_bytes_to_read.push_back(f.size_bytes);
    }
  }
  // Read the overlapping parents (not already streamed by the query) to
  // extract the new fragment's rows.
  seconds += cluster_->MapPhaseSeconds(parent_bytes_to_read);

  const double bytes = FragmentBytes(*catalog_, *view, attr, iv);
  FragmentStats* fstat = part->Track(iv, bytes);
  fstat->size_bytes = bytes;
  const std::string frag_path = FragmentPath(*view, attr, iv);
  assert(!fs_.Exists(frag_path) && "double materialization of fragment");
  DEEPSEA_RETURN_IF_ERROR(TxnPut(frag_path, bytes));
  fstat->materialized = true;
  ++report->created_fragments;
  seconds += cluster_->PartitionedWriteSeconds(bytes, 1);
  NotifyMaterializeFragment(view, attr, iv, bytes);

  if (!options_->overlapping_fragments) {
    // Horizontal partitioning: the parents must be split — their whole
    // content is rewritten as complement pieces and the parents evicted
    // (Section 1, "Overlapping Fragments": the split cost DeepSea's
    // overlapping mode avoids).
    for (const Interval& p : parents) {
      std::vector<Interval> pieces;
      auto [left, rest] = p.SplitBefore(iv.lo);
      if (!left.IsEmpty() && left.Width() > 0.0 && !iv.Contains(left)) {
        pieces.push_back(left);
      }
      auto [rest2, right] = p.SplitAfter(iv.hi);
      (void)rest;
      (void)rest2;
      if (!right.IsEmpty() && right.Width() > 0.0 && !iv.Contains(right)) {
        pieces.push_back(right);
      }
      for (const Interval& piece : pieces) {
        const double piece_bytes = FragmentBytes(*catalog_, *view, attr, piece);
        FragmentStats* pstat = part->Track(piece, piece_bytes);
        pstat->size_bytes = piece_bytes;
        DEEPSEA_RETURN_IF_ERROR(
            TxnPut(FragmentPath(*view, attr, piece), piece_bytes));
        pstat->materialized = true;
        ++report->created_fragments;
        seconds += cluster_->PartitionedWriteSeconds(piece_bytes, 1);
        NotifyMaterializeFragment(view, attr, piece, piece_bytes);
      }
      // Re-resolve the parent after the Track calls above (the fragment
      // vector may have been reallocated).
      FragmentStats* parent_stat = part->Find(p);
      if (parent_stat != nullptr) {
        DEEPSEA_RETURN_IF_ERROR(EvictFragment(view, part, parent_stat));
        --report->evicted_fragments;  // split, not a policy eviction
      }
    }
  }
  // A successful refinement proves the storage path works again.
  view->fault_count = 0;
  view->quarantined_until = 0;
  return seconds;
}

Status PoolManager::EvictFragment(ViewInfo* view, PartitionState* part,
                                  FragmentStats* frag) {
  assert(CommitHeldByThisThread());
  if (!frag->materialized) return Status::OK();
  TxnSnapshotView(view);
  const std::string path = FragmentPath(*view, part->attr, frag->interval);
  Status st = TxnDelete(path);
  if (st.code() == StatusCode::kNotFound) {
    // A materialized fragment without a backing file is a pool-
    // accounting bug, not a storage fault: surface it loudly instead of
    // silently dropping the delete.
    assert(false && "evicting fragment whose pool file is missing");
    return Status::Internal("eviction of missing pool file: " + path);
  }
  DEEPSEA_RETURN_IF_ERROR(st);
  frag->materialized = false;
  NotifyEvict(view, part->attr, frag->interval, frag->size_bytes);
  return Status::OK();
}

Result<int> PoolManager::EvictWholeView(ViewInfo* view) {
  assert(CommitHeldByThisThread());
  TxnSnapshotView(view);
  int evicted = 0;
  // Materialized fragments go first, through the same per-fragment path
  // (and notifications) policy evictions use.
  for (auto& [attr, part] : view->partitions) {
    (void)attr;
    for (FragmentStats& f : part.fragments) {
      if (!f.materialized) continue;
      DEEPSEA_RETURN_IF_ERROR(EvictFragment(view, &part, &f));
      ++evicted;
    }
  }
  if (view->whole_materialized) {
    const std::string path = StrFormat("pool/%s/full", view->id.c_str());
    Status st = TxnDelete(path);
    if (st.code() == StatusCode::kNotFound) {
      assert(false && "evicting whole view whose pool file is missing");
      return Status::Internal("eviction of missing pool file: " + path);
    }
    DEEPSEA_RETURN_IF_ERROR(st);
    view->whole_materialized = false;
    ++evicted;
    NotifyEvict(view, "", Interval(), view->stats.size_bytes);
  }
  return evicted;
}

void PoolManager::RecordViewFault(const std::string& view_id, int64_t now) {
  assert(CommitHeldByThisThread());
  ViewInfo* view = views_.Get(view_id);
  if (view == nullptr) return;
  ++view->fault_count;
  const FaultHandlingConfig& fault = options_->fault;
  if (fault.quarantine_threshold > 0 &&
      view->fault_count >= fault.quarantine_threshold) {
    view->quarantined_until = now + fault.quarantine_cooldown_commits;
    view->fault_count = 0;
  }
}

// --- decision execution ---

Status PoolManager::ApplyStaged(const SelectionDecision& decision,
                                const QueryContext& ctx, QueryReport* report,
                                std::string* fault_view) {
  // Admitted initial fragments are created together per view (one
  // instrumented partitioned write). Charge order is the order views
  // first appear in the decision's actions — a pure function of the
  // planner's output. A pointer-keyed map here would order the charges
  // (and created_views) by heap address, which varies across runs and
  // threads even for identical commit orders.
  struct NewViewWork {
    double bytes = 0.0;
    int64_t count = 0;
  };
  std::vector<std::pair<ViewInfo*, NewViewWork>> new_view_work;
  auto work_for = [&new_view_work](ViewInfo* view) -> NewViewWork& {
    for (auto& [v, work] : new_view_work) {
      if (v == view) return work;
    }
    new_view_work.emplace_back(view, NewViewWork{});
    return new_view_work.back().second;
  };

  for (const SelectionAction& a : decision.actions) {
    *fault_view = a.view != nullptr ? a.view->id : "";
    switch (a.kind) {
      case SelectionAction::Kind::kEvictWholeView: {
        // Count exactly the pieces evicted, so QueryReport agrees with
        // the per-piece OnEvict notifications no matter the path.
        DEEPSEA_ASSIGN_OR_RETURN(int evicted, EvictWholeView(a.view));
        report->evicted_fragments += evicted;
        break;
      }
      case SelectionAction::Kind::kEvictFragment: {
        FragmentStats* f = a.part->Find(a.interval);
        if (f != nullptr && f->materialized) {
          DEEPSEA_RETURN_IF_ERROR(EvictFragment(a.view, a.part, f));
          ++report->evicted_fragments;
        }
        break;
      }
      case SelectionAction::Kind::kMaterializeView: {
        DEEPSEA_ASSIGN_OR_RETURN(double seconds,
                                 MaterializeView(a.view, report));
        report->materialize_seconds += seconds;
        break;
      }
      case SelectionAction::Kind::kMaterializeRefinement: {
        DEEPSEA_ASSIGN_OR_RETURN(
            double seconds,
            MaterializeFragment(a.view, a.part, a.interval, ctx, report));
        report->materialize_seconds += seconds;
        break;
      }
      case SelectionAction::Kind::kMaterializeViewFragment: {
        FragmentStats* f = a.part->Find(a.interval);
        if (f == nullptr || f->materialized) continue;
        TxnSnapshotView(a.view);
        f->size_bytes = a.size_bytes;
        const std::string path =
            FragmentPath(*a.view, a.part->attr, a.interval);
        assert(!fs_.Exists(path) && "double materialization of fragment");
        DEEPSEA_RETURN_IF_ERROR(TxnPut(path, a.size_bytes));
        f->materialized = true;
        ++report->created_fragments;
        NotifyMaterializeFragment(a.view, a.part->attr, a.interval,
                                  a.size_bytes);
        NewViewWork& work = work_for(a.view);
        work.bytes += a.size_bytes;
        work.count += 1;
        break;
      }
    }
  }
  fault_view->clear();

  for (auto& [view, work] : new_view_work) {
    TxnSnapshotView(view);
    const double extra =
        cluster_->PartitionedWriteSeconds(work.bytes, work.count);
    report->materialize_seconds += extra;
    auto est = estimator_->Estimate(view->plan);
    if (est.ok()) {
      view->stats.size_bytes = est->out_bytes * options_->view_storage_compression;
      view->stats.size_is_actual = true;
      view->stats.creation_cost = est->seconds + extra;
      view->stats.cost_is_actual = true;
    }
    view->fault_count = 0;
    view->quarantined_until = 0;
    report->created_views.push_back(view->id);
    NotifyMaterializeView(view, extra);
  }
  return Status::OK();
}

Status PoolManager::Apply(const SelectionDecision& decision,
                          const QueryContext& ctx, QueryReport* report) {
  assert(CommitHeldByThisThread());
  // Fold the planning delta *before* the decision transaction begins: a
  // storage fault rolls back the decision, not the statistics (the old
  // in-place code recorded them during planning, before Apply, too).
  // Fold is idempotent, so the retry loop in ExecuteDecision may call
  // Apply repeatedly with the same context.
  PlanningDelta* delta = ctx.delta();
  SelectionDecision remapped;
  const SelectionDecision* to_apply = &decision;
  if (delta != nullptr) {
    if (!delta->folded()) {
      delta->Fold(&views_, catalog_, &rewrite_index_);
      AdvanceAllWindows(ctx.t_now());
    }
    // Planning captured shadow PartitionState pointers; execute against
    // the real ones they folded into.
    remapped = decision;
    for (SelectionAction& a : remapped.actions) {
      if (a.part != nullptr) a.part = delta->RealPartition(a.part);
    }
    to_apply = &remapped;
  }
  const QueryReport report_backup = *report;
  std::string fault_view;
  TxnBegin();
  Status st = ApplyStaged(*to_apply, ctx, report, &fault_view);
  if (st.ok()) {
    TxnCommit();
    return st;
  }
  TxnRollback();
  *report = report_backup;
  report->fault_view = fault_view;
  report->fault_message = st.ToString();
  return st;
}

Result<double> PoolManager::MergeStaged(double t_now,
                                        const DecayFunction& decay,
                                        QueryReport* report) {
  double seconds = 0.0;
  int merges = 0;
  auto candidates = FindMergeCandidates(&views_, options_->merge, t_now, decay);
  for (const MergeCandidate& cand : candidates) {
    if (merges >= options_->merge.max_merges_per_query) break;
    FragmentStats& a = cand.part->fragments[cand.left_index];
    FragmentStats& b = cand.part->fragments[cand.right_index];
    if (!a.materialized || !b.materialized) continue;  // stale candidate
    // Read both parents, write the merged fragment.
    seconds += cluster_->MapPhaseSeconds({a.size_bytes, b.size_bytes});
    const double merged_bytes = a.size_bytes + b.size_bytes;
    seconds += cluster_->PartitionedWriteSeconds(merged_bytes, 1);
    // Union the hit histories so the merged fragment keeps its record.
    std::vector<FragmentHit> hits = a.hits();
    hits.insert(hits.end(), b.hits().begin(), b.hits().end());
    DEEPSEA_RETURN_IF_ERROR(EvictFragment(cand.view, cand.part, &a));
    DEEPSEA_RETURN_IF_ERROR(EvictFragment(cand.view, cand.part, &b));
    FragmentStats* merged = cand.part->Track(cand.merged, merged_bytes);
    merged->size_bytes = merged_bytes;
    DEEPSEA_RETURN_IF_ERROR(TxnPut(
        FragmentPath(*cand.view, cand.part->attr, cand.merged), merged_bytes));
    merged->materialized = true;
    if (merged->hits().empty()) merged->AdoptHits(std::move(hits));
    ++merges;
    ++report->merged_fragments;
    NotifyMerge(cand.view, cand.part->attr, cand.merged, merged_bytes);
  }
  return seconds;
}

Result<double> PoolManager::RunMergePass(double t_now,
                                         const DecayFunction& decay,
                                         QueryReport* report) {
  assert(CommitHeldByThisThread());
  const QueryReport report_backup = *report;
  TxnBegin();
  Result<double> seconds = MergeStaged(t_now, decay, report);
  if (seconds.ok()) {
    TxnCommit();
    return seconds;
  }
  TxnRollback();
  *report = report_backup;
  report->fault_message = seconds.status().ToString();
  return seconds;
}

}  // namespace deepsea
