#ifndef DEEPSEA_CORE_SELECTION_STRATEGY_H_
#define DEEPSEA_CORE_SELECTION_STRATEGY_H_

#include <string>
#include <vector>

#include "core/interval.h"

namespace deepsea {

struct ViewInfo;
struct PartitionState;

/// One pool mutation chosen by selection. View pointers are stable
/// (ViewCatalog stores views behind unique_ptr, and delta-owned views
/// keep their address across the fold). Partition pointers may
/// reference the query's PlanningDelta shadows — PoolManager::Apply
/// remaps them onto the real partitions after folding the delta —
/// and fragment entries are re-resolved by interval at apply time
/// because applying earlier actions may grow the fragment vectors.
struct SelectionAction {
  enum class Kind {
    kEvictWholeView,           ///< drop an NP-style whole view
    kEvictFragment,            ///< drop one materialized fragment
    kMaterializeView,          ///< whole-view creation (unpartitioned)
    kMaterializeViewFragment,  ///< one fragment of a view's initial partitioning
    kMaterializeRefinement,    ///< refinement of an existing partition
  };
  Kind kind;
  ViewInfo* view = nullptr;
  PartitionState* part = nullptr;  ///< null for whole-view actions
  Interval interval;               ///< unused for whole-view actions
  /// Estimated bytes: the pool growth of a materialize action, or the
  /// pool bytes an evict action releases (its tracked size).
  double size_bytes = 0.0;
};

/// The declarative outcome of one selection round (Section 7.3): the
/// actions are ordered for application — evictions first (freeing the
/// simulated FS), then materializations in value order.
/// PoolManager::Apply executes them; nothing is mutated in the pool
/// until then.
struct SelectionDecision {
  std::vector<SelectionAction> actions;

  /// Summed knapsack value (the Φ benefit estimate) of the admitted
  /// materialization actions. The materialization service's admission
  /// control sheds the lowest-score intents first under overload.
  double benefit_score = 0.0;

  bool empty() const { return actions.empty(); }
};

/// Which SelectionStrategy resolves the knapsack over ALLCAND.
/// Orthogonal to StrategyKind (which shapes *partitioning* and
/// candidate generation): every StrategyKind except kHive runs a
/// selection round, and any SelectionStrategyKind can resolve it.
enum class SelectionStrategyKind {
  /// The paper's §7.3 greedy knapsack, bit-identical to the historical
  /// inline implementation (the golden traces pin it).
  kGreedy,
  /// Greedy seed + bounded swap-based local search (arXiv 2606.03772
  /// seed): eviction-and-refill moves that drop the k lowest-value
  /// admitted items and greedily refill the freed budget from the
  /// rejected set, kept iff the refill's summed Φ strictly exceeds the
  /// victims', followed by residual-budget fill passes. Never worse
  /// than greedy in knapsack value (every applied move strictly raises
  /// the admitted total).
  kLocalSearch,
  /// Clustering-based pre-selection (cs/0703114 seed): near-duplicate
  /// new-fragment candidates of the same partition (range overlap >=
  /// cluster_min_overlap) are merged into one covering candidate
  /// before the greedy knapsack runs on the reduced set.
  kClusterGreedy,
  /// Clustering pre-selection feeding the local-search resolver.
  kClusterLocalSearch,
};

/// Stable lowercase identifier ("greedy", "local_search",
/// "cluster_greedy", "cluster_local_search") used by CLI flags, the
/// QueryReport, and the strategy metrics labels.
const char* SelectionStrategyName(SelectionStrategyKind kind);

/// Parses a SelectionStrategyName (plus the "cluster" alias for
/// kClusterGreedy). Returns false on an unknown name.
bool ParseSelectionStrategy(const std::string& name,
                            SelectionStrategyKind* out);

/// Knobs of the selection-strategy seam (EngineOptions::selection).
struct SelectionConfig {
  SelectionStrategyKind kind = SelectionStrategyKind::kGreedy;

  /// Local search: hard bound on applied eviction-and-refill moves per
  /// selection round. Each kept move strictly increases the admitted
  /// knapsack value; a move costs O(items^2) refill attempts, so this
  /// also bounds the work to O(swaps * items^2).
  int local_search_max_swaps = 64;
  /// Local search: improvement rounds (swap sweep + fill pass) before
  /// giving up even when still improving.
  int local_search_max_rounds = 4;

  /// Clustering: minimum overlap fraction — overlap length over the
  /// shorter candidate's length — for two new-fragment candidates of
  /// the same partition to be merged. 1.0 merges only exact
  /// duplicates; values <= 0 would merge disjoint ranges and are
  /// clamped to a minimal positive overlap requirement.
  double cluster_min_overlap = 0.5;
};

/// One knapsack item handed to a SelectionStrategy: a candidate pool
/// mutation (new view / fragment) or a piece of existing pool content
/// re-bidding for its spot (Section 7.3's ALLCAND). Built by
/// SelectionPlanner; everything a strategy may consult is in the plain
/// fields — strategies must not dereference `view`/`part` (they are
/// opaque handles the resulting actions carry through to Apply).
struct SelectionCandidate {
  enum class Kind {
    kPoolFragment,     ///< materialized fragment already in the pool
    kPoolWhole,        ///< whole view already in the pool
    kNewView,          ///< whole-view creation (unpartitioned)
    kNewViewFragment,  ///< one fragment of a view's initial partitioning
    kNewFragment,      ///< refinement of an existing partition
  };
  Kind kind;
  double value = 0.0;  ///< Φ ranking value (model-dependent)
  double size = 0.0;   ///< pool bytes the item occupies if admitted
  ViewInfo* view = nullptr;
  PartitionState* part = nullptr;
  Interval interval;
  /// Dense ordinal of (view, attr) in item-construction order; -1 for
  /// whole-view items. Strategies group by this — never by pointer
  /// value, which is address-nondeterministic across runs.
  int part_ord = -1;
  /// True for new-fragment content the clustering pre-pass may merge
  /// with an overlapping sibling (stamped by the planner: refinement
  /// candidates, and planned top-up fragments of in-pool views).
  bool mergeable = false;
};

/// Everything a strategy sees: the candidate item list in the
/// planner's deterministic construction order, the byte budget
/// (S_max), and the seam's tuning knobs.
struct SelectionInput {
  std::vector<SelectionCandidate> items;
  double budget_bytes = 0.0;
  SelectionConfig config;
};

/// A strategy's result: the declarative decision plus telemetry the
/// engine surfaces through QueryReport and the strategy metrics.
struct SelectionResolution {
  SelectionDecision decision;
  /// True when the knapsack was contended — at least one item was
  /// rejected. The planner promotes the pool sweep's soft reads into
  /// the validated read footprint exactly in this case (an uncontended
  /// knapsack admits everything regardless of the swept values).
  bool contended = false;
  /// The full knapsack objective: summed Φ of every admitted item,
  /// pool content included (the quantity local search provably never
  /// lowers vs its greedy seed). decision.benefit_score covers the
  /// admitted *new* content only — a strictly improving move can trade
  /// a new item for kept pool content, so only the objective carries
  /// the never-worse guarantee.
  double objective_value = 0.0;
  /// Items the resolver ranked (post-clustering when a pre-pass ran).
  int items_considered = 0;
  /// Local search: improving swaps applied this round.
  int swaps_applied = 0;
  /// Clustering: candidates removed by merges (members - clusters).
  int candidates_merged = 0;
};

/// The strategy seam: a pure, deterministic function from candidate
/// set + budget to a SelectionDecision. The contract for
/// implementations (see DESIGN.md, "Selection strategies"):
///
///  * Purity — no pool, STAT, or catalog access; no delta writes. The
///    only inputs are the SelectionInput fields; `view`/`part` are
///    opaque handles to copy into actions, never to dereference.
///  * Determinism — output is a pure function of the input. No wall
///    clock, no RNG that is not seeded from the input, and no ordering
///    keyed on pointer values (use item order / part_ord).
///  * Action ordering — evictions (rejected pool content) first, then
///    materializations; benefit_score sums the admitted new items'
///    values in emission order (float addition order is part of the
///    bit-identity contract).
///
/// Implementations are stateless singletons; ForKind returns the
/// shared instance.
class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;
  /// The SelectionStrategyName of this strategy.
  virtual const char* name() const = 0;
  virtual SelectionResolution Resolve(const SelectionInput& input) const = 0;

  static const SelectionStrategy* ForKind(SelectionStrategyKind kind);
};

/// The clustering pre-pass on its own (exposed for tests and for
/// composing resolvers): merges runs of mergeable same-partition
/// new-fragment candidates whose ranges overlap by at least
/// `config.cluster_min_overlap` of the shorter range. Each merged
/// candidate covers its members' intervals (interval = hull), carries
/// kind kNewFragment (applied as a refinement, which self-tracks its
/// interval), a density-scaled size estimate, and a value of
/// max(member values) + (1 - overlap) * min (near-duplicates share
/// most of their hit evidence; the non-overlapping remainder of the
/// weaker member still contributes). `merged_away` receives the number
/// of candidates removed (members minus surviving clusters).
std::vector<SelectionCandidate> ClusterCandidates(
    const std::vector<SelectionCandidate>& items,
    const SelectionConfig& config, int* merged_away);

}  // namespace deepsea

#endif  // DEEPSEA_CORE_SELECTION_STRATEGY_H_
