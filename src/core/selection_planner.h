#ifndef DEEPSEA_CORE_SELECTION_PLANNER_H_
#define DEEPSEA_CORE_SELECTION_PLANNER_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "core/decay.h"
#include "core/engine_options.h"
#include "core/mle_model.h"
#include "core/query_context.h"
#include "core/view_catalog.h"
#include "sim/cluster.h"

namespace deepsea {

/// One pool mutation chosen by the greedy selection. View pointers are
/// stable (ViewCatalog stores views behind unique_ptr, and delta-owned
/// views keep their address across the fold). Partition pointers may
/// reference the query's PlanningDelta shadows — PoolManager::Apply
/// remaps them onto the real partitions after folding the delta —
/// and fragment entries are re-resolved by interval at apply time
/// because applying earlier actions may grow the fragment vectors.
struct SelectionAction {
  enum class Kind {
    kEvictWholeView,           ///< drop an NP-style whole view
    kEvictFragment,            ///< drop one materialized fragment
    kMaterializeView,          ///< whole-view creation (unpartitioned)
    kMaterializeViewFragment,  ///< one fragment of a view's initial partitioning
    kMaterializeRefinement,    ///< refinement of an existing partition
  };
  Kind kind;
  ViewInfo* view = nullptr;
  PartitionState* part = nullptr;  ///< null for whole-view actions
  Interval interval;               ///< unused for whole-view actions
  /// Estimated bytes: the pool growth of a materialize action, or the
  /// pool bytes an evict action releases (its tracked size).
  double size_bytes = 0.0;
};

/// The declarative outcome of one selection round (Section 7.3): the
/// actions are ordered for application — evictions first (freeing the
/// simulated FS), then materializations in greedy-value order.
/// PoolManager::Apply executes them; nothing is mutated in the pool
/// until then.
struct SelectionDecision {
  std::vector<SelectionAction> actions;

  /// Summed knapsack value (the Φ benefit estimate) of the admitted
  /// materialization actions. The materialization service's admission
  /// control sheds the lowest-score intents first under overload.
  double benefit_score = 0.0;

  bool empty() const { return actions.empty(); }
};

/// Stage 3 of the pipeline: benefit/cost filtering of the candidates
/// (Section 7.2) followed by the greedy knapsack over
/// ALLCAND = V_sel ∪ P_sel ∪ pool content under S_max (Section 7.3).
/// Planning updates candidate *statistics* tracking (fragments entering
/// STAT, inherited hit histories) — that is the paper's bookkeeping —
/// but all of it lands in the query's PlanningDelta: this stage runs
/// under the shared lock and reads shared statistics strictly const
/// (through the delta's effective readers). Pool state (materialized
/// flags, SimFs files, charged seconds) and the delta fold belong to
/// PoolManager::Apply.
class SelectionPlanner {
 public:
  SelectionPlanner(const Catalog* catalog, const EngineOptions* options,
                   const ClusterModel* cluster, const DecayFunction* decay,
                   MleFragmentModel* mle, ViewCatalog* views)
      : catalog_(catalog),
        options_(options),
        cluster_(cluster),
        decay_(decay),
        mle_(mle),
        views_(views) {}

  /// Produces this query's reconfiguration decision. `base_seconds` is
  /// the query's conventional-plan cost (drives the fragment top-up
  /// filter).
  SelectionDecision PlanSelection(const QueryContext& ctx,
                                  double base_seconds);

 private:
  const Catalog* catalog_;
  const EngineOptions* options_;
  const ClusterModel* cluster_;
  const DecayFunction* decay_;
  MleFragmentModel* mle_;
  ViewCatalog* views_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_SELECTION_PLANNER_H_
