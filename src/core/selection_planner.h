#ifndef DEEPSEA_CORE_SELECTION_PLANNER_H_
#define DEEPSEA_CORE_SELECTION_PLANNER_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "core/decay.h"
#include "core/engine_options.h"
#include "core/mle_model.h"
#include "core/query_context.h"
#include "core/selection_strategy.h"
#include "core/view_catalog.h"
#include "sim/cluster.h"

namespace deepsea {

/// Stage 3 of the pipeline: benefit/cost filtering of the candidates
/// (Section 7.2) followed by the knapsack over
/// ALLCAND = V_sel ∪ P_sel ∪ pool content under S_max (Section 7.3).
/// The planner builds the candidate items and delegates the knapsack
/// itself to the configured SelectionStrategy (options->selection.kind
/// — greedy by default, bit-identical to the historical inline code).
/// Planning updates candidate *statistics* tracking (fragments entering
/// STAT, inherited hit histories) — that is the paper's bookkeeping —
/// but all of it lands in the query's PlanningDelta: this stage runs
/// under the shared lock and reads shared statistics strictly const
/// (through the delta's effective readers). Pool state (materialized
/// flags, SimFs files, charged seconds) and the delta fold belong to
/// PoolManager::Apply.
class SelectionPlanner {
 public:
  SelectionPlanner(const Catalog* catalog, const EngineOptions* options,
                   const ClusterModel* cluster, const DecayFunction* decay,
                   MleFragmentModel* mle, ViewCatalog* views)
      : catalog_(catalog),
        options_(options),
        cluster_(cluster),
        decay_(decay),
        mle_(mle),
        views_(views) {}

  /// Produces this query's reconfiguration decision plus the
  /// strategy's telemetry (swaps, merges, items considered).
  /// `base_seconds` is the query's conventional-plan cost (drives the
  /// fragment top-up filter).
  SelectionResolution PlanSelection(const QueryContext& ctx,
                                    double base_seconds);

 private:
  const Catalog* catalog_;
  const EngineOptions* options_;
  const ClusterModel* cluster_;
  const DecayFunction* decay_;
  MleFragmentModel* mle_;
  ViewCatalog* views_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_SELECTION_PLANNER_H_
