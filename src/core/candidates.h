#ifndef DEEPSEA_CORE_CANDIDATES_H_
#define DEEPSEA_CORE_CANDIDATES_H_

#include <string>
#include <vector>

#include "core/interval.h"
#include "plan/plan.h"

namespace deepsea {

/// Partition candidate generation, paper Definition 7: given the
/// tracked fragment intervals of a partition and the query's selection
/// interval I = [l, u], every tracked interval I' is split at the
/// endpoints of I that fall inside it:
///   - no overlap, or I' contained in I         -> no candidates;
///   - I overlaps I' from the left  (case 3)    -> [l', u], (u, u'];
///   - I overlaps I' from the right (case 4)    -> [l', l), [l, u'];
///   - I strictly inside I'         (case 5)    -> [l', l), [l, u], (u, u'].
/// Endpoint coincidences degenerate gracefully (empty pieces dropped).
/// The returned list is deduplicated and excludes intervals already in
/// `existing`.
std::vector<Interval> GeneratePartitionCandidates(
    const std::vector<Interval>& existing, const Interval& query);

/// View candidate enumeration, paper Definition 6: all subqueries of
/// `query` of the form gamma(Q1) (aggregate), Q1 join Q2, or pi(Q1)
/// (projection). The caller filters out subqueries already tracked /
/// materialized. Returned in pre-order (outermost first).
std::vector<PlanPtr> EnumerateViewCandidates(const PlanPtr& query);

/// Selection contexts: for every Select subplan with a numeric range
/// constraint, the pair (child subplan, column, interval). These drive
/// partition-candidate generation (Section 6.2): the child subquery is
/// the view to partition and the interval supplies the split points.
struct SelectionContext {
  PlanPtr selected_input;  ///< Q' under the selection
  std::string column;      ///< selection attribute A
  Interval range;          ///< [l, u] clamped by the caller to D(A)
};

std::vector<SelectionContext> ExtractSelectionContexts(const PlanPtr& query);

}  // namespace deepsea

#endif  // DEEPSEA_CORE_CANDIDATES_H_
