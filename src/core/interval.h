#ifndef DEEPSEA_CORE_INTERVAL_H_
#define DEEPSEA_CORE_INTERVAL_H_

#include <optional>
#include <string>
#include <vector>

namespace deepsea {

/// A (possibly half-open) interval over the ordered numeric domain of a
/// partition attribute. DeepSea fragments are described by intervals
/// with mixed open/closed endpoints, e.g. splitting [l', u'] at l yields
/// [l', l) and [l, u'] (paper Definition 7).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool lo_inclusive = true;
  bool hi_inclusive = true;

  Interval() = default;
  Interval(double lo_in, double hi_in, bool lo_inc = true, bool hi_inc = true)
      : lo(lo_in), hi(hi_in), lo_inclusive(lo_inc), hi_inclusive(hi_inc) {}

  /// Closed interval [lo, hi].
  static Interval Closed(double lo, double hi) { return Interval(lo, hi); }
  /// Half-open [lo, hi).
  static Interval ClosedOpen(double lo, double hi) {
    return Interval(lo, hi, true, false);
  }
  /// Half-open (lo, hi].
  static Interval OpenClosed(double lo, double hi) {
    return Interval(lo, hi, false, true);
  }

  /// True when the interval contains no point.
  bool IsEmpty() const {
    if (lo > hi) return true;
    if (lo == hi) return !(lo_inclusive && hi_inclusive);
    return false;
  }

  /// Length of the interval (0 for empty/point intervals). Endpoint
  /// openness does not affect width on a continuous domain.
  double Width() const { return IsEmpty() ? 0.0 : hi - lo; }

  /// Midpoint (lo+hi)/2; unspecified for empty intervals.
  double Mid() const { return 0.5 * (lo + hi); }

  /// True when `x` lies inside the interval respecting endpoint openness.
  bool Contains(double x) const;

  /// True when `other` is fully contained in this interval.
  bool Contains(const Interval& other) const;

  /// True when the intervals share at least one point.
  bool Overlaps(const Interval& other) const;

  /// Intersection, or nullopt when disjoint.
  std::optional<Interval> Intersect(const Interval& other) const;

  /// Width of the intersection with `other` (0 when disjoint).
  double OverlapWidth(const Interval& other) const;

  /// Fraction of *this* interval's width covered by the intersection
  /// with `other`; in [0,1]. Returns 1 for zero-width self if contained.
  double OverlapFractionOf(const Interval& other) const;

  /// Splits at `p` with the split point going right: [lo,p) and [p,hi].
  /// Either side may come back empty when p is at/beyond an endpoint.
  std::pair<Interval, Interval> SplitBefore(double p) const;

  /// Splits at `p` with the split point going left: [lo,p] and (p,hi].
  std::pair<Interval, Interval> SplitAfter(double p) const;

  /// Splits into `n` equal-width pieces covering exactly this interval;
  /// piece i is half-open except the last, which inherits hi openness.
  std::vector<Interval> SplitEqual(int n) const;

  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi &&
           lo_inclusive == other.lo_inclusive && hi_inclusive == other.hi_inclusive;
  }
  bool operator!=(const Interval& other) const { return !(*this == other); }

  /// "[1, 5)" style rendering.
  std::string ToString() const;
};

/// Strict-weak ordering by (lo asc, lo openness, hi asc); suitable for
/// sorting fragment lists for display and matching.
bool IntervalLess(const Interval& a, const Interval& b);

/// A fragmentation is a list of intervals over one attribute's domain
/// (paper Definition 1). Helper predicates classify it.
class Fragmentation {
 public:
  Fragmentation() = default;
  explicit Fragmentation(std::vector<Interval> intervals)
      : intervals_(std::move(intervals)) {}

  const std::vector<Interval>& intervals() const { return intervals_; }
  std::vector<Interval>& mutable_intervals() { return intervals_; }
  size_t size() const { return intervals_.size(); }
  bool empty() const { return intervals_.empty(); }

  void Add(Interval iv) { intervals_.push_back(iv); }

  /// True when the union of intervals covers `domain` (no gaps). This is
  /// the overlapping-partitioning condition of Definition 2.
  bool Covers(const Interval& domain) const;

  /// True when intervals are pairwise disjoint.
  bool IsDisjoint() const;

  /// Horizontal partition per Definition 1: covers the domain and is
  /// pairwise disjoint.
  bool IsHorizontalPartition(const Interval& domain) const {
    return Covers(domain) && IsDisjoint();
  }

  /// Overlapping partitioning per Definition 2: covers the domain.
  bool IsOverlappingPartitioning(const Interval& domain) const {
    return Covers(domain);
  }

  /// Intervals sorted by IntervalLess (copy).
  std::vector<Interval> Sorted() const;

  std::string ToString() const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_INTERVAL_H_
