#include "core/selection_strategy.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace deepsea {

const char* SelectionStrategyName(SelectionStrategyKind kind) {
  switch (kind) {
    case SelectionStrategyKind::kGreedy:
      return "greedy";
    case SelectionStrategyKind::kLocalSearch:
      return "local_search";
    case SelectionStrategyKind::kClusterGreedy:
      return "cluster_greedy";
    case SelectionStrategyKind::kClusterLocalSearch:
      return "cluster_local_search";
  }
  return "greedy";
}

bool ParseSelectionStrategy(const std::string& name,
                            SelectionStrategyKind* out) {
  if (name == "greedy") {
    *out = SelectionStrategyKind::kGreedy;
  } else if (name == "local_search") {
    *out = SelectionStrategyKind::kLocalSearch;
  } else if (name == "cluster" || name == "cluster_greedy") {
    *out = SelectionStrategyKind::kClusterGreedy;
  } else if (name == "cluster_local_search") {
    *out = SelectionStrategyKind::kClusterLocalSearch;
  } else {
    return false;
  }
  return true;
}

namespace {

using CandKind = SelectionCandidate::Kind;

/// Value-descending stable order — ties keep the planner's construction
/// order, which is what pins greedy bit-identical to the goldens.
std::vector<SelectionCandidate> SortedByValue(
    std::vector<SelectionCandidate> items) {
  std::stable_sort(items.begin(), items.end(),
                   [](const SelectionCandidate& a, const SelectionCandidate& b) {
                     return a.value > b.value;
                   });
  return items;
}

/// Summed Φ of the admitted items — the knapsack objective, pool
/// content included — accumulated in sorted order (the float addition
/// order is input-derived, so the result is deterministic).
double ObjectiveOf(const std::vector<SelectionCandidate>& sorted,
                   const std::vector<char>& admitted) {
  double objective = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (admitted[i]) objective += sorted[i].value;
  }
  return objective;
}

/// The §7.3 greedy scan: admit in value order while the item fits.
/// Returns the residual budget; `admitted` gets one flag per item.
double GreedyScan(const std::vector<SelectionCandidate>& sorted, double budget,
                  std::vector<char>* admitted) {
  admitted->assign(sorted.size(), 0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].size <= budget) {
      (*admitted)[i] = 1;
      budget -= sorted[i].size;
    }
  }
  return budget;
}

/// Emits the declarative decision from the admitted flags: rejected
/// pool content becomes evictions first, then admitted new content
/// becomes materializations, both in sorted order. With the greedy
/// flags this reproduces the historical reject/admit loops exactly —
/// those lists were themselves filtered views of the sorted scan.
SelectionDecision BuildDecision(const std::vector<SelectionCandidate>& sorted,
                                const std::vector<char>& admitted) {
  SelectionDecision decision;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (admitted[i]) continue;
    const SelectionCandidate& it = sorted[i];
    if (it.kind == CandKind::kPoolWhole) {
      SelectionAction a;
      a.kind = SelectionAction::Kind::kEvictWholeView;
      a.view = it.view;
      a.size_bytes = it.size;
      decision.actions.push_back(a);
    } else if (it.kind == CandKind::kPoolFragment) {
      SelectionAction a;
      a.kind = SelectionAction::Kind::kEvictFragment;
      a.view = it.view;
      a.part = it.part;
      a.interval = it.interval;
      a.size_bytes = it.size;
      decision.actions.push_back(a);
    }
  }
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (!admitted[i]) continue;
    const SelectionCandidate& it = sorted[i];
    SelectionAction a;
    a.view = it.view;
    a.part = it.part;
    a.interval = it.interval;
    a.size_bytes = it.size;
    switch (it.kind) {
      case CandKind::kNewView:
        a.kind = SelectionAction::Kind::kMaterializeView;
        break;
      case CandKind::kNewViewFragment:
        a.kind = SelectionAction::Kind::kMaterializeViewFragment;
        break;
      case CandKind::kNewFragment:
        a.kind = SelectionAction::Kind::kMaterializeRefinement;
        break;
      default:
        continue;  // pool content that stays: nothing to do
    }
    decision.benefit_score += it.value;
    decision.actions.push_back(a);
  }
  return decision;
}

SelectionResolution ResolveGreedy(std::vector<SelectionCandidate> items,
                                  double budget_bytes) {
  SelectionResolution res;
  res.items_considered = static_cast<int>(items.size());
  const std::vector<SelectionCandidate> sorted = SortedByValue(std::move(items));
  std::vector<char> admitted;
  GreedyScan(sorted, budget_bytes, &admitted);
  res.contended =
      std::find(admitted.begin(), admitted.end(), 0) != admitted.end();
  res.objective_value = ObjectiveOf(sorted, admitted);
  res.decision = BuildDecision(sorted, admitted);
  return res;
}

SelectionResolution ResolveLocalSearch(std::vector<SelectionCandidate> items,
                                       double budget_bytes,
                                       const SelectionConfig& config) {
  SelectionResolution res;
  res.items_considered = static_cast<int>(items.size());
  const std::vector<SelectionCandidate> sorted = SortedByValue(std::move(items));
  std::vector<char> admitted;
  double residual = GreedyScan(sorted, budget_bytes, &admitted);
  const size_t n = sorted.size();
  // Contention is judged on the greedy seed: the pool sweep's values
  // shaped the starting point even when later swaps/fills re-admit
  // everything, so the promotion decision must match what the swept
  // reads influenced.
  res.contended =
      std::find(admitted.begin(), admitted.end(), 0) != admitted.end();

  // Improvement loop: eviction-and-refill moves. A swap that admits a
  // rejected item by evicting victims whose summed value is below that
  // single item's can never fire from a greedy-by-value seed — every
  // victim cheaper than the rejected item was admitted *after* it in
  // the scan, so the victims' total size plus the residual is strictly
  // less than the rejected size (that is why it was rejected). The
  // profitable direction is the reverse: evict the k *lowest-value*
  // admitted items (a size-hungry high-value item greedy admitted
  // early, or zero-value pool content holding space) and greedily
  // refill the freed budget from the rejected set; keep the move iff
  // the refill's summed value strictly exceeds the victims'. Each kept
  // move strictly raises the admitted knapsack value, so the loop
  // terminates and the result is never worse than the greedy seed.
  //
  // All orders are input-derived and deterministic: victims ascend by
  // value (ties toward the larger size — more budget freed per value
  // given up — then toward the later sorted position); refills follow
  // the value-descending sorted scan, positive-value items only.
  std::vector<size_t> victim_order;
  std::vector<size_t> fills;
  for (int round = 0; round < config.local_search_max_rounds; ++round) {
    bool changed = false;
    bool improving = true;
    while (improving && res.swaps_applied < config.local_search_max_swaps) {
      improving = false;
      victim_order.clear();
      for (size_t a = 0; a < n; ++a) {
        if (admitted[a]) victim_order.push_back(a);
      }
      std::sort(victim_order.begin(), victim_order.end(),
                [&sorted](size_t x, size_t y) {
                  if (sorted[x].value != sorted[y].value)
                    return sorted[x].value < sorted[y].value;
                  if (sorted[x].size != sorted[y].size)
                    return sorted[x].size > sorted[y].size;
                  return x > y;
                });
      // Try evicting the k cheapest victims, k = 1..all, and take the
      // first strictly improving refill (first-improvement restarts
      // the sweep with fresh victim ranks).
      double freed = residual, victim_value = 0.0;
      for (size_t k = 0; k < victim_order.size() && !improving; ++k) {
        freed += sorted[victim_order[k]].size;
        victim_value += sorted[victim_order[k]].value;
        fills.clear();
        double fill_budget = freed, gain = 0.0;
        for (size_t r = 0; r < n; ++r) {
          if (admitted[r] || sorted[r].value <= 0.0) continue;
          if (sorted[r].size <= fill_budget) {
            fills.push_back(r);
            fill_budget -= sorted[r].size;
            gain += sorted[r].value;
          }
        }
        if (gain <= victim_value) continue;  // no strict improvement
        for (size_t v = 0; v <= k; ++v) admitted[victim_order[v]] = 0;
        for (size_t r : fills) admitted[r] = 1;
        residual = fill_budget;
        ++res.swaps_applied;
        improving = true;
        changed = true;
      }
    }
    // Fill pass: admit rejected positive-value items the residual now
    // fits (freed budget a move left over, or seed-time gaps).
    for (size_t r = 0; r < n; ++r) {
      if (admitted[r] || sorted[r].value <= 0.0) continue;
      if (sorted[r].size <= residual) {
        admitted[r] = 1;
        residual -= sorted[r].size;
        changed = true;
      }
    }
    if (!changed) break;
  }
  res.objective_value = ObjectiveOf(sorted, admitted);
  res.decision = BuildDecision(sorted, admitted);
  return res;
}

/// Union hull of two intervals, keeping the more inclusive endpoint
/// when the bounds coincide.
Interval HullOf(const Interval& a, const Interval& b) {
  Interval h;
  if (a.lo < b.lo) {
    h.lo = a.lo;
    h.lo_inclusive = a.lo_inclusive;
  } else if (b.lo < a.lo) {
    h.lo = b.lo;
    h.lo_inclusive = b.lo_inclusive;
  } else {
    h.lo = a.lo;
    h.lo_inclusive = a.lo_inclusive || b.lo_inclusive;
  }
  if (a.hi > b.hi) {
    h.hi = a.hi;
    h.hi_inclusive = a.hi_inclusive;
  } else if (b.hi > a.hi) {
    h.hi = b.hi;
    h.hi_inclusive = b.hi_inclusive;
  } else {
    h.hi = a.hi;
    h.hi_inclusive = a.hi_inclusive || b.hi_inclusive;
  }
  return h;
}

}  // namespace

std::vector<SelectionCandidate> ClusterCandidates(
    const std::vector<SelectionCandidate>& items, const SelectionConfig& config,
    int* merged_away) {
  if (merged_away != nullptr) *merged_away = 0;
  // Only overlapping ranges may merge, even when the knob is zeroed.
  const double min_overlap = std::max(config.cluster_min_overlap, 1e-9);

  // Member indices per partition ordinal (never per pointer — part_ord
  // is the planner's deterministic construction ordinal).
  int max_ord = -1;
  for (const SelectionCandidate& it : items) {
    max_ord = std::max(max_ord, it.part_ord);
  }
  std::vector<std::vector<size_t>> groups(static_cast<size_t>(max_ord + 1));
  for (size_t i = 0; i < items.size(); ++i) {
    const SelectionCandidate& it = items[i];
    if (!it.mergeable || it.part_ord < 0) continue;
    if (it.kind != CandKind::kNewFragment &&
        it.kind != CandKind::kNewViewFragment) {
      continue;
    }
    groups[static_cast<size_t>(it.part_ord)].push_back(i);
  }

  std::vector<char> consumed(items.size(), 0);
  std::map<size_t, SelectionCandidate> merged_at;  // rep index -> cluster

  for (std::vector<size_t>& group : groups) {
    if (group.size() < 2) continue;
    // Sweep in range order; equal ranges fall back to item order.
    std::sort(group.begin(), group.end(), [&](size_t a, size_t b) {
      const Interval& ia = items[a].interval;
      const Interval& ib = items[b].interval;
      if (ia.lo != ib.lo) return ia.lo < ib.lo;
      if (ia.hi != ib.hi) return ia.hi < ib.hi;
      return a < b;
    });

    std::vector<size_t> members;
    Interval hull;
    double size = 0.0, value = 0.0;
    auto flush = [&]() {
      if (members.size() >= 2) {
        const size_t rep = *std::min_element(members.begin(), members.end());
        SelectionCandidate merged = items[members.front()];
        // A merged cluster is applied as one refinement of the shared
        // partition: MaterializeFragment tracks the hull itself, so the
        // hull needs no pre-tracked FragmentStats entry.
        merged.kind = CandKind::kNewFragment;
        merged.interval = hull;
        merged.size = size;
        merged.value = value;
        merged_at.emplace(rep, merged);
        for (size_t m : members) consumed[m] = 1;
        if (merged_away != nullptr) {
          *merged_away += static_cast<int>(members.size()) - 1;
        }
      }
      members.clear();
    };
    for (size_t idx : group) {
      const SelectionCandidate& it = items[idx];
      if (members.empty()) {
        members.push_back(idx);
        hull = it.interval;
        size = it.size;
        value = it.value;
        continue;
      }
      const double ov = hull.OverlapWidth(it.interval);
      const double shorter = std::min(hull.Width(), it.interval.Width());
      const double frac = shorter > 0.0
                              ? ov / shorter
                              : (hull.Overlaps(it.interval) ? 1.0 : 0.0);
      if (frac >= min_overlap) {
        // Shared bytes are counted once at the sparser member's
        // density; the clamp keeps the estimate physical when the
        // densities disagree wildly.
        const double hull_density =
            hull.Width() > 0.0 ? size / hull.Width() : size;
        const double item_density = it.interval.Width() > 0.0
                                        ? it.size / it.interval.Width()
                                        : it.size;
        const double shared = ov * std::min(hull_density, item_density);
        size = std::max(std::max(size, it.size), size + it.size - shared);
        // Near-duplicates share most of their hit evidence: keep the
        // stronger member's value plus the non-overlapping remainder of
        // the weaker one's.
        const double vmax = std::max(value, it.value);
        const double vmin = std::min(value, it.value);
        value = vmax + (1.0 - std::min(frac, 1.0)) * vmin;
        hull = HullOf(hull, it.interval);
        members.push_back(idx);
      } else {
        flush();
        members.push_back(idx);
        hull = it.interval;
        size = it.size;
        value = it.value;
      }
    }
    flush();
  }

  std::vector<SelectionCandidate> out;
  out.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    auto rep = merged_at.find(i);
    if (rep != merged_at.end()) {
      out.push_back(rep->second);
    } else if (!consumed[i]) {
      out.push_back(items[i]);
    }
  }
  return out;
}

namespace {

class GreedyStrategy : public SelectionStrategy {
 public:
  const char* name() const override { return "greedy"; }
  SelectionResolution Resolve(const SelectionInput& input) const override {
    return ResolveGreedy(input.items, input.budget_bytes);
  }
};

class LocalSearchStrategy : public SelectionStrategy {
 public:
  const char* name() const override { return "local_search"; }
  SelectionResolution Resolve(const SelectionInput& input) const override {
    return ResolveLocalSearch(input.items, input.budget_bytes, input.config);
  }
};

class ClusterGreedyStrategy : public SelectionStrategy {
 public:
  const char* name() const override { return "cluster_greedy"; }
  SelectionResolution Resolve(const SelectionInput& input) const override {
    int merged = 0;
    std::vector<SelectionCandidate> reduced =
        ClusterCandidates(input.items, input.config, &merged);
    SelectionResolution res =
        ResolveGreedy(std::move(reduced), input.budget_bytes);
    res.candidates_merged = merged;
    return res;
  }
};

class ClusterLocalSearchStrategy : public SelectionStrategy {
 public:
  const char* name() const override { return "cluster_local_search"; }
  SelectionResolution Resolve(const SelectionInput& input) const override {
    int merged = 0;
    std::vector<SelectionCandidate> reduced =
        ClusterCandidates(input.items, input.config, &merged);
    SelectionResolution res =
        ResolveLocalSearch(std::move(reduced), input.budget_bytes, input.config);
    res.candidates_merged = merged;
    return res;
  }
};

}  // namespace

const SelectionStrategy* SelectionStrategy::ForKind(SelectionStrategyKind kind) {
  static const GreedyStrategy greedy;
  static const LocalSearchStrategy local_search;
  static const ClusterGreedyStrategy cluster_greedy;
  static const ClusterLocalSearchStrategy cluster_local_search;
  switch (kind) {
    case SelectionStrategyKind::kGreedy:
      return &greedy;
    case SelectionStrategyKind::kLocalSearch:
      return &local_search;
    case SelectionStrategyKind::kClusterGreedy:
      return &cluster_greedy;
    case SelectionStrategyKind::kClusterLocalSearch:
      return &cluster_local_search;
  }
  return &greedy;
}

}  // namespace deepsea
