#include "core/engine_observer.h"

namespace deepsea {

const char* EngineStageName(EngineStage stage) {
  switch (stage) {
    case EngineStage::kRewrite:
      return "rewrite";
    case EngineStage::kCandidates:
      return "candidates";
    case EngineStage::kSelection:
      return "selection";
    case EngineStage::kApply:
      return "apply";
    case EngineStage::kMerge:
      return "merge";
    case EngineStage::kPhysical:
      return "physical";
  }
  return "unknown";
}

}  // namespace deepsea
