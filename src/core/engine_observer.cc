#include "core/engine_observer.h"

namespace deepsea {

const char* EngineStageName(EngineStage stage) {
  switch (stage) {
    case EngineStage::kRewrite:
      return "rewrite";
    case EngineStage::kCandidates:
      return "candidates";
    case EngineStage::kSelection:
      return "selection";
    case EngineStage::kApply:
      return "apply";
    case EngineStage::kMerge:
      return "merge";
    case EngineStage::kPhysical:
      return "physical";
  }
  return "unknown";
}

void MulticastObserver::OnQueryStart(int64_t query_index, const PlanPtr& query,
                                     const std::string& tenant) {
  for (EngineObserver* s : sinks_) s->OnQueryStart(query_index, query, tenant);
}

void MulticastObserver::OnStageStart(EngineStage stage,
                                     const QueryContext& ctx) {
  for (EngineObserver* s : sinks_) s->OnStageStart(stage, ctx);
}

void MulticastObserver::OnStageEnd(EngineStage stage, const QueryContext& ctx,
                                   double sim_seconds, double wall_seconds) {
  for (EngineObserver* s : sinks_) {
    s->OnStageEnd(stage, ctx, sim_seconds, wall_seconds);
  }
}

void MulticastObserver::OnMaterializeView(const ViewInfo& view,
                                          double sim_seconds,
                                          const std::string& tenant) {
  for (EngineObserver* s : sinks_) {
    s->OnMaterializeView(view, sim_seconds, tenant);
  }
}

void MulticastObserver::OnMaterializeFragment(const ViewInfo& view,
                                              const std::string& attr,
                                              const Interval& interval,
                                              double bytes,
                                              const std::string& tenant) {
  for (EngineObserver* s : sinks_) {
    s->OnMaterializeFragment(view, attr, interval, bytes, tenant);
  }
}

void MulticastObserver::OnEvict(const ViewInfo& view, const std::string& attr,
                                const Interval& interval, double bytes,
                                const std::string& tenant) {
  for (EngineObserver* s : sinks_) {
    s->OnEvict(view, attr, interval, bytes, tenant);
  }
}

void MulticastObserver::OnMerge(const ViewInfo& view, const std::string& attr,
                                const Interval& merged, double bytes,
                                const std::string& tenant) {
  for (EngineObserver* s : sinks_) {
    s->OnMerge(view, attr, merged, bytes, tenant);
  }
}

void MulticastObserver::OnFault(EngineStage stage, const std::string& view_id,
                                const Status& status, int attempt,
                                const std::string& tenant) {
  for (EngineObserver* s : sinks_) {
    s->OnFault(stage, view_id, status, attempt, tenant);
  }
}

void MulticastObserver::OnRetry(EngineStage stage, int next_attempt,
                                const std::string& tenant) {
  for (EngineObserver* s : sinks_) s->OnRetry(stage, next_attempt, tenant);
}

void MulticastObserver::OnDegrade(EngineStage stage, const std::string& view_id,
                                  const Status& status,
                                  const std::string& tenant) {
  for (EngineObserver* s : sinks_) s->OnDegrade(stage, view_id, status, tenant);
}

void MulticastObserver::OnQueryEnd(const QueryReport& report) {
  for (EngineObserver* s : sinks_) s->OnQueryEnd(report);
}

}  // namespace deepsea
