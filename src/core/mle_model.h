#ifndef DEEPSEA_CORE_MLE_MODEL_H_
#define DEEPSEA_CORE_MLE_MODEL_H_

#include <vector>

#include "common/math_util.h"
#include "core/decay.h"
#include "core/interval.h"
#include "core/view_stats.h"

namespace deepsea {

/// Configuration of the probabilistic fragment benefit model (Section
/// 7.1, "Probabilistic Fragment Benefit Model").
struct MleConfig {
  /// Target number of equi-size "parts" the attribute domain is split
  /// into. The actual count is adjusted so no part is partially
  /// contained in a fragment (see ChoosePartCount).
  int target_parts = 32;
  /// Hard upper bound on the number of parts (guards degenerate
  /// boundary layouts).
  int max_parts = 4096;
  /// Robustness guard: when the fitted standard deviation exceeds this
  /// fraction of the domain width, the access pattern is too dispersed
  /// for a single Normal (e.g. Zipf-scattered hot spots, Fig. 8b) and
  /// Adjust falls back to the raw decayed hit counts, making the model
  /// degrade to Nectar-style counting instead of mispredicting.
  double max_stddev_fraction = 0.15;
};

/// Implements the paper's fragment-correlation smoothing: treat decayed
/// hits on fragments as samples from a Normal access distribution over
/// the partition attribute's domain, fit N(mu, sigma) by maximum
/// likelihood (adjusted sample variance), and redistribute the total hit
/// mass across fragments through the fitted CDF:
///
///   H_A(I) = H_total * (P(x <= u) - P(x <= l))   for I = [l, u].
///
/// Fragments near hot spots thereby receive benefit even when their own
/// raw hit counts are low, which is what keeps "neighbors of hot
/// fragments" in the pool (Fig. 8a).
class MleFragmentModel {
 public:
  explicit MleFragmentModel(MleConfig config = MleConfig()) : cfg_(config) {}

  /// Result of one smoothing pass over a partition's fragments.
  struct AdjustedHits {
    /// Adjusted hit count per input fragment, aligned with the input.
    std::vector<double> hits;
    /// Total decayed hits across the partition (H_total).
    double total = 0.0;
    /// The fitted distribution (valid=false when there were no hits, in
    /// which case `hits` are all zero).
    NormalFit fit;
  };

  /// Computes H_A for every fragment of a partition over `domain`.
  /// `t_now` and `dec` define the decayed hit counts H(I).
  ///
  /// `bases`, when non-null, is parallel to `fragments` and supplies
  /// each fragment's shared-pool base (nullptr entries for fragments
  /// without one). This is the PlanningDelta shadow-partition shape:
  /// a shadow fragment holds only the query-local hit suffix, and its
  /// base holds the history. Hits are then evaluated base-first, local
  /// second — the order a folded in-place fragment stores them — so the
  /// fit is bit-identical to running Adjust after the fold.
  AdjustedHits Adjust(const std::vector<FragmentStats>& fragments,
                      const Interval& domain, double t_now,
                      const DecayFunction& dec,
                      const std::vector<const FragmentStats*>* bases =
                          nullptr) const;

  /// Chooses an equi-size part width such that every fragment boundary
  /// (approximately) aligns with a part boundary: the greatest
  /// divisor-like grid no coarser than cfg.target_parts, capped at
  /// cfg.max_parts. Exposed for testing.
  int ChoosePartCount(const std::vector<FragmentStats>& fragments,
                      const Interval& domain) const;

 private:
  MleConfig cfg_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_MLE_MODEL_H_
