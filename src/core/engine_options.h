#ifndef DEEPSEA_CORE_ENGINE_OPTIONS_H_
#define DEEPSEA_CORE_ENGINE_OPTIONS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "core/decay.h"
#include "core/merge.h"
#include "core/mle_model.h"
#include "core/policy.h"
#include "core/selection_strategy.h"
#include "exec/executor.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"

namespace deepsea {

/// Retry and degradation policy for storage faults (see DESIGN.md,
/// "Failure model and recovery"). Materialization is a best-effort
/// optimization: when a decision cannot be applied, the engine answers
/// the query from whatever is already materialized — a fault must never
/// take query answering down with it.
struct FaultHandlingConfig {
  /// Additional attempts for a decision that failed with a transient
  /// fault (StatusCode::kUnavailable). Each attempt re-executes the
  /// whole decision against the rolled-back pool. 0 disables retry.
  int max_retries = 2;
  /// Simulated seconds charged per retry (models backoff + job
  /// re-queue). 0 keeps retried queries' charged time unchanged.
  /// Base delay of the shared capped-exponential-backoff helper
  /// (common/backoff.h); the defaults below make every retry charge
  /// exactly this value, bit-identical to the historical fixed backoff.
  double retry_backoff_seconds = 0.0;
  /// Growth factor per retry: retry k charges base * multiplier^k
  /// (before cap and jitter). 1 = fixed backoff (historical behavior).
  double retry_backoff_multiplier = 1.0;
  /// Upper bound on a single retry's charged delay. Infinite = no cap.
  double retry_backoff_cap_seconds =
      std::numeric_limits<double>::infinity();
  /// Deterministic jitter half-width in [0, 1): each delay is spread
  /// over +/- this fraction by a pure function of (seed, retry), so
  /// jittered runs still replay bit-identically. 0 = no jitter.
  double retry_jitter_fraction = 0.0;
  /// Permanent decision failures attributed to one view before the view
  /// is quarantined (SelectionPlanner stops proposing it). <= 0
  /// disables quarantine.
  int quarantine_threshold = 3;
  /// Commits after which a quarantined view becomes proposable again.
  int64_t quarantine_cooldown_commits = 50;

  /// This policy's retry-delay parameters as the shared backoff
  /// helper's config (both the inline retry loop and the background
  /// materialization workers construct their DeterministicBackoff from
  /// it).
  BackoffConfig Backoff() const {
    BackoffConfig b;
    b.base_seconds = retry_backoff_seconds;
    b.multiplier = retry_backoff_multiplier;
    b.cap_seconds = retry_backoff_cap_seconds;
    b.jitter_fraction = retry_jitter_fraction;
    return b;
  }
};

/// Background materialization service (see DESIGN.md, "Asynchronous
/// materialization"). Decouples a query's *decision intent* from its
/// execution: the query commits its statistics and answers from the
/// current pool, while the decision is folded in later by the service —
/// through the same staged transaction, retry/quarantine, and sharded
/// commit machinery the inline path uses.
struct MaterializationConfig {
  enum class Mode {
    /// Decisions execute inside the query's commit (historical
    /// behavior; the service is never constructed).
    kInline = 0,
    /// Decisions route through the service's admission control but
    /// still execute synchronously inside the query's commit, so every
    /// golden trace stays bit-identical to kInline while the queue
    /// accounting (and shed policy, under a tight bound) is live.
    kDrain,
    /// Decisions are enqueued as background jobs; `workers` threads
    /// drain the queue through sharded commits with staleness
    /// revalidation. workers == 0 queues without draining (tests call
    /// DrainAll() / Quiesce() explicitly at deterministic points).
    kAsync,
  };
  Mode mode = Mode::kInline;
  /// Background worker threads (kAsync only).
  int workers = 1;
  /// Hard queue depth bound: admission sheds the lowest-benefit jobs
  /// (possibly the incoming one) once the queue is full. Never blocks.
  int max_queue_jobs = 64;
  /// Hard bound on the summed admitted (estimated materialization)
  /// bytes of queued jobs. Infinite = depth bound only.
  double max_queue_bytes = std::numeric_limits<double>::infinity();
};

/// All knobs of a DeepSea engine instance. Defaults are the paper's
/// DeepSea configuration; baselines are expressed by changing strategy
/// and/or value_model (see core/policy.h).
struct EngineOptions {
  StrategyKind strategy = StrategyKind::kDeepSea;
  ValueModel value_model = ValueModel::kDeepSea;

  /// S_max: pool size limit in bytes (infinite by default).
  double pool_limit_bytes = std::numeric_limits<double>::infinity();

  DecayConfig decay;
  MleConfig mle;
  /// DeepSea's fragment-correlation smoothing (Section 7.1); the Nectar
  /// value models never use it regardless of this flag.
  bool use_mle_smoothing = true;

  /// Allow overlapping fragments (Section 3 / 10.4). When false, every
  /// refinement splits the overlapped fragments (read + rewrite them).
  bool overlapping_fragments = true;

  /// Number of fragments for the EquiDepth strategy ("E-k").
  int equi_depth_fragments = 6;

  /// phi, the maximum fragment size relative to the view (Section 9,
  /// "Bounding Fragment Size"); <= 0 disables the upper bound.
  double max_fragment_fraction = 0.0;
  /// Enforce the file-system block size as fragment lower bound.
  bool enforce_block_lower_bound = true;

  /// When true, also execute queries over the physical sample data and
  /// materialize real view tables (correctness path). When false, only
  /// the cost model runs (fast; used by large experiments).
  bool physical_execution = false;

  EstimatorConfig estimator;
  ClusterConfig cluster;

  /// View admission threshold: materialize a view candidate when its
  /// accumulated benefit >= threshold * creation cost. The paper's
  /// filter uses 1.0; the default here is lower because our per-query
  /// saving estimates are conservative (they ignore reuse by other
  /// templates sharing the view). Set to ~0 to reproduce the paper's
  /// controlled sequences where the first query materializes.
  double benefit_cost_threshold = 0.5;

  /// Fragment refinement threshold: create a refinement fragment when
  /// hits * marginal read saving >= threshold * creation cost (the
  /// paper's P_sel filter uses 1.0). Kept separate from view admission
  /// so that benches forcing eager view creation do not also disable
  /// the repartitioning cost-benefit test.
  double fragment_benefit_threshold = 1.0;

  /// Histogram resolution for view partition-attribute histograms.
  int view_histogram_bins = 256;

  /// Materialized views are stored columnar-compressed (ORC-style), so
  /// their on-disk footprint is a fraction of the raw intermediate
  /// result's width. Applied to view sizes, fragment sizes, and the
  /// read/write costs that depend on them.
  double view_storage_compression = 0.6;

  /// Fragment-merging extension (paper Section 11 future work): merge
  /// adjacent fragments that are mostly accessed together. Off by
  /// default; see core/merge.h.
  MergeConfig merge;

  /// Storage-fault retry / degradation / quarantine policy.
  FaultHandlingConfig fault;

  /// Background materialization service (off — inline — by default).
  MaterializationConfig materialization;

  /// Which SelectionStrategy resolves the knapsack over ALLCAND, plus
  /// its tuning knobs (greedy by default — bit-identical to the
  /// historical inline scan). See core/selection_strategy.h and
  /// DESIGN.md, "Selection strategies".
  SelectionConfig selection;

  /// Fragment boundaries are snapped outward to a grid of this fraction
  /// of the attribute domain before candidate generation, so queries
  /// whose ranges jitter around the same hot region converge on one
  /// refinement fragment instead of spawning a near-duplicate per
  /// query. 0 disables snapping (exact Definition 7 endpoints).
  double candidate_snap_fraction = 0.005;
};

/// Per-query outcome of ProcessQuery.
struct QueryReport {
  /// Position of this query in the pool's total commit order (equals
  /// the engine-local query count for a single-tenant engine).
  int64_t query_index = 0;
  /// Tenant that issued the query ("" for a single-tenant engine).
  std::string tenant_id;
  /// Cost of the conventional (selection-pushed) plan with no views.
  double base_seconds = 0.0;
  /// Cost of the plan actually chosen (view-based or base).
  double best_seconds = 0.0;
  /// Overhead charged this query for view/fragment materialization and
  /// repartitioning.
  double materialize_seconds = 0.0;
  /// Total simulated time charged: best + materialize.
  double total_seconds = 0.0;

  /// True when the speculative shared-lock plan was invalidated by a
  /// concurrent commit and the query replanned under the exclusive
  /// lock (always false for a single-tenant or turnstile-serialized
  /// engine; see DESIGN.md, "Statistics hot path and locking
  /// discipline").
  bool replanned = false;
  /// Why: a foreign commit's write footprint actually intersected this
  /// plan's read footprint (genuine conflict) ...
  bool replan_conflict = false;
  /// ... or the bounded commit-epoch table could no longer cover the
  /// plan's read epoch and the engine invalidated conservatively.
  /// Exactly one of the two is set when `replanned` is.
  bool replan_spurious = false;
  /// Why this commit took the exclusive (X) path ("" = it committed
  /// sharded). One of: "merge" (merge pass enabled), "eviction"
  /// (decision evicts inline), "physical" (physical execution mutates
  /// the relational catalog), "new_view" / "catalog_put" /
  /// "index_insert" / "attach" (a replanned commit carrying that
  /// structural content — precedence in that order), "replan"
  /// (replanned, no structural content), "other". Since structural
  /// planning writes commit sharded by default, the structural reasons
  /// identify replan-forced exclusive commits that also create views —
  /// they should stay near zero on a healthy workload.
  std::string exclusive_reason;

  std::string used_view;             ///< view answering the query ("" = none)
  int fragments_read = 0;
  int64_t map_tasks = 0;             ///< map tasks of the executed plan
  std::vector<std::string> created_views;
  int created_fragments = 0;
  int evicted_fragments = 0;
  int merged_fragments = 0;          ///< merge-pass merges this query
  double pool_bytes_after = 0.0;

  // --- fault handling (all zero on a fault-free query) ---

  /// Decision-execution attempts that failed and were rolled back
  /// (Apply and merge pass, transient and permanent).
  int fault_count = 0;
  /// Rolled-back attempts that were retried (transient faults only).
  int retry_count = 0;
  /// True when a decision was abandoned: the query was still answered,
  /// from the best rewriting over already-materialized state (or base
  /// tables), but the planned pool reconfiguration did not happen.
  bool degraded = false;
  /// View whose action failed first in the last failed attempt ("" when
  /// fault-free or unattributed, e.g. a merge-pass write).
  std::string fault_view;
  /// Status string of the last fault ("" when fault-free).
  std::string fault_message;

  bool physically_executed = false;
  ExecResult physical;               ///< result rows (physical mode only)

  // --- selection-strategy telemetry (zero when selection never ran,
  //     e.g. Hive baseline; see core/selection_strategy.h) ---

  /// SelectionStrategyName of the strategy that resolved this query's
  /// knapsack ("" when the selection stage did not run).
  std::string selection_strategy;
  /// The resolved knapsack's objective value: summed Φ of every
  /// admitted item, kept pool content included (the quantity the
  /// never-worse local-search guarantee covers — not the decision's
  /// benefit_score, which counts admitted new content only).
  double selection_benefit = 0.0;
  /// Knapsack items the resolver ranked (post-clustering).
  int selection_candidates = 0;
  /// Local search: improving swaps applied.
  int selection_swaps = 0;
  /// Clustering: candidates merged away by the pre-pass.
  int selection_merged_candidates = 0;
};

/// Aggregate counters across a workload run.
struct EngineTotals {
  double total_seconds = 0.0;
  double base_seconds = 0.0;
  double materialize_seconds = 0.0;
  int64_t map_tasks = 0;
  int64_t queries = 0;
  int64_t views_created = 0;
  int64_t fragments_created = 0;
  int64_t fragments_evicted = 0;
  int64_t fragments_merged = 0;
  int64_t queries_answered_from_views = 0;
  int64_t faults = 0;             ///< failed decision-execution attempts
  int64_t retries = 0;            ///< transient-fault retries
  int64_t queries_degraded = 0;   ///< queries whose decision was abandoned
  int64_t replans = 0;            ///< queries replanned under the X lock
  int64_t replans_conflict = 0;   ///< ... due to a genuine read-set conflict
  int64_t replans_spurious = 0;   ///< ... due to epoch-table coverage loss
  int64_t commits_sharded = 0;    ///< commits on the sharded (IX) path
  int64_t commits_exclusive = 0;  ///< commits on the exclusive (X) path
  double selection_benefit = 0.0; ///< summed knapsack objective values
  int64_t selection_swaps = 0;    ///< local-search swaps applied
  int64_t selection_merged_candidates = 0;  ///< clustering merges
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_ENGINE_OPTIONS_H_
