#ifndef DEEPSEA_CORE_MATERIALIZATION_SERVICE_H_
#define DEEPSEA_CORE_MATERIALIZATION_SERVICE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/commit_footprint.h"
#include "core/engine_observer.h"
#include "core/engine_options.h"
#include "core/query_context.h"
#include "core/selection_planner.h"

namespace deepsea {

class PoolManager;

/// One queued decision intent: everything a background worker needs to
/// execute a query's SelectionDecision in its own commit, after the
/// query itself has answered. The job owns the query's context (whose
/// PlanningDelta was already folded by the query's stats commit), so
/// PoolManager::Apply can remap the decision's shadow partition
/// pointers and execute it unchanged.
struct MaterializationJob {
  uint64_t id = 0;
  /// The planning context; its delta is folded (the stats landed with
  /// the query's commit) and supplies the shadow->real partition map
  /// plus the fragment cover for repartitioning charges.
  std::unique_ptr<QueryContext> ctx;
  SelectionDecision decision;
  /// Pool writes the decision will perform (normalized; never `all`).
  CommitFootprint write_fp;
  /// Staleness revalidation read set: partition-structure reads on the
  /// decision's target partitions. Conflicts with every foreign
  /// structural change, materialization, or eviction on a target —
  /// but not with benign statistics traffic (hit appends, benefit
  /// patches), so intents survive repeated-template workloads.
  CommitFootprint reval_fp;
  /// The plan's read epoch, and the sequence number of the query's own
  /// stats publish (0 = the stats commit published nothing). The worker
  /// validates reval_fp against every footprint published after
  /// read_epoch except skip_seq: the job must not be invalidated by
  /// its own query's statistics.
  uint64_t read_epoch = 0;
  uint64_t skip_seq = 0;
  /// Upper bound on the decision's net pool growth (budget headroom
  /// claim at the job's commit; see NetDecisionBytes in engine.cc) and
  /// the decision's knapsack benefit (shed priority: lowest first).
  double admitted_bytes = 0.0;
  double benefit_score = 0.0;
  /// Decisions containing evictions commit exclusively (they change the
  /// occupancy every tenant budgets against), like the inline path.
  bool needs_exclusive = false;
  /// Observer/tenant stamp of the issuing engine: background pool
  /// mutations and fault/retry events are attributed to the tenant
  /// whose query produced the intent.
  EngineObserver* observer = nullptr;
  std::string tenant;
  int32_t tenant_ord = 0;
  /// Commit clock of the issuing query (quarantine bookkeeping).
  int64_t t_now = 0;
  /// Canonical rendering of the decision's (kind, view, attr, range)
  /// set; jobs with equal keys coalesce (newest intent wins).
  std::string coalesce_key;
  int64_t enqueued_ns = 0;  ///< host enqueue time (latency histogram)
};

/// Bounded background materialization queue plus its worker pool (see
/// DESIGN.md, "Asynchronous materialization"). Robustness properties:
///
///  * Admission control, never backpressure-by-blocking: a full queue
///    (depth or byte bound) sheds the lowest-benefit intents —
///    possibly the incoming one — and duplicate intents targeting the
///    same view/range coalesce, so a churning pool cannot build
///    unbounded materialization debt and Submit never blocks a query.
///  * Staleness revalidation: a worker re-validates the job's
///    revalidation read set against the commit epoch table (skipping
///    the query's own stats publish) before folding; invalidated
///    intents are dropped, never half-applied.
///  * Fault isolation: job execution runs under
///    FaultScopeGuard(kBackground) with the shared
///    capped-exponential-backoff retry policy; permanent failures
///    quarantine the target view via RecordViewFault without ever
///    degrading a query.
///  * Deterministic quiesce: Quiesce() pauses the workers, drains the
///    queue on the calling thread, and resumes — SaveState and engine
///    destruction use it so no intent is silently lost.
///
/// Accounting invariant (asserted by the tests and the TSan soak):
/// after a quiesce, submitted == executed + failed + shed + coalesced
/// + stale_dropped — no intent is lost or folded twice.
class MaterializationService {
 public:
  MaterializationService(PoolManager* pool, MaterializationConfig config);
  ~MaterializationService();  // Shutdown()

  MaterializationService(const MaterializationService&) = delete;
  MaterializationService& operator=(const MaterializationService&) = delete;

  /// Builds the staleness revalidation read set for `decision`:
  /// one partition-structure read per target partition ("" wildcard for
  /// whole-view actions).
  static CommitFootprint RevalidationFootprint(const SelectionDecision& d);
  /// Canonical coalesce key of a decision's target set.
  static std::string CoalesceKey(const SelectionDecision& d);

  /// kAsync submission: admission control (coalesce, shed) + enqueue +
  /// worker wakeup. Never blocks; a shed intent is dropped and counted.
  void Submit(MaterializationJob job);

  /// kDrain admission: counts the intent and applies the shed policy
  /// against the (empty-in-drain-mode) queue bound without enqueuing.
  /// Returns true when the caller should execute the decision inline;
  /// false when the intent was shed. At the default bounds this always
  /// admits, keeping drain-mode traces bit-identical to inline.
  bool AdmitInline(double admitted_bytes, double benefit_score);

  /// Executes queued jobs on the calling thread until the queue is
  /// empty (competing with any running workers). Safe outside commits.
  void DrainAll();

  /// Deterministic quiesce: pauses workers, waits for in-flight jobs,
  /// drains the queue on the calling thread, resumes workers. On
  /// return the queue is empty and no job is executing.
  void Quiesce();

  /// Stops and joins the workers, then drains leftovers on the calling
  /// thread. Idempotent; the destructor calls it.
  void Shutdown();

  // --- accounting (scrape-safe: atomics and short internal locks) ---

  static constexpr int kLatencyBuckets = 12;
  /// Upper bounds (seconds) of the enqueue-to-fold latency histogram;
  /// identical to MetricsObserver::kBucketBounds so the exporter can
  /// reuse its `le` labels. Index kLatencyBuckets is +Inf.
  static const double kLatencyBucketBounds[kLatencyBuckets];

  struct StatsSnapshot {
    int64_t submitted = 0;      ///< Submit + AdmitInline intents
    int64_t executed = 0;       ///< folded into the pool
    int64_t failed = 0;         ///< permanent fault / retries exhausted
    int64_t shed = 0;           ///< dropped by admission control
    int64_t coalesced = 0;      ///< superseded by a newer same-target job
    int64_t stale_dropped = 0;  ///< revalidation found the pool moved on
    int64_t faults = 0;         ///< failed background Apply attempts
    int64_t retries = 0;        ///< transient-fault retries
    double background_sim_seconds = 0.0;  ///< simulated seconds folded
    /// Host-clock enqueue-to-fold latency histogram (executed jobs).
    int64_t latency_count = 0;
    double latency_sum_seconds = 0.0;
    std::array<uint64_t, kLatencyBuckets + 1> latency_buckets{};
  };
  StatsSnapshot stats() const;

  size_t QueueDepth() const;
  double QueueBytes() const;
  /// Host age in seconds of the oldest queued job (0 when empty).
  double OldestAgeSeconds() const;

  const MaterializationConfig& config() const { return config_; }

 private:
  void WorkerLoop();
  /// Pops one job (nullptr-equivalent: returns false) — caller executes
  /// outside queue_mu_.
  bool PopLocked(MaterializationJob* out);
  /// Executes one job: revalidating commit, retry loop, accounting.
  void ExecuteJob(MaterializationJob job);

  PoolManager* pool_;
  MaterializationConfig config_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<MaterializationJob> queue_;
  double queue_bytes_ = 0.0;
  uint64_t next_job_id_ = 1;
  bool stop_ = false;
  bool paused_ = false;
  int active_jobs_ = 0;  ///< jobs currently executing (workers + drains)
  std::vector<std::thread> workers_;

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> coalesced_{0};
  std::atomic<int64_t> stale_dropped_{0};
  std::atomic<int64_t> faults_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<double> background_sim_seconds_{0.0};
  std::atomic<int64_t> latency_count_{0};
  std::atomic<double> latency_sum_seconds_{0.0};
  std::array<std::atomic<uint64_t>, kLatencyBuckets + 1> latency_buckets_{};
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_MATERIALIZATION_SERVICE_H_
