#ifndef DEEPSEA_CORE_COMMIT_FOOTPRINT_H_
#define DEEPSEA_CORE_COMMIT_FOOTPRINT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/interval.h"
#include "plan/signature.h"

namespace deepsea {

/// What a plan read — or what a commit writes — of the shared pool
/// state, at the granularity the conflict detector validates (see
/// DESIGN.md, "Statistics hot path and locking discipline").
///
/// A PlanningDelta accumulates its *read* footprint while the planning
/// stages run under PoolManager::SharedLock(), and derives its *write*
/// footprint from the buffered writes when the engine enters the
/// commit. PoolManager keeps a bounded table of recently committed
/// write footprints; a plan is valid iff no foreign write footprint
/// published after the plan's read epoch intersects its read footprint.
///
/// Granularities, coarsest to finest:
///
///  * `all` — the commit rewrote arbitrary pool state (state loads,
///    merge passes, the legacy token-only BeginCommit). Conflicts with
///    every read.
///  * `catalog_counter` — the view-id counter / rewrite-index
///    structure. Read by any plan that *predicts* a new view id
///    (PlanningDelta::TrackView), written by any commit that creates
///    views. Two concurrent creators always conflict, which is what
///    makes "v<N>" id prediction safe.
///  * `catalog_sigs` — view-signature catalog entries probed
///    (FindView) or created (TrackView). A foreign commit creating a
///    signature this plan probed invalidates the plan; creations with
///    signatures the plan never probed do not.
///  * `index_probes` / `index_inserts` — rewrite-index lookups at
///    *subsumption* granularity. The matcher probes the FilterTree with
///    each query-subplan signature; a foreign commit inserting a view
///    whose signature SUBSUMES a probed one could have changed the
///    rewriting choice, so it invalidates the plan. Inserting a view
///    that subsumes nothing the plan probed commutes — which is what
///    lets signature-disjoint candidate registrations commit sharded.
///    (Exact-signature collisions are additionally caught by
///    `catalog_sigs`; this granularity exists for the strictly-wider
///    view case.)
///  * `views` — per-view statistics and materialization state (benefit
///    events, whole-view flags, quarantine, eviction).
///  * `partitions` — the *structure* of one (view, attr) partition:
///    its tracked-fragment set and pending list. `attr == ""` is a
///    whole-view wildcard (EvictWholeView touches every partition).
///  * `fragments` — one (view, attr) fragment range: hit history,
///    size, materialized flag. Ranges conflict only when they overlap,
///    so two tenants refining disjoint regions of one partition
///    commute.
///
/// The asymmetric rule: a partition-*structure* read conflicts with a
/// structure write, and a fragment read conflicts with a structure
/// write (the fragment list changed under it) — but a structure read
/// does NOT conflict with a plain fragment write (hits appended to an
/// existing fragment leave the structure the reader depended on
/// intact).
struct CommitFootprint {
  /// One fragment-range entry: (view, partition attr, value range).
  struct FragRange {
    std::string view;
    std::string attr;
    Interval range;
  };

  /// One rewrite-index entry: the canonical rendering (identity, used
  /// for dedup and the exact-match fast path) plus the structured
  /// signature behind it (shared, so footprint copies into the epoch
  /// table and the in-flight registry stay cheap). The structured form
  /// is what SignatureSubsumes evaluates during conflict checks.
  struct SigEntry {
    std::string canonical;
    std::shared_ptr<const PlanSignature> sig;
  };

  bool all = false;
  bool catalog_counter = false;
  std::vector<std::string> catalog_sigs;
  /// Read side: query-subplan signatures probed against the rewrite
  /// index. Write side: view signatures inserted into it.
  std::vector<SigEntry> index_probes;
  std::vector<SigEntry> index_inserts;
  std::vector<std::string> views;
  /// (view, attr); attr "" = every partition of the view.
  std::vector<std::pair<std::string, std::string>> partitions;
  std::vector<FragRange> fragments;

  bool Empty() const {
    return !all && !catalog_counter && catalog_sigs.empty() &&
           index_probes.empty() && index_inserts.empty() && views.empty() &&
           partitions.empty() && fragments.empty();
  }

  void AddView(const std::string& id) { views.push_back(id); }
  void AddPartition(const std::string& id, const std::string& attr) {
    partitions.emplace_back(id, attr);
  }
  void AddFragment(const std::string& id, const std::string& attr,
                   const Interval& range) {
    fragments.push_back(FragRange{id, attr, range});
  }
  void AddCatalogSig(const std::string& canonical) {
    catalog_sigs.push_back(canonical);
  }
  void AddIndexProbe(std::shared_ptr<const PlanSignature> sig) {
    index_probes.push_back(SigEntry{sig->ToString(), std::move(sig)});
  }
  void AddIndexInsert(std::shared_ptr<const PlanSignature> sig) {
    index_inserts.push_back(SigEntry{sig->ToString(), std::move(sig)});
  }

  /// Merge `other` into this footprint.
  void Merge(const CommitFootprint& other);

  /// Rewrites every view id appearing in `views` / `partitions` /
  /// `fragments` through `remap` (ids absent from the map pass through).
  /// Used at fold time to replace reserved placeholder ids with the
  /// final catalog-assigned "v<N>" ids before the footprint is
  /// published to the commit-epoch table.
  void RemapViewIds(
      const std::vector<std::pair<std::string, std::string>>& remap);

  /// Sort + dedup every entry list (conflict checks are scans, but a
  /// plan can record the same key many times over; normalizing keeps
  /// the epoch table and the in-flight registry small).
  void Normalize();
};

/// True when the write footprint intersects the read footprint — the
/// reading plan observed state this commit changed, so the plan must
/// be thrown away and rebuilt. Symmetric in neither argument order nor
/// meaning: the first argument is always the READ set, the second the
/// foreign WRITE set.
bool FootprintsConflict(const CommitFootprint& read,
                        const CommitFootprint& write);

}  // namespace deepsea

#endif  // DEEPSEA_CORE_COMMIT_FOOTPRINT_H_
