#include "core/merge.h"

#include <algorithm>
#include <set>

namespace deepsea {

bool AreAdjacent(const Interval& a, const Interval& b) {
  const Interval& lo = a.lo <= b.lo ? a : b;
  const Interval& hi = a.lo <= b.lo ? b : a;
  if (lo.hi != hi.lo) return false;
  // Exactly one side must own the shared point: [x, p) + [p, y] or
  // [x, p] + (p, y]. Both-inclusive overlaps; both-open leaves a gap.
  return lo.hi_inclusive != hi.lo_inclusive;
}

double CoAccess(const FragmentStats& a, const FragmentStats& b, double t_now,
                const DecayFunction& dec) {
  std::set<double> times_a, times_b;
  double wa = 0.0, wb = 0.0;
  for (const FragmentHit& h : a.hits()) {
    if (dec(t_now, h.time) > 0.0) {
      times_a.insert(h.time);
      wa += 1.0;
    }
  }
  for (const FragmentHit& h : b.hits()) {
    if (dec(t_now, h.time) > 0.0) {
      times_b.insert(h.time);
      wb += 1.0;
    }
  }
  if (times_a.empty() || times_b.empty()) return 0.0;
  double shared = 0.0;
  for (double t : times_a) {
    if (times_b.count(t)) shared += 1.0;
  }
  return shared / std::max(static_cast<double>(times_a.size()),
                           static_cast<double>(times_b.size()));
}

std::vector<MergeCandidate> FindMergeCandidates(ViewCatalog* views,
                                                const MergeConfig& config,
                                                double t_now,
                                                const DecayFunction& dec) {
  std::vector<MergeCandidate> out;
  if (!config.enabled) return out;
  for (ViewInfo* view : views->AllViews()) {
    for (auto& [attr, part] : view->partitions) {
      (void)attr;
      // Collect indices of materialized fragments sorted by interval.
      std::vector<size_t> mats;
      for (size_t i = 0; i < part.fragments.size(); ++i) {
        if (part.fragments[i].materialized) mats.push_back(i);
      }
      std::sort(mats.begin(), mats.end(), [&](size_t x, size_t y) {
        return IntervalLess(part.fragments[x].interval,
                            part.fragments[y].interval);
      });
      for (size_t k = 0; k + 1 < mats.size(); ++k) {
        FragmentStats& a = part.fragments[mats[k]];
        FragmentStats& b = part.fragments[mats[k + 1]];
        if (!AreAdjacent(a.interval, b.interval)) continue;
        if (static_cast<int>(a.hits().size()) < config.min_hits ||
            static_cast<int>(b.hits().size()) < config.min_hits) {
          continue;
        }
        const double combined = a.size_bytes + b.size_bytes;
        if (combined >
            config.max_merged_fraction * std::max(view->stats.size_bytes, 1.0)) {
          continue;
        }
        const double co = CoAccess(a, b, t_now, dec);
        if (co < config.min_co_access) continue;
        MergeCandidate cand;
        cand.view = view;
        cand.part = &part;
        cand.left_index = mats[k];
        cand.right_index = mats[k + 1];
        const Interval& lo = a.interval.lo <= b.interval.lo ? a.interval
                                                            : b.interval;
        const Interval& hi = a.interval.lo <= b.interval.lo ? b.interval
                                                            : a.interval;
        cand.merged = Interval(lo.lo, hi.hi, lo.lo_inclusive, hi.hi_inclusive);
        cand.co_access = co;
        cand.combined_bytes = combined;
        out.push_back(cand);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MergeCandidate& x, const MergeCandidate& y) {
              return x.co_access > y.co_access;
            });
  return out;
}

}  // namespace deepsea
