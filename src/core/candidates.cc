#include "core/candidates.h"

#include <algorithm>
#include <cmath>

namespace deepsea {

std::vector<Interval> GeneratePartitionCandidates(
    const std::vector<Interval>& existing, const Interval& query) {
  std::vector<Interval> out;
  if (query.IsEmpty()) return out;
  auto add_unique = [&](const Interval& iv) {
    if (iv.IsEmpty() || iv.Width() <= 0.0) return;
    if (std::find(existing.begin(), existing.end(), iv) != existing.end()) return;
    if (std::find(out.begin(), out.end(), iv) != out.end()) return;
    out.push_back(iv);
  };
  for (const Interval& frag : existing) {
    const auto inter = frag.Intersect(query);
    if (!inter.has_value()) continue;       // case 1: disjoint
    if (query.Contains(frag)) continue;     // case 2: I' subset of I
    // Cases 3-5: split the fragment at the query endpoints inside it.
    // Left remainder [l', l): exists when query.lo is strictly inside.
    if (query.lo > frag.lo ||
        (query.lo == frag.lo && frag.lo_inclusive && !query.lo_inclusive)) {
      auto [left, rest] = frag.SplitBefore(query.lo);
      add_unique(left);
      (void)rest;
    }
    // Right remainder (u, u']: exists when query.hi is strictly inside.
    if (query.hi < frag.hi ||
        (query.hi == frag.hi && frag.hi_inclusive && !query.hi_inclusive)) {
      auto [rest, right] = frag.SplitAfter(query.hi);
      add_unique(right);
      (void)rest;
    }
    // The covered middle piece I' intersect I.
    add_unique(*inter);
  }
  return out;
}

namespace {

void Enumerate(const PlanPtr& plan, std::vector<PlanPtr>* out) {
  if (!plan) return;
  switch (plan->kind()) {
    case PlanKind::kJoin:
    case PlanKind::kAggregate:
    case PlanKind::kProject:
      out->push_back(plan);
      break;
    default:
      break;
  }
  for (const PlanPtr& c : plan->children()) Enumerate(c, out);
}

void ExtractSelections(const PlanPtr& plan, std::vector<SelectionContext>* out) {
  if (!plan) return;
  if (plan->kind() == PlanKind::kSelect && plan->predicate()) {
    const RangeExtraction ex = ExtractRanges(plan->predicate());
    for (const ColumnRange& r : ex.ranges) {
      if (!std::isfinite(r.lo) && !std::isfinite(r.hi)) continue;
      SelectionContext ctx;
      ctx.selected_input = plan->child(0);
      ctx.column = r.column;
      ctx.range = Interval(r.lo, r.hi, r.lo_inclusive, r.hi_inclusive);
      out->push_back(std::move(ctx));
    }
  }
  for (const PlanPtr& c : plan->children()) ExtractSelections(c, out);
}

}  // namespace

std::vector<PlanPtr> EnumerateViewCandidates(const PlanPtr& query) {
  std::vector<PlanPtr> out;
  Enumerate(query, &out);
  return out;
}

std::vector<SelectionContext> ExtractSelectionContexts(const PlanPtr& query) {
  std::vector<SelectionContext> out;
  ExtractSelections(query, &out);
  return out;
}

}  // namespace deepsea
