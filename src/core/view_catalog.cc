#include "core/view_catalog.h"

#include <cassert>

#include "common/str_util.h"

namespace deepsea {

FragmentStats* PartitionState::Find(const Interval& iv) {
  for (FragmentStats& f : fragments) {
    if (f.interval == iv) return &f;
  }
  return nullptr;
}

const FragmentStats* PartitionState::Find(const Interval& iv) const {
  for (const FragmentStats& f : fragments) {
    if (f.interval == iv) return &f;
  }
  return nullptr;
}

FragmentStats* PartitionState::Track(const Interval& iv, double est_size_bytes) {
  FragmentStats* existing = Find(iv);
  if (existing != nullptr) return existing;
  FragmentStats f;
  f.interval = iv;
  f.size_bytes = est_size_bytes;
  fragments.push_back(std::move(f));
  return &fragments.back();
}

std::vector<Interval> PartitionState::MaterializedIntervals() const {
  std::vector<Interval> out;
  for (const FragmentStats& f : fragments) {
    if (f.materialized) out.push_back(f.interval);
  }
  return out;
}

std::vector<Interval> PartitionState::TrackedIntervals() const {
  std::vector<Interval> out;
  out.reserve(fragments.size());
  for (const FragmentStats& f : fragments) out.push_back(f.interval);
  return out;
}

double PartitionState::MaterializedBytes() const {
  double total = 0.0;
  for (const FragmentStats& f : fragments) {
    if (f.materialized) total += f.size_bytes;
  }
  return total;
}

bool PartitionState::AnyMaterialized() const {
  for (const FragmentStats& f : fragments) {
    if (f.materialized) return true;
  }
  return false;
}

bool ViewInfo::InPool() const {
  if (whole_materialized) return true;
  for (const auto& [_, p] : partitions) {
    if (p.AnyMaterialized()) return true;
  }
  return false;
}

double ViewInfo::MaterializedBytes() const {
  double total = whole_materialized ? stats.size_bytes : 0.0;
  for (const auto& [_, p] : partitions) total += p.MaterializedBytes();
  return total;
}

PartitionState* ViewInfo::GetPartition(const std::string& attr) {
  auto it = partitions.find(attr);
  return it == partitions.end() ? nullptr : &it->second;
}

const PartitionState* ViewInfo::GetPartition(const std::string& attr) const {
  auto it = partitions.find(attr);
  return it == partitions.end() ? nullptr : &it->second;
}

PartitionState* ViewInfo::EnsurePartition(const std::string& attr,
                                          const Interval& domain) {
  auto it = partitions.find(attr);
  if (it != partitions.end()) return &it->second;
  PartitionState p;
  p.attr = attr;
  p.domain = domain;
  auto [inserted, _] = partitions.emplace(attr, std::move(p));
  return &inserted->second;
}

ViewInfo* ViewCatalog::Track(const PlanPtr& plan, const PlanSignature& signature) {
  const std::string canonical = signature.ToString();
  auto it = by_signature_.find(canonical);
  if (it != by_signature_.end()) return it->second;
  auto view = std::make_unique<ViewInfo>();
  view->id = StrFormat("v%d", next_id_++);
  view->plan = plan;
  view->signature = signature;
  ViewInfo* raw = view.get();
  views_.push_back(std::move(view));
  by_signature_.emplace(canonical, raw);
  by_id_.emplace(raw->id, raw);
  return raw;
}

ViewInfo* ViewCatalog::Adopt(std::unique_ptr<ViewInfo> view) {
  assert(view->id == StrFormat("v%d", next_id_) &&
         "adopted view id must match the id Track() would assign");
  ++next_id_;
  ViewInfo* raw = view.get();
  views_.push_back(std::move(view));
  by_signature_.emplace(raw->signature.ToString(), raw);
  by_id_.emplace(raw->id, raw);
  return raw;
}

ViewInfo* ViewCatalog::FindBySignature(const std::string& canonical) {
  auto it = by_signature_.find(canonical);
  return it == by_signature_.end() ? nullptr : it->second;
}

ViewInfo* ViewCatalog::Get(const std::string& id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

const ViewInfo* ViewCatalog::Get(const std::string& id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<ViewInfo*> ViewCatalog::AllViews() {
  std::vector<ViewInfo*> out;
  out.reserve(views_.size());
  for (auto& v : views_) out.push_back(v.get());
  return out;
}

std::vector<const ViewInfo*> ViewCatalog::AllViews() const {
  std::vector<const ViewInfo*> out;
  out.reserve(views_.size());
  for (const auto& v : views_) out.push_back(v.get());
  return out;
}

double ViewCatalog::PoolBytes() const {
  double total = 0.0;
  for (const auto& v : views_) {
    total += v->cached_pool_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

double ViewCatalog::PoolBytesExact() const {
  double total = 0.0;
  for (const auto& v : views_) total += v->MaterializedBytes();
  return total;
}

}  // namespace deepsea
