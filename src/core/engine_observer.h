#ifndef DEEPSEA_CORE_ENGINE_OBSERVER_H_
#define DEEPSEA_CORE_ENGINE_OBSERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/interval.h"
#include "core/view_catalog.h"
#include "plan/plan.h"

namespace deepsea {

class QueryContext;
struct QueryReport;

/// The pipeline stages of DeepSeaEngine::ProcessQuery (Algorithm 1).
enum class EngineStage {
  kRewrite,     ///< rewriting enumeration + Q_best choice (lines 1-3)
  kCandidates,  ///< view/partition candidate generation (lines 4-5)
  kSelection,   ///< filtering + greedy knapsack planning (Sections 7.2-7.3)
  kApply,       ///< decision application: materialize/evict (lines 6-8)
  kMerge,       ///< fragment-merge maintenance pass (Section 11 extension)
  kPhysical,    ///< physical sample execution (correctness path)
};

const char* EngineStageName(EngineStage stage);

/// Observation seam of the query pipeline. The engine (and its
/// PoolManager) invoke these hooks at stage boundaries and on every
/// pool mutation. Implementations must not mutate engine state; all
/// arguments are only valid for the duration of the call.
///
/// Tenancy: every hook identifies the tenant whose query triggered it —
/// either explicitly (`tenant` parameter, "" for a single-tenant
/// engine) or via the QueryContext / QueryReport argument.
///
/// Locking: pool-mutation hooks (OnMaterialize*/OnEvict/OnMerge/
/// OnFault/OnRetry/OnDegrade) and the kApply/kMerge/kPhysical stage
/// hooks fire inside the pool's exclusive commit section — serialized
/// by the commit lock across engines. OnQueryStart and the *planning*
/// stage hooks (kRewrite/kCandidates/kSelection), however, fire while
/// planning runs under the commit lock in shared mode, so two engines
/// sharing one observer may invoke them concurrently from different
/// threads; such an observer must synchronize those hooks itself (the
/// per-engine-observer pattern, or an external turnstile as in
/// tests/multitenant_harness.h, needs nothing). When epoch validation
/// fails and the engine replans under the exclusive lock, the planning
/// stage hooks fire a second time for the same query (OnQueryStart
/// does not repeat); per-stage aggregates then count the replanned
/// stages twice, mirroring the work actually done.
///
/// Timing semantics of OnStageEnd:
///  * `sim_seconds` is the simulated time the stage charged to the
///    current query (0 for stages that charge nothing);
///  * `wall_seconds` is host wall-clock time spent inside the stage
///    (measured only while an observer is attached, so benches without
///    observers pay no timing overhead).
///
/// The default implementations are all no-ops, so subclasses override
/// only what they consume. See exp/trace.h for TraceObserver, which
/// feeds the CSV telemetry used by the experiment harnesses.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void OnQueryStart(int64_t query_index, const PlanPtr& query,
                            const std::string& tenant) {
    (void)query_index;
    (void)query;
    (void)tenant;
  }
  virtual void OnStageStart(EngineStage stage, const QueryContext& ctx) {
    (void)stage;
    (void)ctx;
  }
  virtual void OnStageEnd(EngineStage stage, const QueryContext& ctx,
                          double sim_seconds, double wall_seconds) {
    (void)stage;
    (void)ctx;
    (void)sim_seconds;
    (void)wall_seconds;
  }

  /// A whole view (NP-style) or initial partitioned creation entered the
  /// pool; `sim_seconds` is the charged materialization time. `tenant`
  /// is the tenant whose commit performed the mutation.
  virtual void OnMaterializeView(const ViewInfo& view, double sim_seconds,
                                 const std::string& tenant) {
    (void)view;
    (void)sim_seconds;
    (void)tenant;
  }
  /// One fragment entered the pool (initial fragment or refinement).
  virtual void OnMaterializeFragment(const ViewInfo& view,
                                     const std::string& attr,
                                     const Interval& interval, double bytes,
                                     const std::string& tenant) {
    (void)view;
    (void)attr;
    (void)interval;
    (void)bytes;
    (void)tenant;
  }
  /// A fragment left the pool. `attr` is empty for whole-view eviction.
  /// Fired for policy evictions and also for parents removed by
  /// horizontal splits and merge passes. `tenant` is the committing
  /// tenant (whose reconfiguration displaced the content), not
  /// necessarily the tenant that earned the evicted fragment its hits —
  /// use FragmentStats::DecayedHitsByTenant to see who loses coverage.
  virtual void OnEvict(const ViewInfo& view, const std::string& attr,
                       const Interval& interval, double bytes,
                       const std::string& tenant) {
    (void)view;
    (void)attr;
    (void)interval;
    (void)bytes;
    (void)tenant;
  }
  /// Two adjacent fragments were merged into `merged` (Section 11).
  virtual void OnMerge(const ViewInfo& view, const std::string& attr,
                       const Interval& merged, double bytes,
                       const std::string& tenant) {
    (void)view;
    (void)attr;
    (void)merged;
    (void)bytes;
    (void)tenant;
  }

  // --- fault handling (see DESIGN.md, "Failure model and recovery") ---

  /// A decision-execution attempt failed and was rolled back. `stage`
  /// is kApply or kMerge; `view_id` is the view whose action failed
  /// ("" when unattributed, e.g. a merge-pass write); `attempt` counts
  /// from 0. Fired once per failed attempt, before any OnRetry /
  /// OnDegrade that follows from it.
  virtual void OnFault(EngineStage stage, const std::string& view_id,
                       const Status& status, int attempt,
                       const std::string& tenant) {
    (void)stage;
    (void)view_id;
    (void)status;
    (void)attempt;
    (void)tenant;
  }
  /// The engine is about to re-execute a decision that failed with a
  /// transient fault; `next_attempt` is the attempt number about to run.
  virtual void OnRetry(EngineStage stage, int next_attempt,
                       const std::string& tenant) {
    (void)stage;
    (void)next_attempt;
    (void)tenant;
  }
  /// The engine abandoned the decision (permanent fault, or transient
  /// retries exhausted) and degraded: the query is answered from
  /// already-materialized state, the pool keeps its pre-Apply contents.
  virtual void OnDegrade(EngineStage stage, const std::string& view_id,
                         const Status& status, const std::string& tenant) {
    (void)stage;
    (void)view_id;
    (void)status;
    (void)tenant;
  }

  virtual void OnQueryEnd(const QueryReport& report) { (void)report; }
};

/// Fan-out observer: forwards every hook to each attached sink in
/// attachment order, so independent sinks (say a TraceObserver for the
/// offline CSV and a MetricsObserver for the live scrape) can watch one
/// engine through its single observer slot. The multicast adds no
/// synchronization of its own — each hook inherits exactly the locking
/// context documented above, and each sink must individually satisfy
/// the concurrency contract for the hooks it consumes. The sink list is
/// fixed topology: Add() before the multicast is attached to an engine,
/// never while queries are in flight. Sinks must outlive the multicast
/// or the engine must be detached first.
class MulticastObserver : public EngineObserver {
 public:
  MulticastObserver() = default;
  explicit MulticastObserver(std::vector<EngineObserver*> sinks)
      : sinks_(std::move(sinks)) {}

  void Add(EngineObserver* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  size_t size() const { return sinks_.size(); }

  void OnQueryStart(int64_t query_index, const PlanPtr& query,
                    const std::string& tenant) override;
  void OnStageStart(EngineStage stage, const QueryContext& ctx) override;
  void OnStageEnd(EngineStage stage, const QueryContext& ctx,
                  double sim_seconds, double wall_seconds) override;
  void OnMaterializeView(const ViewInfo& view, double sim_seconds,
                         const std::string& tenant) override;
  void OnMaterializeFragment(const ViewInfo& view, const std::string& attr,
                             const Interval& interval, double bytes,
                             const std::string& tenant) override;
  void OnEvict(const ViewInfo& view, const std::string& attr,
               const Interval& interval, double bytes,
               const std::string& tenant) override;
  void OnMerge(const ViewInfo& view, const std::string& attr,
               const Interval& merged, double bytes,
               const std::string& tenant) override;
  void OnFault(EngineStage stage, const std::string& view_id,
               const Status& status, int attempt,
               const std::string& tenant) override;
  void OnRetry(EngineStage stage, int next_attempt,
               const std::string& tenant) override;
  void OnDegrade(EngineStage stage, const std::string& view_id,
                 const Status& status, const std::string& tenant) override;
  void OnQueryEnd(const QueryReport& report) override;

 private:
  std::vector<EngineObserver*> sinks_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_ENGINE_OBSERVER_H_
