#ifndef DEEPSEA_CORE_SHARED_POOL_H_
#define DEEPSEA_CORE_SHARED_POOL_H_

#include <utility>

#include "catalog/table.h"
#include "core/engine_options.h"
#include "core/pool_manager.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"

namespace deepsea {

/// The infrastructure several tenant engines share: one EngineOptions
/// (a single S_max and cost model governs the whole pool), the cluster
/// and cost estimator the pool charges against, and the PoolManager
/// itself. Construct one SharedPool, then one DeepSeaEngine per tenant
/// over it:
///
///   SharedPool shared(&catalog, options);
///   DeepSeaEngine alice(&catalog, &shared, "alice");
///   DeepSeaEngine bob(&catalog, &shared, "bob");
///
/// The engines may then process queries from different threads; their
/// commits serialize on the pool's internal lock (see PoolManager).
/// The SharedPool and catalog must outlive every engine attached.
class SharedPool {
 public:
  SharedPool(Catalog* catalog, EngineOptions options)
      : options_(std::move(options)),
        cluster_(options_.cluster),
        estimator_(&cluster_, catalog, options_.estimator),
        pool_(catalog, &options_, &cluster_, &estimator_) {}

  SharedPool(const SharedPool&) = delete;
  SharedPool& operator=(const SharedPool&) = delete;

  const EngineOptions& options() const { return options_; }
  PoolManager* pool() { return &pool_; }
  const PoolManager& pool() const { return pool_; }

 private:
  EngineOptions options_;
  ClusterModel cluster_;
  PlanCostEstimator estimator_;
  PoolManager pool_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_SHARED_POOL_H_
