#ifndef DEEPSEA_CORE_REWRITE_PLANNER_H_
#define DEEPSEA_CORE_REWRITE_PLANNER_H_

#include <memory>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "core/engine_options.h"
#include "core/query_context.h"
#include "core/view_catalog.h"
#include "rewrite/filter_tree.h"
#include "rewrite/matcher.h"
#include "sim/cost_model.h"

namespace deepsea {

/// Stage 1 of the pipeline (Algorithm 1 lines 1-3): computes the
/// conventional base plan, enumerates rewritings over the tracked views
/// (owning the ViewMatcher), folds the rewritings into the view and
/// fragment statistics, and picks Q_best — the cheapest executable
/// rewriting if it beats the base plan. The chosen fragment cover is
/// published on the QueryContext for later repartitioning credit.
class RewritePlanner {
 public:
  RewritePlanner(Catalog* catalog, const PlanCostEstimator* estimator,
                 ViewCatalog* views, FilterTree* index)
      : catalog_(catalog), estimator_(estimator), views_(views) {
    matcher_ = std::make_unique<ViewMatcher>(views, index, catalog, estimator);
  }

  /// Selection pushdown + cost of the conventional plan. Runs for every
  /// strategy (including plain Hive); seeds report base/best/map_tasks
  /// and ctx->base_plan / ctx->executed_plan.
  Status PlanBase(QueryContext* ctx, QueryReport* report);

  /// Rewriting enumeration, statistics update, and the Q_best choice.
  Status PlanBest(QueryContext* ctx, QueryReport* report);

 private:
  /// Algorithm 1 line 2: every rewriting is evidence. The best rewriting
  /// per view records a benefit event; every tracked fragment
  /// overlapping the query range records a hit (Section 7.1). Both are
  /// stamped with `tenant` (the querying tenant's interned ordinal) for
  /// per-tenant benefit attribution under a shared pool. All writes go
  /// into the query's PlanningDelta — planning runs under the shared
  /// lock and must not touch shared statistics.
  void UpdateStatsFromRewritings(const std::vector<Rewriting>& rewritings,
                                 double base_seconds, double t_now,
                                 int32_t tenant, PlanningDelta* delta);

  Catalog* catalog_;
  const PlanCostEstimator* estimator_;
  ViewCatalog* views_;
  std::unique_ptr<ViewMatcher> matcher_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_REWRITE_PLANNER_H_
