#include "core/candidate_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "core/partition_match.h"
#include "core/view_sizing.h"
#include "plan/signature.h"

namespace deepsea {

void CandidateGenerator::RegisterViewCandidates(const PlanPtr& candidate_plan,
                                                double base_seconds,
                                                QueryContext* ctx) {
  ctx->view_candidates.clear();
  PlanningDelta* delta = ctx->delta();
  assert(delta != nullptr);
  Catalog* pcat = delta->planning_catalog();
  const double t_now = ctx->t_now();
  const std::vector<SelectionContext> contexts =
      ExtractSelectionContexts(candidate_plan);
  for (const PlanPtr& sp : EnumerateViewCandidates(candidate_plan)) {
    auto sig = ComputeSignature(sp, *pcat);
    if (!sig.ok()) continue;
    const bool known = delta->FindView(sig->ToString()) != nullptr;
    ViewInfo* view = delta->TrackView(sp, *sig);
    if (!known) {
      pool_->RegisterViewTablePlanning(view, delta);
      if (!pcat->Contains(view->id)) continue;  // unsupported plan shape
      delta->DeferIndexInsert(view->signature, view->id);
    }
    const SelectionContext* sel = nullptr;
    for (const SelectionContext& c : contexts) {
      if (c.selected_input.get() == sp.get()) {
        sel = &c;
        break;
      }
    }
    ctx->view_candidates.push_back({view, sel != nullptr});
    // ADDCANDIDATES "initial rough estimate" of benefits (Alg. 1 line
    // 5): a view that directly feeds a selection of this query could
    // have answered it; seed one benefit event with the estimated
    // saving of reading only the selected slice of the view. Aggregate
    // views are not seeded — their signatures embed the selection
    // constants, so optimism would materialize one-shot query caches.
    if (!known && sel != nullptr && sp->kind() != PlanKind::kAggregate) {
      double fraction = 1.0;
      auto domain = ColumnDomain(*pcat, sel->column);
      if (domain.ok()) {
        const auto clamped = sel->range.Intersect(*domain);
        if (clamped.has_value()) {
          fraction = RangeFractionOfBaseColumn(*pcat, sel->column, *clamped);
        }
      }
      const double read_bytes = fraction * view->stats.size_bytes;
      const double est_reuse = cluster_->MapPhaseSeconds({read_bytes}) +
                               2.0 * cluster_->config().job_startup_seconds +
                               cluster_->ShuffleSeconds(read_bytes);
      const double saving = base_seconds - est_reuse;
      if (saving > 0.0) delta->RecordUse(view, t_now, saving, ctx->tenant_ord());
    }
  }
}

void CandidateGenerator::RegisterPartitionCandidates(QueryContext* ctx) {
  ctx->fragment_candidates.clear();
  if (options_->strategy == StrategyKind::kNoPartition) return;
  PlanningDelta* delta = ctx->delta();
  assert(delta != nullptr);
  Catalog* pcat = delta->planning_catalog();
  const double t_now = ctx->t_now();
  for (const SelectionContext& sel : ExtractSelectionContexts(ctx->query)) {
    auto sig = ComputeSignature(sel.selected_input, *pcat);
    if (!sig.ok()) continue;
    ViewInfo* view = delta->FindView(sig->ToString());
    if (view == nullptr) continue;  // selections over non-candidate shapes
    auto domain = ColumnDomain(*pcat, sel.column);
    if (!domain.ok()) continue;
    PartitionState* part = delta->EnsurePartition(view, sel.column, *domain);
    if (part->pending.empty()) part->pending = {*domain};
    // Attach the derived histogram to the view table once per attribute
    // so fragment sizes reflect the data distribution.
    auto view_table = pcat->Get(view->id);
    if (view_table.ok() && (*view_table)->GetHistogram(sel.column) == nullptr) {
      auto hist = DeriveViewHistogram(*pcat, *options_, *view, sel.column);
      if (hist.ok()) delta->AttachHistogram(*view, sel.column, *hist);
    }
    const auto clamped = sel.range.Intersect(*domain);
    if (!clamped.has_value()) continue;
    const Interval range = *clamped;
    // Snapped variant used for fragment-boundary generation (hits keep
    // the true range for distribution fidelity).
    Interval gen_range = range;
    if (options_->candidate_snap_fraction > 0.0) {
      const double step = options_->candidate_snap_fraction * domain->Width();
      if (step > 0.0) {
        gen_range.lo = Clamp(std::floor(range.lo / step) * step, domain->lo,
                             domain->hi);
        gen_range.hi = Clamp(std::ceil(range.hi / step) * step, domain->lo,
                             domain->hi);
        gen_range.lo_inclusive = true;
        gen_range.hi_inclusive = true;
      }
    }

    // The query range counts as covered when the materialized fragments
    // of the partition can answer it (partial materialization under a
    // tight pool may leave gaps even after the view entered the pool).
    const std::vector<Interval> mats = part->MaterializedIntervals();
    const bool covered =
        !mats.empty() && PartitionMatch(mats, gen_range).ok();
    if (!covered) {
      // EquiDepth partitions by histogram at creation time; selection
      // endpoints are irrelevant to it.
      if (options_->strategy == StrategyKind::kEquiDepth) continue;
      // Refine the pending (planned) fragmentation at the range
      // endpoints (Definition 7, unmaterialized case). Pieces that are
      // already materialized stay untouched.
      std::vector<Interval> next;
      for (const Interval& f : part->pending) {
        const FragmentStats* fstat = part->Find(f);
        const bool frozen = fstat != nullptr && fstat->materialized;
        const std::vector<Interval> pieces =
            frozen ? std::vector<Interval>{}
                   : GeneratePartitionCandidates({f}, gen_range);
        if (pieces.empty()) {
          next.push_back(f);
          continue;
        }
        // Splitting: pieces partition f (plus f's covered middle).
        for (const Interval& p : pieces) next.push_back(p);
        // Track stats for every piece; pieces overlapping the query
        // range count the current query as a hit.
        for (const Interval& p : pieces) {
          FragmentStats* tracked =
              delta->TrackFragment(part, p, /*est_size_bytes=*/0.0);
          if (p.Overlaps(range)) {
            tracked->RecordHit(t_now, range, ctx->tenant_ord());
          }
        }
      }
      part->pending = std::move(next);
      continue;
    }
    // Post-creation refinement candidates (Definition 7 cases over
    // P(V, A)): only strategies that repartition generate them.
    if (options_->strategy != StrategyKind::kDeepSea) continue;
    const std::vector<Interval> existing = part->MaterializedIntervals();
    for (const Interval& cand : GeneratePartitionCandidates(existing, gen_range)) {
      const double est_bytes = EstimateCandidateBytes(*part, cand);
      if (options_->enforce_block_lower_bound &&
          est_bytes < options_->cluster.block_bytes) {
        continue;  // fragments below one block are never created
      }
      FragmentStats* fstat = delta->TrackFragment(part, cand, est_bytes);
      if (fstat->materialized) continue;
      fstat->size_bytes = est_bytes;
      if (cand.Overlaps(range)) fstat->RecordHit(t_now, range, ctx->tenant_ord());
      // COST(I_cand): read the overlapping materialized fragments,
      // write the new fragment (Section 7.2; w_write >> w_read).
      std::vector<double> read_files;
      for (const FragmentStats& f : part->fragments) {
        if (f.materialized && f.interval.Overlaps(cand)) {
          read_files.push_back(f.size_bytes);
        }
      }
      FragmentCandidate fc;
      fc.view = view;
      fc.attr = sel.column;
      fc.interval = cand;
      fc.est_bytes = est_bytes;
      fc.est_cost_seconds = cluster_->MapPhaseSeconds(read_files) +
                            cluster_->PartitionedWriteSeconds(est_bytes, 1);
      // Marginal read saving: current cover of the candidate's interval
      // vs reading the candidate alone.
      double cover_seconds;
      auto cover = PartitionMatchIntervals(existing, cand);
      if (cover.ok()) {
        std::vector<double> cover_bytes;
        for (const Interval& c : *cover) {
          const FragmentStats* cf = part->Find(c);
          cover_bytes.push_back(cf != nullptr ? cf->size_bytes : 0.0);
        }
        cover_seconds = cluster_->MapPhaseSeconds(cover_bytes);
      } else {
        cover_seconds = cluster_->MapPhaseSeconds({view->stats.size_bytes});
      }
      fc.per_hit_saving_seconds =
          std::max(0.0, cover_seconds - cluster_->MapPhaseSeconds({est_bytes}));
      ctx->fragment_candidates.push_back(std::move(fc));
    }
  }
}

}  // namespace deepsea
