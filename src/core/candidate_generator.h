#ifndef DEEPSEA_CORE_CANDIDATE_GENERATOR_H_
#define DEEPSEA_CORE_CANDIDATE_GENERATOR_H_

#include "catalog/table.h"
#include "core/engine_options.h"
#include "core/pool_manager.h"
#include "core/query_context.h"
#include "core/view_catalog.h"
#include "rewrite/filter_tree.h"
#include "sim/cluster.h"

namespace deepsea {

/// Stage 2 of the pipeline (Algorithm 1 lines 4-5): enumerates the
/// query's view candidates (Definition 6) and partition candidates
/// (Definition 7), registers new views, seeds their initial rough
/// benefit estimates, and refines pending fragmentations at the query's
/// range endpoints. Results land in QueryContext::view_candidates /
/// fragment_candidates for the SelectionPlanner.
///
/// All registrations are buffered in the query's PlanningDelta (new
/// views, view tables via PoolManager::RegisterViewTablePlanning,
/// rewrite-index inserts, partition/fragment tracking, histogram
/// attachments): this stage runs under the shared lock and publishes
/// nothing until PoolManager::Apply folds the delta.
class CandidateGenerator {
 public:
  CandidateGenerator(Catalog* catalog, const EngineOptions* options,
                     const ClusterModel* cluster, ViewCatalog* views,
                     FilterTree* index, PoolManager* pool)
      : catalog_(catalog),
        options_(options),
        cluster_(cluster),
        views_(views),
        index_(index),
        pool_(pool) {}

  /// V_cand over `candidate_plan` (Q_best's plan when a view answered
  /// the query, the raw query otherwise). `base_seconds` drives the
  /// initial rough benefit seeding.
  void RegisterViewCandidates(const PlanPtr& candidate_plan,
                              double base_seconds, QueryContext* ctx);

  /// P_cand over the query's selection contexts (always the raw query:
  /// they drive refinement of the serving view).
  void RegisterPartitionCandidates(QueryContext* ctx);

 private:
  Catalog* catalog_;
  const EngineOptions* options_;
  const ClusterModel* cluster_;
  ViewCatalog* views_;
  FilterTree* index_;
  PoolManager* pool_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_CANDIDATE_GENERATOR_H_
