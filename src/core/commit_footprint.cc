#include "core/commit_footprint.h"

#include <algorithm>
#include <tuple>

namespace deepsea {

namespace {

bool Contains(const std::vector<std::string>& sorted_or_not,
              const std::string& key) {
  return std::find(sorted_or_not.begin(), sorted_or_not.end(), key) !=
         sorted_or_not.end();
}

/// Write touches partition (view, attr)? Honors the "" whole-view
/// wildcard on the write side.
bool WritesPartition(const CommitFootprint& write, const std::string& view,
                     const std::string& attr) {
  for (const auto& [wv, wa] : write.partitions) {
    if (wv != view) continue;
    if (wa.empty() || attr.empty() || wa == attr) return true;
  }
  return false;
}

}  // namespace

void CommitFootprint::Merge(const CommitFootprint& other) {
  all = all || other.all;
  catalog_counter = catalog_counter || other.catalog_counter;
  catalog_sigs.insert(catalog_sigs.end(), other.catalog_sigs.begin(),
                      other.catalog_sigs.end());
  index_probes.insert(index_probes.end(), other.index_probes.begin(),
                      other.index_probes.end());
  index_inserts.insert(index_inserts.end(), other.index_inserts.begin(),
                       other.index_inserts.end());
  views.insert(views.end(), other.views.begin(), other.views.end());
  partitions.insert(partitions.end(), other.partitions.begin(),
                    other.partitions.end());
  fragments.insert(fragments.end(), other.fragments.begin(),
                   other.fragments.end());
}

void CommitFootprint::RemapViewIds(
    const std::vector<std::pair<std::string, std::string>>& remap) {
  if (remap.empty()) return;
  auto rename = [&](std::string* id) {
    for (const auto& [from, to] : remap) {
      if (*id == from) {
        *id = to;
        return;
      }
    }
  };
  for (std::string& v : views) rename(&v);
  for (auto& [v, a] : partitions) {
    (void)a;
    rename(&v);
  }
  for (FragRange& f : fragments) rename(&f.view);
}

void CommitFootprint::Normalize() {
  std::sort(catalog_sigs.begin(), catalog_sigs.end());
  catalog_sigs.erase(std::unique(catalog_sigs.begin(), catalog_sigs.end()),
                     catalog_sigs.end());
  auto normalize_sigs = [](std::vector<SigEntry>* entries) {
    std::sort(entries->begin(), entries->end(),
              [](const SigEntry& a, const SigEntry& b) {
                return a.canonical < b.canonical;
              });
    entries->erase(std::unique(entries->begin(), entries->end(),
                               [](const SigEntry& a, const SigEntry& b) {
                                 return a.canonical == b.canonical;
                               }),
                   entries->end());
  };
  normalize_sigs(&index_probes);
  normalize_sigs(&index_inserts);
  std::sort(views.begin(), views.end());
  views.erase(std::unique(views.begin(), views.end()), views.end());
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());
  auto frag_key = [](const FragRange& f) {
    return std::make_tuple(f.view, f.attr, f.range.lo, f.range.hi,
                           f.range.lo_inclusive, f.range.hi_inclusive);
  };
  std::sort(fragments.begin(), fragments.end(),
            [&](const FragRange& a, const FragRange& b) {
              return frag_key(a) < frag_key(b);
            });
  fragments.erase(std::unique(fragments.begin(), fragments.end(),
                              [&](const FragRange& a, const FragRange& b) {
                                return frag_key(a) == frag_key(b);
                              }),
                  fragments.end());
}

bool FootprintsConflict(const CommitFootprint& read,
                        const CommitFootprint& write) {
  if (read.all || write.all) {
    // An `all` write invalidates every plan; a plan that read `all`
    // (none do today, but the symmetry is cheap) conflicts with any
    // non-empty write.
    return read.all ? !write.Empty() : true;
  }
  if (read.catalog_counter && write.catalog_counter) return true;
  for (const std::string& sig : read.catalog_sigs) {
    if (Contains(write.catalog_sigs, sig)) return true;
  }
  // Rewrite-index probes vs inserts: an inserted view invalidates a
  // probing plan only when it could have answered one of the probed
  // subplans — exact signature match, or a strictly wider view whose
  // signature subsumes the probe.
  for (const CommitFootprint::SigEntry& probe : read.index_probes) {
    for (const CommitFootprint::SigEntry& insert : write.index_inserts) {
      if (probe.canonical == insert.canonical) return true;
      if (probe.sig != nullptr && insert.sig != nullptr &&
          SignatureSubsumes(*insert.sig, *probe.sig).matches) {
        return true;
      }
    }
  }
  for (const std::string& v : read.views) {
    if (Contains(write.views, v)) return true;
  }
  // Partition-structure reads vs structure writes.
  for (const auto& [rv, ra] : read.partitions) {
    if (WritesPartition(write, rv, ra)) return true;
  }
  // Fragment reads: overlapped by a fragment write, or the partition's
  // structure changed under them.
  for (const CommitFootprint::FragRange& r : read.fragments) {
    if (WritesPartition(write, r.view, r.attr)) return true;
    for (const CommitFootprint::FragRange& w : write.fragments) {
      if (r.view == w.view && r.attr == w.attr && r.range.Overlaps(w.range)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace deepsea
