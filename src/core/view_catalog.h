#ifndef DEEPSEA_CORE_VIEW_CATALOG_H_
#define DEEPSEA_CORE_VIEW_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/interval.h"
#include "core/view_stats.h"
#include "plan/plan.h"
#include "plan/signature.h"

namespace deepsea {

/// State of one tracked partition of a view on one attribute: the
/// paper's PSTAT(V, A) (all tracked fragment intervals, with per-
/// fragment statistics) where the `materialized` flags identify the
/// subset P(V, A) currently in the pool.
struct PartitionState {
  std::string attr;
  Interval domain;
  std::vector<FragmentStats> fragments;

  /// The planned (non-overlapping) fragmentation accumulated from
  /// selection endpoints *before* the partition is first materialized
  /// (Definition 7 case "view not materialized yet": split the potential
  /// fragments of PSTAT). Becomes the initial fragmentation at creation.
  /// Initialized to {domain} on first use.
  std::vector<Interval> pending;

  /// Pointer to the tracked fragment with exactly this interval, or
  /// nullptr. Pointers are invalidated by adding fragments.
  FragmentStats* Find(const Interval& iv);
  const FragmentStats* Find(const Interval& iv) const;

  /// Adds a fragment to tracking if absent; returns the tracked entry.
  FragmentStats* Track(const Interval& iv, double est_size_bytes);

  std::vector<Interval> MaterializedIntervals() const;
  std::vector<Interval> TrackedIntervals() const;
  double MaterializedBytes() const;
  bool AnyMaterialized() const;
};

/// Everything DeepSea knows about one view (materialized or candidate):
/// its defining plan, signature, statistics, and tracked partitions.
struct ViewInfo {
  std::string id;       ///< stable name, also the catalog table name
  PlanPtr plan;         ///< defining subquery (no partition selection)
  PlanSignature signature;
  ViewStats stats;
  /// True when the full, unpartitioned view is materialized (the NP
  /// baseline materializes views this way).
  bool whole_materialized = false;
  std::map<std::string, PartitionState> partitions;

  // --- fault quarantine (runtime-only; not persisted by SaveState:
  //     quarantine reflects the health of the *current* storage, so a
  //     restarted engine probes afresh) ---

  /// Permanent decision failures attributed to this view since the last
  /// successful materialization (reset on success and on quarantine).
  int fault_count = 0;
  /// Commit-clock time until which SelectionPlanner skips this view's
  /// candidates (0 = not quarantined). Re-admitted once the pool clock
  /// reaches this value; existing materialized content is unaffected.
  int64_t quarantined_until = 0;

  bool Quarantined(int64_t clock_now) const {
    return clock_now < quarantined_until;
  }

  /// In the pool = whole view or at least one fragment materialized.
  bool InPool() const;

  /// Bytes currently occupied in the pool by this view (fresh walk of
  /// the fragment lists — requires the view to be stable, i.e. the
  /// caller's commit owns it).
  double MaterializedBytes() const;

  /// Cached copy of MaterializedBytes(), refreshed by every pool
  /// primitive that changes it (materialize / evict / merge / rollback
  /// / state load). Atomic so ViewCatalog::PoolBytes() can be sampled
  /// from inside a sharded commit while foreign commits mutate their
  /// own views concurrently.
  std::atomic<double> cached_pool_bytes{0.0};
  void RefreshCachedBytes() {
    cached_pool_bytes.store(MaterializedBytes(), std::memory_order_relaxed);
  }

  PartitionState* GetPartition(const std::string& attr);
  const PartitionState* GetPartition(const std::string& attr) const;
  PartitionState* EnsurePartition(const std::string& attr, const Interval& domain);
};

/// Registry of all tracked views keyed by the canonical string of their
/// defining signature. This is the paper's STAT = (VSTAT, PSTAT, Sigma)
/// of Definition 5; pool membership is carried on the entries.
class ViewCatalog {
 public:
  /// Returns the tracked view for `signature`, creating it (with a fresh
  /// id "v<N>") when unseen. `plan` is stored on first track.
  ViewInfo* Track(const PlanPtr& plan, const PlanSignature& signature);

  /// Adopts a view allocated outside the catalog (a PlanningDelta's
  /// speculative Track). The view's id must equal the id Track() would
  /// assign next — callers predict it via peek_next_id(), and commit-
  /// epoch validation guarantees the prediction still holds. The
  /// ViewInfo's address is preserved, so pointers captured during
  /// planning remain valid after adoption.
  ViewInfo* Adopt(std::unique_ptr<ViewInfo> view);

  /// Lookup by signature canonical string; nullptr when untracked.
  ViewInfo* FindBySignature(const std::string& canonical);

  ViewInfo* Get(const std::string& id);
  const ViewInfo* Get(const std::string& id) const;

  std::vector<ViewInfo*> AllViews();
  std::vector<const ViewInfo*> AllViews() const;

  size_t size() const { return views_.size(); }

  /// The id Track() will assign to the next unseen signature ("v<N>").
  /// Lets state loading predict ids while validating, before applying.
  int peek_next_id() const { return next_id_; }

  /// Total pool bytes S(C) across all views. Sums the per-view cached
  /// byte counters (race-free from inside any commit); bit-identical to
  /// PoolBytesExact() whenever the caches are current.
  double PoolBytes() const;

  /// Total pool bytes by a fresh walk of every fragment list. Requires
  /// a quiescent pool (debug cross-check for the caches).
  double PoolBytesExact() const;

 private:
  std::vector<std::unique_ptr<ViewInfo>> views_;
  std::map<std::string, ViewInfo*> by_signature_;
  std::map<std::string, ViewInfo*> by_id_;
  int next_id_ = 1;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_VIEW_CATALOG_H_
