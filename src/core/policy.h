#ifndef DEEPSEA_CORE_POLICY_H_
#define DEEPSEA_CORE_POLICY_H_

#include <algorithm>
#include <string>

#include "core/decay.h"
#include "core/view_stats.h"

namespace deepsea {

/// Materialization / partitioning strategies compared in the paper's
/// evaluation (Section 10):
///   kHive         - vanilla engine, never materializes ("H").
///   kNoPartition  - materializes whole views, no partitioning ("NP",
///                   ReStore-like but with logical matching).
///   kEquiDepth    - materializes with a fixed equi-depth partition of
///                   k fragments, non-adaptive ("E-k").
///   kNoRefine     - DeepSea's workload-aware initial partitioning, but
///                   never repartitions afterwards ("NR").
///   kDeepSea      - full adaptive, progressive partitioning ("DS").
enum class StrategyKind {
  kHive,
  kNoPartition,
  kEquiDepth,
  kNoRefine,
  kDeepSea,
};

const char* StrategyName(StrategyKind s);

/// Cost-benefit value models for view/fragment selection (Section 10.1):
///   kDeepSea    - Phi = COST * B_decayed / S (Section 7.1).
///   kNectar     - COST / (S * dT); no accumulated benefit (Nectar's
///                 original model as characterized by the paper).
///   kNectarPlus - COST * N / (S * dT) with N the undecayed accumulated
///                 benefit (the paper's Nectar+ extension).
enum class ValueModel { kDeepSea, kNectar, kNectarPlus };

const char* ValueModelName(ValueModel m);

/// Computes a view's selection value under the given model.
double ViewValue(ValueModel model, const ViewStats& stats, double t_now,
                 const DecayFunction& dec);

/// Computes a fragment's selection value under the given model.
/// `adjusted_hits < 0` means "use the fragment's own (decayed) hits";
/// the DeepSea model passes MLE-adjusted hits here (Section 7.1).
double FragmentValue(ValueModel model, const FragmentStats& frag,
                     double view_size, double view_cost, double t_now,
                     const DecayFunction& dec, double adjusted_hits = -1.0);

/// Benefit used by the admission filter (Section 7.2): decayed for
/// DeepSea, undecayed for the Nectar variants.
double ViewBenefitForFilter(ValueModel model, const ViewStats& stats,
                            double t_now, const DecayFunction& dec);

}  // namespace deepsea

#endif  // DEEPSEA_CORE_POLICY_H_
