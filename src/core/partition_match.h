#ifndef DEEPSEA_CORE_PARTITION_MATCH_H_
#define DEEPSEA_CORE_PARTITION_MATCH_H_

#include <vector>

#include "common/result.h"
#include "core/interval.h"

namespace deepsea {

/// The paper's Algorithm 2 (Section 8.2): greedily selects a subset of
/// (possibly overlapping) fragments whose union covers the query's
/// selection range theta. Because fragments may overlap, exact minimum
/// cover is set-cover-hard; the greedy rule — among fragments covering
/// the current frontier from the left, take the one with the largest
/// lower bound — yields the classic optimal interval-cover when one
/// exists.
///
/// Returns the indices (into `fragments`) of the chosen cover in
/// left-to-right order, or NotFound when a gap prevents covering
/// `range`. An empty `range` yields an empty cover.
Result<std::vector<size_t>> PartitionMatch(const std::vector<Interval>& fragments,
                                           const Interval& range);

/// Convenience: returns the chosen intervals instead of indices.
Result<std::vector<Interval>> PartitionMatchIntervals(
    const std::vector<Interval>& fragments, const Interval& range);

}  // namespace deepsea

#endif  // DEEPSEA_CORE_PARTITION_MATCH_H_
