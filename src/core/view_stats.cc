#include "core/view_stats.h"

#include <algorithm>

namespace deepsea {
namespace {

/// True when the timed-out-prefix cursor computed at (win_t, win_tmax)
/// may be used for an evaluation at t_now: decay must be on, the
/// cutoff unchanged, and time not rewound. Expiry is monotone in t_now
/// (t_now - t > t_max stays true as t_now grows), so any t_now >=
/// win_t keeps the certified prefix expired — each skipped term is an
/// exact 0.0 under DEC's cutoff branch, making the skip bit-identical
/// to naive replay.
inline bool CursorValid(const DecayFunction& dec, double t_now, double win_t,
                        double win_tmax) {
  const DecayConfig& cfg = dec.config();
  return cfg.enabled && cfg.t_max == win_tmax && t_now >= win_t;
}

}  // namespace

double ViewStats::AccumulatedBenefit(double t_now, const DecayFunction& dec) const {
  // Decay off: DEC == 1.0 for every event, so the running undecayed sum
  // (same additions in the same order) is the answer.
  if (!dec.config().enabled) return undecayed_sum_;
  const size_t begin =
      CursorValid(dec, t_now, win_t_, win_tmax_) ? win_begin_ : 0;
  double acc = 0.0;
  for (size_t i = begin; i < events_.size(); ++i) {
    acc += events_[i].saving * dec(t_now, events_[i].time);
  }
  return acc;
}

double ViewStats::AccumulatedBenefitNaive(double t_now,
                                          const DecayFunction& dec) const {
  double acc = 0.0;
  for (const BenefitEvent& e : events_) acc += e.saving * dec(t_now, e.time);
  return acc;
}

double ViewStats::AccumulatedBenefitForTenant(double t_now,
                                              const DecayFunction& dec,
                                              int32_t tenant) const {
  double acc = 0.0;
  for (const BenefitEvent& e : events_) {
    if (e.tenant == tenant) acc += e.saving * dec(t_now, e.time);
  }
  return acc;
}

std::map<int32_t, double> ViewStats::AccumulatedBenefitByTenant(
    double t_now, const DecayFunction& dec) const {
  std::map<int32_t, double> acc;
  for (const BenefitEvent& e : events_) {
    acc[e.tenant] += e.saving * dec(t_now, e.time);
  }
  return acc;
}

double ViewStats::UndecayedBenefitNaive() const {
  double acc = 0.0;
  for (const BenefitEvent& e : events_) acc += e.saving;
  return acc;
}

double ViewStats::LastUseNaive() const {
  double last = 0.0;
  for (const BenefitEvent& e : events_) last = std::max(last, e.time);
  return last;
}

double ViewStats::Value(double t_now, const DecayFunction& dec) const {
  const double benefit = AccumulatedBenefit(t_now, dec);
  const double size = std::max(size_bytes, 1.0);
  return creation_cost * benefit / size;
}

void ViewStats::AdvanceWindow(double t_now, const DecayFunction& dec) {
  const DecayConfig& cfg = dec.config();
  if (!cfg.enabled) return;
  if (cfg.t_max != win_tmax_) {
    win_begin_ = 0;
    win_tmax_ = cfg.t_max;
    win_t_ = 0.0;
  }
  if (t_now < win_t_) return;
  while (win_begin_ < events_.size() &&
         t_now - events_[win_begin_].time > cfg.t_max) {
    ++win_begin_;
  }
  win_t_ = t_now;
}

double FragmentStats::DecayedHits(double t_now, const DecayFunction& dec) const {
  // Decay off: every hit weighs exactly 1.0 and the naive accumulator
  // counts up by exact integers, so the cardinality is bit-identical.
  if (!dec.config().enabled) return static_cast<double>(hits_.size());
  const size_t begin =
      CursorValid(dec, t_now, win_t_, win_tmax_) ? win_begin_ : 0;
  double acc = 0.0;
  for (size_t i = begin; i < hits_.size(); ++i) {
    acc += dec(t_now, hits_[i].time);
  }
  return acc;
}

double FragmentStats::DecayedHitsNaive(double t_now,
                                       const DecayFunction& dec) const {
  double acc = 0.0;
  for (const FragmentHit& h : hits_) acc += dec(t_now, h.time);
  return acc;
}

double FragmentStats::DecayedHitsForTenant(double t_now,
                                           const DecayFunction& dec,
                                           int32_t tenant) const {
  double acc = 0.0;
  for (const FragmentHit& h : hits_) {
    if (h.tenant == tenant) acc += dec(t_now, h.time);
  }
  return acc;
}

std::map<int32_t, double> FragmentStats::DecayedHitsByTenant(
    double t_now, const DecayFunction& dec) const {
  std::map<int32_t, double> acc;
  for (const FragmentHit& h : hits_) acc[h.tenant] += dec(t_now, h.time);
  return acc;
}

double FragmentStats::LastHitNaive() const {
  double last = 0.0;
  for (const FragmentHit& h : hits_) last = std::max(last, h.time);
  return last;
}

double FragmentStats::Benefit(double t_now, const DecayFunction& dec,
                              double view_size, double view_cost,
                              double adjusted_hits) const {
  const double hits =
      adjusted_hits >= 0.0 ? adjusted_hits : DecayedHits(t_now, dec);
  const double size_fraction = size_bytes / std::max(view_size, 1.0);
  return hits * size_fraction * view_cost;
}

double FragmentStats::Value(double t_now, const DecayFunction& dec,
                            double view_size, double view_cost,
                            double adjusted_hits) const {
  const double benefit =
      Benefit(t_now, dec, view_size, view_cost, adjusted_hits);
  return view_cost * benefit / std::max(size_bytes, 1.0);
}

void FragmentStats::AdvanceWindow(double t_now, const DecayFunction& dec) {
  const DecayConfig& cfg = dec.config();
  if (!cfg.enabled) return;
  if (cfg.t_max != win_tmax_) {
    win_begin_ = 0;
    win_tmax_ = cfg.t_max;
    win_t_ = 0.0;
  }
  if (t_now < win_t_) return;
  while (win_begin_ < hits_.size() &&
         t_now - hits_[win_begin_].time > cfg.t_max) {
    ++win_begin_;
  }
  win_t_ = t_now;
}

}  // namespace deepsea
