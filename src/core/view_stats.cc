#include "core/view_stats.h"

#include <algorithm>

namespace deepsea {

double ViewStats::AccumulatedBenefit(double t_now, const DecayFunction& dec) const {
  double acc = 0.0;
  for (const BenefitEvent& e : events) acc += e.saving * dec(t_now, e.time);
  return acc;
}

double ViewStats::AccumulatedBenefitForTenant(double t_now,
                                              const DecayFunction& dec,
                                              int32_t tenant) const {
  double acc = 0.0;
  for (const BenefitEvent& e : events) {
    if (e.tenant == tenant) acc += e.saving * dec(t_now, e.time);
  }
  return acc;
}

std::map<int32_t, double> ViewStats::AccumulatedBenefitByTenant(
    double t_now, const DecayFunction& dec) const {
  std::map<int32_t, double> acc;
  for (const BenefitEvent& e : events) {
    acc[e.tenant] += e.saving * dec(t_now, e.time);
  }
  return acc;
}

double ViewStats::UndecayedBenefit() const {
  double acc = 0.0;
  for (const BenefitEvent& e : events) acc += e.saving;
  return acc;
}

double ViewStats::LastUse() const {
  double last = 0.0;
  for (const BenefitEvent& e : events) last = std::max(last, e.time);
  return last;
}

double ViewStats::Value(double t_now, const DecayFunction& dec) const {
  const double benefit = AccumulatedBenefit(t_now, dec);
  const double size = std::max(size_bytes, 1.0);
  return creation_cost * benefit / size;
}

double FragmentStats::DecayedHits(double t_now, const DecayFunction& dec) const {
  double acc = 0.0;
  for (const FragmentHit& h : hits) acc += dec(t_now, h.time);
  return acc;
}

double FragmentStats::DecayedHitsForTenant(double t_now,
                                           const DecayFunction& dec,
                                           int32_t tenant) const {
  double acc = 0.0;
  for (const FragmentHit& h : hits) {
    if (h.tenant == tenant) acc += dec(t_now, h.time);
  }
  return acc;
}

std::map<int32_t, double> FragmentStats::DecayedHitsByTenant(
    double t_now, const DecayFunction& dec) const {
  std::map<int32_t, double> acc;
  for (const FragmentHit& h : hits) acc[h.tenant] += dec(t_now, h.time);
  return acc;
}

double FragmentStats::LastHit() const {
  double last = 0.0;
  for (const FragmentHit& h : hits) last = std::max(last, h.time);
  return last;
}

double FragmentStats::Benefit(double t_now, const DecayFunction& dec,
                              double view_size, double view_cost,
                              double adjusted_hits) const {
  const double hits =
      adjusted_hits >= 0.0 ? adjusted_hits : DecayedHits(t_now, dec);
  const double size_fraction = size_bytes / std::max(view_size, 1.0);
  return hits * size_fraction * view_cost;
}

double FragmentStats::Value(double t_now, const DecayFunction& dec,
                            double view_size, double view_cost,
                            double adjusted_hits) const {
  const double benefit =
      Benefit(t_now, dec, view_size, view_cost, adjusted_hits);
  return view_cost * benefit / std::max(size_bytes, 1.0);
}

}  // namespace deepsea
