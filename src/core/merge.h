#ifndef DEEPSEA_CORE_MERGE_H_
#define DEEPSEA_CORE_MERGE_H_

#include <optional>
#include <vector>

#include "core/decay.h"
#include "core/view_catalog.h"

namespace deepsea {

/// Configuration of the fragment-merging extension (the paper's
/// short-term future work, Section 11: "merge consecutive fragments
/// that are mostly accessed together"). Two adjacent materialized
/// fragments are merged when the same queries keep reading both: the
/// merged fragment is read as one file (fewer per-file overheads,
/// simpler covers) at the cost of one read+write pass.
struct MergeConfig {
  bool enabled = false;
  /// Minimum co-access correlation: |T(a) ∩ T(b)| / max(|T(a)|, |T(b)|)
  /// over the decayed-hit window. Timestamps are query indices, so the
  /// intersection is exact co-access.
  double min_co_access = 0.8;
  /// Both fragments need at least this many (raw) hits to be judged.
  int min_hits = 3;
  /// Only merge when the merged fragment stays below this fraction of
  /// the view size (don't rebuild cold giants).
  double max_merged_fraction = 0.2;
  /// At most this many merges per query (keeps maintenance bounded).
  int max_merges_per_query = 1;
};

/// A merge opportunity found by FindMergeCandidates.
struct MergeCandidate {
  ViewInfo* view = nullptr;
  PartitionState* part = nullptr;
  /// Indices into part->fragments of the two adjacent fragments.
  size_t left_index = 0;
  size_t right_index = 0;
  /// The merged interval and its co-access score.
  Interval merged;
  double co_access = 0.0;
  double combined_bytes = 0.0;
};

/// Scans all materialized partitions for adjacent fragment pairs whose
/// hit sets are strongly correlated per `config`. Results are sorted by
/// descending co-access. `t_now`/`dec` define the decayed-hit window:
/// hits older than the decay horizon do not count as evidence.
std::vector<MergeCandidate> FindMergeCandidates(ViewCatalog* views,
                                                const MergeConfig& config,
                                                double t_now,
                                                const DecayFunction& dec);

/// True when fragments `a` and `b` are adjacent (share exactly one
/// boundary point with compatible openness, in either order) so their
/// union is a single interval.
bool AreAdjacent(const Interval& a, const Interval& b);

/// Co-access correlation of two fragments: the fraction of the busier
/// fragment's (decay-weighted) hits whose timestamps also appear in the
/// other fragment's hit list.
double CoAccess(const FragmentStats& a, const FragmentStats& b, double t_now,
                const DecayFunction& dec);

}  // namespace deepsea

#endif  // DEEPSEA_CORE_MERGE_H_
