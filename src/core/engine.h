#ifndef DEEPSEA_CORE_ENGINE_H_
#define DEEPSEA_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "catalog/table.h"
#include "common/result.h"
#include "core/candidate_generator.h"
#include "core/decay.h"
#include "core/engine_observer.h"
#include "core/engine_options.h"
#include "core/mle_model.h"
#include "core/pool_manager.h"
#include "core/query_context.h"
#include "core/rewrite_planner.h"
#include "core/selection_planner.h"
#include "core/shared_pool.h"
#include "core/view_catalog.h"
#include "exec/executor.h"
#include "plan/plan.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "storage/sim_fs.h"

namespace deepsea {

/// The DeepSea engine: a thin, re-entrant orchestrator over the four
/// pipeline stages of Algorithm 1, wired per query through a fresh
/// QueryContext value object:
///
///   1. RewritePlanner     — rewriting enumeration, statistics update,
///                           Q_best choice (lines 1-3);
///   2. CandidateGenerator — view candidates (Def. 6) and partition
///                           candidates (Def. 7), registered in STAT
///                           (lines 4-5);
///   3. SelectionPlanner   — benefit >= cost filtering (Section 7.2)
///                           and the greedy knapsack under S_max
///                           (Section 7.3), emitted as a declarative
///                           SelectionDecision;
///   4. PoolManager        — owns the pool state (view catalog +
///                           simulated FS + rewrite index + commit
///                           clock); applies the decision, charges
///                           materialization time, and runs the
///                           Section 11 merge pass.
///
/// Tenancy: an engine either owns a private PoolManager (single-tenant
/// constructor — behaviour identical to the pre-tenancy engine) or
/// attaches to a SharedPool as one named tenant among several.
/// ProcessQuery is two-phase: the planning stages (1-3) run
/// speculatively under the pool's *shared* lock, buffering every
/// would-be statistics write into the query's PlanningDelta — which
/// records the plan's read footprint as it goes — so concurrent
/// tenants plan in parallel. The commit then takes one of two paths:
///
///  * Sharded (the steady-state default): IX on the pool lock plus the
///    per-view commit shards of the plan's write footprint. The plan is
///    validated by read-set conflict detection — it commits as planned
///    unless a foreign commit published after its read epoch (or still
///    in flight) wrote something it read. Disjoint-footprint tenants
///    commit truly concurrently — including tenants that CREATE views:
///    new views are named from a per-engine placeholder-id reservation
///    (no shared-counter read), their catalog/index writes publish as
///    precise signature sets, and the catalog fold runs under the
///    pool's internal catalog mutex, so signature-disjoint creations
///    commute.
///
///  * Exclusive: the merge pass, inline evictions (pool occupancy every
///    knapsack budgets against), physical execution, and replans after
///    a failed validation. QueryReport's replan_conflict /
///    replan_spurious record why a replan happened; exclusive_reason
///    attributes each exclusive commit.
///
/// Either way the resulting pool state is a function of the commit
/// order alone: conflicting plans are rebuilt, and commuting (disjoint)
/// plans produce the same state in any order. Statistics recorded
/// during a query are stamped with the tenant's interned ordinal for
/// per-tenant benefit attribution.
///
/// An EngineObserver can be attached to watch stage boundaries and pool
/// mutations (see core/engine_observer.h); with no observer attached
/// the pipeline pays no timing overhead.
class DeepSeaEngine {
 public:
  /// Single-tenant engine owning a private pool. `catalog` must outlive
  /// the engine and contain the base tables.
  DeepSeaEngine(Catalog* catalog, EngineOptions options);

  /// Multi-tenant engine: one tenant (`tenant` must be non-empty,
  /// without whitespace) sharing `pool` with other engines. The engine
  /// copies the pool's EngineOptions, so all tenants plan under the
  /// same S_max and cost model. `catalog` must be the same catalog the
  /// SharedPool was built over (view tables registered by one tenant
  /// must be visible to the others' estimators); both must outlive the
  /// engine.
  DeepSeaEngine(Catalog* catalog, SharedPool* pool, std::string tenant);

  /// Quiesces the pool's materialization service before any member is
  /// torn down: background jobs carry this engine's observer and
  /// QueryContext, so an engine must not die while its intents are
  /// queued or executing. No-op in inline mode.
  ~DeepSeaEngine();

  DeepSeaEngine(const DeepSeaEngine&) = delete;
  DeepSeaEngine& operator=(const DeepSeaEngine&) = delete;

  Result<QueryReport> ProcessQuery(const PlanPtr& query);

  const EngineOptions& options() const { return options_; }
  const ViewCatalog& views() const { return pool_->views(); }
  const SimFs& fs() const { return pool_->fs(); }
  const ClusterModel& cluster() const { return cluster_; }
  const PlanCostEstimator& estimator() const { return estimator_; }
  const EngineTotals& totals() const { return totals_; }
  Catalog* catalog() { return catalog_; }

  /// This engine's tenant id ("" for a single-tenant engine) and its
  /// interned ordinal in the pool's tenant registry.
  const std::string& tenant() const { return tenant_; }
  int32_t tenant_ord() const { return tenant_ord_; }

  /// The pool-state component (view catalog + simulated FS + the
  /// materialize/evict/merge primitives). Mutation goes through the
  /// PoolManager's own commit protocol — the engine no longer exposes
  /// raw mutable access to the catalog or file system.
  const PoolManager& pool() const { return *pool_; }
  PoolManager* mutable_pool() { return pool_; }

  /// Attaches an observer to the pipeline (nullptr detaches). The
  /// observer must outlive the engine or be detached before it dies.
  /// Pool-mutation events reach the observer only for commits made by
  /// THIS engine (each commit carries its tenant's observer), so two
  /// tenants with separate observers do not see each other's events.
  void set_observer(EngineObserver* observer) { observer_ = observer; }
  EngineObserver* observer() const { return observer_; }

  /// Current pool occupancy in bytes (S(C)). Unlocked: call from the
  /// committing thread or a quiesced pool; monitors should use
  /// pool().PoolBytesSnapshot().
  double PoolBytes() const { return pool_->PoolBytes(); }

  /// The pool's commit clock (number of commits across all tenants;
  /// equals the query count for a single-tenant engine).
  int64_t now() const { return pool_->clock(); }

  /// Serializes the pool's adaptive state — every tracked view's
  /// defining plan, statistics, partitions, fragments (with hit
  /// histories), pool membership, and the tenant registry — into a
  /// text blob that LoadState restores. Enables warm-starting a fresh
  /// engine (e.g. across process restarts) without replaying the
  /// workload. The relational catalog (base tables) is NOT included;
  /// LoadState must run against a catalog with the same base tables.
  /// Takes the pool's commit lock in shared mode: do not call from a
  /// thread that holds the commit (i.e. from observer callbacks).
  Result<std::string> SaveState() const;

  /// Restores state written by SaveState into this engine's pool:
  /// views are re-tracked (signatures recomputed from their
  /// deserialized plans), statistics and fragment pools re-attached,
  /// simulated FS files recreated, and saved tenant attributions
  /// re-interned (ordinals are remapped through the registry, so
  /// loading into a pool with different tenants keeps attributions
  /// correct). Views already tracked merge by signature. The commit
  /// clock advances to the saved clock when the saved one is larger.
  /// Runs as one exclusive commit.
  Status LoadState(const std::string& state);

 private:
  /// Wires the three planning stages to the pool's catalog / index
  /// (briefly entering the commit section to obtain them).
  void InitStages();
  /// Runs stages 1-3 (rewrite, candidates, selection) against `ctx`'s
  /// PlanningDelta. Called once under the shared lock (speculative) and
  /// again under the exclusive lock when read-set validation fails; the
  /// caller holds whichever lock the run requires. Only the rewrite
  /// stage runs for plain Hive.
  Status RunPlanningStages(QueryContext* ctx, QueryReport* report,
                           SelectionDecision* decision);
  /// Executes `decision` through PoolManager::Apply with the configured
  /// fault handling: transient faults are retried (up to
  /// options_.fault.max_retries, each against the rolled-back pool);
  /// permanent faults — or exhausted retries — abandon the decision,
  /// mark the query degraded, and record the fault against the failing
  /// view for quarantine. The query is answered either way. Runs inside
  /// the commit section; `t_now` is the commit clock.
  void ExecuteDecision(const SelectionDecision& decision,
                       const QueryContext& ctx, QueryReport* report,
                       int64_t t_now);
  /// RunMergePass with the same retry/degrade treatment (no quarantine:
  /// merge faults are not attributable to a candidate view). Returns the
  /// simulated seconds to charge, including retry backoff.
  double ExecuteMergePass(const QueryContext& ctx, QueryReport* report);
  /// Physically executes the plan and materializes selected view sample
  /// tables when physical execution is enabled. Runs inside `commit`.
  Status PhysicalExecute(const CommitGuard& commit, const PlanPtr& plan,
                         QueryReport* report);

  Catalog* catalog_;
  EngineOptions options_;
  ClusterModel cluster_;
  PlanCostEstimator estimator_;
  DecayFunction decay_;
  MleFragmentModel mle_;
  Executor executor_;
  EngineObserver* observer_ = nullptr;

  // Pool state: owned for the single-tenant constructor, borrowed from
  // the SharedPool otherwise. `pool_` is the one used either way.
  std::unique_ptr<PoolManager> owned_pool_;
  PoolManager* pool_ = nullptr;

  std::string tenant_;
  int32_t tenant_ord_ = 0;

  // The stages that plan over the pool (constructed by InitStages once
  // the pool pointer is settled; they hold pointers into the pool).
  std::unique_ptr<RewritePlanner> rewrite_planner_;
  std::unique_ptr<CandidateGenerator> candidate_generator_;
  std::unique_ptr<SelectionPlanner> selection_planner_;
  /// The pool's STAT, captured in InitStages: ProcessQuery hands it to
  /// each query's PlanningDelta (which only reads it under the shared
  /// lock; mutation stays behind the commit protocol).
  ViewCatalog* stat_ = nullptr;
  /// This engine's lease on the pool's placeholder-id counter: new
  /// candidate views get placeholder ids during planning (no shared
  /// view-id-counter read), folded to final "v<N>" ids in commit order.
  /// Single-threaded per engine, like ProcessQuery itself.
  std::unique_ptr<ViewIdReservation> reservation_;

  EngineTotals totals_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_ENGINE_H_
