#ifndef DEEPSEA_CORE_ENGINE_H_
#define DEEPSEA_CORE_ENGINE_H_

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "core/candidates.h"
#include "core/decay.h"
#include "core/merge.h"
#include "core/mle_model.h"
#include "core/policy.h"
#include "core/view_catalog.h"
#include "exec/executor.h"
#include "plan/plan.h"
#include "rewrite/filter_tree.h"
#include "rewrite/matcher.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "storage/sim_fs.h"

namespace deepsea {

/// All knobs of a DeepSea engine instance. Defaults are the paper's
/// DeepSea configuration; baselines are expressed by changing strategy
/// and/or value_model (see core/policy.h).
struct EngineOptions {
  StrategyKind strategy = StrategyKind::kDeepSea;
  ValueModel value_model = ValueModel::kDeepSea;

  /// S_max: pool size limit in bytes (infinite by default).
  double pool_limit_bytes = std::numeric_limits<double>::infinity();

  DecayConfig decay;
  MleConfig mle;
  /// DeepSea's fragment-correlation smoothing (Section 7.1); the Nectar
  /// value models never use it regardless of this flag.
  bool use_mle_smoothing = true;

  /// Allow overlapping fragments (Section 3 / 10.4). When false, every
  /// refinement splits the overlapped fragments (read + rewrite them).
  bool overlapping_fragments = true;

  /// Number of fragments for the EquiDepth strategy ("E-k").
  int equi_depth_fragments = 6;

  /// phi, the maximum fragment size relative to the view (Section 9,
  /// "Bounding Fragment Size"); <= 0 disables the upper bound.
  double max_fragment_fraction = 0.0;
  /// Enforce the file-system block size as fragment lower bound.
  bool enforce_block_lower_bound = true;

  /// When true, also execute queries over the physical sample data and
  /// materialize real view tables (correctness path). When false, only
  /// the cost model runs (fast; used by large experiments).
  bool physical_execution = false;

  EstimatorConfig estimator;
  ClusterConfig cluster;

  /// View admission threshold: materialize a view candidate when its
  /// accumulated benefit >= threshold * creation cost. The paper's
  /// filter uses 1.0; the default here is lower because our per-query
  /// saving estimates are conservative (they ignore reuse by other
  /// templates sharing the view). Set to ~0 to reproduce the paper's
  /// controlled sequences where the first query materializes.
  double benefit_cost_threshold = 0.5;

  /// Fragment refinement threshold: create a refinement fragment when
  /// hits * marginal read saving >= threshold * creation cost (the
  /// paper's P_sel filter uses 1.0). Kept separate from view admission
  /// so that benches forcing eager view creation do not also disable
  /// the repartitioning cost-benefit test.
  double fragment_benefit_threshold = 1.0;

  /// Histogram resolution for view partition-attribute histograms.
  int view_histogram_bins = 256;

  /// Materialized views are stored columnar-compressed (ORC-style), so
  /// their on-disk footprint is a fraction of the raw intermediate
  /// result's width. Applied to view sizes, fragment sizes, and the
  /// read/write costs that depend on them.
  double view_storage_compression = 0.6;

  /// Fragment-merging extension (paper Section 11 future work): merge
  /// adjacent fragments that are mostly accessed together. Off by
  /// default; see core/merge.h.
  MergeConfig merge;

  /// Fragment boundaries are snapped outward to a grid of this fraction
  /// of the attribute domain before candidate generation, so queries
  /// whose ranges jitter around the same hot region converge on one
  /// refinement fragment instead of spawning a near-duplicate per
  /// query. 0 disables snapping (exact Definition 7 endpoints).
  double candidate_snap_fraction = 0.005;
};

/// Per-query outcome of ProcessQuery.
struct QueryReport {
  int64_t query_index = 0;
  /// Cost of the conventional (selection-pushed) plan with no views.
  double base_seconds = 0.0;
  /// Cost of the plan actually chosen (view-based or base).
  double best_seconds = 0.0;
  /// Overhead charged this query for view/fragment materialization and
  /// repartitioning.
  double materialize_seconds = 0.0;
  /// Total simulated time charged: best + materialize.
  double total_seconds = 0.0;

  std::string used_view;             ///< view answering the query ("" = none)
  int fragments_read = 0;
  int64_t map_tasks = 0;             ///< map tasks of the executed plan
  std::vector<std::string> created_views;
  int created_fragments = 0;
  int evicted_fragments = 0;
  int merged_fragments = 0;          ///< merge-pass merges this query
  double pool_bytes_after = 0.0;

  bool physically_executed = false;
  ExecResult physical;               ///< result rows (physical mode only)
};

/// Aggregate counters across a workload run.
struct EngineTotals {
  double total_seconds = 0.0;
  double base_seconds = 0.0;
  double materialize_seconds = 0.0;
  int64_t map_tasks = 0;
  int64_t queries = 0;
  int64_t views_created = 0;
  int64_t fragments_created = 0;
  int64_t fragments_evicted = 0;
  int64_t fragments_merged = 0;
  int64_t queries_answered_from_views = 0;
};

/// The DeepSea engine: owns the materialized-view pool state (view
/// catalog + simulated FS), and processes one query at a time following
/// Algorithm 1:
///   1. compute rewritings (ViewMatcher over the filter tree),
///   2. update view/fragment statistics,
///   3. select the cheapest executable rewriting (Q_best),
///   4. compute view candidates (Def. 6) and partition candidates
///      (Def. 7) and register them in STAT,
///   5. filter candidates (benefit >= cost, Section 7.2) and greedily
///      select the next configuration under S_max (Section 7.3),
///   6. instrument + "execute" the query: charge simulated time for the
///      chosen plan plus materialization/repartitioning work, update
///      the pool (SimFs files, catalog view tables), and
///   7. update statistics with actual sizes.
class DeepSeaEngine {
 public:
  /// `catalog` must outlive the engine and contain the base tables.
  DeepSeaEngine(Catalog* catalog, EngineOptions options);

  Result<QueryReport> ProcessQuery(const PlanPtr& query);

  const EngineOptions& options() const { return options_; }
  const ViewCatalog& views() const { return views_; }
  ViewCatalog* mutable_views() { return &views_; }
  const SimFs& fs() const { return fs_; }
  const ClusterModel& cluster() const { return cluster_; }
  const PlanCostEstimator& estimator() const { return estimator_; }
  const EngineTotals& totals() const { return totals_; }
  Catalog* catalog() { return catalog_; }

  /// Current pool occupancy in bytes (S(C)).
  double PoolBytes() const { return views_.PoolBytes(); }

  /// Logical clock (number of queries processed).
  int64_t now() const { return clock_; }

  /// Serializes the engine's adaptive state — every tracked view's
  /// defining plan, statistics, partitions, fragments (with hit
  /// histories) and pool membership — into a text blob that LoadState
  /// restores. Enables warm-starting a fresh engine (e.g. across
  /// process restarts) without replaying the workload. The relational
  /// catalog (base tables) is NOT included; LoadState must run against
  /// a catalog with the same base tables.
  Result<std::string> SaveState() const;

  /// Restores state written by SaveState into this engine: views are
  /// re-tracked (signatures recomputed from their deserialized plans),
  /// statistics and fragment pools re-attached, and simulated FS files
  /// recreated. Views already tracked by this engine merge by
  /// signature. The logical clock advances to the saved clock when the
  /// saved one is larger.
  Status LoadState(const std::string& state);

  /// A view candidate of the current query (V_cand member).
  /// `under_select` is true when the view's subplan feeds a selection
  /// of this query — materializing such a view requires executing the
  /// query without pushing that selection down (Section 10.2).
  struct VCand {
    ViewInfo* view;
    bool under_select;
  };

  /// A fragment refinement candidate of the current query (P_cand).
  struct FragCandidate {
    ViewInfo* view;
    std::string attr;
    Interval interval;
    double est_bytes;
    double est_cost_seconds;
    /// Seconds saved per hit by reading this fragment instead of the
    /// current materialized cover of its interval. The admission filter
    /// uses this *marginal* saving (hits * per_hit_saving >= cost)
    /// rather than the paper's absolute fragment benefit, which would
    /// keep re-creating near-duplicates of already well-covered hot
    /// ranges; ranking/eviction still uses the paper's Phi.
    double per_hit_saving_seconds;
  };

  /// Candidates registered while processing the most recent query
  /// (exposed for tests and diagnostics).
  const std::vector<VCand>& current_view_candidates() const {
    return current_vcand_;
  }
  const std::vector<FragCandidate>& current_fragment_candidates() const {
    return current_pcand_;
  }

 private:
  // --- Algorithm 1 steps ---
  void UpdateStatsFromRewritings(const std::vector<Rewriting>& rewritings,
                                 double base_seconds);
  void RegisterViewCandidates(const PlanPtr& query, double base_seconds);
  void RegisterPartitionCandidates(const PlanPtr& query);
  // Runs filtering + greedy selection; mutates pool state and returns
  // the materialization seconds charged plus created/evicted counts.
  void RunSelection(const PlanPtr& query, QueryReport* report);
  // Fragment-merging maintenance pass (Section 11 extension); returns
  // the simulated seconds charged.
  double RunMergePass(QueryReport* report);

  // --- helpers ---
  /// Ensures `view` is registered as a relational catalog table with
  /// estimated logical statistics (needed by the cost estimator).
  void RegisterViewTable(ViewInfo* view);
  /// Domain of `column` from its base table histogram/sample.
  Result<Interval> ColumnDomain(const std::string& column) const;
  /// Fraction of the base table's rows whose `column` value lies in
  /// `iv` (1.0 when no statistics exist).
  double RangeFractionOfBaseColumn(const std::string& column,
                                   const Interval& iv) const;
  /// Histogram for a view's partition attribute, derived from the base
  /// table's distribution scaled to the view's cardinality.
  Result<AttributeHistogram> DeriveViewHistogram(const ViewInfo& view,
                                                 const std::string& attr) const;
  /// Estimated bytes of fragment `iv` of `view` partitioned on `attr`.
  double FragmentBytes(const ViewInfo& view, const std::string& attr,
                       const Interval& iv) const;
  /// Paper's uniform-within-fragment size estimate for a candidate
  /// (Section 7.2) over the currently tracked fragments.
  double EstimateCandidateBytes(const PartitionState& part,
                                const Interval& iv) const;
  /// The initial fragmentation used when first materializing a view
  /// partition under the configured strategy.
  std::vector<Interval> InitialFragmentation(ViewInfo* view,
                                             const std::string& attr);
  /// Applies the phi upper bound: splits any interval whose estimated
  /// size exceeds max_fragment_fraction * S(V).
  std::vector<Interval> ApplyFragmentBounds(const ViewInfo& view,
                                            const std::string& attr,
                                            std::vector<Interval> frags) const;
  /// Materializes `view` (initial partitioned creation). Returns the
  /// extra simulated seconds charged.
  double MaterializeView(ViewInfo* view, QueryReport* report);
  /// Creates one refinement fragment (overlapping or by splitting).
  double MaterializeFragment(ViewInfo* view, PartitionState* part,
                             const Interval& iv, QueryReport* report);
  /// Evicts a fragment (or whole view) from the pool.
  void EvictFragment(ViewInfo* view, PartitionState* part, FragmentStats* frag);
  void EvictWholeView(ViewInfo* view);
  std::string FragmentPath(const ViewInfo& view, const std::string& attr,
                           const Interval& iv) const;
  /// Physically executes the plan and materializes selected view sample
  /// tables when physical execution is enabled.
  Status PhysicalExecute(const PlanPtr& plan, QueryReport* report);

  Catalog* catalog_;
  EngineOptions options_;
  ClusterModel cluster_;
  PlanCostEstimator estimator_;
  DecayFunction decay_;
  MleFragmentModel mle_;
  SimFs fs_;
  ViewCatalog views_;
  FilterTree index_;
  std::unique_ptr<ViewMatcher> matcher_;
  Executor executor_;
  EngineTotals totals_;
  int64_t clock_ = 0;

  std::vector<VCand> current_vcand_;
  std::vector<FragCandidate> current_pcand_;

  /// The fragment cover read by the current query's chosen rewriting.
  /// Repartitioning is "a by-product of query answering" (Section 2):
  /// refinement fragments extracted from parents the query read anyway
  /// are not charged a second read.
  std::string current_cover_view_;
  std::string current_cover_attr_;
  std::vector<Interval> current_cover_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_ENGINE_H_
