#ifndef DEEPSEA_CORE_ENGINE_H_
#define DEEPSEA_CORE_ENGINE_H_

#include <memory>
#include <string>

#include "catalog/table.h"
#include "common/result.h"
#include "core/candidate_generator.h"
#include "core/decay.h"
#include "core/engine_observer.h"
#include "core/engine_options.h"
#include "core/mle_model.h"
#include "core/pool_manager.h"
#include "core/query_context.h"
#include "core/rewrite_planner.h"
#include "core/selection_planner.h"
#include "core/view_catalog.h"
#include "exec/executor.h"
#include "plan/plan.h"
#include "rewrite/filter_tree.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "storage/sim_fs.h"

namespace deepsea {

/// The DeepSea engine: a thin, re-entrant orchestrator over the four
/// pipeline stages of Algorithm 1, wired per query through a fresh
/// QueryContext value object:
///
///   1. RewritePlanner     — rewriting enumeration, statistics update,
///                           Q_best choice (lines 1-3);
///   2. CandidateGenerator — view candidates (Def. 6) and partition
///                           candidates (Def. 7), registered in STAT
///                           (lines 4-5);
///   3. SelectionPlanner   — benefit >= cost filtering (Section 7.2)
///                           and the greedy knapsack under S_max
///                           (Section 7.3), emitted as a declarative
///                           SelectionDecision;
///   4. PoolManager        — owns the pool state (view catalog +
///                           simulated FS); applies the decision,
///                           charges materialization time, and runs the
///                           Section 11 merge pass.
///
/// An EngineObserver can be attached to watch stage boundaries and pool
/// mutations (see core/engine_observer.h); with no observer attached
/// the pipeline pays no timing overhead.
class DeepSeaEngine {
 public:
  /// `catalog` must outlive the engine and contain the base tables.
  DeepSeaEngine(Catalog* catalog, EngineOptions options);

  Result<QueryReport> ProcessQuery(const PlanPtr& query);

  const EngineOptions& options() const { return options_; }
  const ViewCatalog& views() const { return pool_.views(); }
  ViewCatalog* mutable_views() { return pool_.mutable_views(); }
  const SimFs& fs() const { return pool_.fs(); }
  const ClusterModel& cluster() const { return cluster_; }
  const PlanCostEstimator& estimator() const { return estimator_; }
  const EngineTotals& totals() const { return totals_; }
  Catalog* catalog() { return catalog_; }

  /// The pool-state component (view catalog + simulated FS + the
  /// materialize/evict/merge primitives).
  const PoolManager& pool() const { return pool_; }
  PoolManager* mutable_pool() { return &pool_; }

  /// Attaches an observer to the pipeline (nullptr detaches). The
  /// observer must outlive the engine or be detached before it dies.
  void set_observer(EngineObserver* observer) {
    observer_ = observer;
    pool_.set_observer(observer);
  }
  EngineObserver* observer() const { return observer_; }

  /// Current pool occupancy in bytes (S(C)).
  double PoolBytes() const { return pool_.PoolBytes(); }

  /// Logical clock (number of queries processed).
  int64_t now() const { return clock_; }

  /// Serializes the engine's adaptive state — every tracked view's
  /// defining plan, statistics, partitions, fragments (with hit
  /// histories) and pool membership — into a text blob that LoadState
  /// restores. Enables warm-starting a fresh engine (e.g. across
  /// process restarts) without replaying the workload. The relational
  /// catalog (base tables) is NOT included; LoadState must run against
  /// a catalog with the same base tables.
  Result<std::string> SaveState() const;

  /// Restores state written by SaveState into this engine: views are
  /// re-tracked (signatures recomputed from their deserialized plans),
  /// statistics and fragment pools re-attached, and simulated FS files
  /// recreated. Views already tracked by this engine merge by
  /// signature. The logical clock advances to the saved clock when the
  /// saved one is larger.
  Status LoadState(const std::string& state);

 private:
  /// Physically executes the plan and materializes selected view sample
  /// tables when physical execution is enabled.
  Status PhysicalExecute(const PlanPtr& plan, QueryReport* report);

  Catalog* catalog_;
  EngineOptions options_;
  ClusterModel cluster_;
  PlanCostEstimator estimator_;
  DecayFunction decay_;
  MleFragmentModel mle_;
  FilterTree index_;
  Executor executor_;
  EngineObserver* observer_ = nullptr;

  // Pool state, then the stages that plan over it (construction order
  // matters: the planners hold pointers into pool_).
  PoolManager pool_;
  RewritePlanner rewrite_planner_;
  CandidateGenerator candidate_generator_;
  SelectionPlanner selection_planner_;

  EngineTotals totals_;
  int64_t clock_ = 0;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_ENGINE_H_
