#ifndef DEEPSEA_CORE_VIEW_STATS_H_
#define DEEPSEA_CORE_VIEW_STATS_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/decay.h"
#include "core/interval.h"

namespace deepsea {

/// One "this view could have answered query Q at time t, saving s
/// seconds" observation (an element of the paper's B / T lists).
/// `tenant` attributes the observation to the workload that produced it
/// (an ordinal interned by PoolManager; 0 is the default tenant), so a
/// shared pool can report which tenant's queries earned a view its
/// place — and who loses when it is evicted.
struct BenefitEvent {
  double time = 0.0;    ///< logical timestamp (query index)
  double saving = 0.0;  ///< COST(Q) - COST(Q/V), in simulated seconds
  int32_t tenant = 0;   ///< interned tenant ordinal (0 = default)
};

/// Statistics kept per view (candidate or materialized): the tuple
/// (S, COST, T, B) of Definition 5 plus bookkeeping flags.
///
/// The event list is append-only through the mutators below, which
/// maintain three incremental caches so the Φ hot path need not replay
/// history (see DESIGN.md, "Statistics hot path and locking
/// discipline"):
///  * `undecayed_sum_` — running sum of savings in append order, so the
///    decay-off evaluation is O(1) and bit-identical to the naive loop
///    (same additions, same order);
///  * `last_use_` — running max of event times (O(1) LastUse);
///  * a timed-out-prefix cursor {win_begin_, win_t_, win_tmax_}:
///    entries [0, win_begin_) are known to satisfy
///    t_now - time > t_max for every t_now >= win_t_ under t_max ==
///    win_tmax_, so evaluations may start summing at win_begin_.
///    Skipping the prefix is bit-identical to naive replay: each
///    skipped term contributes saving * 0.0 == +0.0 to a +0.0
///    accumulator. The cursor only advances inside the pool's
///    exclusive commit section (AdvanceWindow); evaluation under the
///    shared lock is strictly const.
struct ViewStats {
  /// S(V): storage size in bytes. Estimated until first materialization.
  double size_bytes = 0.0;
  /// COST(V): creation cost in simulated seconds (estimate replaced by
  /// the actual cost after the first instrumented execution).
  double creation_cost = 0.0;
  bool size_is_actual = false;
  bool cost_is_actual = false;

  /// Timestamped potential savings (the paper's T and B lists).
  const std::vector<BenefitEvent>& events() const { return events_; }

  /// Appends one observation. Engine paths append in commit-clock
  /// order; the debug assert documents (and enforces) that invariant.
  void RecordUse(double time, double saving, int32_t tenant = 0) {
    assert(time >= last_use_ && "benefit events must be appended in time order");
    AppendEvent({time, saving, tenant});
  }

  /// Appends one observation without the time-order assert. State
  /// restore may merge a snapshot into a view that already has newer
  /// events; the caches stay exact either way (running max / running
  /// sum do not require order).
  void AppendEvent(const BenefitEvent& e) {
    events_.push_back(e);
    undecayed_sum_ += e.saving;
    if (e.time > last_use_) last_use_ = e.time;
  }

  /// Accumulated decayed benefit B(V, t_now) = sum of saving * DEC.
  /// Phi(V) always credits the whole benefit regardless of which tenant
  /// earned it — the pool optimizes aggregate workload cost.
  double AccumulatedBenefit(double t_now, const DecayFunction& dec) const;

  /// B(V, t_now) restricted to one tenant's events.
  double AccumulatedBenefitForTenant(double t_now, const DecayFunction& dec,
                                     int32_t tenant) const;

  /// Attribution breakdown of AccumulatedBenefit by tenant ordinal.
  /// Values sum to AccumulatedBenefit (same summation order per tenant,
  /// so the per-tenant parts are exact, not re-derived estimates).
  std::map<int32_t, double> AccumulatedBenefitByTenant(
      double t_now, const DecayFunction& dec) const;

  /// Undecayed accumulated benefit N(V) (used by Nectar+, Section 10.1).
  double UndecayedBenefit() const { return undecayed_sum_; }

  /// Timestamp of the most recent use, or 0 when never used. O(1):
  /// maintained as a running max by the mutators.
  double LastUse() const { return last_use_; }

  /// The paper's view value Phi(V, t_now) = COST * B / S. Views with
  /// zero size rank highest among equal-benefit views (guarded division).
  double Value(double t_now, const DecayFunction& dec) const;

  /// Advances the timed-out-prefix cursor to `t_now`. Must only be
  /// called while holding the pool's exclusive commit lock (the cursor
  /// is read concurrently by planners under the shared lock).
  void AdvanceWindow(double t_now, const DecayFunction& dec);

  // --- naive-replay reference implementations -----------------------
  // Retained verbatim from the pre-incremental code as the oracle for
  // the bit-identity tests (tests/view_stats_test.cc). Not used on any
  // hot path.
  double AccumulatedBenefitNaive(double t_now, const DecayFunction& dec) const;
  double UndecayedBenefitNaive() const;
  double LastUseNaive() const;

 private:
  std::vector<BenefitEvent> events_;
  double undecayed_sum_ = 0.0;
  double last_use_ = 0.0;
  size_t win_begin_ = 0;    ///< entries [0, win_begin_) expired at win_t_
  double win_t_ = 0.0;      ///< time the cursor was last advanced to
  double win_tmax_ = -1.0;  ///< t_max the cursor was computed under
};

/// One recorded access to a fragment: the timestamp (an element of the
/// paper's T(I)) plus, when known, the part of the fragment the query
/// actually touched. The paper records timestamps only and spreads a
/// fragment's hits evenly over its extent when fitting the access
/// distribution; keeping the accessed sub-range (information the
/// matcher has anyway) makes the fitted distribution reflect the true
/// access pattern even when a query merely grazes a huge cold fragment.
struct FragmentHit {
  double time = 0.0;
  Interval range;
  bool has_range = false;
  int32_t tenant = 0;  ///< interned tenant ordinal (0 = default)
};

/// Statistics kept per fragment interval of a tracked partition: the
/// (S, T) pair of Definition 5. Benefit and cost are derived from the
/// owning view's stats (Section 7.1, "Fragment Statistics").
///
/// Hits carry the same incremental caches as ViewStats events: a
/// running last-hit max, and a timed-out-prefix cursor so H(I) sums
/// only the in-window suffix (bit-identical to naive replay — skipped
/// terms are exact zeros). Merge passes and state restore splice
/// arbitrary hit vectors via AdoptHits/AppendHit, which rebuild or
/// extend the caches without assuming time order.
struct FragmentStats {
  Interval interval;
  /// S(I) in bytes; estimated for candidates, actual once materialized.
  double size_bytes = 0.0;
  bool materialized = false;

  /// Hits T(I): the fragment was or could have been used.
  const std::vector<FragmentHit>& hits() const { return hits_; }

  void RecordHit(double time, int32_t tenant = 0) {
    assert(time >= last_hit_ && "fragment hits must be appended in time order");
    AppendHit({time, Interval(), false, tenant});
  }
  void RecordHit(double time, const Interval& range, int32_t tenant = 0) {
    assert(time >= last_hit_ && "fragment hits must be appended in time order");
    AppendHit({time, range, true, tenant});
  }

  /// Appends one hit without the time-order assert (state restore,
  /// planning-delta folds).
  void AppendHit(const FragmentHit& h) {
    hits_.push_back(h);
    if (h.time > last_hit_) last_hit_ = h.time;
  }

  /// Replaces the whole hit list (merge passes concatenate the merged
  /// children's hits; new-view fragments inherit their parents' hits)
  /// and rebuilds the caches. The replacement need not be time-ordered.
  void AdoptHits(std::vector<FragmentHit> hits) {
    hits_ = std::move(hits);
    last_hit_ = 0.0;
    for (const FragmentHit& h : hits_) {
      if (h.time > last_hit_) last_hit_ = h.time;
    }
    win_begin_ = 0;
    win_t_ = 0.0;
    win_tmax_ = -1.0;
  }

  void ResetHits() { AdoptHits({}); }

  /// Decayed hit count H(I) = sum over hits of DEC(t_now, t).
  double DecayedHits(double t_now, const DecayFunction& dec) const;

  /// H(I) restricted to one tenant's hits.
  double DecayedHitsForTenant(double t_now, const DecayFunction& dec,
                              int32_t tenant) const;

  /// Attribution breakdown of DecayedHits by tenant ordinal; values sum
  /// to DecayedHits.
  std::map<int32_t, double> DecayedHitsByTenant(double t_now,
                                                const DecayFunction& dec) const;

  /// Undecayed hit count |T(I)|.
  double RawHits() const { return static_cast<double>(hits_.size()); }

  /// Timestamp of the most recent hit, or 0 when never hit. O(1):
  /// maintained as a running max by the mutators.
  double LastHit() const { return last_hit_; }

  /// Fragment benefit per the paper:
  ///   B(I, t_now) = sum_hits (S(I)/S(V)) * COST(V) * DEC(t_now, t)
  /// where `hits` may be replaced by MLE-adjusted hits by the caller
  /// (pass `adjusted_hits` >= 0 to override the decayed hit count).
  double Benefit(double t_now, const DecayFunction& dec, double view_size,
                 double view_cost, double adjusted_hits = -1.0) const;

  /// Fragment value Phi(I, t_now) = COST(V) * B(I, t_now) / S(I).
  double Value(double t_now, const DecayFunction& dec, double view_size,
               double view_cost, double adjusted_hits = -1.0) const;

  /// Advances the timed-out-prefix cursor to `t_now`. Exclusive commit
  /// section only (see ViewStats::AdvanceWindow).
  void AdvanceWindow(double t_now, const DecayFunction& dec);

  // --- naive-replay reference implementations (test oracle) ---------
  double DecayedHitsNaive(double t_now, const DecayFunction& dec) const;
  double LastHitNaive() const;

 private:
  std::vector<FragmentHit> hits_;
  double last_hit_ = 0.0;
  size_t win_begin_ = 0;
  double win_t_ = 0.0;
  double win_tmax_ = -1.0;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_VIEW_STATS_H_
