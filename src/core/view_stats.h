#ifndef DEEPSEA_CORE_VIEW_STATS_H_
#define DEEPSEA_CORE_VIEW_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/decay.h"
#include "core/interval.h"

namespace deepsea {

/// One "this view could have answered query Q at time t, saving s
/// seconds" observation (an element of the paper's B / T lists).
/// `tenant` attributes the observation to the workload that produced it
/// (an ordinal interned by PoolManager; 0 is the default tenant), so a
/// shared pool can report which tenant's queries earned a view its
/// place — and who loses when it is evicted.
struct BenefitEvent {
  double time = 0.0;    ///< logical timestamp (query index)
  double saving = 0.0;  ///< COST(Q) - COST(Q/V), in simulated seconds
  int32_t tenant = 0;   ///< interned tenant ordinal (0 = default)
};

/// Statistics kept per view (candidate or materialized): the tuple
/// (S, COST, T, B) of Definition 5 plus bookkeeping flags.
struct ViewStats {
  /// S(V): storage size in bytes. Estimated until first materialization.
  double size_bytes = 0.0;
  /// COST(V): creation cost in simulated seconds (estimate replaced by
  /// the actual cost after the first instrumented execution).
  double creation_cost = 0.0;
  bool size_is_actual = false;
  bool cost_is_actual = false;

  /// Timestamped potential savings (the paper's T and B lists).
  std::vector<BenefitEvent> events;

  void RecordUse(double time, double saving, int32_t tenant = 0) {
    events.push_back({time, saving, tenant});
  }

  /// Accumulated decayed benefit B(V, t_now) = sum of saving * DEC.
  /// Phi(V) always credits the whole benefit regardless of which tenant
  /// earned it — the pool optimizes aggregate workload cost.
  double AccumulatedBenefit(double t_now, const DecayFunction& dec) const;

  /// B(V, t_now) restricted to one tenant's events.
  double AccumulatedBenefitForTenant(double t_now, const DecayFunction& dec,
                                     int32_t tenant) const;

  /// Attribution breakdown of AccumulatedBenefit by tenant ordinal.
  /// Values sum to AccumulatedBenefit (same summation order per tenant,
  /// so the per-tenant parts are exact, not re-derived estimates).
  std::map<int32_t, double> AccumulatedBenefitByTenant(
      double t_now, const DecayFunction& dec) const;

  /// Undecayed accumulated benefit N(V) (used by Nectar+, Section 10.1).
  double UndecayedBenefit() const;

  /// Timestamp of the most recent use, or 0 when never used.
  double LastUse() const;

  /// The paper's view value Phi(V, t_now) = COST * B / S. Views with
  /// zero size rank highest among equal-benefit views (guarded division).
  double Value(double t_now, const DecayFunction& dec) const;
};

/// One recorded access to a fragment: the timestamp (an element of the
/// paper's T(I)) plus, when known, the part of the fragment the query
/// actually touched. The paper records timestamps only and spreads a
/// fragment's hits evenly over its extent when fitting the access
/// distribution; keeping the accessed sub-range (information the
/// matcher has anyway) makes the fitted distribution reflect the true
/// access pattern even when a query merely grazes a huge cold fragment.
struct FragmentHit {
  double time = 0.0;
  Interval range;
  bool has_range = false;
  int32_t tenant = 0;  ///< interned tenant ordinal (0 = default)
};

/// Statistics kept per fragment interval of a tracked partition: the
/// (S, T) pair of Definition 5. Benefit and cost are derived from the
/// owning view's stats (Section 7.1, "Fragment Statistics").
struct FragmentStats {
  Interval interval;
  /// S(I) in bytes; estimated for candidates, actual once materialized.
  double size_bytes = 0.0;
  bool materialized = false;
  /// Hits T(I): the fragment was or could have been used.
  std::vector<FragmentHit> hits;

  void RecordHit(double time, int32_t tenant = 0) {
    hits.push_back({time, Interval(), false, tenant});
  }
  void RecordHit(double time, const Interval& range, int32_t tenant = 0) {
    hits.push_back({time, range, true, tenant});
  }

  /// Decayed hit count H(I) = sum over hits of DEC(t_now, t).
  double DecayedHits(double t_now, const DecayFunction& dec) const;

  /// H(I) restricted to one tenant's hits.
  double DecayedHitsForTenant(double t_now, const DecayFunction& dec,
                              int32_t tenant) const;

  /// Attribution breakdown of DecayedHits by tenant ordinal; values sum
  /// to DecayedHits.
  std::map<int32_t, double> DecayedHitsByTenant(double t_now,
                                                const DecayFunction& dec) const;

  /// Undecayed hit count |T(I)|.
  double RawHits() const { return static_cast<double>(hits.size()); }

  double LastHit() const;

  /// Fragment benefit per the paper:
  ///   B(I, t_now) = sum_hits (S(I)/S(V)) * COST(V) * DEC(t_now, t)
  /// where `hits` may be replaced by MLE-adjusted hits by the caller
  /// (pass `adjusted_hits` >= 0 to override the decayed hit count).
  double Benefit(double t_now, const DecayFunction& dec, double view_size,
                 double view_cost, double adjusted_hits = -1.0) const;

  /// Fragment value Phi(I, t_now) = COST(V) * B(I, t_now) / S(I).
  double Value(double t_now, const DecayFunction& dec, double view_size,
               double view_cost, double adjusted_hits = -1.0) const;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_VIEW_STATS_H_
