#ifndef DEEPSEA_CORE_DECAY_H_
#define DEEPSEA_CORE_DECAY_H_

namespace deepsea {

/// Configuration of the benefit decay function DEC(t_now, t) from
/// Section 7.1. Timestamps are logical: the index of the query in the
/// workload sequence (1-based), so `t_max` is expressed in queries.
struct DecayConfig {
  /// Benefits older than t_max queries are timed out entirely.
  double t_max = 500.0;
  /// When false, DEC is identically 1 (used by the Nectar/Nectar+
  /// baselines, which do not decay benefits, and by the decay ablation).
  bool enabled = true;
};

/// The paper's decay function:
///   DEC(t_now, t) = 0            if t_now - t > t_max
///                 = t / t_now    otherwise,
/// a monotonically decreasing weight (in t_now - t) in [0, 1] that ages
/// out past cost savings so the pool adapts to workload shifts.
class DecayFunction {
 public:
  explicit DecayFunction(DecayConfig config = DecayConfig()) : cfg_(config) {}

  const DecayConfig& config() const { return cfg_; }

  double operator()(double t_now, double t) const {
    if (!cfg_.enabled) return 1.0;
    if (t_now - t > cfg_.t_max) return 0.0;
    if (t_now <= 0.0) return 1.0;
    if (t < 0.0) return 0.0;
    return t / t_now;
  }

 private:
  DecayConfig cfg_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_DECAY_H_
