#include "core/selection_planner.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/partition_match.h"
#include "core/policy.h"
#include "core/view_sizing.h"

namespace deepsea {

SelectionDecision SelectionPlanner::PlanSelection(const QueryContext& ctx,
                                                  double base_seconds) {
  const double t_now = ctx.t_now();
  PlanningDelta* delta = ctx.delta();
  assert(delta != nullptr);
  Catalog* pcat = delta->planning_catalog();
  // Quarantined views (repeated permanent storage faults; see
  // DESIGN.md "Failure model and recovery") are skipped as *candidates*
  // until their cooldown expires, so the planner stops proposing work
  // that keeps failing. Their existing pool content still partakes in
  // the knapsack below: quarantine stops new writes, not reads.
  const int64_t clock_now = static_cast<int64_t>(t_now);

  struct Item {
    enum Kind {
      kPoolFragment,
      kPoolWhole,
      kNewView,          // whole-view creation (unpartitioned)
      kNewViewFragment,  // one fragment of a view's initial partitioning
      kNewFragment,      // refinement of an existing partition
    } kind;
    double value = 0.0;
    double size = 0.0;
    ViewInfo* view = nullptr;
    PartitionState* part = nullptr;
    Interval interval;
  };
  std::vector<Item> items;

  // --- V_sel: filter view candidates by benefit >= cost (Section 7.2).
  //     Partially materialized views stay eligible: their still-
  //     uncovered planned fragments are offered every query (top-up).
  for (const ViewCandidate& cand : ctx.view_candidates) {
    ViewInfo* v = cand.view;
    if (v->Quarantined(clock_now)) continue;
    if (v->stats.size_bytes <= 0.0) continue;
    const double benefit =
        delta->ViewBenefitForFilter(options_->value_model, v, *decay_);
    // Zero-benefit candidates (e.g. one-shot aggregate views that have
    // never matched another query) are never admitted, even when the
    // threshold is relaxed to force eager materialization.
    if (benefit <= 0.0 ||
        benefit < options_->benefit_cost_threshold * v->stats.creation_cost) {
      continue;
    }
    // With a partition, the view enters the selection as individual
    // fragments (the paper's "finer granularity of control", Section
    // 1): under a tight pool only the valuable (hot) fragments are
    // materialized. A view may carry partitions on several attributes
    // (Section 4 permits multiple partitions per view); each offers its
    // fragments independently.
    if (!delta->HasPartitions(v) ||
        options_->strategy == StrategyKind::kNoPartition) {
      if (v->whole_materialized) continue;
      Item it;
      it.kind = Item::kNewView;
      it.view = v;
      it.size = v->stats.size_bytes;
      it.value = delta->ViewValue(options_->value_model, v, *decay_);
      items.push_back(it);
      continue;
    }
    for (const std::string& attr : delta->PartitionAttrs(v)) {
      PartitionState* part = delta->Partition(v, attr);
      if (part == nullptr) continue;
      const std::vector<Interval> mats = part->MaterializedIntervals();
      const std::vector<Interval> planned = ApplyFragmentBounds(
          *pcat, *options_, *v, attr, part,
          InitialFragmentation(*pcat, *options_, *v, attr, *part));
      for (const Interval& iv : planned) {
        // Skip planned pieces whose extent the pool already covers
        // (exactly materialized, or covered by refinement fragments).
        if (!mats.empty() && PartitionMatch(mats, iv).ok()) continue;
        // Inherit hit history from tracked pieces the (possibly merged
        // or split) planned fragment covers, so hot planned fragments
        // carry their evidence into the ranking. EffectiveHits resolves
        // a shadow fragment's base history plus its local suffix.
        std::vector<FragmentHit> inherited;
        if (part->Find(iv) == nullptr) {
          for (const FragmentStats& p : part->fragments) {
            if (iv.Contains(p.interval)) {
              const std::vector<FragmentHit> eh = delta->EffectiveHits(part, &p);
              inherited.insert(inherited.end(), eh.begin(), eh.end());
            }
          }
        }
        FragmentStats* fstat = delta->TrackFragment(
            part, iv, FragmentBytes(*pcat, *v, attr, iv, part));
        if (fstat->hits().empty() && !inherited.empty()) {
          fstat->AdoptHits(std::move(inherited));
        }
        if (fstat->materialized) continue;
        fstat->size_bytes = FragmentBytes(*pcat, *v, attr, iv, part);
        // H(I) is computed once here and reused both by the top-up
        // filter and (through the adjusted-hits override) by the value
        // ranking below — FragmentValue would otherwise replay the same
        // hit list a second time.
        const double hits = delta->DecayedHits(part, fstat, *decay_);
        // Top-up filter: once the view is in the pool, adding a fragment
        // for a still-uncovered range requires recomputing the view's
        // query (Section 7.1: the cost of a fragment not in the pool is
        // the view's creation cost). Only top up when the accumulated
        // hits on the range amortize that (mirrors the P_sel filter);
        // initial creation admits the planned set as a unit.
        if (v->InPool()) {
          const double read_cost =
              cluster_->MapPhaseSeconds({fstat->size_bytes}) +
              2.0 * cluster_->config().job_startup_seconds;
          const double per_hit_saving =
              std::max(0.0, base_seconds - read_cost);
          if (hits * per_hit_saving <
              options_->fragment_benefit_threshold * v->stats.creation_cost) {
            continue;
          }
        }
        Item it;
        it.kind = Item::kNewViewFragment;
        it.view = v;
        it.part = part;
        it.interval = iv;
        it.size = fstat->size_bytes;
        it.value = delta->FragmentValue(options_->value_model, part, fstat,
                                        v->stats.size_bytes,
                                        v->stats.creation_cost, *decay_, hits);
        items.push_back(it);
      }
    }
  }

  // --- MLE smoothing per partition (computed once, reused below).
  const bool use_mle = options_->use_mle_smoothing &&
                       options_->value_model == ValueModel::kDeepSea;
  std::map<const PartitionState*, MleFragmentModel::AdjustedHits> adjusted;
  auto adjusted_hits_for = [&](const PartitionState* part,
                               const FragmentStats* frag) -> double {
    if (!use_mle) return -1.0;
    auto it = adjusted.find(part);
    if (it == adjusted.end()) {
      it = adjusted
               .emplace(part, mle_->Adjust(part->fragments, part->domain,
                                           t_now, *decay_,
                                           delta->BasesOf(part)))
               .first;
    }
    const auto& adj = it->second;
    for (size_t i = 0; i < part->fragments.size(); ++i) {
      if (&part->fragments[i] == frag) return adj.hits[i];
    }
    return -1.0;
  };

  // --- P_sel: filter refinement candidates by benefit >= cost.
  for (const FragmentCandidate& fc : ctx.fragment_candidates) {
    if (fc.view->Quarantined(clock_now)) continue;
    PartitionState* part = delta->Partition(fc.view, fc.attr);
    if (part == nullptr) continue;
    FragmentStats* fstat = part->Find(fc.interval);
    if (fstat == nullptr || fstat->materialized) continue;
    const double adj = adjusted_hits_for(part, fstat);
    const double hits =
        adj >= 0.0 ? adj : delta->DecayedHits(part, fstat, *decay_);
    // Marginal admission: expected read-time saving over the current
    // cover must amortize the creation cost (see FragmentCandidate doc).
    const double benefit = hits * fc.per_hit_saving_seconds;
    if (benefit < options_->fragment_benefit_threshold * fc.est_cost_seconds) {
      continue;
    }
    Item it;
    it.kind = Item::kNewFragment;
    it.view = fc.view;
    it.part = part;
    it.interval = fc.interval;
    it.size = fc.est_bytes;
    // `hits` already folds the MLE adjustment (or the plain decayed
    // count when MLE is off); passing it as the override avoids a
    // second DecayedHits replay inside FragmentValue.
    it.value = delta->FragmentValue(options_->value_model, part, fstat,
                                    fc.view->stats.size_bytes,
                                    fc.view->stats.creation_cost, *decay_,
                                    hits);
    items.push_back(it);
  }

  // --- Existing pool content: every materialized fragment / whole view
  //     partakes individually (Section 7.3).
  //
  // Soft-read window: a pool sweep touches EVERY view, which would give
  // every plan a read footprint conflicting with every commit. The
  // sweep's values only matter when the knapsack is contended — when
  // something gets rejected (evicted, or a new candidate squeezed out).
  // So the reads are buffered softly and promoted into the real read
  // footprint only in that case; an uncontended knapsack (pool fits)
  // admits everything regardless of the swept values, and the plan's
  // decision is insensitive to them.
  delta->BeginSoftReads();
  // The sweep's extent — which views occupy the pool at all — is itself
  // a (soft) read: when the budget binds, a foreign commit creating
  // views changes what this knapsack should have weighed. Creating
  // commits write the membership token (see
  // PlanningDelta::CollectWriteFootprint), so promoted plans conflict
  // with them; uncontended plans drop the read with the window.
  delta->NotePoolMembershipRead();
  for (ViewInfo* v : delta->AllViews()) {
    if (v->whole_materialized) {
      Item it;
      it.kind = Item::kPoolWhole;
      it.view = v;
      it.size = v->stats.size_bytes;
      it.value = delta->ViewValue(options_->value_model, v, *decay_);
      items.push_back(it);
    }
    for (const std::string& attr : delta->PartitionAttrs(v)) {
      PartitionState* part = delta->Partition(v, attr);
      if (part == nullptr) continue;
      for (const FragmentStats& f : part->fragments) {
        if (!f.materialized) continue;
        Item it;
        it.kind = Item::kPoolFragment;
        it.view = v;
        it.part = part;
        it.interval = f.interval;
        it.size = f.size_bytes;
        it.value = delta->FragmentValue(options_->value_model, part, &f,
                                        v->stats.size_bytes,
                                        v->stats.creation_cost, *decay_,
                                        adjusted_hits_for(part, &f));
        items.push_back(it);
      }
    }
  }
  delta->EndSoftReads();

  // --- Greedy knapsack by value (Section 7.3).
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.value > b.value; });
  double budget = options_->pool_limit_bytes;
  std::vector<const Item*> admit;
  std::vector<const Item*> reject;
  for (const Item& it : items) {
    if (it.size <= budget) {
      admit.push_back(&it);
      budget -= it.size;
    } else {
      reject.push_back(&it);
    }
  }
  // Contended knapsack: the pool sweep's values shaped the outcome, so
  // its reads become part of the plan's validated footprint.
  if (!reject.empty()) delta->PromoteSoftReads();

  // Declarative decision: evict rejected pool content first (frees the
  // simulated FS), then materialize admitted new content in greedy
  // order. Admitted pool content and rejected new candidates need no
  // action.
  SelectionDecision decision;
  for (const Item* it : reject) {
    if (it->kind == Item::kPoolWhole) {
      SelectionAction a;
      a.kind = SelectionAction::Kind::kEvictWholeView;
      a.view = it->view;
      a.size_bytes = it->size;
      decision.actions.push_back(a);
    } else if (it->kind == Item::kPoolFragment) {
      SelectionAction a;
      a.kind = SelectionAction::Kind::kEvictFragment;
      a.view = it->view;
      a.part = it->part;
      a.interval = it->interval;
      a.size_bytes = it->size;
      decision.actions.push_back(a);
    }
  }
  for (const Item* it : admit) {
    SelectionAction a;
    a.view = it->view;
    a.part = it->part;
    a.interval = it->interval;
    a.size_bytes = it->size;
    switch (it->kind) {
      case Item::kNewView:
        a.kind = SelectionAction::Kind::kMaterializeView;
        break;
      case Item::kNewViewFragment:
        a.kind = SelectionAction::Kind::kMaterializeViewFragment;
        break;
      case Item::kNewFragment:
        a.kind = SelectionAction::Kind::kMaterializeRefinement;
        break;
      default:
        continue;  // pool content that stays: nothing to do
    }
    decision.benefit_score += it->value;
    decision.actions.push_back(a);
  }
  return decision;
}

}  // namespace deepsea
