#include "core/selection_planner.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/partition_match.h"
#include "core/policy.h"
#include "core/view_sizing.h"

namespace deepsea {

SelectionResolution SelectionPlanner::PlanSelection(const QueryContext& ctx,
                                                    double base_seconds) {
  const double t_now = ctx.t_now();
  PlanningDelta* delta = ctx.delta();
  assert(delta != nullptr);
  Catalog* pcat = delta->planning_catalog();
  // Quarantined views (repeated permanent storage faults; see
  // DESIGN.md "Failure model and recovery") are skipped as *candidates*
  // until their cooldown expires, so the planner stops proposing work
  // that keeps failing. Their existing pool content still partakes in
  // the knapsack below: quarantine stops new writes, not reads.
  const int64_t clock_now = static_cast<int64_t>(t_now);

  using Item = SelectionCandidate;
  std::vector<Item> items;

  // Dense partition ordinal in first-appearance order. Strategies that
  // group items (the clustering pre-pass) key on this ordinal, never on
  // the address-nondeterministic pointer; the map below is a lookup
  // aid only — ordinal values follow item-construction order.
  std::map<const PartitionState*, int> part_ords;
  auto ord_of = [&part_ords](const PartitionState* p) {
    auto it = part_ords.find(p);
    if (it == part_ords.end()) {
      it = part_ords.emplace(p, static_cast<int>(part_ords.size())).first;
    }
    return it->second;
  };

  // --- V_sel: filter view candidates by benefit >= cost (Section 7.2).
  //     Partially materialized views stay eligible: their still-
  //     uncovered planned fragments are offered every query (top-up).
  for (const ViewCandidate& cand : ctx.view_candidates) {
    ViewInfo* v = cand.view;
    if (v->Quarantined(clock_now)) continue;
    if (v->stats.size_bytes <= 0.0) continue;
    const double benefit =
        delta->ViewBenefitForFilter(options_->value_model, v, *decay_);
    // Zero-benefit candidates (e.g. one-shot aggregate views that have
    // never matched another query) are never admitted, even when the
    // threshold is relaxed to force eager materialization.
    if (benefit <= 0.0 ||
        benefit < options_->benefit_cost_threshold * v->stats.creation_cost) {
      continue;
    }
    // With a partition, the view enters the selection as individual
    // fragments (the paper's "finer granularity of control", Section
    // 1): under a tight pool only the valuable (hot) fragments are
    // materialized. A view may carry partitions on several attributes
    // (Section 4 permits multiple partitions per view); each offers its
    // fragments independently.
    if (!delta->HasPartitions(v) ||
        options_->strategy == StrategyKind::kNoPartition) {
      if (v->whole_materialized) continue;
      Item it;
      it.kind = Item::Kind::kNewView;
      it.view = v;
      it.size = v->stats.size_bytes;
      it.value = delta->ViewValue(options_->value_model, v, *decay_);
      items.push_back(it);
      continue;
    }
    for (const std::string& attr : delta->PartitionAttrs(v)) {
      PartitionState* part = delta->Partition(v, attr);
      if (part == nullptr) continue;
      const std::vector<Interval> mats = part->MaterializedIntervals();
      const std::vector<Interval> planned = ApplyFragmentBounds(
          *pcat, *options_, *v, attr, part,
          InitialFragmentation(*pcat, *options_, *v, attr, *part));
      for (const Interval& iv : planned) {
        // Skip planned pieces whose extent the pool already covers
        // (exactly materialized, or covered by refinement fragments).
        if (!mats.empty() && PartitionMatch(mats, iv).ok()) continue;
        // Inherit hit history from tracked pieces the (possibly merged
        // or split) planned fragment covers, so hot planned fragments
        // carry their evidence into the ranking. EffectiveHits resolves
        // a shadow fragment's base history plus its local suffix.
        std::vector<FragmentHit> inherited;
        if (part->Find(iv) == nullptr) {
          for (const FragmentStats& p : part->fragments) {
            if (iv.Contains(p.interval)) {
              const std::vector<FragmentHit> eh = delta->EffectiveHits(part, &p);
              inherited.insert(inherited.end(), eh.begin(), eh.end());
            }
          }
        }
        FragmentStats* fstat = delta->TrackFragment(
            part, iv, FragmentBytes(*pcat, *v, attr, iv, part));
        if (fstat->hits().empty() && !inherited.empty()) {
          fstat->AdoptHits(std::move(inherited));
        }
        if (fstat->materialized) continue;
        fstat->size_bytes = FragmentBytes(*pcat, *v, attr, iv, part);
        // H(I) is computed once here and reused both by the top-up
        // filter and (through the adjusted-hits override) by the value
        // ranking below — FragmentValue would otherwise replay the same
        // hit list a second time.
        const double hits = delta->DecayedHits(part, fstat, *decay_);
        // Top-up filter: once the view is in the pool, adding a fragment
        // for a still-uncovered range requires recomputing the view's
        // query (Section 7.1: the cost of a fragment not in the pool is
        // the view's creation cost). Only top up when the accumulated
        // hits on the range amortize that (mirrors the P_sel filter);
        // initial creation admits the planned set as a unit.
        if (v->InPool()) {
          const double read_cost =
              cluster_->MapPhaseSeconds({fstat->size_bytes}) +
              2.0 * cluster_->config().job_startup_seconds;
          const double per_hit_saving =
              std::max(0.0, base_seconds - read_cost);
          if (hits * per_hit_saving <
              options_->fragment_benefit_threshold * v->stats.creation_cost) {
            continue;
          }
        }
        Item it;
        it.kind = Item::Kind::kNewViewFragment;
        it.view = v;
        it.part = part;
        it.interval = iv;
        it.size = fstat->size_bytes;
        it.part_ord = ord_of(part);
        // Top-up fragments of an in-pool view apply per fragment, so
        // the clustering pre-pass may merge near-duplicates; a not-yet-
        // created view's planned set is admitted as a unit and must
        // keep its exact planned intervals.
        it.mergeable = v->InPool();
        it.value = delta->FragmentValue(options_->value_model, part, fstat,
                                        v->stats.size_bytes,
                                        v->stats.creation_cost, *decay_, hits);
        items.push_back(it);
      }
    }
  }

  // --- MLE smoothing per partition (computed once, reused below).
  const bool use_mle = options_->use_mle_smoothing &&
                       options_->value_model == ValueModel::kDeepSea;
  std::map<const PartitionState*, MleFragmentModel::AdjustedHits> adjusted;
  auto adjusted_hits_for = [&](const PartitionState* part,
                               const FragmentStats* frag) -> double {
    if (!use_mle) return -1.0;
    auto it = adjusted.find(part);
    if (it == adjusted.end()) {
      it = adjusted
               .emplace(part, mle_->Adjust(part->fragments, part->domain,
                                           t_now, *decay_,
                                           delta->BasesOf(part)))
               .first;
    }
    const auto& adj = it->second;
    for (size_t i = 0; i < part->fragments.size(); ++i) {
      if (&part->fragments[i] == frag) return adj.hits[i];
    }
    return -1.0;
  };

  // --- P_sel: filter refinement candidates by benefit >= cost.
  for (const FragmentCandidate& fc : ctx.fragment_candidates) {
    if (fc.view->Quarantined(clock_now)) continue;
    PartitionState* part = delta->Partition(fc.view, fc.attr);
    if (part == nullptr) continue;
    FragmentStats* fstat = part->Find(fc.interval);
    if (fstat == nullptr || fstat->materialized) continue;
    const double adj = adjusted_hits_for(part, fstat);
    const double hits =
        adj >= 0.0 ? adj : delta->DecayedHits(part, fstat, *decay_);
    // Marginal admission: expected read-time saving over the current
    // cover must amortize the creation cost (see FragmentCandidate doc).
    const double benefit = hits * fc.per_hit_saving_seconds;
    if (benefit < options_->fragment_benefit_threshold * fc.est_cost_seconds) {
      continue;
    }
    Item it;
    it.kind = Item::Kind::kNewFragment;
    it.view = fc.view;
    it.part = part;
    it.interval = fc.interval;
    it.size = fc.est_bytes;
    it.part_ord = ord_of(part);
    it.mergeable = true;
    // `hits` already folds the MLE adjustment (or the plain decayed
    // count when MLE is off); passing it as the override avoids a
    // second DecayedHits replay inside FragmentValue.
    it.value = delta->FragmentValue(options_->value_model, part, fstat,
                                    fc.view->stats.size_bytes,
                                    fc.view->stats.creation_cost, *decay_,
                                    hits);
    items.push_back(it);
  }

  // --- Existing pool content: every materialized fragment / whole view
  //     partakes individually (Section 7.3).
  //
  // Soft-read window: a pool sweep touches EVERY view, which would give
  // every plan a read footprint conflicting with every commit. The
  // sweep's values only matter when the knapsack is contended — when
  // something gets rejected (evicted, or a new candidate squeezed out).
  // So the reads are buffered softly and promoted into the real read
  // footprint only in that case; an uncontended knapsack (pool fits)
  // admits everything regardless of the swept values, and the plan's
  // decision is insensitive to them.
  delta->BeginSoftReads();
  // The sweep's extent — which views occupy the pool at all — is itself
  // a (soft) read: when the budget binds, a foreign commit creating
  // views changes what this knapsack should have weighed. Creating
  // commits write the membership token (see
  // PlanningDelta::CollectWriteFootprint), so promoted plans conflict
  // with them; uncontended plans drop the read with the window.
  delta->NotePoolMembershipRead();
  for (ViewInfo* v : delta->AllViews()) {
    if (v->whole_materialized) {
      Item it;
      it.kind = Item::Kind::kPoolWhole;
      it.view = v;
      it.size = v->stats.size_bytes;
      it.value = delta->ViewValue(options_->value_model, v, *decay_);
      items.push_back(it);
    }
    for (const std::string& attr : delta->PartitionAttrs(v)) {
      PartitionState* part = delta->Partition(v, attr);
      if (part == nullptr) continue;
      for (const FragmentStats& f : part->fragments) {
        if (!f.materialized) continue;
        Item it;
        it.kind = Item::Kind::kPoolFragment;
        it.view = v;
        it.part = part;
        it.interval = f.interval;
        it.size = f.size_bytes;
        it.value = delta->FragmentValue(options_->value_model, part, &f,
                                        v->stats.size_bytes,
                                        v->stats.creation_cost, *decay_,
                                        adjusted_hits_for(part, &f));
        items.push_back(it);
      }
    }
  }
  delta->EndSoftReads();

  // --- Knapsack by value (Section 7.3), delegated to the configured
  //     SelectionStrategy. The default greedy strategy reproduces the
  //     historical inline scan bit-identically (stable sort by value,
  //     admit while it fits, evictions then materializations).
  SelectionInput input;
  input.items = std::move(items);
  input.budget_bytes = options_->pool_limit_bytes;
  input.config = options_->selection;
  const SelectionStrategy* strategy =
      SelectionStrategy::ForKind(options_->selection.kind);
  SelectionResolution res = strategy->Resolve(input);

  // Contended knapsack: the pool sweep's values shaped the outcome, so
  // its reads become part of the plan's validated footprint.
  if (res.contended) delta->PromoteSoftReads();

  // Post-pass guards for strategies that synthesize actions the item
  // construction above did not vet (the clustering pre-pass emits hull
  // refinements): drop refinements whose exact interval the partition
  // already holds materialized (Apply's MaterializeFragment would
  // double-write the same path), and duplicate materializations of the
  // same (view, partition, interval). Both conditions are pre-filtered
  // at construction for planner-built items, so the greedy and
  // local-search decisions pass through untouched.
  if (options_->selection.kind != SelectionStrategyKind::kGreedy) {
    std::vector<SelectionAction> kept;
    kept.reserve(res.decision.actions.size());
    for (const SelectionAction& a : res.decision.actions) {
      if (a.kind == SelectionAction::Kind::kMaterializeRefinement &&
          a.part != nullptr) {
        const FragmentStats* f = a.part->Find(a.interval);
        if (f != nullptr && f->materialized) continue;
      }
      if (a.kind == SelectionAction::Kind::kMaterializeRefinement ||
          a.kind == SelectionAction::Kind::kMaterializeViewFragment) {
        bool dup = false;
        for (const SelectionAction& k : kept) {
          if (k.kind == a.kind && k.view == a.view && k.part == a.part &&
              k.interval == a.interval) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
      }
      kept.push_back(a);
    }
    res.decision.actions = std::move(kept);
  }
  return res;
}

}  // namespace deepsea
