#ifndef DEEPSEA_CORE_POOL_MANAGER_H_
#define DEEPSEA_CORE_POOL_MANAGER_H_

#include <string>

#include "catalog/table.h"
#include "core/decay.h"
#include "core/engine_observer.h"
#include "core/engine_options.h"
#include "core/query_context.h"
#include "core/selection_planner.h"
#include "core/view_catalog.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "storage/sim_fs.h"

namespace deepsea {

/// Stage 4 of the pipeline and the owner of all durable pool state: the
/// view catalog (STAT) and the simulated file system. PoolManager is
/// the only component that flips `materialized` flags, creates/deletes
/// SimFs files, and charges materialization seconds — the planner
/// stages merely read the pool and emit SelectionDecisions for Apply to
/// execute. It also runs the Section 11 fragment-merge maintenance
/// pass and registers view tables (estimated logical statistics) in the
/// relational catalog.
class PoolManager {
 public:
  PoolManager(Catalog* catalog, const EngineOptions* options,
              const ClusterModel* cluster, const PlanCostEstimator* estimator)
      : catalog_(catalog),
        options_(options),
        cluster_(cluster),
        estimator_(estimator),
        fs_(options->cluster.block_bytes) {}

  const ViewCatalog& views() const { return views_; }
  ViewCatalog* mutable_views() { return &views_; }
  const SimFs& fs() const { return fs_; }
  SimFs* mutable_fs() { return &fs_; }

  /// Current pool occupancy in bytes (S(C)).
  double PoolBytes() const { return views_.PoolBytes(); }

  /// Observer for materialize/evict/merge events (nullptr = silent).
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Ensures `view` is registered as a relational catalog table with
  /// estimated logical statistics (needed by the cost estimator).
  void RegisterViewTable(ViewInfo* view);

  /// Executes a SelectionDecision: evictions first, then
  /// materializations. Charges report->materialize_seconds and updates
  /// the created/evicted counters. `ctx` supplies the current query's
  /// fragment cover (parents already read by the query are free to
  /// re-scan during repartitioning).
  void Apply(const SelectionDecision& decision, const QueryContext& ctx,
             QueryReport* report);

  /// Fragment-merging maintenance pass (Section 11 extension); returns
  /// the simulated seconds charged.
  double RunMergePass(double t_now, const DecayFunction& decay,
                      QueryReport* report);

  // --- creation / eviction primitives (used by Apply and by state
  //     restore; exposed for direct stage tests) ---

  /// Materializes `view` (initial partitioned creation). Returns the
  /// extra simulated seconds charged.
  double MaterializeView(ViewInfo* view, QueryReport* report);
  /// Creates one refinement fragment (overlapping or by splitting).
  double MaterializeFragment(ViewInfo* view, PartitionState* part,
                             const Interval& iv, const QueryContext& ctx,
                             QueryReport* report);
  /// Evicts a fragment (or whole view) from the pool.
  void EvictFragment(ViewInfo* view, PartitionState* part, FragmentStats* frag);
  void EvictWholeView(ViewInfo* view);

 private:
  Catalog* catalog_;
  const EngineOptions* options_;
  const ClusterModel* cluster_;
  const PlanCostEstimator* estimator_;
  SimFs fs_;
  ViewCatalog views_;
  EngineObserver* observer_ = nullptr;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_POOL_MANAGER_H_
