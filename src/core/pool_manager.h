#ifndef DEEPSEA_CORE_POOL_MANAGER_H_
#define DEEPSEA_CORE_POOL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "core/decay.h"
#include "core/engine_observer.h"
#include "core/engine_options.h"
#include "core/query_context.h"
#include "core/selection_planner.h"
#include "core/view_catalog.h"
#include "rewrite/filter_tree.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "storage/sim_fs.h"

namespace deepsea {

class PoolManager;

/// RAII ownership of a PoolManager's exclusive commit section. A guard
/// is obtained from PoolManager::BeginCommit and proves — by being
/// passed to the guarded accessors — that the caller holds the commit
/// lock. Movable (so engines can return/stash it), not copyable.
/// Destroying or Release()ing the guard unlocks the pool.
class CommitGuard {
 public:
  CommitGuard() = default;
  CommitGuard(CommitGuard&& other) noexcept : pool_(other.pool_) {
    other.pool_ = nullptr;
  }
  CommitGuard& operator=(CommitGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  CommitGuard(const CommitGuard&) = delete;
  CommitGuard& operator=(const CommitGuard&) = delete;
  ~CommitGuard() { Release(); }

  bool held() const { return pool_ != nullptr; }
  void Release();

 private:
  friend class PoolManager;
  explicit CommitGuard(PoolManager* pool) : pool_(pool) {}

  PoolManager* pool_ = nullptr;
};

/// Stage 4 of the pipeline and the owner of all durable pool state: the
/// view catalog (STAT), the simulated file system, the rewrite index,
/// and the global commit clock. PoolManager is the only component that
/// flips `materialized` flags, creates/deletes SimFs files, and charges
/// materialization seconds — the planner stages merely read the pool
/// and emit SelectionDecisions for Apply to execute. It also runs the
/// Section 11 fragment-merge maintenance pass and registers view tables
/// (estimated logical statistics) in the relational catalog.
///
/// Tenancy and locking: one PoolManager may be shared by several
/// DeepSeaEngine instances (one per tenant) running on different
/// threads. All pool *mutation* must happen inside the exclusive
/// commit section bracketed by a CommitGuard; mutable access to the
/// catalog / FS / index is only available through accessors that take
/// the guard as a token, so the type system enforces the discipline.
/// The *planning* stages, by contrast, run under SharedLock(): they
/// buffer every would-be STAT write (Algorithm 1 line 2) into the
/// query's PlanningDelta instead of mutating shared state, and Apply
/// folds that buffer into the pool at the top of the commit. Planning
/// is speculative — engines validate via commit_epoch() that no other
/// commit intervened between planning and their own commit, and replan
/// under the exclusive lock when one did (see DESIGN.md, "Statistics
/// hot path and locking discipline"). The commit section also carries
/// the committing tenant's observer: pool mutation events are routed
/// to it, stamped with the tenant id.
///
/// Read access: the `*Snapshot()` methods take the commit lock in
/// shared mode and are safe from any thread (monitoring). The plain
/// const accessors (`views()`, `fs()`, `PoolBytes()`) are unlocked and
/// require the caller to either hold the commit guard or know the pool
/// is externally quiesced — taking even a shared lock there would
/// self-deadlock the engine pipeline, which reads them mid-commit.
class PoolManager {
 public:
  PoolManager(Catalog* catalog, const EngineOptions* options,
              const ClusterModel* cluster, const PlanCostEstimator* estimator)
      : catalog_(catalog),
        options_(options),
        cluster_(cluster),
        estimator_(estimator),
        fs_(options->cluster.block_bytes),
        decay_(options->decay) {}

  // --- commit protocol ---

  /// Enters the exclusive commit section, blocking until every other
  /// commit (and shared-mode snapshot) has drained. `observer` receives
  /// the pool-mutation events of this commit (nullptr = silent);
  /// `tenant` / `tenant_ord` stamp those events and the recorded
  /// statistics. Re-entering from the thread that already holds the
  /// commit is a programming error (asserts in debug builds).
  CommitGuard BeginCommit(EngineObserver* observer = nullptr,
                          std::string tenant = std::string(),
                          int32_t tenant_ord = 0);

  /// True when the calling thread is inside the commit section. The
  /// mutation primitives assert this in debug builds.
  bool CommitHeldByThisThread() const;

  // --- guarded mutable access (the guard token proves the lock) ---

  ViewCatalog* stat(const CommitGuard& commit);
  SimFs* fs(const CommitGuard& commit);
  /// The signature -> view-id rewrite index shared by all tenants (a
  /// tenant must be able to match views created by another).
  FilterTree* rewrite_index(const CommitGuard& commit);

  // --- unlocked const access (commit held or externally quiesced) ---

  const ViewCatalog& views() const { return views_; }
  const SimFs& fs() const { return fs_; }
  const EngineOptions& options() const { return *options_; }

  /// Current pool occupancy in bytes (S(C)). Unlocked — see class doc.
  double PoolBytes() const { return views_.PoolBytes(); }

  // --- shared-mode snapshots (safe from any thread) ---

  double PoolBytesSnapshot() const;
  /// Shared-mode lock for multi-read consistency (SaveState, and the
  /// speculative planning phase of ProcessQuery).
  std::shared_lock<std::shared_mutex> SharedLock() const {
    return std::shared_lock<std::shared_mutex>(commit_mu_);
  }

  /// Number of commit sections entered so far. Read it under the shared
  /// lock before planning and compare after BeginCommit: if exactly one
  /// commit (your own) intervened, the pool is unchanged since planning
  /// and the speculative plan is valid. Only meaningful while holding
  /// the shared or exclusive commit lock (the counter is written inside
  /// BeginCommit, under the exclusive lock).
  uint64_t commit_epoch() const { return commit_epoch_; }

  /// Aggregate wall-clock time the exclusive commit lock has been held,
  /// and the number of commit sections entered. Maintained with two
  /// steady_clock reads per commit (negligible next to any commit's
  /// work); reads are relaxed-atomic, so monitors may sample
  /// concurrently, but a consistent pair requires a quiesced pool.
  /// bench_hotpath reports held_seconds / wall_seconds as the commit
  /// serialization fraction.
  struct CommitLockStats {
    uint64_t commits = 0;
    double held_seconds = 0.0;
  };
  CommitLockStats commit_lock_stats() const {
    CommitLockStats s;
    s.commits = commit_epoch_entered_.load(std::memory_order_relaxed);
    s.held_seconds =
        static_cast<double>(commit_held_ns_.load(std::memory_order_relaxed)) *
        1e-9;
    return s;
  }

  // --- global commit clock ---

  /// Advances the commit clock by one and returns the new value: the
  /// position of the current commit in the pool's total commit order.
  /// With a single tenant this yields the query sequence 1..N, exactly
  /// the engine-local clock it replaces; with several tenants it makes
  /// benefit decay age consistently across their interleaved commits.
  int64_t Tick(const CommitGuard& commit);
  /// Clock merge for state restore: advances to `t` when larger.
  void AdvanceClockTo(const CommitGuard& commit, int64_t t);
  int64_t clock() const { return clock_.load(std::memory_order_relaxed); }

  // --- tenant registry ---

  /// Interns `name` and returns its stable ordinal (BenefitEvent /
  /// FragmentHit stamp). "" is the pre-interned default tenant, 0.
  /// Thread-safe independently of the commit lock.
  int32_t InternTenant(const std::string& name);
  /// Name for an interned ordinal ("" for 0 or unknown ordinals).
  std::string TenantName(int32_t ord) const;
  /// All interned tenant names, indexed by ordinal.
  std::vector<std::string> Tenants() const;

  // --- fault injection ---

  /// Installs (or clears, with nullptr) the simulated FS's fault policy.
  /// Takes the commit lock itself; call from outside the commit section.
  void SetFaultPolicy(FaultPolicy* policy);

  // --- mutation API (requires the commit section; asserts in debug) ---

  /// Ensures `view` is registered as a relational catalog table with
  /// estimated logical statistics (needed by the cost estimator).
  void RegisterViewTable(ViewInfo* view);

  /// Planning-phase counterpart of RegisterViewTable: registers the
  /// table in the delta's planning catalog (deferring the real Put to
  /// the fold) and sets the delta-owned view's estimated statistics.
  /// Reads only immutable state, so it is safe under the shared lock.
  void RegisterViewTablePlanning(ViewInfo* view, PlanningDelta* delta) const;

  /// Executes a SelectionDecision transactionally: evictions first, then
  /// materializations, all staged through a rollback journal. Charges
  /// report->materialize_seconds and updates the created/evicted
  /// counters. `ctx` supplies the current query's fragment cover
  /// (parents already read by the query are free to re-scan during
  /// repartitioning).
  ///
  /// On a storage fault the pool — view metadata, FS files, statistics —
  /// and `report` are rolled back to their pre-Apply images; then
  /// report->fault_view / fault_message identify the failed action and
  /// the fault's status is returned, so the caller can retry the whole
  /// decision (transient) or abandon it (permanent). Observer
  /// notifications are deferred to the transaction commit: a rolled-back
  /// attempt emits no pool-mutation events.
  Status Apply(const SelectionDecision& decision, const QueryContext& ctx,
               QueryReport* report);

  /// Fragment-merging maintenance pass (Section 11 extension); returns
  /// the simulated seconds charged. Transactional like Apply: a fault
  /// rolls back the whole pass (and `report`) and returns its status.
  Result<double> RunMergePass(double t_now, const DecayFunction& decay,
                              QueryReport* report);

  // --- creation / eviction primitives (used by Apply and by state
  //     restore; exposed for direct stage tests) ---
  //
  // Each primitive orders its work "FS operation first, metadata
  // second", so a fault leaves per-piece accounting consistent (a
  // materialized flag is only set once its file exists, and only
  // cleared once its file is gone). Multi-piece atomicity — undoing the
  // pieces staged before the fault — comes from the surrounding
  // transaction: inside Apply / RunMergePass a failed primitive rolls
  // the whole decision back; called directly, a failed primitive may
  // leave earlier pieces in place (still invariant-clean).

  /// Materializes `view` (initial partitioned creation). Returns the
  /// extra simulated seconds charged.
  Result<double> MaterializeView(ViewInfo* view, QueryReport* report);
  /// Creates one refinement fragment (overlapping or by splitting).
  Result<double> MaterializeFragment(ViewInfo* view, PartitionState* part,
                                     const Interval& iv,
                                     const QueryContext& ctx,
                                     QueryReport* report);
  /// Evicts a fragment from the pool (one OnEvict per call). An
  /// eviction whose backing file is missing is a pool-accounting bug:
  /// it asserts in debug builds and returns Internal in release.
  Status EvictFragment(ViewInfo* view, PartitionState* part,
                       FragmentStats* frag);
  /// Evicts a whole view: its full materialization AND every
  /// materialized fragment, firing one OnEvict per piece (the same
  /// notifications the per-fragment path emits, so observer eviction
  /// counters agree with QueryReport). Returns the number of pieces
  /// evicted — 0 when the view held nothing.
  Result<int> EvictWholeView(ViewInfo* view);

  // --- fault quarantine (see DESIGN.md, "Failure model and recovery") ---

  /// Records one permanent decision failure against `view_id`; once
  /// options().fault.quarantine_threshold failures accumulate, the view
  /// is quarantined until commit clock `now` + cooldown (the
  /// SelectionPlanner skips quarantined views' candidates). Successful
  /// materialization clears the record. Requires the commit section.
  void RecordViewFault(const std::string& view_id, int64_t now);

 private:
  friend class CommitGuard;
  void ReleaseCommit();

  /// Advances every view's and fragment's timed-out-prefix cursor to
  /// `t_now` (called after each delta fold, inside the exclusive commit
  /// section, so evaluations under the shared lock stay O(in-window
  /// suffix) even for cold entries).
  void AdvanceAllWindows(double t_now);

  // --- decision transaction (stage-then-commit rollback journal) ---
  //
  // TxnBegin arms the journal; every fs mutation goes through TxnPut /
  // TxnDelete (which record first-touch file preimages), every metadata
  // mutation is covered by TxnSnapshotView (full pre-image of the
  // view's mutable state), and observer notifications queue in
  // txn_events_. TxnCommit flushes the events and drops the journal;
  // TxnRollback restores every snapshot/preimage and discards the
  // events. With no transaction armed the helpers degrade to the plain
  // operations (direct primitive calls from tests / state restore).
  void TxnBegin();
  void TxnCommit();
  void TxnRollback();
  void TxnSnapshotView(ViewInfo* view);
  Status TxnPut(const std::string& path, double bytes);
  Status TxnDelete(const std::string& path);
  void NotifyMaterializeView(const ViewInfo* view, double sim_seconds);
  void NotifyMaterializeFragment(const ViewInfo* view, const std::string& attr,
                                 const Interval& interval, double bytes);
  void NotifyEvict(const ViewInfo* view, const std::string& attr,
                   const Interval& interval, double bytes);
  void NotifyMerge(const ViewInfo* view, const std::string& attr,
                   const Interval& merged, double bytes);

  /// Apply's action loop, run inside an armed transaction. On failure
  /// sets `fault_view` to the failing action's view id and returns the
  /// fault without unwinding (Apply rolls back).
  Status ApplyStaged(const SelectionDecision& decision,
                     const QueryContext& ctx, QueryReport* report,
                     std::string* fault_view);
  /// RunMergePass's merge loop, run inside an armed transaction.
  Result<double> MergeStaged(double t_now, const DecayFunction& decay,
                             QueryReport* report);

  /// Pre-image of one view's mutable pool state. Rollback restores the
  /// partitions *in place* (per-attr assignment into the existing map
  /// nodes) so PartitionState addresses held by the decision's actions
  /// stay valid across a rollback + retry.
  struct TxnViewImage {
    ViewInfo* view = nullptr;
    bool whole_materialized = false;
    ViewStats stats;
    int fault_count = 0;
    int64_t quarantined_until = 0;
    std::map<std::string, PartitionState> partitions;
  };
  /// First-touch pre-image of one FS path.
  struct TxnFileImage {
    std::string path;
    bool existed = false;
    double bytes = 0.0;
  };
  /// One deferred observer notification; arguments are captured at queue
  /// time so deferred firing is argument-identical to inline firing.
  struct TxnEvent {
    enum class Kind { kMaterializeView, kMaterializeFragment, kEvict, kMerge };
    Kind kind = Kind::kMaterializeView;
    const ViewInfo* view = nullptr;
    std::string attr;
    Interval interval;
    double value = 0.0;  ///< sim_seconds (view) or bytes (fragment events)
  };

  // Journals are vectors scanned linearly (a decision touches few views
  // / files); pointer-keyed maps would make rollback order depend on
  // heap addresses. Valid only while txn_active_.
  bool txn_active_ = false;
  std::vector<TxnViewImage> txn_views_;
  std::vector<TxnFileImage> txn_files_;
  std::vector<TxnEvent> txn_events_;

  Catalog* catalog_;
  const EngineOptions* options_;
  const ClusterModel* cluster_;
  const PlanCostEstimator* estimator_;
  SimFs fs_;
  ViewCatalog views_;
  FilterTree rewrite_index_;
  DecayFunction decay_;  ///< pool-side decay (cursor advancement)
  std::atomic<int64_t> clock_{0};  ///< written only inside the commit section
  /// Commits entered so far. Plain (not atomic) on purpose: written
  /// under the exclusive lock, read under shared/exclusive — the
  /// shared_mutex provides the happens-before edge.
  uint64_t commit_epoch_ = 0;

  /// Commit-lock hold-time accounting (see commit_lock_stats()).
  /// `commit_entered_at_ns_` is only touched inside the commit section;
  /// the accumulators are relaxed atomics so monitors may sample them.
  int64_t commit_entered_at_ns_ = 0;
  std::atomic<uint64_t> commit_epoch_entered_{0};
  std::atomic<int64_t> commit_held_ns_{0};

  /// Exclusive = commit section; shared = *Snapshot() readers.
  mutable std::shared_mutex commit_mu_;
  /// Address of a thread_local in the committing thread (0 = free);
  /// lets mutators assert the lock discipline without owning a TLS key.
  std::atomic<uintptr_t> commit_owner_{0};
  // Commit context: set by BeginCommit, cleared on release. Only
  // touched inside the commit section.
  EngineObserver* commit_observer_ = nullptr;
  std::string commit_tenant_;
  int32_t commit_tenant_ord_ = 0;

  /// Guards the tenant registry alone — never held together with
  /// commit_mu_, so InternTenant is callable from any context
  /// (including inside a commit, e.g. during LoadState).
  mutable std::mutex tenant_mu_;
  std::vector<std::string> tenants_{std::string()};
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_POOL_MANAGER_H_
