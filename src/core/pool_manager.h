#ifndef DEEPSEA_CORE_POOL_MANAGER_H_
#define DEEPSEA_CORE_POOL_MANAGER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/table.h"
#include "core/commit_footprint.h"
#include "core/decay.h"
#include "core/engine_observer.h"
#include "core/engine_options.h"
#include "core/query_context.h"
#include "core/selection_planner.h"
#include "core/view_catalog.h"
#include "rewrite/filter_tree.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "storage/sim_fs.h"

namespace deepsea {

class MaterializationService;
class PoolManager;

/// Three-mode pool lock (see DESIGN.md, "Statistics hot path and
/// locking discipline"):
///
///   S  (shared)          planning stages, SaveState, metric snapshots
///   IX (intent-exclusive) sharded commits — admit each other, their
///                        actual data writes are serialized by the
///                        per-view commit shards
///   X  (exclusive)       structural commits (view creation, eviction,
///                        merge passes, state loads, the legacy token-
///                        only BeginCommit)
///
/// Compatibility: S admits only S, IX admits only IX, X admits nothing.
/// Planning is therefore still strictly exclusive with every commit —
/// exactly the PR 4 invariant that lets planners read shared state
/// without per-view read locks — while commits with disjoint footprints
/// overlap with one another. A pending X blocks new S/IX entrants, so
/// structural commits cannot starve; a pending IX likewise blocks new S
/// entrants (but defers to a pending X), so sharded commits cannot be
/// starved by continuous planning traffic.
class PoolLock {
 public:
  void LockShared();
  void UnlockShared();
  void LockIntent();
  void UnlockIntent();
  void LockExclusive();
  void UnlockExclusive();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int shared_ = 0;
  int intent_ = 0;
  int intent_waiting_ = 0;
  int exclusive_waiting_ = 0;
  bool exclusive_ = false;
};

/// Movable RAII holder of a PoolLock's S mode (what
/// PoolManager::SharedLock() returns).
class PoolSharedLock {
 public:
  PoolSharedLock() = default;
  explicit PoolSharedLock(PoolLock* lock) : lock_(lock) {
    lock_->LockShared();
  }
  PoolSharedLock(PoolSharedLock&& other) noexcept : lock_(other.lock_) {
    other.lock_ = nullptr;
  }
  PoolSharedLock& operator=(PoolSharedLock&& other) noexcept {
    if (this != &other) {
      Release();
      lock_ = other.lock_;
      other.lock_ = nullptr;
    }
    return *this;
  }
  PoolSharedLock(const PoolSharedLock&) = delete;
  PoolSharedLock& operator=(const PoolSharedLock&) = delete;
  ~PoolSharedLock() { Release(); }

  void Release() {
    if (lock_ == nullptr) return;
    lock_->UnlockShared();
    lock_ = nullptr;
  }

 private:
  PoolLock* lock_ = nullptr;
};

/// RAII ownership of a PoolManager commit section — exclusive (X) when
/// obtained from BeginCommit, sharded (IX + view-group shard locks)
/// when obtained from TryBeginShardedCommit. A guard proves — by being
/// passed to the guarded accessors — that the caller holds the commit.
/// Movable (so engines can return/stash it), not copyable. Destroying
/// or Release()ing the guard publishes the commit's write footprint and
/// unlocks the pool.
class CommitGuard {
 public:
  CommitGuard() = default;
  CommitGuard(CommitGuard&& other) noexcept : pool_(other.pool_) {
    other.pool_ = nullptr;
  }
  CommitGuard& operator=(CommitGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  CommitGuard(const CommitGuard&) = delete;
  CommitGuard& operator=(const CommitGuard&) = delete;
  ~CommitGuard() { Release(); }

  bool held() const { return pool_ != nullptr; }
  void Release();

 private:
  friend class PoolManager;
  explicit CommitGuard(PoolManager* pool) : pool_(pool) {}

  PoolManager* pool_ = nullptr;
};

/// Stage 4 of the pipeline and the owner of all durable pool state: the
/// view catalog (STAT), the simulated file system, the rewrite index,
/// and the global commit clock. PoolManager is the only component that
/// flips `materialized` flags, creates/deletes SimFs files, and charges
/// materialization seconds — the planner stages merely read the pool
/// and emit SelectionDecisions for Apply to execute. It also runs the
/// Section 11 fragment-merge maintenance pass and registers view tables
/// (estimated logical statistics) in the relational catalog.
///
/// Tenancy and locking: one PoolManager may be shared by several
/// DeepSeaEngine instances (one per tenant) running on different
/// threads. The *planning* stages run under SharedLock(): they buffer
/// every would-be STAT write (Algorithm 1 line 2) into the query's
/// PlanningDelta — recording the read footprint as they go — and Apply
/// folds that buffer into the pool at the top of the commit. Commits
/// come in two flavors:
///
///  * Sharded (TryBeginShardedCommit): IX on the pool lock plus the
///    per-view commit shards of the write footprint, acquired in
///    ascending shard order (deadlock-free). Validation is read-set
///    conflict detection: the commit proceeds only when no foreign
///    write footprint published after the plan's read epoch — and no
///    in-flight sharded commit — intersects the plan's read footprint.
///    Disjoint-footprint tenants therefore commit truly concurrently.
///
///  * Exclusive (BeginCommit): the global X path for work whose write
///    set cannot be bounded up front — merge passes, inline evictions,
///    physical execution, state loads — and for replans after a failed
///    sharded validation. View creation is NOT on this list anymore:
///    structural deltas publish precise footprints (see
///    PlanningDelta::CollectWriteFootprint) and fold under the sharded
///    path, serialized against each other and against mid-commit
///    catalog readers by catalog_mu_. Publishes `all` by default;
///    engines narrow it via SetCommitFootprint.
///
/// The commit section carries the committing tenant's observer in
/// thread-local commit context: pool mutation events are routed to it,
/// stamped with the tenant id.
///
/// Read access: the `*Snapshot()` methods take the pool lock in S mode
/// and are safe from any thread (monitoring). The plain const accessors
/// (`views()`, `fs()`, `PoolBytes()`) are unlocked and require the
/// caller to either hold a commit guard or know the pool is externally
/// quiesced — taking even a shared lock there would self-deadlock the
/// engine pipeline, which reads them mid-commit. (PoolBytes itself sums
/// per-view atomic byte caches, so sampling it from inside a sharded
/// commit is race-free even while foreign commits mutate their views.)
class PoolManager {
 public:
  /// Out-of-line: constructs the materialization service when
  /// options->materialization.mode != kInline (the default inline mode
  /// allocates nothing and pays nothing). The destructor shuts the
  /// service down (join workers, drain leftovers) before any pool state
  /// is torn down.
  PoolManager(Catalog* catalog, const EngineOptions* options,
              const ClusterModel* cluster, const PlanCostEstimator* estimator);
  ~PoolManager();

  PoolManager(const PoolManager&) = delete;
  PoolManager& operator=(const PoolManager&) = delete;

  // --- commit protocol ---

  /// Enters the exclusive (X) commit section, blocking until every
  /// other commit, sharded commit, and shared-mode reader has drained.
  /// `observer` receives the pool-mutation events of this commit
  /// (nullptr = silent); `tenant` / `tenant_ord` stamp those events and
  /// the recorded statistics. Unless narrowed via SetCommitFootprint,
  /// the commit publishes an `all` write footprint (conservatively
  /// invalidating every in-flight plan — correct for arbitrary direct
  /// mutation through the guarded accessors). Re-entering from a thread
  /// that already holds a commit is a programming error (asserts in
  /// debug builds).
  CommitGuard BeginCommit(EngineObserver* observer = nullptr,
                          std::string tenant = std::string(),
                          int32_t tenant_ord = 0);

  /// Attempts a sharded (IX) commit for a plan whose reads are
  /// `read_fp` (recorded under SharedLock at epoch `read_epoch`) and
  /// whose writes are `write_fp`. Acquires IX plus the write set's
  /// commit shards, then validates the read set against every foreign
  /// write footprint published after `read_epoch` and every in-flight
  /// sharded commit, and checks that `admitted_bytes` (the estimated
  /// pool growth of the plan's materializations) still fits the pool
  /// budget alongside every in-flight commit's claim — pool occupancy
  /// is not part of any read footprint, so concurrent growth would
  /// otherwise be invisible to uncontended plans.
  ///
  /// On success returns a held guard; the commit owns exactly its
  /// shards, must confine mutation to its write footprint, and
  /// publishes `write_fp` on release. On conflict returns an empty
  /// guard with *conflict_genuine set: true when a footprint actually
  /// intersected (or the budget headroom is gone), false when the
  /// bounded epoch table could no longer cover `read_epoch` (a
  /// spurious, conservative invalidation). The caller escalates to
  /// BeginCommit and replans there.
  ///
  /// A structural (`all`) write footprint has no shard set and is
  /// rejected outright (empty guard, genuine): such commits must take
  /// the BeginCommit path.
  ///
  /// `ignore_seq`, when non-zero, exempts the published footprint with
  /// exactly that sequence number from validation. A background
  /// materialization job validates at its plan's read epoch but must
  /// not be invalidated by its own query's statistics publish — the
  /// job passes that publish's seq (from PublishCommitEarly) here.
  CommitGuard TryBeginShardedCommit(EngineObserver* observer,
                                    std::string tenant, int32_t tenant_ord,
                                    CommitFootprint write_fp,
                                    const CommitFootprint& read_fp,
                                    uint64_t read_epoch,
                                    bool* conflict_genuine,
                                    double admitted_bytes = 0.0,
                                    uint64_t ignore_seq = 0);

  /// Re-validates a read set from inside an exclusive commit (no
  /// in-flight sharded commits can exist there). Same conflict,
  /// budget-headroom, and `ignore_seq` semantics as
  /// TryBeginShardedCommit; used by the engine's X path, the
  /// materialization service's exclusive jobs, and the conflict tests.
  bool ValidateReadSet(const CommitGuard& commit,
                       const CommitFootprint& read_fp, uint64_t read_epoch,
                       bool* conflict_genuine,
                       double admitted_bytes = 0.0,
                       uint64_t ignore_seq = 0) const;

  /// Overrides the write footprint this commit publishes on release
  /// (BeginCommit's default is `all`; a validated engine commit knows
  /// its precise writes). An empty footprint publishes nothing — the
  /// epoch does not advance.
  void SetCommitFootprint(const CommitGuard& commit, CommitFootprint fp);

  /// Publishes this commit's write footprint *now* instead of at
  /// release, and returns the sequence number the publish received (0
  /// when the footprint was empty and nothing was published). The
  /// async-materialization stats commit uses this so the query can
  /// enqueue its decision intent carrying the seq of its own publish —
  /// the job's revalidation then skips exactly that entry. After this
  /// call the commit releases without publishing again (a subsequent
  /// SetCommitFootprint re-arms a release-time publish).
  uint64_t PublishCommitEarly(const CommitGuard& commit);

  /// Folds the query's PlanningDelta into the pool (statistics,
  /// tracked fragments, deferred catalog puts) and advances the decay
  /// windows — exactly the fold Apply performs first, without executing
  /// any decision. The async stats-only commit uses it; Apply later
  /// sees the delta folded and skips the fold. No-op when already
  /// folded.
  void FoldPlanningDelta(const CommitGuard& commit, const QueryContext& ctx);

  /// The epoch to sample (under SharedLock) before planning: the
  /// sequence number of the latest published commit. Passed to
  /// TryBeginShardedCommit / ValidateReadSet as `read_epoch`.
  uint64_t read_epoch() const {
    return commit_seq_.load(std::memory_order_acquire);
  }

  /// True when the calling thread is inside a commit section of this
  /// pool. The mutation primitives assert this in debug builds.
  bool CommitHeldByThisThread() const;

  // --- guarded mutable access (the guard token proves the lock) ---

  ViewCatalog* stat(const CommitGuard& commit);
  SimFs* fs(const CommitGuard& commit);
  /// The signature -> view-id rewrite index shared by all tenants (a
  /// tenant must be able to match views created by another).
  FilterTree* rewrite_index(const CommitGuard& commit);

  // --- unlocked const access (commit held or externally quiesced) ---

  const ViewCatalog& views() const { return views_; }
  const SimFs& fs() const { return fs_; }
  const EngineOptions& options() const { return *options_; }

  /// Current pool occupancy in bytes (S(C)). Sums the per-view atomic
  /// byte caches under the shared catalog-structure lock (a foreign
  /// sharded commit's fold may be growing the view list concurrently);
  /// the per-view values themselves are race-free atomics.
  double PoolBytes() const {
    std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
    return views_.PoolBytes();
  }

  // --- shared-mode snapshots (safe from any thread) ---

  double PoolBytesSnapshot() const;
  /// Shared-mode (S) lock for multi-read consistency (SaveState, and
  /// the speculative planning phase of ProcessQuery).
  PoolSharedLock SharedLock() const { return PoolSharedLock(&lock_); }

  /// The shared placeholder-id counter ViewIdReservation leases blocks
  /// from (one reservation per engine; see planning_delta.h). Lock-free.
  std::atomic<int64_t>* placeholder_counter() { return &placeholder_counter_; }

  /// Shared (read) hold on the catalog-structure lock, for code inside
  /// a *sharded* commit that reads catalog-level structure — the
  /// relational Catalog's table map, the ViewCatalog's view list/maps —
  /// which a concurrent foreign sharded commit's delta fold may be
  /// growing. Exclusive commits and planners (S mode) never need it:
  /// they exclude folds wholesale through the pool lock. Do not nest,
  /// and never acquire epoch_mu_ / shard locks while holding it.
  std::shared_lock<std::shared_mutex> CatalogSharedLock() const {
    return std::shared_lock<std::shared_mutex>(catalog_mu_);
  }

  /// Number of commit sections entered so far (exclusive and sharded).
  /// Monitoring only — plan validation uses read_epoch().
  uint64_t commit_epoch() const {
    return commits_entered_.load(std::memory_order_relaxed);
  }

  /// Aggregate wall-clock time spent inside commit sections, and the
  /// number of commit sections entered. Sharded commits overlap, so
  /// held_seconds may exceed wall time at high tenancy; the per-shard
  /// breakdown below is the serialization measure. Reads are
  /// relaxed-atomic: monitors may sample concurrently, but a consistent
  /// pair requires a quiesced pool.
  struct CommitLockStats {
    uint64_t commits = 0;
    double held_seconds = 0.0;
  };
  CommitLockStats commit_lock_stats() const {
    CommitLockStats s;
    s.commits = commits_entered_.load(std::memory_order_relaxed);
    s.held_seconds =
        static_cast<double>(commit_held_ns_.load(std::memory_order_relaxed)) *
        1e-9;
    return s;
  }

  // --- commit shards ---

  /// Number of per-view commit shard locks. Views map to shards by
  /// FNV-1a of their id; a sharded commit holds the shards of its write
  /// footprint, in ascending index order.
  static constexpr int kCommitShards = 64;
  static int ShardOf(const std::string& view_id);

  /// Per-shard acquisition count and cumulative hold time. A shard's
  /// held_seconds / wall_seconds is the fraction of the run it
  /// serialized commits on its view group (bench_hotpath reports the
  /// max across shards). Relaxed-atomic sampling, like
  /// commit_lock_stats().
  struct CommitShardStats {
    uint64_t acquisitions = 0;
    double held_seconds = 0.0;
  };
  std::vector<CommitShardStats> commit_shard_stats() const;

  // --- global commit clock ---

  /// Advances the commit clock by one and returns the new value: the
  /// position of the current commit in the pool's total commit order.
  /// With a single tenant this yields the query sequence 1..N, exactly
  /// the engine-local clock it replaces; with several tenants it makes
  /// benefit decay age consistently across their interleaved commits.
  int64_t Tick(const CommitGuard& commit);
  /// Clock merge for state restore: advances to `t` when larger.
  void AdvanceClockTo(const CommitGuard& commit, int64_t t);
  int64_t clock() const { return clock_.load(std::memory_order_relaxed); }

  // --- tenant registry ---

  /// Interns `name` and returns its stable ordinal (BenefitEvent /
  /// FragmentHit stamp). "" is the pre-interned default tenant, 0.
  /// Thread-safe independently of the commit lock.
  int32_t InternTenant(const std::string& name);
  /// Name for an interned ordinal ("" for 0 or unknown ordinals).
  std::string TenantName(int32_t ord) const;
  /// All interned tenant names, indexed by ordinal.
  std::vector<std::string> Tenants() const;

  // --- fault injection ---

  /// Installs (or clears, with nullptr) the simulated FS's fault policy.
  /// Takes the commit lock itself; call from outside the commit section.
  void SetFaultPolicy(FaultPolicy* policy);

  // --- background materialization (see materialization_service.h) ---

  /// The pool's materialization service; nullptr in kInline mode.
  MaterializationService* materialization_service() const;

  /// Drains the materialization queue and waits for in-flight jobs
  /// (no-op in kInline mode). Must be called from outside any commit
  /// section — draining takes commits of its own. SaveState/LoadState
  /// and engine destruction quiesce before touching pool state, so no
  /// queued intent is silently lost and no background commit races a
  /// snapshot.
  void QuiesceMaterialization() const;

  // --- mutation API (requires a commit section; asserts in debug) ---

  /// Ensures `view` is registered as a relational catalog table with
  /// estimated logical statistics (needed by the cost estimator).
  void RegisterViewTable(ViewInfo* view);

  /// Planning-phase counterpart of RegisterViewTable: registers the
  /// table in the delta's planning catalog (deferring the real Put to
  /// the fold) and sets the delta-owned view's estimated statistics.
  /// Reads only immutable state, so it is safe under the shared lock.
  void RegisterViewTablePlanning(ViewInfo* view, PlanningDelta* delta) const;

  /// Executes a SelectionDecision transactionally: evictions first, then
  /// materializations, all staged through a rollback journal. Charges
  /// report->materialize_seconds and updates the created/evicted
  /// counters. `ctx` supplies the current query's fragment cover
  /// (parents already read by the query are free to re-scan during
  /// repartitioning).
  ///
  /// On a storage fault the pool — view metadata, FS files, statistics —
  /// and `report` are rolled back to their pre-Apply images; then
  /// report->fault_view / fault_message identify the failed action and
  /// the fault's status is returned, so the caller can retry the whole
  /// decision (transient) or abandon it (permanent). Observer
  /// notifications are deferred to the transaction commit: a rolled-back
  /// attempt emits no pool-mutation events.
  Status Apply(const SelectionDecision& decision, const QueryContext& ctx,
               QueryReport* report);

  /// Fragment-merging maintenance pass (Section 11 extension); returns
  /// the simulated seconds charged. Transactional like Apply: a fault
  /// rolls back the whole pass (and `report`) and returns its status.
  /// Requires the exclusive commit (it may touch any view).
  Result<double> RunMergePass(double t_now, const DecayFunction& decay,
                              QueryReport* report);

  // --- creation / eviction primitives (used by Apply and by state
  //     restore; exposed for direct stage tests) ---
  //
  // Each primitive orders its work "FS operation first, metadata
  // second", so a fault leaves per-piece accounting consistent (a
  // materialized flag is only set once its file exists, and only
  // cleared once its file is gone). Multi-piece atomicity — undoing the
  // pieces staged before the fault — comes from the surrounding
  // transaction: inside Apply / RunMergePass a failed primitive rolls
  // the whole decision back; called directly, a failed primitive may
  // leave earlier pieces in place (still invariant-clean).

  /// Materializes `view` (initial partitioned creation). Returns the
  /// extra simulated seconds charged.
  Result<double> MaterializeView(ViewInfo* view, QueryReport* report);
  /// Creates one refinement fragment (overlapping or by splitting).
  Result<double> MaterializeFragment(ViewInfo* view, PartitionState* part,
                                     const Interval& iv,
                                     const QueryContext& ctx,
                                     QueryReport* report);
  /// Evicts a fragment from the pool (one OnEvict per call). An
  /// eviction whose backing file is missing is a pool-accounting bug:
  /// it asserts in debug builds and returns Internal in release.
  Status EvictFragment(ViewInfo* view, PartitionState* part,
                       FragmentStats* frag);
  /// Evicts a whole view: its full materialization AND every
  /// materialized fragment, firing one OnEvict per piece (the same
  /// notifications the per-fragment path emits, so observer eviction
  /// counters agree with QueryReport). Returns the number of pieces
  /// evicted — 0 when the view held nothing.
  Result<int> EvictWholeView(ViewInfo* view);

  // --- fault quarantine (see DESIGN.md, "Failure model and recovery") ---

  /// Records one permanent decision failure against `view_id`; once
  /// options().fault.quarantine_threshold failures accumulate, the view
  /// is quarantined until commit clock `now` + cooldown (the
  /// SelectionPlanner skips quarantined views' candidates). Successful
  /// materialization clears the record. Requires the commit section.
  void RecordViewFault(const std::string& view_id, int64_t now);

 private:
  friend class CommitGuard;

  /// Per-thread commit context: who holds a commit on which pool, in
  /// which mode, with which shards, observer, tenant stamp, publish
  /// footprint, and transaction journal. Thread-local because sharded
  /// commits run concurrently — one commit per thread.
  struct CommitCtx;
  static CommitCtx& Ctx();

  void ReleaseCommit();
  /// Common entry bookkeeping once the pool lock (X or IX) is held.
  CommitGuard EnterCommitLocked(bool exclusive, EngineObserver* observer,
                                std::string tenant, int32_t tenant_ord,
                                CommitFootprint publish_fp);
  /// Read-set validation against the published ring and the in-flight
  /// registry. Caller holds epoch_mu_. `ignore_seq` != 0 exempts the
  /// published entry with that sequence number (a job's own stats
  /// publish).
  bool ValidateReadSetLocked(const CommitFootprint& read_fp,
                             uint64_t read_epoch, bool* conflict_genuine,
                             uint64_t ignore_seq = 0) const;
  /// True when `admitted_bytes` of new materializations still fit the
  /// pool budget next to current occupancy plus every in-flight
  /// commit's claim. Caller holds epoch_mu_ (the in-flight registry);
  /// occupancy itself is a race-free atomic-cache sum (read under the
  /// shared catalog-structure lock — the epoch_mu_ -> catalog_mu_
  /// acquisition here fixes the one-way order between the two).
  bool AdmittedBytesFitLocked(double admitted_bytes) const;

  /// Folds `delta` into the pool under the catalog-structure lock
  /// (exclusive), remaps the pending publish footprint from placeholder
  /// to final view ids, and advances the decay windows. The shared fold
  /// path of FoldPlanningDelta and Apply.
  void FoldDeltaAndRemap(PlanningDelta* delta, double t_now);

  /// Advances timed-out-prefix cursors after a delta fold so
  /// evaluations under the shared lock stay O(in-window suffix) even
  /// for cold entries. The exclusive path advances every view; a
  /// sharded commit only advances the views of its write footprint (the
  /// ones its shards own). The cursor is an evaluation cache, never
  /// part of the pool fingerprint, so partial advancement is sound.
  void AdvanceWindowsAfterFold(double t_now);

  // --- decision transaction (stage-then-commit rollback journal) ---
  //
  // TxnBegin arms the journal (kept in the thread-local commit
  // context, so concurrent sharded commits journal independently);
  // every fs mutation goes through TxnPut / TxnDelete (which record
  // first-touch file preimages), every metadata mutation is covered by
  // TxnSnapshotView (full pre-image of the view's mutable state), and
  // observer notifications queue in the context. TxnCommit flushes the
  // events and drops the journal; TxnRollback restores every
  // snapshot/preimage and discards the events. With no transaction
  // armed the helpers degrade to the plain operations (direct primitive
  // calls from tests / state restore).
  void TxnBegin();
  void TxnCommit();
  void TxnRollback();
  void TxnSnapshotView(ViewInfo* view);
  Status TxnPut(const std::string& path, double bytes);
  Status TxnDelete(const std::string& path);
  void NotifyMaterializeView(const ViewInfo* view, double sim_seconds);
  void NotifyMaterializeFragment(const ViewInfo* view, const std::string& attr,
                                 const Interval& interval, double bytes);
  void NotifyEvict(const ViewInfo* view, const std::string& attr,
                   const Interval& interval, double bytes);
  void NotifyMerge(const ViewInfo* view, const std::string& attr,
                   const Interval& merged, double bytes);

  /// Apply's action loop, run inside an armed transaction. On failure
  /// sets `fault_view` to the failing action's view id and returns the
  /// fault without unwinding (Apply rolls back).
  Status ApplyStaged(const SelectionDecision& decision,
                     const QueryContext& ctx, QueryReport* report,
                     std::string* fault_view);
  /// RunMergePass's merge loop, run inside an armed transaction.
  Result<double> MergeStaged(double t_now, const DecayFunction& decay,
                             QueryReport* report);

  /// Pre-image of one view's mutable pool state. Rollback restores the
  /// partitions *in place* (per-attr assignment into the existing map
  /// nodes) so PartitionState addresses held by the decision's actions
  /// stay valid across a rollback + retry.
  struct TxnViewImage {
    ViewInfo* view = nullptr;
    bool whole_materialized = false;
    ViewStats stats;
    int fault_count = 0;
    int64_t quarantined_until = 0;
    std::map<std::string, PartitionState> partitions;
  };
  /// First-touch pre-image of one FS path.
  struct TxnFileImage {
    std::string path;
    bool existed = false;
    double bytes = 0.0;
  };
  /// One deferred observer notification; arguments are captured at queue
  /// time so deferred firing is argument-identical to inline firing.
  struct TxnEvent {
    enum class Kind { kMaterializeView, kMaterializeFragment, kEvict, kMerge };
    Kind kind = Kind::kMaterializeView;
    const ViewInfo* view = nullptr;
    std::string attr;
    Interval interval;
    double value = 0.0;  ///< sim_seconds (view) or bytes (fragment events)
  };

  Catalog* catalog_;
  const EngineOptions* options_;
  const ClusterModel* cluster_;
  const PlanCostEstimator* estimator_;
  SimFs fs_;
  ViewCatalog views_;
  FilterTree rewrite_index_;
  DecayFunction decay_;  ///< pool-side decay (cursor advancement)
  std::atomic<int64_t> clock_{0};  ///< advanced only inside commit sections

  /// Commit-section accounting (see commit_lock_stats()).
  std::atomic<uint64_t> commits_entered_{0};
  std::atomic<int64_t> commit_held_ns_{0};

  /// The pool lock (S planning / IX sharded commit / X exclusive
  /// commit).
  mutable PoolLock lock_;

  /// Catalog-*structure* lock. Sharded commits now fold structural
  /// deltas (ViewCatalog::Adopt, Catalog::Put, FilterTree::Insert) —
  /// and IX admits IX, so two folds, or a fold and a foreign commit
  /// reading catalog structure (estimators resolving tables, occupancy
  /// sums, AdvanceWindowsAfterFold id lookups), can overlap. Folds hold
  /// this exclusively (short: metadata only); mid-commit readers hold
  /// it shared. Per-view statistics and fragment state are NOT under
  /// it — the commit shards own those. Leaf-ish: may be acquired while
  /// holding epoch_mu_ or shard locks, never the other way around;
  /// non-reentrant (release exclusive before any shared section).
  mutable std::shared_mutex catalog_mu_;

  /// Placeholder-id source for ViewIdReservation block leases.
  std::atomic<int64_t> placeholder_counter_{0};

  /// Per-view-group commit shard locks and their accounting. Plain
  /// mutexes: holders are IX commits, which the pool lock already
  /// isolates from planners and X commits.
  std::array<std::mutex, kCommitShards> shard_mu_;
  struct ShardAccounting {
    std::atomic<uint64_t> acquisitions{0};
    std::atomic<int64_t> held_ns{0};
  };
  std::array<ShardAccounting, kCommitShards> shard_acct_;

  // --- commit epoch table (leaf lock: epoch_mu_ nests inside the pool
  //     lock and the shard locks, and never acquires anything) ---

  mutable std::mutex epoch_mu_;
  /// Sequence number of the latest *published* write footprint. Commits
  /// publishing an empty footprint do not advance it.
  std::atomic<uint64_t> commit_seq_{0};
  struct PublishedWrite {
    uint64_t seq = 0;
    CommitFootprint fp;
  };
  /// Bounded ring of recent publishes, oldest first. A plan whose
  /// read_epoch fell off the ring is invalidated conservatively
  /// (counted as spurious by the engine).
  std::deque<PublishedWrite> published_;
  static constexpr size_t kEpochRingCapacity = 128;
  /// Write footprints (and budget claims) of in-flight sharded commits
  /// (registered at validation, removed at publish). Validation checks
  /// them so a plan never validates against a half-applied foreign
  /// commit, and so concurrent materializations cannot jointly
  /// overshoot the pool budget.
  struct InflightCommit {
    uint64_t id = 0;
    CommitFootprint fp;
    double admitted_bytes = 0.0;
  };
  std::vector<InflightCommit> inflight_;
  uint64_t next_inflight_id_ = 1;

  /// Guards the tenant registry alone — never held together with the
  /// pool lock, so InternTenant is callable from any context (including
  /// inside a commit, e.g. during LoadState).
  mutable std::mutex tenant_mu_;
  std::vector<std::string> tenants_{std::string()};

  /// Background materialization queue + workers (null in kInline mode).
  /// Declared last so its destruction — which drains jobs that take
  /// commits on this pool — cannot outlive any state it folds into;
  /// the destructor additionally shuts it down first, explicitly.
  std::unique_ptr<MaterializationService> service_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_POOL_MANAGER_H_
