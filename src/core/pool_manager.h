#ifndef DEEPSEA_CORE_POOL_MANAGER_H_
#define DEEPSEA_CORE_POOL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "core/decay.h"
#include "core/engine_observer.h"
#include "core/engine_options.h"
#include "core/query_context.h"
#include "core/selection_planner.h"
#include "core/view_catalog.h"
#include "rewrite/filter_tree.h"
#include "sim/cluster.h"
#include "sim/cost_model.h"
#include "storage/sim_fs.h"

namespace deepsea {

class PoolManager;

/// RAII ownership of a PoolManager's exclusive commit section. A guard
/// is obtained from PoolManager::BeginCommit and proves — by being
/// passed to the guarded accessors — that the caller holds the commit
/// lock. Movable (so engines can return/stash it), not copyable.
/// Destroying or Release()ing the guard unlocks the pool.
class CommitGuard {
 public:
  CommitGuard() = default;
  CommitGuard(CommitGuard&& other) noexcept : pool_(other.pool_) {
    other.pool_ = nullptr;
  }
  CommitGuard& operator=(CommitGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      other.pool_ = nullptr;
    }
    return *this;
  }
  CommitGuard(const CommitGuard&) = delete;
  CommitGuard& operator=(const CommitGuard&) = delete;
  ~CommitGuard() { Release(); }

  bool held() const { return pool_ != nullptr; }
  void Release();

 private:
  friend class PoolManager;
  explicit CommitGuard(PoolManager* pool) : pool_(pool) {}

  PoolManager* pool_ = nullptr;
};

/// Stage 4 of the pipeline and the owner of all durable pool state: the
/// view catalog (STAT), the simulated file system, the rewrite index,
/// and the global commit clock. PoolManager is the only component that
/// flips `materialized` flags, creates/deletes SimFs files, and charges
/// materialization seconds — the planner stages merely read the pool
/// and emit SelectionDecisions for Apply to execute. It also runs the
/// Section 11 fragment-merge maintenance pass and registers view tables
/// (estimated logical statistics) in the relational catalog.
///
/// Tenancy and locking: one PoolManager may be shared by several
/// DeepSeaEngine instances (one per tenant) running on different
/// threads. All mutation — including the *planning* stages, which
/// update STAT statistics as a side effect (Algorithm 1 line 2) — must
/// happen inside the exclusive commit section bracketed by a
/// CommitGuard. Mutable access to the catalog / FS / index is only
/// available through accessors that take the guard as a token, so the
/// type system enforces the discipline the old `mutable_views()` /
/// `mutable_fs()` escape hatches left to convention. The commit
/// section also carries the committing tenant's observer: pool
/// mutation events are routed to it, stamped with the tenant id.
///
/// Read access: the `*Snapshot()` methods take the commit lock in
/// shared mode and are safe from any thread (monitoring). The plain
/// const accessors (`views()`, `fs()`, `PoolBytes()`) are unlocked and
/// require the caller to either hold the commit guard or know the pool
/// is externally quiesced — taking even a shared lock there would
/// self-deadlock the engine pipeline, which reads them mid-commit.
class PoolManager {
 public:
  PoolManager(Catalog* catalog, const EngineOptions* options,
              const ClusterModel* cluster, const PlanCostEstimator* estimator)
      : catalog_(catalog),
        options_(options),
        cluster_(cluster),
        estimator_(estimator),
        fs_(options->cluster.block_bytes) {}

  // --- commit protocol ---

  /// Enters the exclusive commit section, blocking until every other
  /// commit (and shared-mode snapshot) has drained. `observer` receives
  /// the pool-mutation events of this commit (nullptr = silent);
  /// `tenant` / `tenant_ord` stamp those events and the recorded
  /// statistics. Re-entering from the thread that already holds the
  /// commit is a programming error (asserts in debug builds).
  CommitGuard BeginCommit(EngineObserver* observer = nullptr,
                          std::string tenant = std::string(),
                          int32_t tenant_ord = 0);

  /// True when the calling thread is inside the commit section. The
  /// mutation primitives assert this in debug builds.
  bool CommitHeldByThisThread() const;

  // --- guarded mutable access (the guard token proves the lock) ---

  ViewCatalog* stat(const CommitGuard& commit);
  SimFs* fs(const CommitGuard& commit);
  /// The signature -> view-id rewrite index shared by all tenants (a
  /// tenant must be able to match views created by another).
  FilterTree* rewrite_index(const CommitGuard& commit);

  // --- unlocked const access (commit held or externally quiesced) ---

  const ViewCatalog& views() const { return views_; }
  const SimFs& fs() const { return fs_; }
  const EngineOptions& options() const { return *options_; }

  /// Current pool occupancy in bytes (S(C)). Unlocked — see class doc.
  double PoolBytes() const { return views_.PoolBytes(); }

  // --- shared-mode snapshots (safe from any thread) ---

  double PoolBytesSnapshot() const;
  /// Shared-mode lock for multi-read consistency (e.g. SaveState).
  std::shared_lock<std::shared_mutex> SharedLock() const {
    return std::shared_lock<std::shared_mutex>(commit_mu_);
  }

  // --- global commit clock ---

  /// Advances the commit clock by one and returns the new value: the
  /// position of the current commit in the pool's total commit order.
  /// With a single tenant this yields the query sequence 1..N, exactly
  /// the engine-local clock it replaces; with several tenants it makes
  /// benefit decay age consistently across their interleaved commits.
  int64_t Tick(const CommitGuard& commit);
  /// Clock merge for state restore: advances to `t` when larger.
  void AdvanceClockTo(const CommitGuard& commit, int64_t t);
  int64_t clock() const { return clock_.load(std::memory_order_relaxed); }

  // --- tenant registry ---

  /// Interns `name` and returns its stable ordinal (BenefitEvent /
  /// FragmentHit stamp). "" is the pre-interned default tenant, 0.
  /// Thread-safe independently of the commit lock.
  int32_t InternTenant(const std::string& name);
  /// Name for an interned ordinal ("" for 0 or unknown ordinals).
  std::string TenantName(int32_t ord) const;
  /// All interned tenant names, indexed by ordinal.
  std::vector<std::string> Tenants() const;

  // --- mutation API (requires the commit section; asserts in debug) ---

  /// Ensures `view` is registered as a relational catalog table with
  /// estimated logical statistics (needed by the cost estimator).
  void RegisterViewTable(ViewInfo* view);

  /// Executes a SelectionDecision: evictions first, then
  /// materializations. Charges report->materialize_seconds and updates
  /// the created/evicted counters. `ctx` supplies the current query's
  /// fragment cover (parents already read by the query are free to
  /// re-scan during repartitioning).
  void Apply(const SelectionDecision& decision, const QueryContext& ctx,
             QueryReport* report);

  /// Fragment-merging maintenance pass (Section 11 extension); returns
  /// the simulated seconds charged.
  double RunMergePass(double t_now, const DecayFunction& decay,
                      QueryReport* report);

  // --- creation / eviction primitives (used by Apply and by state
  //     restore; exposed for direct stage tests) ---

  /// Materializes `view` (initial partitioned creation). Returns the
  /// extra simulated seconds charged.
  double MaterializeView(ViewInfo* view, QueryReport* report);
  /// Creates one refinement fragment (overlapping or by splitting).
  double MaterializeFragment(ViewInfo* view, PartitionState* part,
                             const Interval& iv, const QueryContext& ctx,
                             QueryReport* report);
  /// Evicts a fragment from the pool (one OnEvict per call).
  void EvictFragment(ViewInfo* view, PartitionState* part, FragmentStats* frag);
  /// Evicts a whole view: its full materialization AND every
  /// materialized fragment, firing one OnEvict per piece (the same
  /// notifications the per-fragment path emits, so observer eviction
  /// counters agree with QueryReport). Returns the number of pieces
  /// evicted — 0 when the view held nothing.
  int EvictWholeView(ViewInfo* view);

 private:
  friend class CommitGuard;
  void ReleaseCommit();

  Catalog* catalog_;
  const EngineOptions* options_;
  const ClusterModel* cluster_;
  const PlanCostEstimator* estimator_;
  SimFs fs_;
  ViewCatalog views_;
  FilterTree rewrite_index_;
  std::atomic<int64_t> clock_{0};  ///< written only inside the commit section

  /// Exclusive = commit section; shared = *Snapshot() readers.
  mutable std::shared_mutex commit_mu_;
  /// Address of a thread_local in the committing thread (0 = free);
  /// lets mutators assert the lock discipline without owning a TLS key.
  std::atomic<uintptr_t> commit_owner_{0};
  // Commit context: set by BeginCommit, cleared on release. Only
  // touched inside the commit section.
  EngineObserver* commit_observer_ = nullptr;
  std::string commit_tenant_;
  int32_t commit_tenant_ord_ = 0;

  /// Guards the tenant registry alone — never held together with
  /// commit_mu_, so InternTenant is callable from any context
  /// (including inside a commit, e.g. during LoadState).
  mutable std::mutex tenant_mu_;
  std::vector<std::string> tenants_{std::string()};
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_POOL_MANAGER_H_
