#include "core/planning_delta.h"

#include <algorithm>
#include <cassert>

#include "common/str_util.h"
#include "rewrite/filter_tree.h"

namespace deepsea {

std::string ViewIdReservation::NextPlaceholder() {
  if (next_ == end_) {
    next_ = counter_->fetch_add(kBlockSize, std::memory_order_relaxed);
    end_ = next_ + kBlockSize;
  }
  return StrFormat("c%lld", static_cast<long long>(next_++));
}

PlanningDelta::PlanningDelta(const Catalog& shared_catalog,
                             ViewCatalog* shared_views, double t_now,
                             ViewIdReservation* reservation)
    : t_now_(t_now),
      shared_views_(shared_views),
      reservation_(reservation),
      planning_catalog_(shared_catalog) {}

// --- view overlay ---------------------------------------------------

ViewInfo* PlanningDelta::FindView(const std::string& canonical) {
  // The probe itself is a catalog read: a foreign commit creating this
  // signature changes the answer, so the plan must be invalidated.
  read_target().AddCatalogSig(canonical);
  if (ViewInfo* v = shared_views_->FindBySignature(canonical)) return v;
  for (const auto& [sig, v] : new_by_signature_) {
    if (sig == canonical) return v;
  }
  return nullptr;
}

ViewInfo* PlanningDelta::TrackView(const PlanPtr& plan,
                                   const PlanSignature& signature) {
  const std::string canonical = signature.ToString();
  if (ViewInfo* existing = FindView(canonical)) return existing;
  auto view = std::make_unique<ViewInfo>();
  if (reservation_ != nullptr) {
    // Reserved placeholder: no shared-counter read, so two concurrent
    // creators conflict only through the signature catalog (FindView
    // recorded the probe above) and the rewrite index — creations with
    // disjoint signatures commute and commit sharded. Fold assigns the
    // final "v<N>" id in commit order.
    view->id = reservation_->NextPlaceholder();
  } else {
    // Legacy prediction (no reservation): reads the shared view-id
    // counter, so any foreign commit that creates views moves it and
    // the two creators always conflict (one replans and re-predicts).
    // Adopt() asserts the prediction still holds at fold time
    // (guaranteed by epoch validation).
    read_target().catalog_counter = true;
    view->id = StrFormat(
        "v%d",
        shared_views_->peek_next_id() + static_cast<int>(new_views_.size()));
  }
  view->plan = plan;
  view->signature = signature;
  ViewInfo* raw = view.get();
  new_views_.push_back(std::move(view));
  new_by_signature_.emplace_back(canonical, raw);
  return raw;
}

bool PlanningDelta::OwnsView(const ViewInfo* v) const {
  for (const auto& owned : new_views_) {
    if (owned.get() == v) return true;
  }
  return false;
}

std::vector<ViewInfo*> PlanningDelta::AllViews() {
  std::vector<ViewInfo*> out = shared_views_->AllViews();
  out.reserve(out.size() + new_views_.size());
  for (const auto& owned : new_views_) out.push_back(owned.get());
  return out;
}

// --- deferred catalog / index writes --------------------------------

void PlanningDelta::DeferCatalogPut(TablePtr table) {
  deferred_puts_.push_back(std::move(table));
}

void PlanningDelta::DeferIndexInsert(const PlanSignature& sig,
                                     const std::string& view_id) {
  deferred_index_.emplace_back(sig, view_id);
}

void PlanningDelta::AttachHistogram(const ViewInfo& view,
                                    const std::string& attr,
                                    const AttributeHistogram& hist) {
  auto table = planning_catalog_.Get(view.id);
  if (!table.ok()) return;
  if (OwnsView(&view)) {
    // Delta-owned table: it is private to this query and already queued
    // for the real catalog, so the attachment rides along with the Put.
    (*table)->SetHistogram(attr, hist);
    return;
  }
  // Shared table: clone before mutating so concurrent planners reading
  // the real catalog never observe the write.
  auto clone = std::make_shared<Table>(**table);
  clone->SetHistogram(attr, hist);
  planning_catalog_.Put(std::move(clone));
  attach_ops_.push_back({view.id, attr, hist});
}

// --- benefit events ---------------------------------------------------

void PlanningDelta::RecordUse(ViewInfo* v, double time, double saving,
                              int32_t tenant) {
  if (OwnsView(v)) {
    v->stats.RecordUse(time, saving, tenant);
    return;
  }
  // The saving being recorded was computed from the view's current
  // rewriting cost (materialized state), so a use is a read as well as
  // a buffered write.
  NoteViewRead(v);
  for (auto& [view, events] : view_patches_) {
    if (view == v) {
      events.push_back({time, saving, tenant});
      return;
    }
  }
  view_patches_.emplace_back(v, std::vector<BenefitEvent>{{time, saving, tenant}});
}

const std::vector<BenefitEvent>* PlanningDelta::PatchOf(
    const ViewInfo* v) const {
  for (const auto& [view, events] : view_patches_) {
    if (view == v) return &events;
  }
  return nullptr;
}

// --- partitions --------------------------------------------------------

PlanningDelta::ShadowPartition* PlanningDelta::ShadowFor(
    const PartitionState* part) const {
  for (const ShadowPartition& sp : shadows_) {
    if (&sp.state == part) return const_cast<ShadowPartition*>(&sp);
  }
  return nullptr;
}

PlanningDelta::ShadowPartition& PlanningDelta::MakeShadow(
    ViewInfo* v, const std::string& attr, const PartitionState* base,
    const Interval& domain) {
  shadows_.emplace_back();
  ShadowPartition& sp = shadows_.back();
  sp.view = v;
  sp.state.attr = attr;
  sp.base = base;
  // Creating the shadow reads the shared partition wholesale: the
  // fragment list (fold maps base-backed fragments by index), the
  // materialized flags, and — through the effective-hit readers — any
  // fragment's history. Record a structure read plus a whole-domain
  // fragment read rather than instrumenting every fine-grained reader.
  NotePartitionRead(v, attr);
  if (base != nullptr) {
    read_target().AddFragment(v->id, attr, base->domain);
    sp.base_exists = true;
    sp.state.domain = base->domain;
    sp.state.pending = base->pending;
    // Snapshot the fields ShadowDirty/CollectWriteFootprint compare
    // against while the shared lock still keeps the base stable; those
    // checks run at commit time, possibly concurrent with foreign
    // sharded commits mutating (and reallocating) the base.
    sp.base_pending = base->pending;
    sp.state.fragments.reserve(base->fragments.size());
    sp.bases.reserve(base->fragments.size());
    sp.base_snap.reserve(base->fragments.size());
    for (const FragmentStats& f : base->fragments) {
      // Copy everything except the hit history (O(#fragments), never
      // O(#hits)); readers go through the base pointer for history.
      FragmentStats copy;
      copy.interval = f.interval;
      copy.size_bytes = f.size_bytes;
      copy.materialized = f.materialized;
      sp.state.fragments.push_back(std::move(copy));
      sp.bases.push_back(&f);
      sp.base_snap.push_back({f.size_bytes, f.materialized});
    }
  } else {
    sp.state.domain = domain;
  }
  shadow_by_key_[{v, attr}] = &sp;
  return sp;
}

bool PlanningDelta::HasPartitions(const ViewInfo* v) const {
  // Reads the existence of any partition on `v` (wildcard attr).
  NotePartitionRead(v, "");
  if (!v->partitions.empty()) return true;
  for (const ShadowPartition& sp : shadows_) {
    if (sp.view == v) return true;
  }
  return false;
}

std::vector<std::string> PlanningDelta::PartitionAttrs(
    const ViewInfo* v) const {
  NotePartitionRead(v, "");
  // std::map order (sorted), matching iteration over v->partitions
  // after the fold.
  std::map<std::string, bool> attrs;
  for (const auto& [attr, part] : v->partitions) attrs[attr] = true;
  for (const ShadowPartition& sp : shadows_) {
    if (sp.view == v) attrs[sp.state.attr] = true;
  }
  std::vector<std::string> out;
  out.reserve(attrs.size());
  for (const auto& [attr, _] : attrs) out.push_back(attr);
  return out;
}

PartitionState* PlanningDelta::Partition(ViewInfo* v, const std::string& attr) {
  if (OwnsView(v)) return v->GetPartition(attr);
  auto it = shadow_by_key_.find({v, attr});
  if (it != shadow_by_key_.end()) return &it->second->state;
  const PartitionState* base =
      static_cast<const ViewInfo*>(v)->GetPartition(attr);
  if (base == nullptr) {
    // The absence of a partition is also a structural fact the plan
    // depended on: a foreign commit creating (v, attr) invalidates it.
    NotePartitionRead(v, attr);
    return nullptr;
  }
  return &MakeShadow(v, attr, base, base->domain).state;
}

PartitionState* PlanningDelta::EnsurePartition(ViewInfo* v,
                                               const std::string& attr,
                                               const Interval& domain) {
  if (OwnsView(v)) return v->EnsurePartition(attr, domain);
  if (PartitionState* existing = Partition(v, attr)) return existing;
  return &MakeShadow(v, attr, nullptr, domain).state;
}

FragmentStats* PlanningDelta::TrackFragment(PartitionState* part,
                                            const Interval& iv,
                                            double est_size_bytes) {
  ShadowPartition* sp = ShadowFor(part);
  if (sp == nullptr) return part->Track(iv, est_size_bytes);
  if (FragmentStats* existing = part->Find(iv)) return existing;
  FragmentStats* added = part->Track(iv, est_size_bytes);
  sp->bases.push_back(nullptr);  // planner-added: no shared history
  return added;
}

const std::vector<const FragmentStats*>* PlanningDelta::BasesOf(
    const PartitionState* part) const {
  const ShadowPartition* sp = ShadowFor(part);
  return sp == nullptr ? nullptr : &sp->bases;
}

const FragmentStats* PlanningDelta::BaseOf(const PartitionState* part,
                                           const FragmentStats* f) const {
  const ShadowPartition* sp = ShadowFor(part);
  if (sp == nullptr) return nullptr;
  const size_t idx = static_cast<size_t>(f - part->fragments.data());
  assert(idx < sp->bases.size());
  return sp->bases[idx];
}

// --- effective stats readers ------------------------------------------
//
// Each reader reproduces, addition for addition, the evaluation the
// incremental ViewStats/FragmentStats code performs after the fold:
// start from the base's own evaluation (which skips its certified
// timed-out prefix — exact zeros) and accumulate the buffered local
// terms one at a time onto that accumulator. base_sum + local_sum would
// NOT be bit-identical (FP addition is not associative).

double PlanningDelta::AccumulatedBenefit(const ViewInfo* v,
                                         const DecayFunction& dec) const {
  NoteViewRead(v);
  double acc = v->stats.AccumulatedBenefit(t_now_, dec);
  if (const std::vector<BenefitEvent>* patch = PatchOf(v)) {
    if (!dec.config().enabled) {
      for (const BenefitEvent& e : *patch) acc += e.saving;
    } else {
      for (const BenefitEvent& e : *patch) {
        acc += e.saving * dec(t_now_, e.time);
      }
    }
  }
  return acc;
}

double PlanningDelta::UndecayedBenefit(const ViewInfo* v) const {
  NoteViewRead(v);
  double acc = v->stats.UndecayedBenefit();
  if (const std::vector<BenefitEvent>* patch = PatchOf(v)) {
    for (const BenefitEvent& e : *patch) acc += e.saving;
  }
  return acc;
}

double PlanningDelta::LastUse(const ViewInfo* v) const {
  NoteViewRead(v);
  double last = v->stats.LastUse();
  if (const std::vector<BenefitEvent>* patch = PatchOf(v)) {
    for (const BenefitEvent& e : *patch) {
      if (e.time > last) last = e.time;
    }
  }
  return last;
}

double PlanningDelta::DecayedHits(const PartitionState* part,
                                  const FragmentStats* f,
                                  const DecayFunction& dec) const {
  const FragmentStats* base = BaseOf(part, f);
  if (base == nullptr) return f->DecayedHits(t_now_, dec);
  if (!dec.config().enabled) {
    return static_cast<double>(base->hits().size() + f->hits().size());
  }
  double acc = base->DecayedHits(t_now_, dec);
  for (const FragmentHit& h : f->hits()) acc += dec(t_now_, h.time);
  return acc;
}

double PlanningDelta::RawHits(const PartitionState* part,
                              const FragmentStats* f) const {
  const FragmentStats* base = BaseOf(part, f);
  if (base == nullptr) return f->RawHits();
  return static_cast<double>(base->hits().size() + f->hits().size());
}

double PlanningDelta::LastHit(const PartitionState* part,
                              const FragmentStats* f) const {
  const FragmentStats* base = BaseOf(part, f);
  if (base == nullptr) return f->LastHit();
  return std::max(base->LastHit(), f->LastHit());
}

bool PlanningDelta::HasHits(const PartitionState* part,
                            const FragmentStats* f) const {
  const FragmentStats* base = BaseOf(part, f);
  if (base != nullptr && !base->hits().empty()) return true;
  return !f->hits().empty();
}

std::vector<FragmentHit> PlanningDelta::EffectiveHits(
    const PartitionState* part, const FragmentStats* f) const {
  const FragmentStats* base = BaseOf(part, f);
  if (base == nullptr) return f->hits();
  std::vector<FragmentHit> out = base->hits();
  out.insert(out.end(), f->hits().begin(), f->hits().end());
  return out;
}

// --- policy overlays ---------------------------------------------------
// Expression-for-expression mirrors of policy.cc with the stats reads
// replaced by the effective readers above.

double PlanningDelta::ViewValue(ValueModel model, const ViewInfo* v,
                                const DecayFunction& dec) const {
  const ViewStats& stats = v->stats;
  const double size = std::max(stats.size_bytes, 1.0);
  switch (model) {
    case ValueModel::kDeepSea:
      return stats.creation_cost * AccumulatedBenefit(v, dec) / size;
    case ValueModel::kNectar: {
      const double dt = std::max(t_now_ - LastUse(v), 1.0);
      return stats.creation_cost / (size * dt);
    }
    case ValueModel::kNectarPlus: {
      const double dt = std::max(t_now_ - LastUse(v), 1.0);
      return stats.creation_cost * UndecayedBenefit(v) / (size * dt);
    }
  }
  return 0.0;
}

double PlanningDelta::ViewBenefitForFilter(ValueModel model, const ViewInfo* v,
                                           const DecayFunction& dec) const {
  switch (model) {
    case ValueModel::kDeepSea:
      return AccumulatedBenefit(v, dec);
    case ValueModel::kNectar:
    case ValueModel::kNectarPlus:
      return UndecayedBenefit(v);
  }
  return 0.0;
}

double PlanningDelta::FragmentValue(ValueModel model,
                                    const PartitionState* part,
                                    const FragmentStats* f, double view_size,
                                    double view_cost, const DecayFunction& dec,
                                    double adjusted_hits) const {
  const double size = std::max(f->size_bytes, 1.0);
  switch (model) {
    case ValueModel::kDeepSea: {
      const double hits =
          adjusted_hits >= 0.0 ? adjusted_hits : DecayedHits(part, f, dec);
      const double size_fraction = f->size_bytes / std::max(view_size, 1.0);
      const double benefit = hits * size_fraction * view_cost;
      return view_cost * benefit / size;
    }
    case ValueModel::kNectar: {
      const double dt = std::max(t_now_ - LastHit(part, f), 1.0);
      return view_cost / (size * dt);
    }
    case ValueModel::kNectarPlus: {
      const double benefit = RawHits(part, f) *
                             (f->size_bytes / std::max(view_size, 1.0)) *
                             view_cost;
      const double dt = std::max(t_now_ - LastHit(part, f), 1.0);
      return view_cost * benefit / (size * dt);
    }
  }
  return 0.0;
}

// --- fold ---------------------------------------------------------------

void PlanningDelta::Fold(ViewCatalog* views, Catalog* catalog,
                         FilterTree* index) {
  if (folded_) return;
  folded_ = true;

  // 1. Adopt delta-owned views. ViewInfo addresses are preserved, so
  //    pointers captured in candidate lists and the decision stay valid.
  //
  //    Reservation-tracked views enter with placeholder ids ("c<M>");
  //    assign each the final catalog id here, in track order — which is
  //    fold/commit order, so a deterministic run produces the same
  //    "v1, v2, ..." sequence the legacy counter prediction did — and
  //    rename the deferred view tables and index inserts to match.
  //    Legacy counter-predicted ids pass through; Adopt() asserts they
  //    still hold (guaranteed by epoch validation).
  if (reservation_ != nullptr && !new_views_.empty()) {
    int next_id = views->peek_next_id();
    for (auto& owned : new_views_) {
      if (!ViewIdReservation::IsPlaceholder(owned->id)) continue;
      std::string final_id = StrFormat("v%d", next_id++);
      id_remap_.emplace_back(owned->id, final_id);
      owned->id = std::move(final_id);
    }
    if (!id_remap_.empty()) {
      auto final_of = [this](const std::string& id) -> const std::string* {
        for (const auto& [from, to] : id_remap_) {
          if (id == from) return &to;
        }
        return nullptr;
      };
      for (TablePtr& table : deferred_puts_) {
        if (const std::string* to = final_of(table->name())) {
          table->Rename(*to);
        }
      }
      for (auto& [sig, id] : deferred_index_) {
        if (const std::string* to = final_of(id)) id = *to;
      }
      // Re-key the planning catalog (it shares the Table objects with
      // deferred_puts_, so they are already renamed — only the map key
      // is stale). Post-fold consumers (the async materialization path,
      // staged estimators) resolve view tables by final id.
      for (const auto& [from, to] : id_remap_) {
        (void)to;
        auto table = planning_catalog_.Get(from);
        if (table.ok()) {
          (void)planning_catalog_.Drop(from);
          planning_catalog_.Put(*table);
        }
      }
    }
  }
  for (auto& owned : new_views_) views->Adopt(std::move(owned));
  new_views_.clear();

  // 2. New view tables (the same Table objects planning resolved, so
  //    histograms attached to them during planning come along).
  for (TablePtr& table : deferred_puts_) catalog->Put(std::move(table));
  deferred_puts_.clear();

  // 3. Histogram attachments to pre-existing view tables.
  for (AttachOp& op : attach_ops_) {
    auto table = catalog->Get(op.table);
    if (table.ok()) (*table)->SetHistogram(op.attr, std::move(op.hist));
  }
  attach_ops_.clear();

  // 4. Filter-tree registrations.
  for (const auto& [sig, id] : deferred_index_) index->Insert(sig, id);
  deferred_index_.clear();

  // 5. Shadow partitions, in creation order. Base-backed fragments are
  //    the i-th entries of the real vector (unchanged since the shadow
  //    copied it — guaranteed by epoch validation); fold them first,
  //    then Track planner-added fragments, whose appends match the
  //    in-place append order.
  for (ShadowPartition& sp : shadows_) {
    if (sp.base_exists && !ShadowDirty(sp)) {
      // Read-only shadow (created to evaluate a pool view, never
      // written). Skipping it keeps the index-based fold below from
      // folding into a base a foreign commit legitimately changed
      // after this plan's soft reads were dropped. The remap entry is
      // still needed: decision actions may have captured the shadow
      // pointer (they only do when the reads were promoted, so the
      // base is epoch-protected and still present). Remap to the
      // recorded base pointer — walking sp.view->partitions here would
      // race with a foreign sharded commit inserting partitions into a
      // view whose shard this commit does not hold.
      fold_remap_.emplace_back(&sp.state, const_cast<PartitionState*>(sp.base));
      continue;
    }
    PartitionState* real = sp.view->EnsurePartition(sp.state.attr,
                                                    sp.state.domain);
    for (size_t i = 0; i < sp.state.fragments.size(); ++i) {
      const FragmentStats& sf = sp.state.fragments[i];
      if (sp.bases[i] != nullptr) {
        FragmentStats& rf = real->fragments[i];
        assert(rf.interval == sf.interval &&
               "shared partition changed under a validated epoch");
        for (const FragmentHit& h : sf.hits()) rf.AppendHit(h);
        rf.size_bytes = sf.size_bytes;
      } else {
        FragmentStats* rf = real->Track(sf.interval, sf.size_bytes);
        rf->size_bytes = sf.size_bytes;
        if (!sf.hits().empty()) rf->AdoptHits(sf.hits());
      }
    }
    real->pending = sp.state.pending;
    fold_remap_.emplace_back(&sp.state, real);
  }

  // 6. Buffered benefit events, per view in buffer order.
  for (auto& [view, events] : view_patches_) {
    for (const BenefitEvent& e : events) view->stats.AppendEvent(e);
  }
  view_patches_.clear();
}

PartitionState* PlanningDelta::RealPartition(
    PartitionState* maybe_shadow) const {
  for (const auto& [shadow, real] : fold_remap_) {
    if (shadow == maybe_shadow) return real;
  }
  return maybe_shadow;
}

// --- read/write footprints ----------------------------------------------

void PlanningDelta::NoteViewRead(const ViewInfo* v) const {
  if (OwnsView(v)) return;  // private to this delta until the fold
  read_target().AddView(v->id);
}

void PlanningDelta::NotePartitionRead(const ViewInfo* v,
                                      const std::string& attr) const {
  if (OwnsView(v)) return;
  read_target().AddPartition(v->id, attr);
}

void PlanningDelta::RecordIndexProbe(const PlanSignature& sig) {
  read_target().AddIndexProbe(std::make_shared<PlanSignature>(sig));
}

void PlanningDelta::PromoteSoftReads() {
  reads_.Merge(soft_reads_);
  soft_reads_ = CommitFootprint{};
}

bool PlanningDelta::ShadowDirty(const ShadowPartition& sp) {
  // Judged entirely against the creation-time snapshot: dirtiness means
  // "this plan wrote to the shadow", never "the base moved on" (a
  // foreign commit may be mutating the base concurrently — comparing
  // against it would be a data race, and folding because of a foreign
  // change would overwrite it with this plan's stale copy).
  if (!sp.base_exists) return true;  // created here: a structure write
  if (sp.state.pending != sp.base_pending) return true;
  if (sp.state.fragments.size() != sp.base_snap.size()) return true;
  for (size_t i = 0; i < sp.state.fragments.size(); ++i) {
    const FragmentStats& sf = sp.state.fragments[i];
    if (sp.bases[i] == nullptr) return true;  // planner-added fragment
    if (!sf.hits().empty()) return true;
    if (sf.size_bytes != sp.base_snap[i].size_bytes) return true;
    if (sf.materialized != sp.base_snap[i].materialized) return true;
  }
  return false;
}

bool PlanningDelta::RequiresStructuralCommit() const {
  return !new_views_.empty() || !deferred_puts_.empty() ||
         !deferred_index_.empty() || !attach_ops_.empty();
}

CommitFootprint PlanningDelta::CollectWriteFootprint() const {
  assert(!folded_ && "write footprint must be collected before Fold");
  CommitFootprint fp;
  if (RequiresStructuralCommit()) {
    // Structural writes, decomposed precisely (never `all`): the view-id
    // counter advances (invalidating legacy id predictions and
    // budget-bound knapsacks), the signature catalog gains the new
    // canonicals (FindView records every probe, so a plan that looked
    // one of them up conflicts), the rewrite index gains entries at
    // subsumption granularity, and the new views' own state appears.
    // A plan that never probed these signatures, never probed a
    // subsumed subplan, and did not depend on pool membership commutes
    // — which is what lets cold-range candidate registration commit
    // sharded. Reserved views are listed under their placeholder ids
    // here; RemapFoldedIds rewrites the published footprint to the
    // final ids after the fold.
    fp.catalog_counter = true;
    for (const auto& owned : new_views_) {
      fp.AddCatalogSig(owned->signature.ToString());
      fp.AddView(owned->id);
      fp.AddPartition(owned->id, "");
    }
    for (const auto& [sig, id] : deferred_index_) {
      (void)id;
      fp.AddIndexInsert(std::make_shared<PlanSignature>(sig));
    }
    for (const TablePtr& table : deferred_puts_) fp.AddView(table->name());
    for (const AttachOp& op : attach_ops_) {
      fp.AddView(op.table);
      fp.AddPartition(op.table, op.attr);
    }
  }
  for (const auto& [view, events] : view_patches_) fp.AddView(view->id);
  for (const ShadowPartition& sp : shadows_) {
    const std::string& vid = sp.view->id;
    const std::string& attr = sp.state.attr;
    if (!sp.base_exists) {
      fp.AddPartition(vid, attr);  // EnsurePartition created it
    } else if (sp.state.pending != sp.base_pending) {
      fp.AddPartition(vid, attr);
    }
    // Same snapshot comparisons as ShadowDirty (the two must agree:
    // every dirty shadow's view has to be in the write footprint, so
    // Fold only ever touches views whose commit shards are held).
    for (size_t i = 0; i < sp.state.fragments.size(); ++i) {
      const FragmentStats& sf = sp.state.fragments[i];
      if (sp.bases[i] == nullptr) {
        // Planner-tracked fragment: the fragment list changed and the
        // new range carries its own hits and size.
        fp.AddPartition(vid, attr);
        fp.AddFragment(vid, attr, sf.interval);
      } else if (!sf.hits().empty() ||
                 sf.size_bytes != sp.base_snap[i].size_bytes ||
                 sf.materialized != sp.base_snap[i].materialized) {
        fp.AddFragment(vid, attr, sf.interval);
      }
    }
  }
  fp.Normalize();
  return fp;
}

}  // namespace deepsea
