#ifndef DEEPSEA_CORE_QUERY_CONTEXT_H_
#define DEEPSEA_CORE_QUERY_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/interval.h"
#include "core/planning_delta.h"
#include "core/view_catalog.h"
#include "plan/plan.h"

namespace deepsea {

/// A view candidate of the current query (V_cand member, Definition 6).
/// `under_select` is true when the view's subplan feeds a selection of
/// this query — materializing such a view requires executing the query
/// without pushing that selection down (Section 10.2).
struct ViewCandidate {
  ViewInfo* view;
  bool under_select;
};

/// A fragment refinement candidate of the current query (P_cand,
/// Definition 7).
struct FragmentCandidate {
  ViewInfo* view;
  std::string attr;
  Interval interval;
  double est_bytes;
  double est_cost_seconds;
  /// Seconds saved per hit by reading this fragment instead of the
  /// current materialized cover of its interval. The admission filter
  /// uses this *marginal* saving (hits * per_hit_saving >= cost) rather
  /// than the paper's absolute fragment benefit, which would keep
  /// re-creating near-duplicates of already well-covered hot ranges;
  /// ranking/eviction still uses the paper's Phi.
  double per_hit_saving_seconds;
};

/// All per-query state of one ProcessQuery invocation, threaded through
/// the pipeline stages (RewritePlanner -> CandidateGenerator ->
/// SelectionPlanner -> PoolManager). Nothing here outlives the query:
/// constructing a fresh QueryContext per call is what makes
/// DeepSeaEngine::ProcessQuery re-entrant by construction.
class QueryContext {
 public:
  QueryContext(PlanPtr query_in, int64_t clock, std::string tenant = "",
               int32_t tenant_ord = 0)
      : query(std::move(query_in)),
        clock_(clock),
        tenant_(std::move(tenant)),
        tenant_ord_(tenant_ord) {}

  /// The logical timestamp of this query. With a shared pool this is
  /// the pool's global commit clock (the position of this query in the
  /// total commit order across all tenants), so decayed benefits age
  /// consistently no matter which tenant recorded them.
  int64_t clock() const { return clock_; }
  double t_now() const { return static_cast<double>(clock_); }

  /// Creates this query's PlanningDelta over a snapshot of the shared
  /// catalog and the shared view registry. Must be called (under the
  /// pool's shared or exclusive commit lock) before the pipeline stages
  /// run: the stages buffer every statistics/catalog write here instead
  /// of mutating shared state, and PoolManager::Apply folds the buffer
  /// into the pool inside the commit section. With a `reservation`
  /// (the engine's lease on the pool's placeholder-id counter),
  /// TrackView names new candidate views without reading the shared
  /// view-id counter, so creating plans can commit sharded.
  void InitPlanning(const Catalog& catalog, ViewCatalog* views,
                    ViewIdReservation* reservation = nullptr) {
    delta_ = std::make_unique<PlanningDelta>(catalog, views, t_now(),
                                             reservation);
  }
  PlanningDelta* delta() const { return delta_.get(); }

  /// The tenant issuing this query ("" for a single-tenant engine) and
  /// its interned ordinal in the pool's tenant registry. Stage code
  /// stamps recorded benefit events and fragment hits with the ordinal.
  const std::string& tenant() const { return tenant_; }
  int32_t tenant_ord() const { return tenant_ord_; }

  /// The fragment cover read by this query's chosen rewriting.
  /// Repartitioning is "a by-product of query answering" (Section 2):
  /// refinement fragments extracted from parents the query read anyway
  /// are not charged a second read. The cover is kept sorted so the
  /// per-parent membership probe during repartitioning is O(log n)
  /// instead of a linear scan per pool fragment.
  void SetCover(const std::string& view_id, const std::string& attr,
                std::vector<Interval> cover) {
    cover_view_ = view_id;
    cover_attr_ = attr;
    cover_ = std::move(cover);
    std::sort(cover_.begin(), cover_.end(), CoverLess);
  }
  void ClearCover() {
    cover_view_.clear();
    cover_attr_.clear();
    cover_.clear();
  }
  const std::string& cover_view() const { return cover_view_; }
  const std::string& cover_attr() const { return cover_attr_; }
  const std::vector<Interval>& cover() const { return cover_; }

  /// True when `iv` is one of the cover's intervals (exact endpoint and
  /// openness match). O(log n) binary search over the sorted cover.
  bool CoverContains(const Interval& iv) const {
    auto it = std::lower_bound(cover_.begin(), cover_.end(), iv, CoverLess);
    return it != cover_.end() && *it == iv;
  }

  // --- per-query pipeline state (owned by the stages) ---

  PlanPtr query;                ///< the query as submitted
  PlanPtr base_plan;            ///< selection-pushed conventional plan
  PlanPtr executed_plan;        ///< plan actually "executed" (base or rewrite)

  std::vector<ViewCandidate> view_candidates;       ///< V_cand
  std::vector<FragmentCandidate> fragment_candidates;  ///< P_cand

  /// SelectionStrategyName of the strategy resolving this query's
  /// knapsack (stamped by the engine as the selection stage runs, so
  /// stage observers can label selection latency; nullptr before the
  /// stage / for strategies that never reach it, e.g. Hive).
  const char* selection_strategy = nullptr;

 private:
  /// Total order on intervals (all four fields) so equal intervals — and
  /// only equal intervals — are neighbours under lower_bound.
  static bool CoverLess(const Interval& a, const Interval& b) {
    return std::tie(a.lo, a.lo_inclusive, a.hi, a.hi_inclusive) <
           std::tie(b.lo, b.lo_inclusive, b.hi, b.hi_inclusive);
  }

  int64_t clock_ = 0;
  std::string tenant_;
  int32_t tenant_ord_ = 0;
  std::unique_ptr<PlanningDelta> delta_;
  std::string cover_view_;
  std::string cover_attr_;
  std::vector<Interval> cover_;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_QUERY_CONTEXT_H_
