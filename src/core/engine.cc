#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/backoff.h"
#include "core/materialization_service.h"

namespace deepsea {

namespace {

/// Seed of the retry-backoff jitter stream: a pure function of the
/// commit clock and the tenant ordinal, so replays (and the background
/// worker retrying the same decision) draw identical jitter regardless
/// of thread interleaving.
uint64_t BackoffSeed(int64_t t_now, int32_t tenant_ord) {
  return static_cast<uint64_t>(t_now) * 0x9e3779b97f4a7c15ull +
         static_cast<uint64_t>(tenant_ord);
}

/// Brackets one pipeline stage with observer notifications.
///
/// Timing contract (see EngineObserver in engine_observer.h): the
/// wall_seconds reported to OnStageEnd is measured *only while an
/// observer is attached*. That contract is enforced structurally here —
/// the single `observer_ == nullptr` boolean check below is the only
/// gate, and when it trips neither the constructor nor Finish() makes
/// any std::chrono call, so unobserved runs pay zero clock overhead and
/// attaching/detaching an observer cannot perturb the simulated-time
/// fields of QueryReport (asserted by pipeline_test.cc).
class StageScope {
 public:
  StageScope(EngineObserver* observer, EngineStage stage,
             const QueryContext& ctx)
      : observer_(observer), stage_(stage), ctx_(ctx) {
    if (observer_ != nullptr) {
      observer_->OnStageStart(stage_, ctx_);
      start_ = std::chrono::steady_clock::now();
    }
  }

  /// Ends the stage, reporting the simulated seconds it charged.
  void Finish(double sim_seconds) {
    if (observer_ == nullptr) return;  // the single unobserved-path check
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    observer_->OnStageEnd(stage_, ctx_, sim_seconds, wall);
    observer_ = nullptr;
  }

 private:
  EngineObserver* observer_;
  EngineStage stage_;
  const QueryContext& ctx_;
  std::chrono::steady_clock::time_point start_;
};

/// Adds the pool writes the decision's actions will perform to `fp`.
/// Complements PlanningDelta::CollectWriteFootprint (the statistics
/// fold) with the materialize/evict mutations of Apply. `a.part` may
/// point at a shadow partition — only its attr is read, which is the
/// same string the folded real partition carries.
void MergeDecisionWrites(const SelectionDecision& decision,
                         CommitFootprint* fp) {
  for (const SelectionAction& a : decision.actions) {
    if (a.view == nullptr) continue;
    fp->AddView(a.view->id);
    switch (a.kind) {
      case SelectionAction::Kind::kEvictWholeView:
        fp->AddPartition(a.view->id, "");
        break;
      case SelectionAction::Kind::kMaterializeView:
        fp->AddPartition(a.view->id, "");
        break;
      case SelectionAction::Kind::kEvictFragment:
      case SelectionAction::Kind::kMaterializeRefinement:
      case SelectionAction::Kind::kMaterializeViewFragment:
        if (a.part != nullptr) {
          fp->AddPartition(a.view->id, a.part->attr);
          fp->AddFragment(a.view->id, a.part->attr, a.interval);
        }
        break;
    }
  }
}

/// Estimated bytes the decision's materializations add to the pool —
/// the budget-headroom claim validated at commit entry. A plan whose
/// knapsack was uncontended drops its pool-sweep soft reads, so
/// concurrent occupancy growth is invisible to read-set validation;
/// without this claim two such plans could jointly materialize past
/// pool_limit_bytes. Decisions that evict promote the sweep reads that
/// already protect them (and net occupancy down), so they claim 0.
double AdmittedDecisionBytes(const SelectionDecision& decision) {
  double bytes = 0.0;
  for (const SelectionAction& a : decision.actions) {
    switch (a.kind) {
      case SelectionAction::Kind::kEvictWholeView:
      case SelectionAction::Kind::kEvictFragment:
        return 0.0;
      case SelectionAction::Kind::kMaterializeView:
      case SelectionAction::Kind::kMaterializeViewFragment:
      case SelectionAction::Kind::kMaterializeRefinement:
        bytes += a.size_bytes;
        break;
    }
  }
  return bytes;
}

/// Upper bound on the decision's *net* pool-occupancy delta, claimed by
/// background jobs at commit entry. A job's revalidation footprint is
/// partition-structure only — unlike the inline exclusive path it does
/// NOT carry the plan's promoted pool-sweep reads, so a foreign commit
/// growing the occupancy between planning and execution is invisible to
/// it; the byte claim is what keeps two such jobs from jointly
/// materializing past pool_limit_bytes. Apply executes evictions before
/// materializations, so materialize-minus-evict bounds the commit's
/// occupancy delta; a net-negative (turnover) decision claims 0 and
/// always fits.
double NetDecisionBytes(const SelectionDecision& decision) {
  double materialized = 0.0;
  double evicted = 0.0;
  for (const SelectionAction& a : decision.actions) {
    switch (a.kind) {
      case SelectionAction::Kind::kEvictWholeView:
      case SelectionAction::Kind::kEvictFragment:
        evicted += a.size_bytes;
        break;
      case SelectionAction::Kind::kMaterializeView:
      case SelectionAction::Kind::kMaterializeViewFragment:
      case SelectionAction::Kind::kMaterializeRefinement:
        materialized += a.size_bytes;
        break;
    }
  }
  return std::max(0.0, materialized - evicted);
}

}  // namespace

DeepSeaEngine::DeepSeaEngine(Catalog* catalog, EngineOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      cluster_(options_.cluster),
      estimator_(&cluster_, catalog, options_.estimator),
      decay_(options_.decay),
      mle_(options_.mle),
      executor_(catalog),
      owned_pool_(std::make_unique<PoolManager>(catalog, &options_, &cluster_,
                                                &estimator_)),
      pool_(owned_pool_.get()) {
  InitStages();
}

DeepSeaEngine::DeepSeaEngine(Catalog* catalog, SharedPool* pool,
                             std::string tenant)
    : catalog_(catalog),
      options_(pool->options()),
      cluster_(options_.cluster),
      estimator_(&cluster_, catalog, options_.estimator),
      decay_(options_.decay),
      mle_(options_.mle),
      executor_(catalog),
      pool_(pool->pool()),
      tenant_(std::move(tenant)),
      tenant_ord_(pool_->InternTenant(tenant_)) {
  InitStages();
}

DeepSeaEngine::~DeepSeaEngine() {
  // Background jobs hold this engine's observer and QueryContext;
  // drain them while both are still alive. With a shared pool this
  // also drains other tenants' queued intents (their engines are still
  // alive — they quiesce again on their own destruction).
  if (pool_ != nullptr) pool_->QuiesceMaterialization();
}

void DeepSeaEngine::InitStages() {
  // The planners hold pointers into the pool's catalog / index; a brief
  // commit section proves exclusive access while we take them.
  CommitGuard commit = pool_->BeginCommit();
  ViewCatalog* stat = pool_->stat(commit);
  FilterTree* index = pool_->rewrite_index(commit);
  stat_ = stat;
  rewrite_planner_ =
      std::make_unique<RewritePlanner>(catalog_, &estimator_, stat, index);
  candidate_generator_ = std::make_unique<CandidateGenerator>(
      catalog_, &options_, &cluster_, stat, index, pool_);
  selection_planner_ = std::make_unique<SelectionPlanner>(
      catalog_, &options_, &cluster_, &decay_, &mle_, stat);
  reservation_ =
      std::make_unique<ViewIdReservation>(pool_->placeholder_counter());
}

Status DeepSeaEngine::RunPlanningStages(QueryContext* ctx, QueryReport* report,
                                        SelectionDecision* decision) {
  {
    StageScope stage(observer_, EngineStage::kRewrite, *ctx);
    DEEPSEA_RETURN_IF_ERROR(rewrite_planner_->PlanBase(ctx, report));
    if (options_.strategy != StrategyKind::kHive) {
      DEEPSEA_RETURN_IF_ERROR(rewrite_planner_->PlanBest(ctx, report));
    }
    stage.Finish(report->best_seconds);
  }
  if (options_.strategy == StrategyKind::kHive) return Status::OK();

  {
    StageScope stage(observer_, EngineStage::kCandidates, *ctx);
    // View candidates come from Q_best (Alg. 1 line 4): when the
    // query is answered from a view, the rewritten plan's subplans
    // are the candidates — so views that already serve the query are
    // not repeatedly re-offered — while partition candidates always
    // come from the query's selection contexts (they drive refinement
    // of the serving view).
    const PlanPtr candidate_plan =
        report->used_view.empty() ? ctx->query : ctx->executed_plan;
    candidate_generator_->RegisterViewCandidates(candidate_plan,
                                                 report->base_seconds, ctx);
    candidate_generator_->RegisterPartitionCandidates(ctx);
    stage.Finish(0.0);
  }
  {
    StageScope stage(observer_, EngineStage::kSelection, *ctx);
    // Label the context before the stage closes so stage observers can
    // attribute the selection latency to the strategy that ran.
    ctx->selection_strategy =
        SelectionStrategyName(options_.selection.kind);
    SelectionResolution res =
        selection_planner_->PlanSelection(*ctx, report->base_seconds);
    *decision = std::move(res.decision);
    report->selection_strategy = ctx->selection_strategy;
    report->selection_benefit = res.objective_value;
    report->selection_candidates = res.items_considered;
    report->selection_swaps = res.swaps_applied;
    report->selection_merged_candidates = res.candidates_merged;
    stage.Finish(0.0);
  }
  return Status::OK();
}

Result<QueryReport> DeepSeaEngine::ProcessQuery(const PlanPtr& query) {
  QueryReport report;
  report.tenant_id = tenant_;
  SelectionDecision decision;
  std::unique_ptr<QueryContext> ctx;
  uint64_t read_epoch = 0;
  int64_t t_spec = 0;
  CommitFootprint write_fp;
  double admitted_bytes = 0.0;

  // Async eligibility: the merge pass and physical execution are
  // commit-coupled to the query (the merge mutates partition structure
  // the deferred decision was planned against; physical execution
  // reads the materialized views the decision creates), and Hive never
  // has a decision — those configurations execute inline regardless of
  // the configured mode.
  MaterializationService* mat_service = pool_->materialization_service();
  const bool async_mode =
      mat_service != nullptr &&
      options_.materialization.mode == MaterializationConfig::Mode::kAsync &&
      options_.strategy != StrategyKind::kHive && !options_.merge.enabled &&
      !options_.physical_execution;

  // Phase 1 — speculative planning under the shared lock. The stages
  // buffer every statistics/catalog write into the context's
  // PlanningDelta — recording the plan's read footprint as they go —
  // so concurrent tenants plan in parallel; the pool is read-only
  // here. The commit clock this query *will* get, assuming no other
  // commit intervenes, is clock()+1 — planning runs at that timestamp
  // so a validated plan is exactly the plan the serialized pipeline
  // would have produced.
  {
    auto shared = pool_->SharedLock();
    read_epoch = pool_->read_epoch();
    t_spec = pool_->clock() + 1;
    ctx = std::make_unique<QueryContext>(query, t_spec, tenant_, tenant_ord_);
    ctx->InitPlanning(*catalog_, stat_, reservation_.get());
    if (observer_ != nullptr) observer_->OnQueryStart(t_spec, query, tenant_);
    DEEPSEA_RETURN_IF_ERROR(RunPlanningStages(ctx.get(), &report, &decision));
    // Collect the plan's write footprint before the shared lock drops:
    // outside it a foreign commit can mutate the shared partitions the
    // shadows were copied from (the snapshot comparisons inside
    // CollectWriteFootprint make this belt-and-braces, but the
    // footprint should describe the plan the lock certified).
    write_fp = ctx->delta()->CollectWriteFootprint();
    if (!async_mode) {
      // Inline/drain: the commit both folds the statistics and executes
      // the decision, so its footprint and budget claim cover both. In
      // async mode the commit is stats-only — the decision's writes and
      // byte claim travel with the background job instead.
      MergeDecisionWrites(decision, &write_fp);
      admitted_bytes = AdmittedDecisionBytes(decision);
    }
    write_fp.Normalize();
  }

  // Phase 2 — commit. Only work whose effects cannot be expressed as a
  // precise footprint takes the exclusive lock: the merge pass (may
  // touch any view), inline evictions (change the pool occupancy every
  // tenant's knapsack budgets against), and physical execution (writes
  // the relational catalog outside the pool's catalog mutex).
  // Everything else — *including view creation*, whose catalog/index
  // writes publish as precise signature sets and whose ids come from
  // the engine's placeholder reservation — tries the sharded path: IX
  // on the pool lock plus the commit shards of the write footprint,
  // validated by read-set conflict detection. A plan whose reads no
  // foreign commit touched commits as-is — concurrently with other
  // disjoint-footprint tenants; a conflicting plan replans under the
  // exclusive lock (stage observers see the stages a second time,
  // OnQueryStart is not re-fired).
  bool needs_exclusive = options_.merge.enabled || options_.physical_execution;
  bool decision_evicts = false;
  for (const SelectionAction& a : decision.actions) {
    if (a.kind == SelectionAction::Kind::kEvictWholeView ||
        a.kind == SelectionAction::Kind::kEvictFragment) {
      // Evictions change the pool occupancy every tenant's knapsack
      // budgets against; route them through the exclusive lock. In
      // async mode the eviction is deferred with the decision, so the
      // exclusivity requirement travels with the job, not this commit.
      decision_evicts = true;
    }
  }
  if (!async_mode && decision_evicts) needs_exclusive = true;

  CommitGuard commit;
  bool conflict_genuine = false;
  bool replan = false;
  bool sharded = false;
  if (!needs_exclusive) {
    commit = pool_->TryBeginShardedCommit(
        observer_, tenant_, tenant_ord_, std::move(write_fp),
        ctx->delta()->read_footprint(), read_epoch, &conflict_genuine,
        admitted_bytes);
    sharded = commit.held();
    replan = !sharded;
  }
  if (!commit.held()) {
    commit = pool_->BeginCommit(observer_, tenant_, tenant_ord_);
    if (!replan) {
      // Structural path: same read-set + budget-headroom validation,
      // under the exclusive lock (no in-flight sharded commits can
      // exist here).
      replan = !pool_->ValidateReadSet(commit, ctx->delta()->read_footprint(),
                                       read_epoch, &conflict_genuine,
                                       admitted_bytes);
    }
  }

  const int64_t t = pool_->Tick(commit);
  if (replan) {
    report = QueryReport();
    report.tenant_id = tenant_;
    report.replanned = true;
    report.replan_conflict = conflict_genuine;
    report.replan_spurious = !conflict_genuine;
    decision = SelectionDecision();
    // The replan reads current state under the exclusive lock; a
    // deferred decision built from it revalidates against publishes
    // after this point (nothing can publish while we hold X).
    read_epoch = pool_->read_epoch();
    ctx = std::make_unique<QueryContext>(query, t, tenant_, tenant_ord_);
    ctx->InitPlanning(*catalog_, stat_, reservation_.get());
    DEEPSEA_RETURN_IF_ERROR(RunPlanningStages(ctx.get(), &report, &decision));
    decision_evicts = false;
    for (const SelectionAction& a : decision.actions) {
      if (a.kind == SelectionAction::Kind::kEvictWholeView ||
          a.kind == SelectionAction::Kind::kEvictFragment) {
        decision_evicts = true;
      }
    }
  }
  // Under the sharded path a concurrent commit may have won a smaller
  // clock value; events planned at t_spec keep their timestamp (commit-
  // order independence is what lets disjoint commits run concurrently),
  // while the report records the actual commit position.
  report.query_index = t;

  if (!sharded) {
    // Attribute the exclusive commit (see QueryReport::exclusive_reason)
    // while the delta is still unfolded — Fold clears the structural
    // buffers the has_* probes read.
    const PlanningDelta& d = *ctx->delta();
    report.exclusive_reason =
        options_.merge.enabled                 ? "merge"
        : (!async_mode && decision_evicts)     ? "eviction"
        : options_.physical_execution          ? "physical"
        : d.has_new_views()                    ? "new_view"
        : d.has_deferred_puts()                ? "catalog_put"
        : d.has_deferred_index()               ? "index_insert"
        : d.has_attach_ops()                   ? "attach"
        : report.replanned                     ? "replan"
                                               : "other";
  }

  if (!sharded && !options_.merge.enabled) {
    // The exclusive commit publishes `all` by default; a validated (or
    // replanned) plan knows its precise writes — publish those instead
    // so disjoint in-flight plans of other tenants survive this commit.
    // (With the merge pass enabled the commit may touch any view, so
    // `all` stands. Collect before Apply folds the delta. In async mode
    // only the statistics fold happens in this commit — the decision's
    // writes publish with the background job's own commit.)
    CommitFootprint write_fp = ctx->delta()->CollectWriteFootprint();
    if (!async_mode) MergeDecisionWrites(decision, &write_fp);
    write_fp.Normalize();
    pool_->SetCommitFootprint(commit, std::move(write_fp));
  }

  if (options_.strategy != StrategyKind::kHive && async_mode) {
    // Asynchronous handoff: this commit folds the statistics, publishes
    // its footprint early (so the job can carry the publish's seq as
    // its own-write exemption), and hands the decision to the
    // background service as a declarative intent. The query answers
    // now, from the current pool; the materialization work leaves the
    // query's critical path entirely.
    pool_->FoldPlanningDelta(commit, *ctx);
    const uint64_t own_seq = pool_->PublishCommitEarly(commit);
    if (!decision.empty()) {
      MaterializationJob job;
      CommitFootprint job_fp;
      MergeDecisionWrites(decision, &job_fp);
      job_fp.Normalize();
      job.write_fp = std::move(job_fp);
      job.reval_fp = MaterializationService::RevalidationFootprint(decision);
      job.read_epoch = read_epoch;
      job.skip_seq = own_seq;
      job.admitted_bytes = NetDecisionBytes(decision);
      job.benefit_score = decision.benefit_score;
      job.needs_exclusive = decision_evicts;
      job.observer = observer_;
      job.tenant = tenant_;
      job.tenant_ord = tenant_ord_;
      job.t_now = t;
      job.coalesce_key = MaterializationService::CoalesceKey(decision);
      job.decision = std::move(decision);
      job.ctx = std::move(ctx);
      mat_service->Submit(std::move(job));
    }
  } else if (options_.strategy != StrategyKind::kHive) {
    bool execute_decision = true;
    if (mat_service != nullptr &&
        options_.materialization.mode == MaterializationConfig::Mode::kDrain &&
        !decision.empty()) {
      // Drain mode: the decision routes through the service's admission
      // accounting but executes synchronously inside this same commit.
      // At the default bounds admission is unconditional, which keeps
      // drain-mode traces bit-identical to inline execution.
      execute_decision = mat_service->AdmitInline(
          AdmittedDecisionBytes(decision), decision.benefit_score);
    }
    {
      StageScope stage(observer_, EngineStage::kApply, *ctx);
      if (execute_decision) {
        ExecuteDecision(decision, *ctx, &report, t);
      } else {
        // Shed under a forced-tight drain bound: the statistics still
        // land (they back the plan the query answered with); only the
        // decision is dropped. The commit's registered footprint
        // over-covers the never-executed decision — conservative and
        // sound.
        pool_->FoldPlanningDelta(commit, *ctx);
      }
      stage.Finish(report.materialize_seconds);
    }

    // Maintenance: merge co-accessed adjacent fragments (Section 11
    // extension; disabled by default).
    if (options_.merge.enabled) {
      StageScope stage(observer_, EngineStage::kMerge, *ctx);
      const double merge_seconds = ExecuteMergePass(*ctx, &report);
      report.materialize_seconds += merge_seconds;
      stage.Finish(merge_seconds);
    }

    // When a view that feeds a selection of this query was created, the
    // query was executed in instrumented form: that selection is not
    // pushed below the materialized subquery, so the execution cost is
    // that of the original (non-pushed) plan; the partitioned write
    // cost has been charged to materialize_seconds by Apply.
    bool unpushed = false;
    for (const std::string& id : report.created_views) {
      for (const ViewCandidate& c : ctx->view_candidates) {
        if (c.view->id == id && c.under_select) unpushed = true;
      }
    }
    if (unpushed) {
      // Under a sharded commit a foreign fold can grow the relational
      // catalog concurrently; the estimator walks it, so read it under
      // the pool's catalog mutex (free of contention under X).
      auto catalog_lock = pool_->CatalogSharedLock();
      auto est = estimator_.Estimate(ctx->query);
      if (est.ok()) {
        report.best_seconds = est->seconds;
        report.map_tasks = est->map_tasks;
        ctx->executed_plan = ctx->query;
      }
    }
  }

  report.total_seconds = report.best_seconds + report.materialize_seconds;
  report.pool_bytes_after = pool_->PoolBytes();

  if (options_.physical_execution) {
    StageScope stage(observer_, EngineStage::kPhysical, *ctx);
    DEEPSEA_RETURN_IF_ERROR(
        PhysicalExecute(commit, ctx->executed_plan, &report));
    stage.Finish(0.0);
  }

  totals_.faults += report.fault_count;
  totals_.retries += report.retry_count;
  if (report.degraded) totals_.queries_degraded += 1;
  if (report.replanned) totals_.replans += 1;
  if (report.replan_conflict) totals_.replans_conflict += 1;
  if (report.replan_spurious) totals_.replans_spurious += 1;
  if (sharded) {
    totals_.commits_sharded += 1;
  } else {
    totals_.commits_exclusive += 1;
  }
  totals_.total_seconds += report.total_seconds;
  totals_.base_seconds += report.base_seconds;
  totals_.materialize_seconds += report.materialize_seconds;
  totals_.map_tasks += report.map_tasks;
  totals_.queries += 1;
  totals_.views_created += static_cast<int64_t>(report.created_views.size());
  totals_.fragments_created += report.created_fragments;
  totals_.fragments_evicted += report.evicted_fragments;
  totals_.fragments_merged += report.merged_fragments;
  totals_.selection_benefit += report.selection_benefit;
  totals_.selection_swaps += report.selection_swaps;
  totals_.selection_merged_candidates += report.selection_merged_candidates;
  if (!report.used_view.empty()) totals_.queries_answered_from_views += 1;
  if (observer_ != nullptr) observer_->OnQueryEnd(report);
  return report;
}

void DeepSeaEngine::ExecuteDecision(const SelectionDecision& decision,
                                    const QueryContext& ctx,
                                    QueryReport* report, int64_t t_now) {
  const FaultHandlingConfig& fault = options_.fault;
  const DeterministicBackoff backoff(fault.Backoff(),
                                     BackoffSeed(t_now, tenant_ord_));
  // Apply restores *report to its pre-attempt image on failure, so the
  // running fault/retry tallies and the backoff charge live outside the
  // report until the loop resolves.
  int faults = report->fault_count;
  int retries = report->retry_count;
  double backoff_seconds = 0.0;
  for (int attempt = 0;; ++attempt) {
    Status st = pool_->Apply(decision, ctx, report);
    if (st.ok()) {
      report->fault_count = faults;
      report->retry_count = retries;
      report->materialize_seconds += backoff_seconds;
      return;
    }
    ++faults;
    if (observer_ != nullptr) {
      observer_->OnFault(EngineStage::kApply, report->fault_view, st, attempt,
                         tenant_);
    }
    if (st.IsTransient() && attempt < fault.max_retries) {
      ++retries;
      backoff_seconds += backoff.DelaySeconds(attempt);
      if (observer_ != nullptr) {
        observer_->OnRetry(EngineStage::kApply, attempt + 1, tenant_);
      }
      continue;
    }
    // Permanent fault, or transient retries exhausted: abandon the
    // decision. The pool is already rolled back; the query is answered
    // from whatever is materialized.
    report->fault_count = faults;
    report->retry_count = retries;
    report->materialize_seconds += backoff_seconds;
    report->degraded = true;
    if (!report->fault_view.empty()) {
      pool_->RecordViewFault(report->fault_view, t_now);
    }
    if (observer_ != nullptr) {
      observer_->OnDegrade(EngineStage::kApply, report->fault_view, st,
                           tenant_);
    }
    return;
  }
}

double DeepSeaEngine::ExecuteMergePass(const QueryContext& ctx,
                                       QueryReport* report) {
  const FaultHandlingConfig& fault = options_.fault;
  const DeterministicBackoff backoff(
      fault.Backoff(), BackoffSeed(ctx.clock(), tenant_ord_));
  int faults = report->fault_count;
  int retries = report->retry_count;
  double backoff_seconds = 0.0;
  for (int attempt = 0;; ++attempt) {
    Result<double> seconds = pool_->RunMergePass(ctx.t_now(), decay_, report);
    if (seconds.ok()) {
      report->fault_count = faults;
      report->retry_count = retries;
      return *seconds + backoff_seconds;
    }
    ++faults;
    if (observer_ != nullptr) {
      observer_->OnFault(EngineStage::kMerge, "", seconds.status(), attempt,
                         tenant_);
    }
    if (seconds.status().IsTransient() && attempt < fault.max_retries) {
      ++retries;
      backoff_seconds += backoff.DelaySeconds(attempt);
      if (observer_ != nullptr) {
        observer_->OnRetry(EngineStage::kMerge, attempt + 1, tenant_);
      }
      continue;
    }
    report->fault_count = faults;
    report->retry_count = retries;
    report->degraded = true;
    if (observer_ != nullptr) {
      observer_->OnDegrade(EngineStage::kMerge, "", seconds.status(), tenant_);
    }
    return backoff_seconds;
  }
}

Status DeepSeaEngine::PhysicalExecute(const CommitGuard& commit,
                                      const PlanPtr& plan,
                                      QueryReport* report) {
  // Materialize sample tables for views created this query so future
  // ViewRef reads return real rows.
  for (const std::string& id : report->created_views) {
    ViewInfo* view = pool_->stat(commit)->Get(id);
    if (view == nullptr) continue;
    auto rows = executor_.Execute(view->plan);
    if (!rows.ok()) return rows.status();
    auto table_result = catalog_->Get(id);
    if (!table_result.ok()) continue;
    TablePtr table = *table_result;
    auto fresh = std::make_shared<Table>(id, rows->schema);
    for (Row& r : rows->rows) fresh->AddRow(std::move(r));
    fresh->set_logical_row_count(table->logical_row_count());
    fresh->set_avg_row_bytes(table->avg_row_bytes());
    // Preserve derived histograms (logical-scale) for cost estimation.
    for (const auto& [attr, part] : view->partitions) {
      (void)part;
      const AttributeHistogram* hist = table->GetHistogram(attr);
      if (hist != nullptr) fresh->SetHistogram(attr, *hist);
    }
    catalog_->Put(fresh);
  }
  auto result = executor_.Execute(plan);
  if (!result.ok()) return result.status();
  report->physical = std::move(*result);
  report->physically_executed = true;
  return Status::OK();
}

}  // namespace deepsea
