#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/str_util.h"
#include "core/partition_match.h"
#include "plan/pushdown.h"
#include "plan/signature.h"

namespace deepsea {

DeepSeaEngine::DeepSeaEngine(Catalog* catalog, EngineOptions options)
    : catalog_(catalog),
      options_(options),
      cluster_(options.cluster),
      estimator_(&cluster_, catalog, options.estimator),
      decay_(options.decay),
      mle_(options.mle),
      fs_(options.cluster.block_bytes),
      executor_(catalog) {
  matcher_ = std::make_unique<ViewMatcher>(&views_, &index_, catalog, &estimator_);
}

Result<Interval> DeepSeaEngine::ColumnDomain(const std::string& column) const {
  const size_t pos = column.rfind('.');
  if (pos == std::string::npos) {
    return Status::InvalidArgument("unqualified partition column: " + column);
  }
  const std::string table_name = column.substr(0, pos);
  DEEPSEA_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(table_name));
  const AttributeHistogram* hist = table->GetHistogram(column);
  if (hist != nullptr) return hist->domain();
  return table->SampleMinMax(column);
}

double DeepSeaEngine::RangeFractionOfBaseColumn(const std::string& column,
                                                const Interval& iv) const {
  const size_t pos = column.rfind('.');
  if (pos == std::string::npos) return 1.0;
  auto table = catalog_->Get(column.substr(0, pos));
  if (!table.ok()) return 1.0;
  const AttributeHistogram* hist = (*table)->GetHistogram(column);
  if (hist == nullptr || hist->empty()) return 1.0;
  return hist->FractionInRange(iv);
}

Result<AttributeHistogram> DeepSeaEngine::DeriveViewHistogram(
    const ViewInfo& view, const std::string& attr) const {
  const size_t pos = attr.rfind('.');
  if (pos == std::string::npos) {
    return Status::InvalidArgument("unqualified partition column: " + attr);
  }
  const std::string table_name = attr.substr(0, pos);
  DEEPSEA_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(table_name));
  auto view_table = catalog_->Get(view.id);
  const double view_rows =
      view_table.ok() ? static_cast<double>((*view_table)->logical_row_count()) : 0.0;
  const AttributeHistogram* hist = table->GetHistogram(attr);
  if (hist != nullptr && !hist->empty()) {
    AttributeHistogram out = *hist;
    if (view_rows > 0.0) out.NormalizeTo(view_rows);
    return out;
  }
  // Fall back to a uniform distribution over the sample domain.
  DEEPSEA_ASSIGN_OR_RETURN(Interval domain, table->SampleMinMax(attr));
  AttributeHistogram out(domain, options_.view_histogram_bins);
  out.AddRange(domain, std::max(view_rows, 1.0));
  return out;
}

double DeepSeaEngine::FragmentBytes(const ViewInfo& view, const std::string& attr,
                                    const Interval& iv) const {
  auto view_table = catalog_->Get(view.id);
  if (!view_table.ok()) return 0.0;
  const AttributeHistogram* hist = (*view_table)->GetHistogram(attr);
  const double total = view.stats.size_bytes;
  if (hist != nullptr && !hist->empty()) {
    return hist->FractionInRange(iv) * total;
  }
  const auto* part = view.GetPartition(attr);
  if (part != nullptr && part->domain.Width() > 0.0) {
    return iv.OverlapWidth(part->domain) / part->domain.Width() * total;
  }
  return total;
}

double DeepSeaEngine::EstimateCandidateBytes(const PartitionState& part,
                                             const Interval& iv) const {
  // Paper Section 7.2: assume uniformity within each overlapping
  // fragment and sum relative overlaps.
  double est = 0.0;
  for (const FragmentStats& f : part.fragments) {
    if (!f.materialized) continue;
    const double w = f.interval.Width();
    if (w <= 0.0) continue;
    est += f.interval.OverlapWidth(iv) / w * f.size_bytes;
  }
  return est;
}

void DeepSeaEngine::RegisterViewTable(ViewInfo* view) {
  if (catalog_->Contains(view->id)) return;
  auto schema = view->plan->OutputSchema(*catalog_);
  if (!schema.ok()) return;
  auto est = estimator_.Estimate(view->plan);
  if (!est.ok()) return;
  const double compression = options_.view_storage_compression;
  auto table = std::make_shared<Table>(view->id, *schema);
  table->set_logical_row_count(static_cast<uint64_t>(std::max(est->out_rows, 0.0)));
  table->set_avg_row_bytes(std::max(est->avg_row_bytes * compression, 1.0));
  catalog_->Put(table);
  // Initial (estimated) view statistics: S(V) and COST(V). COST is the
  // cost of computing the defining plan plus writing its (compressed)
  // output.
  view->stats.size_bytes = est->out_bytes * compression;
  view->stats.creation_cost =
      est->seconds + cluster_.WriteSeconds(view->stats.size_bytes);
}

std::string DeepSeaEngine::FragmentPath(const ViewInfo& view,
                                        const std::string& attr,
                                        const Interval& iv) const {
  return StrFormat("pool/%s/%s/%s", view.id.c_str(), attr.c_str(),
                   iv.ToString().c_str());
}

Result<QueryReport> DeepSeaEngine::ProcessQuery(const PlanPtr& query) {
  ++clock_;
  QueryReport report;
  report.query_index = clock_;

  const PlanPtr base_plan = PushDownSelections(query, *catalog_);
  DEEPSEA_ASSIGN_OR_RETURN(PlanCost base, estimator_.Estimate(base_plan));
  report.base_seconds = base.seconds;
  report.best_seconds = base.seconds;
  report.map_tasks = base.map_tasks;

  PlanPtr executed_plan = base_plan;

  if (options_.strategy != StrategyKind::kHive) {
    // 1. Rewritings over all tracked views (Alg. 1 line 1).
    DEEPSEA_ASSIGN_OR_RETURN(std::vector<Rewriting> rewritings,
                             matcher_->ComputeRewritings(query));
    // 2. Statistics update (line 2).
    UpdateStatsFromRewritings(rewritings, base.seconds);
    // 3. Q_best: cheapest executable rewriting, if it beats the base
    //    plan (line 3).
    current_cover_view_.clear();
    current_cover_attr_.clear();
    current_cover_.clear();
    for (const Rewriting& rw : rewritings) {
      if (!rw.executable) continue;
      if (rw.est_seconds < report.best_seconds) {
        report.best_seconds = rw.est_seconds;
        report.used_view = rw.view_id;
        report.fragments_read = static_cast<int>(rw.fragments.size());
        executed_plan = rw.plan;
        current_cover_view_ = rw.view_id;
        current_cover_attr_ = rw.partition_attr;
        current_cover_ = rw.fragments;
        auto est = estimator_.Estimate(rw.plan);
        if (est.ok()) report.map_tasks = est->map_tasks;
      }
      break;  // rewritings are sorted by estimated cost
    }
    // 4. Candidates (lines 4-5). View candidates come from Q_best
    //    (Alg. 1 line 4): when the query is answered from a view, the
    //    rewritten plan's subplans are the candidates — so views that
    //    already serve the query are not repeatedly re-offered — while
    //    partition candidates always come from the query's selection
    //    contexts (they drive refinement of the serving view).
    const PlanPtr candidate_plan =
        report.used_view.empty() ? query : executed_plan;
    RegisterViewCandidates(candidate_plan, base.seconds);
    RegisterPartitionCandidates(query);
    // 5.-6. Selection, instrumentation, materialization (lines 6-8).
    RunSelection(query, &report);
    // Maintenance: merge co-accessed adjacent fragments (Section 11
    // extension; disabled by default).
    if (options_.merge.enabled) {
      report.materialize_seconds += RunMergePass(&report);
    }
    // When a view that feeds a selection of this query was created, the
    // query was executed in instrumented form: that selection is not
    // pushed below the materialized subquery, so the execution cost is
    // that of the original (non-pushed) plan; the partitioned write
    // cost has been charged to materialize_seconds by RunSelection.
    bool unpushed = false;
    for (const std::string& id : report.created_views) {
      for (const VCand& c : current_vcand_) {
        if (c.view->id == id && c.under_select) unpushed = true;
      }
    }
    if (unpushed) {
      auto est = estimator_.Estimate(query);
      if (est.ok()) {
        report.best_seconds = est->seconds;
        report.map_tasks = est->map_tasks;
        executed_plan = query;
      }
    }
  }

  report.total_seconds = report.best_seconds + report.materialize_seconds;
  report.pool_bytes_after = PoolBytes();

  if (options_.physical_execution) {
    DEEPSEA_RETURN_IF_ERROR(PhysicalExecute(executed_plan, &report));
  }

  totals_.total_seconds += report.total_seconds;
  totals_.base_seconds += report.base_seconds;
  totals_.materialize_seconds += report.materialize_seconds;
  totals_.map_tasks += report.map_tasks;
  totals_.queries += 1;
  totals_.views_created += static_cast<int64_t>(report.created_views.size());
  totals_.fragments_created += report.created_fragments;
  totals_.fragments_evicted += report.evicted_fragments;
  totals_.fragments_merged += report.merged_fragments;
  if (!report.used_view.empty()) totals_.queries_answered_from_views += 1;
  return report;
}

void DeepSeaEngine::UpdateStatsFromRewritings(
    const std::vector<Rewriting>& rewritings, double base_seconds) {
  const double t_now = static_cast<double>(clock_);
  std::set<std::string> seen_views;
  std::set<std::string> seen_partitions;
  for (const Rewriting& rw : rewritings) {
    ViewInfo* view = views_.Get(rw.view_id);
    if (view == nullptr) continue;
    // View benefit: once per view per query, using its best rewriting
    // (the list is sorted by cost, so the first occurrence is best).
    if (seen_views.insert(rw.view_id).second) {
      const double saving = base_seconds - rw.est_seconds;
      if (saving > 0.0) view->stats.RecordUse(t_now, saving);
    }
    // Fragment hits: every tracked fragment overlapping the query range
    // "was or could have been used" (Section 7.1).
    if (rw.has_query_range && !rw.partition_attr.empty()) {
      const std::string pkey = rw.view_id + "/" + rw.partition_attr;
      if (seen_partitions.insert(pkey).second) {
        PartitionState* part = view->GetPartition(rw.partition_attr);
        if (part != nullptr) {
          for (FragmentStats& f : part->fragments) {
            if (f.interval.Overlaps(rw.query_range)) f.RecordHit(t_now, rw.query_range);
          }
        }
      }
    }
  }
}

void DeepSeaEngine::RegisterViewCandidates(const PlanPtr& query,
                                           double base_seconds) {
  current_vcand_.clear();
  const double t_now = static_cast<double>(clock_);
  const std::vector<SelectionContext> contexts = ExtractSelectionContexts(query);
  for (const PlanPtr& sp : EnumerateViewCandidates(query)) {
    auto sig = ComputeSignature(sp, *catalog_);
    if (!sig.ok()) continue;
    const bool known = views_.FindBySignature(sig->ToString()) != nullptr;
    ViewInfo* view = views_.Track(sp, *sig);
    if (!known) {
      RegisterViewTable(view);
      if (!catalog_->Contains(view->id)) continue;  // unsupported plan shape
      index_.Insert(view->signature, view->id);
    }
    const SelectionContext* ctx = nullptr;
    for (const SelectionContext& c : contexts) {
      if (c.selected_input.get() == sp.get()) {
        ctx = &c;
        break;
      }
    }
    current_vcand_.push_back({view, ctx != nullptr});
    // ADDCANDIDATES "initial rough estimate" of benefits (Alg. 1 line
    // 5): a view that directly feeds a selection of this query could
    // have answered it; seed one benefit event with the estimated
    // saving of reading only the selected slice of the view. Aggregate
    // views are not seeded — their signatures embed the selection
    // constants, so optimism would materialize one-shot query caches.
    if (!known && ctx != nullptr && sp->kind() != PlanKind::kAggregate) {
      double fraction = 1.0;
      auto domain = ColumnDomain(ctx->column);
      if (domain.ok()) {
        const auto clamped = ctx->range.Intersect(*domain);
        if (clamped.has_value()) {
          fraction = RangeFractionOfBaseColumn(ctx->column, *clamped);
        }
      }
      const double read_bytes = fraction * view->stats.size_bytes;
      const double est_reuse = cluster_.MapPhaseSeconds({read_bytes}) +
                               2.0 * cluster_.config().job_startup_seconds +
                               cluster_.ShuffleSeconds(read_bytes);
      const double saving = base_seconds - est_reuse;
      if (saving > 0.0) view->stats.RecordUse(t_now, saving);
    }
  }
}

void DeepSeaEngine::RegisterPartitionCandidates(const PlanPtr& query) {
  current_pcand_.clear();
  if (options_.strategy == StrategyKind::kNoPartition) return;
  const double t_now = static_cast<double>(clock_);
  for (const SelectionContext& ctx : ExtractSelectionContexts(query)) {
    auto sig = ComputeSignature(ctx.selected_input, *catalog_);
    if (!sig.ok()) continue;
    ViewInfo* view = views_.FindBySignature(sig->ToString());
    if (view == nullptr) continue;  // selections over non-candidate shapes
    auto domain = ColumnDomain(ctx.column);
    if (!domain.ok()) continue;
    PartitionState* part = view->EnsurePartition(ctx.column, *domain);
    if (part->pending.empty()) part->pending = {*domain};
    // Attach the derived histogram to the view table once per attribute
    // so fragment sizes reflect the data distribution.
    auto view_table = catalog_->Get(view->id);
    if (view_table.ok() && (*view_table)->GetHistogram(ctx.column) == nullptr) {
      auto hist = DeriveViewHistogram(*view, ctx.column);
      if (hist.ok()) (*view_table)->SetHistogram(ctx.column, *hist);
    }
    const auto clamped = ctx.range.Intersect(*domain);
    if (!clamped.has_value()) continue;
    const Interval range = *clamped;
    // Snapped variant used for fragment-boundary generation (hits keep
    // the true range for distribution fidelity).
    Interval gen_range = range;
    if (options_.candidate_snap_fraction > 0.0) {
      const double step = options_.candidate_snap_fraction * domain->Width();
      if (step > 0.0) {
        gen_range.lo = Clamp(std::floor(range.lo / step) * step, domain->lo,
                             domain->hi);
        gen_range.hi = Clamp(std::ceil(range.hi / step) * step, domain->lo,
                             domain->hi);
        gen_range.lo_inclusive = true;
        gen_range.hi_inclusive = true;
      }
    }

    // The query range counts as covered when the materialized fragments
    // of the partition can answer it (partial materialization under a
    // tight pool may leave gaps even after the view entered the pool).
    const std::vector<Interval> mats = part->MaterializedIntervals();
    const bool covered =
        !mats.empty() && PartitionMatch(mats, gen_range).ok();
    if (!covered) {
      // EquiDepth partitions by histogram at creation time; selection
      // endpoints are irrelevant to it.
      if (options_.strategy == StrategyKind::kEquiDepth) continue;
      // Refine the pending (planned) fragmentation at the range
      // endpoints (Definition 7, unmaterialized case). Pieces that are
      // already materialized stay untouched.
      std::vector<Interval> next;
      for (const Interval& f : part->pending) {
        const FragmentStats* fstat = part->Find(f);
        const bool frozen = fstat != nullptr && fstat->materialized;
        const std::vector<Interval> pieces =
            frozen ? std::vector<Interval>{}
                   : GeneratePartitionCandidates({f}, gen_range);
        if (pieces.empty()) {
          next.push_back(f);
          continue;
        }
        // Splitting: pieces partition f (plus f's covered middle).
        for (const Interval& p : pieces) next.push_back(p);
        // Track stats for every piece; pieces overlapping the query
        // range count the current query as a hit.
        for (const Interval& p : pieces) {
          FragmentStats* tracked = part->Track(p, /*est_size_bytes=*/0.0);
          if (p.Overlaps(range)) tracked->RecordHit(t_now, range);
        }
      }
      part->pending = std::move(next);
      continue;
    }
    // Post-creation refinement candidates (Definition 7 cases over
    // P(V, A)): only strategies that repartition generate them.
    if (options_.strategy != StrategyKind::kDeepSea) continue;
    const std::vector<Interval> existing = part->MaterializedIntervals();
    for (const Interval& cand : GeneratePartitionCandidates(existing, gen_range)) {
      const double est_bytes = EstimateCandidateBytes(*part, cand);
      if (options_.enforce_block_lower_bound && est_bytes < fs_.block_bytes()) {
        continue;  // fragments below one block are never created
      }
      FragmentStats* fstat = part->Track(cand, est_bytes);
      if (fstat->materialized) continue;
      fstat->size_bytes = est_bytes;
      if (cand.Overlaps(range)) fstat->RecordHit(t_now, range);
      // COST(I_cand): read the overlapping materialized fragments,
      // write the new fragment (Section 7.2; w_write >> w_read).
      std::vector<double> read_files;
      for (const FragmentStats& f : part->fragments) {
        if (f.materialized && f.interval.Overlaps(cand)) {
          read_files.push_back(f.size_bytes);
        }
      }
      FragCandidate fc;
      fc.view = view;
      fc.attr = ctx.column;
      fc.interval = cand;
      fc.est_bytes = est_bytes;
      fc.est_cost_seconds = cluster_.MapPhaseSeconds(read_files) +
                            cluster_.PartitionedWriteSeconds(est_bytes, 1);
      // Marginal read saving: current cover of the candidate's interval
      // vs reading the candidate alone.
      double cover_seconds;
      auto cover = PartitionMatchIntervals(existing, cand);
      if (cover.ok()) {
        std::vector<double> cover_bytes;
        for (const Interval& c : *cover) {
          const FragmentStats* cf = part->Find(c);
          cover_bytes.push_back(cf != nullptr ? cf->size_bytes : 0.0);
        }
        cover_seconds = cluster_.MapPhaseSeconds(cover_bytes);
      } else {
        cover_seconds = cluster_.MapPhaseSeconds({view->stats.size_bytes});
      }
      fc.per_hit_saving_seconds =
          std::max(0.0, cover_seconds - cluster_.MapPhaseSeconds({est_bytes}));
      current_pcand_.push_back(std::move(fc));
    }
  }
}

std::vector<Interval> DeepSeaEngine::InitialFragmentation(
    ViewInfo* view, const std::string& attr) {
  PartitionState* part = view->GetPartition(attr);
  if (part == nullptr) return {};
  if (options_.strategy == StrategyKind::kEquiDepth) {
    auto view_table = catalog_->Get(view->id);
    std::vector<double> bounds;
    if (view_table.ok()) {
      const AttributeHistogram* hist = (*view_table)->GetHistogram(attr);
      if (hist != nullptr) {
        bounds = hist->EquiDepthBoundaries(options_.equi_depth_fragments);
      }
    }
    if (bounds.size() < 2) {
      const auto pieces = part->domain.SplitEqual(options_.equi_depth_fragments);
      return pieces;
    }
    std::vector<Interval> out;
    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
      const bool last = i + 2 == bounds.size();
      out.push_back(Interval(bounds[i], bounds[i + 1], /*lo_inc=*/true,
                             /*hi_inc=*/last));
    }
    return out;
  }
  if (options_.strategy == StrategyKind::kNoPartition) {
    return {part->domain};
  }
  // DeepSea / NoRefine: the workload-aware pending fragmentation.
  if (part->pending.empty()) return {part->domain};
  std::vector<Interval> out = part->pending;
  std::sort(out.begin(), out.end(), IntervalLess);
  return out;
}

std::vector<Interval> DeepSeaEngine::ApplyFragmentBounds(
    const ViewInfo& view, const std::string& attr,
    std::vector<Interval> frags) const {
  // Upper bound phi: split oversized fragments into equi-size pieces.
  if (options_.max_fragment_fraction > 0.0) {
    const double limit = options_.max_fragment_fraction * view.stats.size_bytes;
    std::vector<Interval> split;
    for (const Interval& f : frags) {
      const double bytes = FragmentBytes(view, attr, f);
      if (bytes > limit && limit > 0.0) {
        const int pieces = static_cast<int>(std::ceil(bytes / limit));
        for (const Interval& p : f.SplitEqual(pieces)) split.push_back(p);
      } else {
        split.push_back(f);
      }
    }
    frags = std::move(split);
  }
  // Lower bound: merge adjacent fragments smaller than a block.
  if (options_.enforce_block_lower_bound && frags.size() > 1) {
    std::sort(frags.begin(), frags.end(), IntervalLess);
    std::vector<Interval> merged;
    for (const Interval& f : frags) {
      if (!merged.empty() &&
          FragmentBytes(view, attr, merged.back()) < fs_.block_bytes()) {
        Interval& prev = merged.back();
        prev = Interval(prev.lo, f.hi, prev.lo_inclusive, f.hi_inclusive);
      } else {
        merged.push_back(f);
      }
    }
    frags = std::move(merged);
  }
  return frags;
}

double DeepSeaEngine::MaterializeView(ViewInfo* view, QueryReport* report) {
  // Determine the partition attribute: the one with pending state.
  std::string attr;
  for (const auto& [a, p] : view->partitions) {
    (void)p;
    attr = a;
    break;
  }
  double extra_seconds = 0.0;
  auto est = estimator_.Estimate(view->plan);
  const double view_bytes = est.ok() ? est->out_bytes * options_.view_storage_compression : view->stats.size_bytes;
  view->stats.size_bytes = view_bytes;
  view->stats.size_is_actual = true;

  if (attr.empty() || options_.strategy == StrategyKind::kNoPartition) {
    // Whole-view materialization (NP).
    fs_.Put(StrFormat("pool/%s/full", view->id.c_str()), view_bytes);
    view->whole_materialized = true;
    extra_seconds = cluster_.PartitionedWriteSeconds(view_bytes, 1);
  } else {
    PartitionState* part = view->GetPartition(attr);
    std::vector<Interval> frags =
        ApplyFragmentBounds(*view, attr, InitialFragmentation(view, attr));
    for (const Interval& iv : frags) {
      const double bytes = FragmentBytes(*view, attr, iv);
      FragmentStats* fstat = part->Track(iv, bytes);
      fstat->size_bytes = bytes;
      fstat->materialized = true;
      fs_.Put(FragmentPath(*view, attr, iv), bytes);
      ++report->created_fragments;
    }
    extra_seconds = cluster_.PartitionedWriteSeconds(
        view_bytes, static_cast<int64_t>(frags.size()));
  }
  // Actual creation cost: computing the defining plan (done as part of
  // the instrumented query) plus the durable partitioned write.
  view->stats.creation_cost =
      (est.ok() ? est->seconds : view->stats.creation_cost) + extra_seconds;
  view->stats.cost_is_actual = true;
  report->created_views.push_back(view->id);
  return extra_seconds;
}

double DeepSeaEngine::MaterializeFragment(ViewInfo* view, PartitionState* part,
                                          const Interval& iv,
                                          QueryReport* report) {
  const std::string& attr = part->attr;
  double seconds = 0.0;
  // Fragments currently materialized that overlap the new one. Tracked
  // by interval, not pointer: Track() below may grow the fragment
  // vector and invalidate references.
  std::vector<Interval> parents;
  std::vector<double> parent_bytes_to_read;
  const bool cover_matches = view->id == current_cover_view_ &&
                             attr == current_cover_attr_;
  for (const FragmentStats& f : part->fragments) {
    if (f.materialized && f.interval.Overlaps(iv) && f.interval != iv) {
      parents.push_back(f.interval);
      // Parents the current query's cover already read are free to
      // re-scan: the partition operator forks the new fragment off the
      // same map stream (repartitioning as a by-product of answering).
      const bool read_by_query =
          cover_matches &&
          std::find(current_cover_.begin(), current_cover_.end(), f.interval) !=
              current_cover_.end();
      if (!read_by_query) parent_bytes_to_read.push_back(f.size_bytes);
    }
  }
  // Read the overlapping parents (not already streamed by the query) to
  // extract the new fragment's rows.
  seconds += cluster_.MapPhaseSeconds(parent_bytes_to_read);

  const double bytes = FragmentBytes(*view, attr, iv);
  FragmentStats* fstat = part->Track(iv, bytes);
  fstat->size_bytes = bytes;
  fstat->materialized = true;
  fs_.Put(FragmentPath(*view, attr, iv), bytes);
  ++report->created_fragments;
  seconds += cluster_.PartitionedWriteSeconds(bytes, 1);

  if (!options_.overlapping_fragments) {
    // Horizontal partitioning: the parents must be split — their whole
    // content is rewritten as complement pieces and the parents evicted
    // (Section 1, "Overlapping Fragments": the split cost DeepSea's
    // overlapping mode avoids).
    for (const Interval& p : parents) {
      std::vector<Interval> pieces;
      auto [left, rest] = p.SplitBefore(iv.lo);
      if (!left.IsEmpty() && left.Width() > 0.0 && !iv.Contains(left)) {
        pieces.push_back(left);
      }
      auto [rest2, right] = p.SplitAfter(iv.hi);
      (void)rest;
      (void)rest2;
      if (!right.IsEmpty() && right.Width() > 0.0 && !iv.Contains(right)) {
        pieces.push_back(right);
      }
      for (const Interval& piece : pieces) {
        const double piece_bytes = FragmentBytes(*view, attr, piece);
        FragmentStats* pstat = part->Track(piece, piece_bytes);
        pstat->size_bytes = piece_bytes;
        pstat->materialized = true;
        fs_.Put(FragmentPath(*view, attr, piece), piece_bytes);
        ++report->created_fragments;
        seconds += cluster_.PartitionedWriteSeconds(piece_bytes, 1);
      }
      // Re-resolve the parent after the Track calls above (the fragment
      // vector may have been reallocated).
      FragmentStats* parent_stat = part->Find(p);
      if (parent_stat != nullptr) {
        EvictFragment(view, part, parent_stat);
        --report->evicted_fragments;  // split, not a policy eviction
      }
    }
  }
  return seconds;
}

void DeepSeaEngine::EvictFragment(ViewInfo* view, PartitionState* part,
                                  FragmentStats* frag) {
  if (!frag->materialized) return;
  frag->materialized = false;
  (void)fs_.Delete(FragmentPath(*view, part->attr, frag->interval));
}

void DeepSeaEngine::EvictWholeView(ViewInfo* view) {
  if (!view->whole_materialized) return;
  view->whole_materialized = false;
  (void)fs_.Delete(StrFormat("pool/%s/full", view->id.c_str()));
}

void DeepSeaEngine::RunSelection(const PlanPtr& query, QueryReport* report) {
  (void)query;
  const double t_now = static_cast<double>(clock_);

  struct Item {
    enum Kind {
      kPoolFragment,
      kPoolWhole,
      kNewView,          // whole-view creation (unpartitioned)
      kNewViewFragment,  // one fragment of a view's initial partitioning
      kNewFragment,      // refinement of an existing partition
    } kind;
    double value = 0.0;
    double size = 0.0;
    ViewInfo* view = nullptr;
    PartitionState* part = nullptr;
    Interval interval;
    const FragCandidate* cand = nullptr;
  };
  std::vector<Item> items;

  // --- V_sel: filter view candidates by benefit >= cost (Section 7.2).
  //     Partially materialized views stay eligible: their still-
  //     uncovered planned fragments are offered every query (top-up).
  for (const VCand& cand : current_vcand_) {
    ViewInfo* v = cand.view;
    if (v->stats.size_bytes <= 0.0) continue;
    const double benefit =
        ViewBenefitForFilter(options_.value_model, v->stats, t_now, decay_);
    // Zero-benefit candidates (e.g. one-shot aggregate views that have
    // never matched another query) are never admitted, even when the
    // threshold is relaxed to force eager materialization.
    if (benefit <= 0.0 ||
        benefit < options_.benefit_cost_threshold * v->stats.creation_cost) {
      continue;
    }
    // With a partition, the view enters the selection as individual
    // fragments (the paper's "finer granularity of control", Section
    // 1): under a tight pool only the valuable (hot) fragments are
    // materialized. A view may carry partitions on several attributes
    // (Section 4 permits multiple partitions per view); each offers its
    // fragments independently.
    if (v->partitions.empty() ||
        options_.strategy == StrategyKind::kNoPartition) {
      if (v->whole_materialized) continue;
      Item it;
      it.kind = Item::kNewView;
      it.view = v;
      it.size = v->stats.size_bytes;
      it.value = ViewValue(options_.value_model, v->stats, t_now, decay_);
      items.push_back(it);
      continue;
    }
    for (auto& [attr, part_ref] : v->partitions) {
      PartitionState* part = &part_ref;
      const std::vector<Interval> mats = part->MaterializedIntervals();
      const std::vector<Interval> planned =
          ApplyFragmentBounds(*v, attr, InitialFragmentation(v, attr));
      for (const Interval& iv : planned) {
        // Skip planned pieces whose extent the pool already covers
        // (exactly materialized, or covered by refinement fragments).
        if (!mats.empty() && PartitionMatch(mats, iv).ok()) continue;
        // Inherit hit history from tracked pieces the (possibly merged
        // or split) planned fragment covers, so hot planned fragments
        // carry their evidence into the ranking.
        std::vector<FragmentHit> inherited;
        if (part->Find(iv) == nullptr) {
          for (const FragmentStats& p : part->fragments) {
            if (iv.Contains(p.interval)) {
              inherited.insert(inherited.end(), p.hits.begin(), p.hits.end());
            }
          }
        }
        FragmentStats* fstat = part->Track(iv, FragmentBytes(*v, attr, iv));
        if (fstat->hits.empty() && !inherited.empty()) fstat->hits = inherited;
        if (fstat->materialized) continue;
        fstat->size_bytes = FragmentBytes(*v, attr, iv);
        // Top-up filter: once the view is in the pool, adding a fragment
        // for a still-uncovered range requires recomputing the view's
        // query (Section 7.1: the cost of a fragment not in the pool is
        // the view's creation cost). Only top up when the accumulated
        // hits on the range amortize that (mirrors the P_sel filter);
        // initial creation admits the planned set as a unit.
        if (v->InPool()) {
          const double hits = fstat->DecayedHits(t_now, decay_);
          const double read_cost =
              cluster_.MapPhaseSeconds({fstat->size_bytes}) +
              2.0 * cluster_.config().job_startup_seconds;
          const double per_hit_saving =
              std::max(0.0, report->base_seconds - read_cost);
          if (hits * per_hit_saving <
              options_.fragment_benefit_threshold * v->stats.creation_cost) {
            continue;
          }
        }
        Item it;
        it.kind = Item::kNewViewFragment;
        it.view = v;
        it.part = part;
        it.interval = iv;
        it.size = fstat->size_bytes;
        it.value = FragmentValue(options_.value_model, *fstat,
                                 v->stats.size_bytes, v->stats.creation_cost,
                                 t_now, decay_);
        items.push_back(it);
      }
    }
  }

  // --- MLE smoothing per partition (computed once, reused below).
  const bool use_mle = options_.use_mle_smoothing &&
                       options_.value_model == ValueModel::kDeepSea;
  std::map<const PartitionState*, MleFragmentModel::AdjustedHits> adjusted;
  auto adjusted_hits_for = [&](const PartitionState* part,
                               const FragmentStats* frag) -> double {
    if (!use_mle) return -1.0;
    auto it = adjusted.find(part);
    if (it == adjusted.end()) {
      it = adjusted
               .emplace(part, mle_.Adjust(part->fragments, part->domain, t_now,
                                          decay_))
               .first;
    }
    const auto& adj = it->second;
    for (size_t i = 0; i < part->fragments.size(); ++i) {
      if (&part->fragments[i] == frag) return adj.hits[i];
    }
    return -1.0;
  };

  // --- P_sel: filter refinement candidates by benefit >= cost.
  for (const FragCandidate& fc : current_pcand_) {
    PartitionState* part = fc.view->GetPartition(fc.attr);
    if (part == nullptr) continue;
    FragmentStats* fstat = part->Find(fc.interval);
    if (fstat == nullptr || fstat->materialized) continue;
    const double adj = adjusted_hits_for(part, fstat);
    const double hits =
        adj >= 0.0 ? adj : fstat->DecayedHits(t_now, decay_);
    // Marginal admission: expected read-time saving over the current
    // cover must amortize the creation cost (see FragCandidate doc).
    const double benefit = hits * fc.per_hit_saving_seconds;
    if (benefit < options_.fragment_benefit_threshold * fc.est_cost_seconds) {
      continue;
    }
    Item it;
    it.kind = Item::kNewFragment;
    it.view = fc.view;
    it.part = part;
    it.interval = fc.interval;
    it.size = fc.est_bytes;
    it.cand = &fc;
    it.value = FragmentValue(options_.value_model, *fstat,
                             fc.view->stats.size_bytes,
                             fc.view->stats.creation_cost, t_now, decay_, adj);
    items.push_back(it);
  }

  // --- Existing pool content: every materialized fragment / whole view
  //     partakes individually (Section 7.3).
  for (ViewInfo* v : views_.AllViews()) {
    if (v->whole_materialized) {
      Item it;
      it.kind = Item::kPoolWhole;
      it.view = v;
      it.size = v->stats.size_bytes;
      it.value = ViewValue(options_.value_model, v->stats, t_now, decay_);
      items.push_back(it);
    }
    for (auto& [attr, part] : v->partitions) {
      (void)attr;
      for (FragmentStats& f : part.fragments) {
        if (!f.materialized) continue;
        Item it;
        it.kind = Item::kPoolFragment;
        it.view = v;
        it.part = &part;
        it.interval = f.interval;
        it.size = f.size_bytes;
        it.value = FragmentValue(options_.value_model, f, v->stats.size_bytes,
                                 v->stats.creation_cost, t_now, decay_,
                                 adjusted_hits_for(&part, &f));
        items.push_back(it);
      }
    }
  }

  // --- Greedy knapsack by value (Section 7.3).
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.value > b.value; });
  double budget = options_.pool_limit_bytes;
  std::vector<const Item*> admit;
  std::vector<const Item*> reject;
  for (const Item& it : items) {
    if (it.size <= budget) {
      admit.push_back(&it);
      budget -= it.size;
    } else {
      reject.push_back(&it);
    }
  }

  // Evict rejected pool content first (frees the simulated FS), then
  // materialize admitted new content.
  for (const Item* it : reject) {
    if (it->kind == Item::kPoolWhole) {
      EvictWholeView(it->view);
      ++report->evicted_fragments;
    } else if (it->kind == Item::kPoolFragment) {
      FragmentStats* f = it->part->Find(it->interval);
      if (f != nullptr && f->materialized) {
        EvictFragment(it->view, it->part, f);
        ++report->evicted_fragments;
      }
    }
  }
  // Admitted initial fragments are created together per view (one
  // instrumented partitioned write).
  struct NewViewWork {
    double bytes = 0.0;
    int64_t count = 0;
  };
  std::map<ViewInfo*, NewViewWork> new_view_work;
  for (const Item* it : admit) {
    if (it->kind == Item::kNewView) {
      report->materialize_seconds += MaterializeView(it->view, report);
    } else if (it->kind == Item::kNewFragment) {
      report->materialize_seconds +=
          MaterializeFragment(it->view, it->part, it->interval, report);
    } else if (it->kind == Item::kNewViewFragment) {
      FragmentStats* f = it->part->Find(it->interval);
      if (f == nullptr || f->materialized) continue;
      f->size_bytes = it->size;
      f->materialized = true;
      fs_.Put(FragmentPath(*it->view, it->part->attr, it->interval), it->size);
      ++report->created_fragments;
      NewViewWork& work = new_view_work[it->view];
      work.bytes += it->size;
      work.count += 1;
    }
  }
  for (auto& [view, work] : new_view_work) {
    const double extra = cluster_.PartitionedWriteSeconds(work.bytes, work.count);
    report->materialize_seconds += extra;
    auto est = estimator_.Estimate(view->plan);
    if (est.ok()) {
      view->stats.size_bytes = est->out_bytes * options_.view_storage_compression;
      view->stats.size_is_actual = true;
      view->stats.creation_cost = est->seconds + extra;
      view->stats.cost_is_actual = true;
    }
    report->created_views.push_back(view->id);
  }
}

double DeepSeaEngine::RunMergePass(QueryReport* report) {
  const double t_now = static_cast<double>(clock_);
  double seconds = 0.0;
  int merges = 0;
  auto candidates = FindMergeCandidates(&views_, options_.merge, t_now, decay_);
  for (const MergeCandidate& cand : candidates) {
    if (merges >= options_.merge.max_merges_per_query) break;
    FragmentStats& a = cand.part->fragments[cand.left_index];
    FragmentStats& b = cand.part->fragments[cand.right_index];
    if (!a.materialized || !b.materialized) continue;  // stale candidate
    // Read both parents, write the merged fragment.
    seconds += cluster_.MapPhaseSeconds({a.size_bytes, b.size_bytes});
    const double merged_bytes = a.size_bytes + b.size_bytes;
    seconds += cluster_.PartitionedWriteSeconds(merged_bytes, 1);
    // Union the hit histories so the merged fragment keeps its record.
    std::vector<FragmentHit> hits = a.hits;
    hits.insert(hits.end(), b.hits.begin(), b.hits.end());
    EvictFragment(cand.view, cand.part, &a);
    EvictFragment(cand.view, cand.part, &b);
    FragmentStats* merged = cand.part->Track(cand.merged, merged_bytes);
    merged->size_bytes = merged_bytes;
    merged->materialized = true;
    if (merged->hits.empty()) merged->hits = std::move(hits);
    fs_.Put(FragmentPath(*cand.view, cand.part->attr, cand.merged), merged_bytes);
    ++merges;
    ++report->merged_fragments;
  }
  return seconds;
}

Status DeepSeaEngine::PhysicalExecute(const PlanPtr& plan, QueryReport* report) {
  // Materialize sample tables for views created this query so future
  // ViewRef reads return real rows.
  for (const std::string& id : report->created_views) {
    ViewInfo* view = views_.Get(id);
    if (view == nullptr) continue;
    auto rows = executor_.Execute(view->plan);
    if (!rows.ok()) return rows.status();
    auto table_result = catalog_->Get(id);
    if (!table_result.ok()) continue;
    TablePtr table = *table_result;
    auto fresh = std::make_shared<Table>(id, rows->schema);
    for (Row& r : rows->rows) fresh->AddRow(std::move(r));
    fresh->set_logical_row_count(table->logical_row_count());
    fresh->set_avg_row_bytes(table->avg_row_bytes());
    // Preserve derived histograms (logical-scale) for cost estimation.
    for (const auto& [attr, part] : view->partitions) {
      (void)part;
      const AttributeHistogram* hist = table->GetHistogram(attr);
      if (hist != nullptr) fresh->SetHistogram(attr, *hist);
    }
    catalog_->Put(fresh);
  }
  auto result = executor_.Execute(plan);
  if (!result.ok()) return result.status();
  report->physical = std::move(*result);
  report->physically_executed = true;
  return Status::OK();
}

}  // namespace deepsea
