#include "core/rewrite_planner.h"

#include <cassert>
#include <set>
#include <string>

#include "plan/pushdown.h"

namespace deepsea {

Status RewritePlanner::PlanBase(QueryContext* ctx, QueryReport* report) {
  ctx->base_plan = PushDownSelections(ctx->query, *catalog_);
  DEEPSEA_ASSIGN_OR_RETURN(PlanCost base, estimator_->Estimate(ctx->base_plan));
  report->base_seconds = base.seconds;
  report->best_seconds = base.seconds;
  report->map_tasks = base.map_tasks;
  ctx->executed_plan = ctx->base_plan;
  return Status::OK();
}

Status RewritePlanner::PlanBest(QueryContext* ctx, QueryReport* report) {
  // 1. Rewritings over all tracked views (Alg. 1 line 1). The delta
  //    records every filter-tree probe so foreign view creations that
  //    could have changed the rewriting choice invalidate this plan.
  DEEPSEA_ASSIGN_OR_RETURN(std::vector<Rewriting> rewritings,
                           matcher_->ComputeRewritings(ctx->query, ctx->delta()));
  // 2. Statistics update (line 2), buffered in the planning delta.
  UpdateStatsFromRewritings(rewritings, report->base_seconds, ctx->t_now(),
                            ctx->tenant_ord(), ctx->delta());
  // 3. Q_best: cheapest executable rewriting, if it beats the base
  //    plan (line 3).
  ctx->ClearCover();
  for (const Rewriting& rw : rewritings) {
    if (!rw.executable) continue;
    if (rw.est_seconds < report->best_seconds) {
      report->best_seconds = rw.est_seconds;
      report->used_view = rw.view_id;
      report->fragments_read = static_cast<int>(rw.fragments.size());
      ctx->executed_plan = rw.plan;
      ctx->SetCover(rw.view_id, rw.partition_attr, rw.fragments);
      auto est = estimator_->Estimate(rw.plan);
      if (est.ok()) report->map_tasks = est->map_tasks;
    }
    break;  // rewritings are sorted by estimated cost
  }
  return Status::OK();
}

void RewritePlanner::UpdateStatsFromRewritings(
    const std::vector<Rewriting>& rewritings, double base_seconds,
    double t_now, int32_t tenant, PlanningDelta* delta) {
  assert(delta != nullptr);
  std::set<std::string> seen_views;
  std::set<std::string> seen_partitions;
  for (const Rewriting& rw : rewritings) {
    ViewInfo* view = views_->Get(rw.view_id);
    if (view == nullptr) continue;
    // View benefit: once per view per query, using its best rewriting
    // (the list is sorted by cost, so the first occurrence is best).
    if (seen_views.insert(rw.view_id).second) {
      const double saving = base_seconds - rw.est_seconds;
      if (saving > 0.0) delta->RecordUse(view, t_now, saving, tenant);
    }
    // Fragment hits: every tracked fragment overlapping the query range
    // "was or could have been used" (Section 7.1). Hits land on the
    // delta's shadow partition; the shadow fragment mirrors the shared
    // fragment list, so the overlap scan sees the same intervals.
    if (rw.has_query_range && !rw.partition_attr.empty()) {
      const std::string pkey = rw.view_id + "/" + rw.partition_attr;
      if (seen_partitions.insert(pkey).second) {
        PartitionState* part = delta->Partition(view, rw.partition_attr);
        if (part != nullptr) {
          for (FragmentStats& f : part->fragments) {
            if (f.interval.Overlaps(rw.query_range)) {
              f.RecordHit(t_now, rw.query_range, tenant);
            }
          }
        }
      }
    }
  }
}

}  // namespace deepsea
