#include "core/policy.h"

namespace deepsea {

const char* StrategyName(StrategyKind s) {
  switch (s) {
    case StrategyKind::kHive:
      return "H";
    case StrategyKind::kNoPartition:
      return "NP";
    case StrategyKind::kEquiDepth:
      return "E";
    case StrategyKind::kNoRefine:
      return "NR";
    case StrategyKind::kDeepSea:
      return "DS";
  }
  return "?";
}

const char* ValueModelName(ValueModel m) {
  switch (m) {
    case ValueModel::kDeepSea:
      return "DS";
    case ValueModel::kNectar:
      return "N";
    case ValueModel::kNectarPlus:
      return "N+";
  }
  return "?";
}

double ViewValue(ValueModel model, const ViewStats& stats, double t_now,
                 const DecayFunction& dec) {
  const double size = std::max(stats.size_bytes, 1.0);
  switch (model) {
    case ValueModel::kDeepSea:
      return stats.creation_cost * stats.AccumulatedBenefit(t_now, dec) / size;
    case ValueModel::kNectar: {
      const double dt = std::max(t_now - stats.LastUse(), 1.0);
      return stats.creation_cost / (size * dt);
    }
    case ValueModel::kNectarPlus: {
      const double dt = std::max(t_now - stats.LastUse(), 1.0);
      return stats.creation_cost * stats.UndecayedBenefit() / (size * dt);
    }
  }
  return 0.0;
}

double FragmentValue(ValueModel model, const FragmentStats& frag,
                     double view_size, double view_cost, double t_now,
                     const DecayFunction& dec, double adjusted_hits) {
  const double size = std::max(frag.size_bytes, 1.0);
  switch (model) {
    case ValueModel::kDeepSea:
      return view_cost *
             frag.Benefit(t_now, dec, view_size, view_cost, adjusted_hits) / size;
    case ValueModel::kNectar: {
      const double dt = std::max(t_now - frag.LastHit(), 1.0);
      return view_cost / (size * dt);
    }
    case ValueModel::kNectarPlus: {
      // Undecayed fragment benefit: raw hit count in place of decayed.
      const double benefit = frag.RawHits() *
                             (frag.size_bytes / std::max(view_size, 1.0)) *
                             view_cost;
      const double dt = std::max(t_now - frag.LastHit(), 1.0);
      return view_cost * benefit / (size * dt);
    }
  }
  return 0.0;
}

double ViewBenefitForFilter(ValueModel model, const ViewStats& stats,
                            double t_now, const DecayFunction& dec) {
  switch (model) {
    case ValueModel::kDeepSea:
      return stats.AccumulatedBenefit(t_now, dec);
    case ValueModel::kNectar:
    case ValueModel::kNectarPlus:
      return stats.UndecayedBenefit();
  }
  return 0.0;
}

}  // namespace deepsea
