#ifndef DEEPSEA_CORE_PLANNING_DELTA_H_
#define DEEPSEA_CORE_PLANNING_DELTA_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/table.h"
#include "core/commit_footprint.h"
#include "core/decay.h"
#include "core/policy.h"
#include "core/view_catalog.h"
#include "plan/plan.h"
#include "plan/signature.h"

namespace deepsea {

class FilterTree;

/// A per-engine lease of placeholder view ids, drawn in blocks from the
/// pool's shared atomic counter (PoolManager::placeholder_counter()).
///
/// Historically TrackView *predicted* the final "v<N>" id from the
/// shared counter, which made every candidate-tracking plan read — and
/// every creating commit write — the global `catalog_counter`, so two
/// concurrent creators always conflicted and structural commits had to
/// serialize. A reservation removes the counter from the planning read
/// set: TrackView names the candidate with a process-unique placeholder
/// ("c<M>") instead, and Fold assigns the real catalog id in commit
/// order — so the golden "v1, v2, ..." sequence of a deterministic run
/// is untouched, while concurrent creators with disjoint signatures
/// commute.
///
/// Not thread-safe: one reservation belongs to one engine, and engines
/// process one query at a time. The block lease (kBlockSize ids per
/// fetch_add) just keeps the shared counter off the per-candidate hot
/// path; exhausting a block transparently leases the next one.
class ViewIdReservation {
 public:
  static constexpr int64_t kBlockSize = 8;

  explicit ViewIdReservation(std::atomic<int64_t>* counter)
      : counter_(counter) {}

  /// The next unused placeholder id ("c<M>"; the namespace is disjoint
  /// from the catalog's "v<N>" ids by construction).
  std::string NextPlaceholder();

  /// True for ids produced by any ViewIdReservation (fold uses this to
  /// tell reserved candidates from legacy predicted ids).
  static bool IsPlaceholder(const std::string& id) {
    return !id.empty() && id[0] == 'c';
  }

  /// Unleased ids remaining in the current block (exhaustion tests).
  int64_t remaining() const { return end_ - next_; }

 private:
  std::atomic<int64_t>* const counter_;
  int64_t next_ = 0;
  int64_t end_ = 0;  ///< one past the leased block
};

/// Per-query write buffer for the planning stages (see DESIGN.md,
/// "Statistics hot path and locking discipline").
///
/// The planners (RewritePlanner::UpdateStatsFromRewritings,
/// CandidateGenerator, SelectionPlanner) historically mutated shared
/// pool state in place — benefit events, fragment hits, new views, new
/// tracked fragments, histogram attachments — which forced the whole of
/// ProcessQuery under the exclusive commit lock. A PlanningDelta
/// absorbs every one of those writes instead, so planning can run under
/// PoolManager::SharedLock() concurrently with other planners; the
/// buffered writes are folded into the shared state at the top of
/// PoolManager::Apply, inside the exclusive commit section.
///
/// Replayability contract: a plan-into-delta-then-fold run must be
/// bit-identical to the historical mutate-in-place run. The mechanisms:
///
///  * Delta-owned views. ViewCatalog::Track calls become TrackView,
///    which allocates the ViewInfo here with the id ViewCatalog *will*
///    assign ("v<peek_next_id + k>"). Fold adopts the owned ViewInfo
///    into the catalog (ViewCatalog::Adopt), preserving its address, so
///    candidate lists and decisions that captured the pointer stay
///    valid. Stats/partitions of delta-owned views are mutated directly
///    (nothing else can see them).
///
///  * Shadow partitions. Writes to a shared view's PartitionState go to
///    a shadow copy: fragments are copied *without* their hit history
///    (O(#fragments), never O(#hits)), and each shadow fragment keeps a
///    pointer to its base so readers can evaluate base-then-local.
///    Planner-added fragments have no base. Fold appends the shadow's
///    local hits onto the base fragments (same order as in-place
///    appends) and Tracks the added fragments.
///
///  * Effective readers. AccumulatedBenefit / DecayedHits / LastUse /
///    ... compute the value the shared stats *would* have after the
///    fold, by starting from the base's incremental evaluation and
///    accumulating the buffered terms one at a time onto it — the exact
///    additions, in the exact order, the folded evaluation performs.
///    (Never base_sum + local_sum: FP addition is not associative.)
///
///  * A planning catalog. A (shallow, shared_ptr-map) copy of the real
///    Catalog at construction. New view tables are Put here immediately
///    and deferred for the real catalog; histogram attachments to
///    *shared* tables clone the table first so concurrent planners
///    never observe a mutation.
///
/// Fold is idempotent (a retried Apply after a rolled-back commit must
/// not double-append) and runs before the commit's transaction begins,
/// so a rollback never undoes it.
class PlanningDelta {
 public:
  /// Snapshots the planning catalog. `shared_views` is only read during
  /// planning; Fold mutates it. With a `reservation`, TrackView names
  /// new candidates with placeholder ids (no counter read) and Fold
  /// assigns the final catalog ids in commit order; without one it
  /// falls back to the legacy counter-predicted ids (direct-use tests
  /// and single-threaded callers).
  PlanningDelta(const Catalog& shared_catalog, ViewCatalog* shared_views,
                double t_now, ViewIdReservation* reservation = nullptr);

  PlanningDelta(const PlanningDelta&) = delete;
  PlanningDelta& operator=(const PlanningDelta&) = delete;

  double t_now() const { return t_now_; }

  /// The catalog planners must resolve tables against: the shared
  /// catalog plus this query's new view tables and histogram clones.
  Catalog* planning_catalog() { return &planning_catalog_; }
  const Catalog& planning_catalog() const { return planning_catalog_; }

  // --- view overlay -------------------------------------------------

  /// Lookup by signature canonical string across shared + delta-owned
  /// views (shared wins; ids never collide).
  ViewInfo* FindView(const std::string& canonical);

  /// ViewCatalog::Track, buffered: returns the existing (shared or
  /// delta) view for the signature, or allocates a delta-owned one with
  /// the id the shared catalog will assign at fold time.
  ViewInfo* TrackView(const PlanPtr& plan, const PlanSignature& signature);

  /// True when `v` was created by this delta (not yet in the shared
  /// catalog).
  bool OwnsView(const ViewInfo* v) const;

  /// Shared views in track order, then delta-owned views in track
  /// order — the order ViewCatalog::AllViews() returns after the fold.
  std::vector<ViewInfo*> AllViews();

  // --- deferred catalog / index writes ------------------------------

  /// Defers Catalog::Put(table) on the real catalog to fold time. The
  /// same TablePtr is Put into the planning catalog by the caller, so
  /// the planning view and the folded state are the same object.
  void DeferCatalogPut(TablePtr table);

  /// Defers FilterTree::Insert(sig, id) to fold time. Rewrites in later
  /// queries see the new view; this query's rewrite already ran.
  void DeferIndexInsert(const PlanSignature& sig, const std::string& view_id);

  /// Attaches `hist` to the view's table for planning, and (for shared
  /// tables) defers the attachment to the real table at fold. Shared
  /// tables are cloned into the planning catalog first; delta-owned
  /// tables are mutated directly. No-op when the table is absent.
  void AttachHistogram(const ViewInfo& view, const std::string& attr,
                       const AttributeHistogram& hist);

  // --- benefit events ------------------------------------------------

  /// ViewStats::RecordUse, buffered for shared views (direct for
  /// delta-owned ones).
  void RecordUse(ViewInfo* v, double time, double saving, int32_t tenant);

  // --- partitions -----------------------------------------------------

  /// Post-fold equivalent of !v->partitions.empty().
  bool HasPartitions(const ViewInfo* v) const;

  /// Post-fold partition attrs of `v` in std::map (sorted) order.
  std::vector<std::string> PartitionAttrs(const ViewInfo* v) const;

  /// The writable PartitionState planners should use for (v, attr):
  /// the view's own state for delta-owned views, else a lazily created
  /// shadow of the shared state. nullptr when the partition does not
  /// exist (and EnsurePartition was never called).
  PartitionState* Partition(ViewInfo* v, const std::string& attr);

  /// ViewInfo::EnsurePartition, buffered (first domain wins, matching
  /// the in-place semantics).
  PartitionState* EnsurePartition(ViewInfo* v, const std::string& attr,
                                  const Interval& domain);

  /// PartitionState::Track on a delta partition. For shadows this also
  /// records that the fragment has no base. Callers may mutate the
  /// returned FragmentStats directly (hits recorded here are the
  /// query-local suffix).
  FragmentStats* TrackFragment(PartitionState* part, const Interval& iv,
                               double est_size_bytes);

  /// For a shadow partition: per-fragment base pointers (nullptr
  /// entries for planner-added fragments), parallel to
  /// part->fragments. nullptr when `part` is not a shadow (fragments
  /// then carry their full history themselves). Used by the MLE model.
  const std::vector<const FragmentStats*>* BasesOf(
      const PartitionState* part) const;

  // --- effective stats readers (value after fold, bit-identically) ---

  double AccumulatedBenefit(const ViewInfo* v, const DecayFunction& dec) const;
  double UndecayedBenefit(const ViewInfo* v) const;
  double LastUse(const ViewInfo* v) const;

  double DecayedHits(const PartitionState* part, const FragmentStats* f,
                     const DecayFunction& dec) const;
  double RawHits(const PartitionState* part, const FragmentStats* f) const;
  double LastHit(const PartitionState* part, const FragmentStats* f) const;
  bool HasHits(const PartitionState* part, const FragmentStats* f) const;

  /// Full post-fold hit list [base..., local...] (fragment-inheritance
  /// paths copy whole hit vectors).
  std::vector<FragmentHit> EffectiveHits(const PartitionState* part,
                                         const FragmentStats* f) const;

  // --- policy overlays (mirror policy.cc expression-for-expression) ---

  double ViewValue(ValueModel model, const ViewInfo* v,
                   const DecayFunction& dec) const;
  double ViewBenefitForFilter(ValueModel model, const ViewInfo* v,
                              const DecayFunction& dec) const;
  double FragmentValue(ValueModel model, const PartitionState* part,
                       const FragmentStats* f, double view_size,
                       double view_cost, const DecayFunction& dec,
                       double adjusted_hits = -1.0) const;

  // --- read/write footprints (commit conflict detection) --------------
  //
  // While planning runs under SharedLock(), the delta records which
  // shared state it depended on: view stats read by the value/filter
  // overlays, partition structure read when a shadow is created,
  // signature catalog entries probed by FindView, and the view-id
  // counter when TrackView predicts an id. BeginCommit validates this
  // read footprint against the write footprints of commits that
  // published after the plan's read epoch (see commit_footprint.h).

  /// Everything recorded so far (soft reads excluded until promoted).
  const CommitFootprint& read_footprint() const { return reads_; }

  /// Records a rewrite-index probe: the matcher looked the query
  /// subplan signature up in the FilterTree. A foreign commit inserting
  /// a view whose signature subsumes `sig` invalidates this plan (the
  /// rewriting choice could have differed); signature-disjoint inserts
  /// commute. Honors the soft-read window.
  void RecordIndexProbe(const PlanSignature& sig);

  /// Records a dependency on the pool's view membership (the
  /// `catalog_counter` token): the knapsack's admit/reject outcome
  /// depends on which views occupy the pool, so when the budget binds,
  /// a foreign commit creating views must invalidate the plan. Creating
  /// commits write the counter; see CollectWriteFootprint. Honors the
  /// soft-read window.
  void NotePoolMembershipRead() { read_target().catalog_counter = true; }

  /// Brackets a read window whose reads only matter when the pool
  /// budget is binding: SelectionPlanner evaluates *every* pool view in
  /// its knapsack, but when nothing is rejected the foreign values it
  /// read had no influence on the decision. Reads recorded inside the
  /// window land in a side set; PromoteSoftReads() merges them into the
  /// read footprint (call it when the knapsack rejected anything).
  void BeginSoftReads() { soft_mode_ = true; }
  void EndSoftReads() { soft_mode_ = false; }
  void PromoteSoftReads();

  /// The write footprint of this plan's buffered writes (benefit
  /// patches, shadow-partition changes, created views / catalog entries
  /// / rewrite-index inserts). Structural work is decomposed into
  /// precise {catalog_counter, catalog_sigs, index_inserts, view,
  /// partition} entries — never `all` — so candidate-registering
  /// commits with disjoint signatures commute and commit sharded.
  /// Decision actions are merged in by the engine. Pre-fold only.
  CommitFootprint CollectWriteFootprint() const;

  /// True when folding this delta mutates pool-structural state (new
  /// views, catalog puts, histogram attaches, rewrite-index inserts).
  /// Such commits now take the *sharded* path like any other — their
  /// write footprints are precise — but the flag still drives the
  /// exclusive-reason attribution and a few structural-only asserts.
  bool RequiresStructuralCommit() const;

  // Per-category structural probes (exclusive-commit reason metric).
  bool has_new_views() const { return !new_views_.empty(); }
  bool has_deferred_puts() const { return !deferred_puts_.empty(); }
  bool has_deferred_index() const { return !deferred_index_.empty(); }
  bool has_attach_ops() const { return !attach_ops_.empty(); }

  // --- fold -----------------------------------------------------------

  bool folded() const { return folded_; }

  /// Applies every buffered write to the shared state, in a fixed
  /// order (views, catalog puts, histogram attaches, index inserts,
  /// shadow partitions in creation order, benefit patches). Idempotent.
  /// Must be called inside a commit section, with the pool's catalog
  /// structure lock held exclusively when the commit is sharded
  /// (PoolManager::FoldPlanningDelta handles this).
  ///
  /// Reservation-tracked views enter with placeholder ids; Fold assigns
  /// each its final "v<N>" id (in track order, which equals fold/commit
  /// order) immediately before adopting it, and renames the deferred
  /// view tables and index inserts to match. The placeholder -> final
  /// map is exposed through RemapFoldedIds for the commit's published
  /// footprint.
  void Fold(ViewCatalog* views, Catalog* catalog, FilterTree* index);

  /// Rewrites placeholder view ids in `fp` to the final ids Fold
  /// assigned. No-op before Fold or when nothing was reserved. The
  /// commit's publish footprint must be remapped before it reaches the
  /// epoch table: later plans read views under their final ids.
  void RemapFoldedIds(CommitFootprint* fp) const {
    fp->RemapViewIds(id_remap_);
  }

  /// After the fold: the real PartitionState a shadow folded into
  /// (identity for non-shadow pointers). Decision actions captured
  /// shadow pointers during planning; Apply remaps them through this.
  PartitionState* RealPartition(PartitionState* maybe_shadow) const;

 private:
  struct ShadowPartition {
    ViewInfo* view = nullptr;
    PartitionState state;
    /// True when the shared view already had this partition (fold then
    /// folds into it); false when EnsurePartition created it here.
    bool base_exists = false;
    /// The shared partition this shadow copies (nullptr when created
    /// here). Fold uses the pointer VALUE only (the read-only remap
    /// target); its fields must never be dereferenced outside the
    /// shared lock — a foreign sharded commit may mutate the partition,
    /// and a foreign Track() reallocates its fragment vector.
    const PartitionState* base = nullptr;
    /// Parallel to state.fragments; nullptr for planner-added entries.
    /// Same rule as `base`: safe to compare against nullptr anywhere,
    /// safe to dereference only under the shared lock.
    std::vector<const FragmentStats*> bases;
    /// Creation-time snapshot of the base fields the dirty/footprint
    /// checks compare against (taken under the shared lock, where the
    /// base is stable). ShadowDirty / CollectWriteFootprint run at
    /// commit time, when foreign sharded commits may be mutating the
    /// base concurrently — they read these snapshots instead.
    std::vector<Interval> base_pending;
    struct BaseFragSnap {
      double size_bytes = 0.0;
      bool materialized = false;
    };
    /// Parallel to the base-backed prefix of state.fragments.
    std::vector<BaseFragSnap> base_snap;
  };

  struct AttachOp {
    std::string table;
    std::string attr;
    AttributeHistogram hist;
  };

  ShadowPartition* ShadowFor(const PartitionState* part) const;
  ShadowPartition& MakeShadow(ViewInfo* v, const std::string& attr,
                              const PartitionState* base,
                              const Interval& domain);
  const FragmentStats* BaseOf(const PartitionState* part,
                              const FragmentStats* f) const;
  const std::vector<BenefitEvent>* PatchOf(const ViewInfo* v) const;

  /// True when the shadow buffered any write (local hits, added or
  /// resized fragments, changed pending list), judged against the
  /// creation-time base snapshot — never the live base, which a
  /// foreign commit may be mutating. Read-only shadows are skipped by
  /// Fold, so a plan whose soft reads were dropped never folds into
  /// (or asserts against) a base a foreign commit legitimately changed.
  static bool ShadowDirty(const ShadowPartition& sp);

  // Read-footprint recording (const readers record through these;
  // the sets are mutable for that reason).
  CommitFootprint& read_target() const {
    return soft_mode_ ? soft_reads_ : reads_;
  }
  void NoteViewRead(const ViewInfo* v) const;
  void NotePartitionRead(const ViewInfo* v, const std::string& attr) const;

  const double t_now_;
  ViewCatalog* const shared_views_;
  ViewIdReservation* const reservation_;
  Catalog planning_catalog_;

  // Delta-owned views, in track order. unique_ptr keeps addresses
  // stable across fold (ownership moves to the ViewCatalog).
  std::vector<std::unique_ptr<ViewInfo>> new_views_;
  std::vector<std::pair<std::string, ViewInfo*>> new_by_signature_;

  // Buffered benefit events per shared view, in creation order (linear
  // find: a query touches a handful of views).
  std::vector<std::pair<ViewInfo*, std::vector<BenefitEvent>>> view_patches_;

  // Shadows in creation order (deque: stable addresses). The key map is
  // only used for lookup, never iterated.
  std::deque<ShadowPartition> shadows_;
  std::map<std::pair<const ViewInfo*, std::string>, ShadowPartition*>
      shadow_by_key_;

  std::vector<TablePtr> deferred_puts_;
  std::vector<std::pair<PlanSignature, std::string>> deferred_index_;
  std::vector<AttachOp> attach_ops_;

  // Filled by Fold: shadow state -> real partition.
  std::vector<std::pair<const PartitionState*, PartitionState*>> fold_remap_;
  // Filled by Fold: placeholder id -> final catalog id.
  std::vector<std::pair<std::string, std::string>> id_remap_;

  // Read footprint (mutable: recorded from const readers).
  mutable CommitFootprint reads_;
  mutable CommitFootprint soft_reads_;
  mutable bool soft_mode_ = false;

  bool folded_ = false;
};

}  // namespace deepsea

#endif  // DEEPSEA_CORE_PLANNING_DELTA_H_
