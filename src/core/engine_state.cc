// SaveState / LoadState: persistence of the engine's adaptive state
// (see the declarations in core/engine.h). The format is line-based:
//
//   DEEPSEA-STATE 2
//   CLOCK <t>
//   TENANT <ord> <name>                       (0+; non-default tenants)
//   VIEW
//   PLAN <line-count>
//   <serialized plan, see plan/plan_serde.h>
//   STATS <size_bytes> <creation_cost> <size_actual> <cost_actual> <whole>
//   EVENT <time> <saving> <tenant>            (0+ per view)
//   PARTITION <attr> <lo> <hi> <li> <hi_inc>  (0+ per view)
//   PENDING <lo> <hi> <li> <hi_inc>           (0+ per partition)
//   FRAGMENT <lo> <hi> <li> <hi_inc> <size> <materialized>
//   HIT <time> <has_range> <lo> <hi> <li> <hi_inc> <tenant>  (0+ per fragment)
//   ENDVIEW
//
// Version 1 (no TENANT lines, no tenant field on EVENT/HIT) is still
// accepted; missing tenant fields default to the 0 ordinal. Saved
// tenant ordinals are remapped through the loading pool's registry, so
// a blob saved by one pool restores correct attributions in another.

#include <cstdlib>
#include <map>

#include "common/str_util.h"
#include "core/engine.h"
#include "core/view_sizing.h"
#include "plan/plan_serde.h"
#include "plan/signature.h"

namespace deepsea {

namespace {

std::string FmtInterval(const Interval& iv) {
  return StrFormat("%.17g %.17g %d %d", iv.lo, iv.hi, iv.lo_inclusive ? 1 : 0,
                   iv.hi_inclusive ? 1 : 0);
}

// Parses 4 whitespace-separated interval fields starting at parts[at].
Result<Interval> ParseInterval(const std::vector<std::string>& parts, size_t at) {
  if (parts.size() < at + 4) {
    return Status::InvalidArgument("truncated interval in state");
  }
  return Interval(std::atof(parts[at].c_str()), std::atof(parts[at + 1].c_str()),
                  parts[at + 2] == "1", parts[at + 3] == "1");
}

}  // namespace

Result<std::string> DeepSeaEngine::SaveState() const {
  // Shared-mode lock: a consistent snapshot that doesn't block other
  // readers (and waits for any in-flight commit to finish).
  auto lock = pool_->SharedLock();
  std::string out = "DEEPSEA-STATE 2\n";
  out += StrFormat("CLOCK %lld\n", static_cast<long long>(pool_->clock()));
  const std::vector<std::string> tenants = pool_->Tenants();
  for (size_t ord = 1; ord < tenants.size(); ++ord) {
    out += StrFormat("TENANT %d %s\n", static_cast<int>(ord),
                     tenants[ord].c_str());
  }
  for (const ViewInfo* view : pool_->views().AllViews()) {
    if (!view->plan) continue;
    out += "VIEW\n";
    const std::string plan_text = SerializePlan(view->plan);
    int plan_lines = 0;
    for (char c : plan_text) {
      if (c == '\n') ++plan_lines;
    }
    out += StrFormat("PLAN %d\n", plan_lines);
    out += plan_text;
    out += StrFormat("STATS %.17g %.17g %d %d %d\n", view->stats.size_bytes,
                     view->stats.creation_cost,
                     view->stats.size_is_actual ? 1 : 0,
                     view->stats.cost_is_actual ? 1 : 0,
                     view->whole_materialized ? 1 : 0);
    for (const BenefitEvent& e : view->stats.events) {
      out += StrFormat("EVENT %.17g %.17g %d\n", e.time, e.saving,
                       static_cast<int>(e.tenant));
    }
    for (const auto& [attr, part] : view->partitions) {
      out += "PARTITION " + attr + " " + FmtInterval(part.domain) + "\n";
      for (const Interval& iv : part.pending) {
        out += "PENDING " + FmtInterval(iv) + "\n";
      }
      for (const FragmentStats& f : part.fragments) {
        out += "FRAGMENT " + FmtInterval(f.interval) +
               StrFormat(" %.17g %d\n", f.size_bytes, f.materialized ? 1 : 0);
        for (const FragmentHit& h : f.hits) {
          out += StrFormat("HIT %.17g %d ", h.time, h.has_range ? 1 : 0) +
                 FmtInterval(h.range) +
                 StrFormat(" %d\n", static_cast<int>(h.tenant));
        }
      }
    }
    out += "ENDVIEW\n";
  }
  return out;
}

Status DeepSeaEngine::LoadState(const std::string& state) {
  const std::vector<std::string> lines = Split(state, '\n');
  size_t i = 0;
  auto next_parts = [&]() { return Split(lines[i], ' '); };
  if (i >= lines.size() ||
      (lines[i] != "DEEPSEA-STATE 1" && lines[i] != "DEEPSEA-STATE 2")) {
    return Status::InvalidArgument("bad state header");
  }
  ++i;

  CommitGuard commit = pool_->BeginCommit(observer_, tenant_, tenant_ord_);
  ViewCatalog* views = pool_->stat(commit);
  SimFs* fs = pool_->fs(commit);
  FilterTree* index = pool_->rewrite_index(commit);

  if (i < lines.size() && lines[i].rfind("CLOCK ", 0) == 0) {
    pool_->AdvanceClockTo(commit, std::atoll(lines[i].substr(6).c_str()));
    ++i;
  }
  // Remap saved tenant ordinals into this pool's registry (InternTenant
  // takes its own mutex, never the commit lock — safe to call here).
  std::map<int32_t, int32_t> tenant_remap;
  while (i < lines.size() && lines[i].rfind("TENANT ", 0) == 0) {
    const auto parts = next_parts();
    if (parts.size() != 3) return Status::InvalidArgument("bad TENANT line");
    tenant_remap[static_cast<int32_t>(std::atoi(parts[1].c_str()))] =
        pool_->InternTenant(parts[2]);
    ++i;
  }
  auto remap_tenant = [&](const std::string& field) {
    const int32_t saved = static_cast<int32_t>(std::atoi(field.c_str()));
    auto it = tenant_remap.find(saved);
    return it != tenant_remap.end() ? it->second : saved;
  };

  while (i < lines.size()) {
    if (lines[i].empty()) {
      ++i;
      continue;
    }
    if (lines[i] != "VIEW") {
      return Status::InvalidArgument("expected VIEW at line " +
                                     std::to_string(i));
    }
    ++i;
    if (i >= lines.size() || lines[i].rfind("PLAN ", 0) != 0) {
      return Status::InvalidArgument("expected PLAN after VIEW");
    }
    const int plan_lines = std::atoi(lines[i].substr(5).c_str());
    ++i;
    std::string plan_text;
    for (int k = 0; k < plan_lines; ++k) {
      if (i >= lines.size()) return Status::InvalidArgument("truncated plan");
      plan_text += lines[i++] + "\n";
    }
    DEEPSEA_ASSIGN_OR_RETURN(PlanPtr plan, DeserializePlan(plan_text));
    DEEPSEA_ASSIGN_OR_RETURN(PlanSignature sig, ComputeSignature(plan, *catalog_));
    const bool known = views->FindBySignature(sig.ToString()) != nullptr;
    ViewInfo* view = views->Track(plan, sig);
    if (!known) {
      pool_->RegisterViewTable(view);
      index->Insert(view->signature, view->id);
    }

    // STATS line.
    if (i >= lines.size() || lines[i].rfind("STATS ", 0) != 0) {
      return Status::InvalidArgument("expected STATS");
    }
    {
      const auto parts = next_parts();
      if (parts.size() != 6) return Status::InvalidArgument("bad STATS line");
      view->stats.size_bytes = std::atof(parts[1].c_str());
      view->stats.creation_cost = std::atof(parts[2].c_str());
      view->stats.size_is_actual = parts[3] == "1";
      view->stats.cost_is_actual = parts[4] == "1";
      view->whole_materialized = parts[5] == "1";
      if (view->whole_materialized) {
        fs->Put(StrFormat("pool/%s/full", view->id.c_str()),
                view->stats.size_bytes);
      }
      ++i;
    }
    PartitionState* part = nullptr;
    FragmentStats* frag = nullptr;
    while (i < lines.size() && lines[i] != "ENDVIEW") {
      const auto parts = next_parts();
      if (parts[0] == "EVENT" && (parts.size() == 3 || parts.size() == 4)) {
        view->stats.RecordUse(
            std::atof(parts[1].c_str()), std::atof(parts[2].c_str()),
            parts.size() == 4 ? remap_tenant(parts[3]) : 0);
      } else if (parts[0] == "PARTITION" && parts.size() == 6) {
        DEEPSEA_ASSIGN_OR_RETURN(Interval domain, ParseInterval(parts, 2));
        part = view->EnsurePartition(parts[1], domain);
        part->pending.clear();
        frag = nullptr;
        // Attach the derived histogram (as RegisterPartitionCandidates
        // would) so fragment size estimation works after load.
        auto view_table = catalog_->Get(view->id);
        if (view_table.ok() &&
            (*view_table)->GetHistogram(parts[1]) == nullptr) {
          auto hist = DeriveViewHistogram(*catalog_, options_, *view, parts[1]);
          if (hist.ok()) (*view_table)->SetHistogram(parts[1], *hist);
        }
      } else if (parts[0] == "PENDING" && parts.size() == 5 && part != nullptr) {
        DEEPSEA_ASSIGN_OR_RETURN(Interval iv, ParseInterval(parts, 1));
        part->pending.push_back(iv);
      } else if (parts[0] == "FRAGMENT" && parts.size() == 7 && part != nullptr) {
        DEEPSEA_ASSIGN_OR_RETURN(Interval iv, ParseInterval(parts, 1));
        frag = part->Track(iv, std::atof(parts[5].c_str()));
        frag->size_bytes = std::atof(parts[5].c_str());
        frag->materialized = parts[6] == "1";
        frag->hits.clear();
        if (frag->materialized) {
          fs->Put(FragmentPath(*view, part->attr, iv), frag->size_bytes);
        }
      } else if (parts[0] == "HIT" && (parts.size() == 7 || parts.size() == 8) &&
                 frag != nullptr) {
        FragmentHit hit;
        hit.time = std::atof(parts[1].c_str());
        hit.has_range = parts[2] == "1";
        DEEPSEA_ASSIGN_OR_RETURN(hit.range, ParseInterval(parts, 3));
        hit.tenant = parts.size() == 8 ? remap_tenant(parts[7]) : 0;
        frag->hits.push_back(hit);
      } else {
        return Status::InvalidArgument("unexpected state line: " + lines[i]);
      }
      ++i;
    }
    if (i >= lines.size()) return Status::InvalidArgument("missing ENDVIEW");
    ++i;  // consume ENDVIEW
  }
  return Status::OK();
}

}  // namespace deepsea
