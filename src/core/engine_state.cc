// SaveState / LoadState: persistence of the engine's adaptive state
// (see the declarations in core/engine.h). The format is line-based:
//
//   DEEPSEA-STATE 2
//   CLOCK <t>
//   TENANT <ord> <name>                       (0+; non-default tenants)
//   VIEW
//   PLAN <line-count>
//   <serialized plan, see plan/plan_serde.h>
//   STATS <size_bytes> <creation_cost> <size_actual> <cost_actual> <whole>
//   EVENT <time> <saving> <tenant>            (0+ per view)
//   PARTITION <attr> <lo> <hi> <li> <hi_inc>  (0+ per view)
//   PENDING <lo> <hi> <li> <hi_inc>           (0+ per partition)
//   FRAGMENT <lo> <hi> <li> <hi_inc> <size> <materialized>
//   HIT <time> <has_range> <lo> <hi> <li> <hi_inc> <tenant>  (0+ per fragment)
//   ENDVIEW
//
// Version 1 (no TENANT lines, no tenant field on EVENT/HIT) is still
// accepted; missing tenant fields default to the 0 ordinal. Saved
// tenant ordinals are remapped through the loading pool's registry, so
// a blob saved by one pool restores correct attributions in another.

#include <cassert>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>

#include "common/str_util.h"
#include "core/engine.h"
#include "core/view_sizing.h"
#include "plan/plan_serde.h"
#include "plan/signature.h"

namespace deepsea {

namespace {

std::string FmtInterval(const Interval& iv) {
  return StrFormat("%.17g %.17g %d %d", iv.lo, iv.hi, iv.lo_inclusive ? 1 : 0,
                   iv.hi_inclusive ? 1 : 0);
}

// --- strict field parsers. atof/atoi silently map garbage to 0, which
//     turns a corrupted blob into a quietly wrong pool; every field of a
//     state line must parse completely or the whole load is rejected.

Result<double> ParseDouble(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty number in state");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("bad number in state: " + s);
  }
  return v;
}

Result<int64_t> ParseInt(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty integer in state");
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("bad integer in state: " + s);
  }
  return static_cast<int64_t>(v);
}

Result<bool> ParseFlag(const std::string& s) {
  if (s == "1") return true;
  if (s == "0") return false;
  return Status::InvalidArgument("bad flag in state: " + s);
}

// Parses 4 whitespace-separated interval fields starting at parts[at].
Result<Interval> ParseInterval(const std::vector<std::string>& parts, size_t at) {
  if (parts.size() < at + 4) {
    return Status::InvalidArgument("truncated interval in state");
  }
  DEEPSEA_ASSIGN_OR_RETURN(double lo, ParseDouble(parts[at]));
  DEEPSEA_ASSIGN_OR_RETURN(double hi, ParseDouble(parts[at + 1]));
  DEEPSEA_ASSIGN_OR_RETURN(bool lo_inc, ParseFlag(parts[at + 2]));
  DEEPSEA_ASSIGN_OR_RETURN(bool hi_inc, ParseFlag(parts[at + 3]));
  return Interval(lo, hi, lo_inc, hi_inc);
}

// --- parsed representation of a state blob (phase 1 output). LoadState
//     fully parses and validates into these values before touching any
//     engine state, so a malformed blob can never leave a partial load.

struct ParsedHit {
  double time = 0.0;
  bool has_range = false;
  Interval range;
  int32_t tenant = 0;
};

struct ParsedFragment {
  Interval interval;
  double size_bytes = 0.0;
  bool materialized = false;
  std::vector<ParsedHit> hits;
};

struct ParsedPartition {
  std::string attr;
  Interval domain;
  std::vector<Interval> pending;
  std::vector<ParsedFragment> fragments;
};

struct ParsedEvent {
  double time = 0.0;
  double saving = 0.0;
  int32_t tenant = 0;
};

struct ParsedView {
  PlanPtr plan;
  PlanSignature signature;
  double size_bytes = 0.0;
  double creation_cost = 0.0;
  bool size_is_actual = false;
  bool cost_is_actual = false;
  bool whole_materialized = false;
  std::vector<ParsedEvent> events;
  std::vector<ParsedPartition> partitions;
};

struct ParsedState {
  int64_t clock = 0;
  std::vector<std::pair<int32_t, std::string>> tenants;  // saved ord -> name
  std::vector<ParsedView> views;
};

}  // namespace

Result<std::string> DeepSeaEngine::SaveState() const {
  // Quiesce the materialization service first: queued intents execute
  // (or drop as stale) before the snapshot, so the saved blob reflects
  // a drained pool — a queue is never silently forgotten by a
  // save/restore cycle. Must happen before the lock below (draining
  // takes commits of its own).
  pool_->QuiesceMaterialization();
  // Shared-mode lock: a consistent snapshot that doesn't block other
  // readers (and waits for any in-flight commit to finish).
  auto lock = pool_->SharedLock();
  std::string out = "DEEPSEA-STATE 2\n";
  out += StrFormat("CLOCK %lld\n", static_cast<long long>(pool_->clock()));
  const std::vector<std::string> tenants = pool_->Tenants();
  for (size_t ord = 1; ord < tenants.size(); ++ord) {
    out += StrFormat("TENANT %d %s\n", static_cast<int>(ord),
                     tenants[ord].c_str());
  }
  for (const ViewInfo* view : pool_->views().AllViews()) {
    if (!view->plan) continue;
    out += "VIEW\n";
    const std::string plan_text = SerializePlan(view->plan);
    int plan_lines = 0;
    for (char c : plan_text) {
      if (c == '\n') ++plan_lines;
    }
    out += StrFormat("PLAN %d\n", plan_lines);
    out += plan_text;
    out += StrFormat("STATS %.17g %.17g %d %d %d\n", view->stats.size_bytes,
                     view->stats.creation_cost,
                     view->stats.size_is_actual ? 1 : 0,
                     view->stats.cost_is_actual ? 1 : 0,
                     view->whole_materialized ? 1 : 0);
    for (const BenefitEvent& e : view->stats.events()) {
      out += StrFormat("EVENT %.17g %.17g %d\n", e.time, e.saving,
                       static_cast<int>(e.tenant));
    }
    for (const auto& [attr, part] : view->partitions) {
      out += "PARTITION " + attr + " " + FmtInterval(part.domain) + "\n";
      for (const Interval& iv : part.pending) {
        out += "PENDING " + FmtInterval(iv) + "\n";
      }
      for (const FragmentStats& f : part.fragments) {
        out += "FRAGMENT " + FmtInterval(f.interval) +
               StrFormat(" %.17g %d\n", f.size_bytes, f.materialized ? 1 : 0);
        for (const FragmentHit& h : f.hits()) {
          out += StrFormat("HIT %.17g %d ", h.time, h.has_range ? 1 : 0) +
                 FmtInterval(h.range) +
                 StrFormat(" %d\n", static_cast<int>(h.tenant));
        }
      }
    }
    out += "ENDVIEW\n";
  }
  return out;
}

Status DeepSeaEngine::LoadState(const std::string& state) {
  // Quiesce before restoring: a queued intent was planned against the
  // pre-load pool and must not fold into the restored one. (Its
  // revalidation would catch the structural `all` publish of the load
  // commit anyway — draining first keeps the ordering deterministic.)
  pool_->QuiesceMaterialization();
  // --- phase 1: parse and validate the whole blob into ParsedState.
  // Mutates nothing, so a truncated, version-skewed, or field-mangled
  // blob returns an error with the engine exactly as it was — no
  // partial loads.
  const std::vector<std::string> lines = Split(state, '\n');
  size_t i = 0;
  auto next_parts = [&]() { return Split(lines[i], ' '); };
  if (i >= lines.size() ||
      (lines[i] != "DEEPSEA-STATE 1" && lines[i] != "DEEPSEA-STATE 2")) {
    return Status::InvalidArgument("bad or unsupported state header");
  }
  ++i;

  ParsedState parsed;
  if (i < lines.size() && lines[i].rfind("CLOCK ", 0) == 0) {
    DEEPSEA_ASSIGN_OR_RETURN(parsed.clock, ParseInt(lines[i].substr(6)));
    ++i;
  }
  while (i < lines.size() && lines[i].rfind("TENANT ", 0) == 0) {
    const auto parts = next_parts();
    if (parts.size() != 3) return Status::InvalidArgument("bad TENANT line");
    DEEPSEA_ASSIGN_OR_RETURN(int64_t saved_ord, ParseInt(parts[1]));
    parsed.tenants.emplace_back(static_cast<int32_t>(saved_ord), parts[2]);
    ++i;
  }

  while (i < lines.size()) {
    if (lines[i].empty()) {
      ++i;
      continue;
    }
    if (lines[i] != "VIEW") {
      return Status::InvalidArgument("expected VIEW at line " +
                                     std::to_string(i));
    }
    ++i;
    if (i >= lines.size() || lines[i].rfind("PLAN ", 0) != 0) {
      return Status::InvalidArgument("expected PLAN after VIEW");
    }
    ParsedView pv;
    DEEPSEA_ASSIGN_OR_RETURN(int64_t plan_lines, ParseInt(lines[i].substr(5)));
    if (plan_lines < 0) return Status::InvalidArgument("bad PLAN line count");
    ++i;
    std::string plan_text;
    for (int64_t k = 0; k < plan_lines; ++k) {
      if (i >= lines.size()) return Status::InvalidArgument("truncated plan");
      plan_text += lines[i++] + "\n";
    }
    DEEPSEA_ASSIGN_OR_RETURN(pv.plan, DeserializePlan(plan_text));
    // Signatures are resolved after the structural parse (see below):
    // a stored plan may reference an earlier view's table, so resolution
    // must run in definition order against the registrations the apply
    // phase will perform.

    if (i >= lines.size() || lines[i].rfind("STATS ", 0) != 0) {
      return Status::InvalidArgument("expected STATS");
    }
    {
      const auto parts = next_parts();
      if (parts.size() != 6) return Status::InvalidArgument("bad STATS line");
      DEEPSEA_ASSIGN_OR_RETURN(pv.size_bytes, ParseDouble(parts[1]));
      DEEPSEA_ASSIGN_OR_RETURN(pv.creation_cost, ParseDouble(parts[2]));
      DEEPSEA_ASSIGN_OR_RETURN(pv.size_is_actual, ParseFlag(parts[3]));
      DEEPSEA_ASSIGN_OR_RETURN(pv.cost_is_actual, ParseFlag(parts[4]));
      DEEPSEA_ASSIGN_OR_RETURN(pv.whole_materialized, ParseFlag(parts[5]));
      ++i;
    }
    // `part` / `frag` always point at the most recent element and are
    // re-taken after every push_back (which may reallocate).
    ParsedPartition* part = nullptr;
    ParsedFragment* frag = nullptr;
    while (i < lines.size() && lines[i] != "ENDVIEW") {
      const auto parts = next_parts();
      if (parts[0] == "EVENT" && (parts.size() == 3 || parts.size() == 4)) {
        ParsedEvent e;
        DEEPSEA_ASSIGN_OR_RETURN(e.time, ParseDouble(parts[1]));
        DEEPSEA_ASSIGN_OR_RETURN(e.saving, ParseDouble(parts[2]));
        if (parts.size() == 4) {
          DEEPSEA_ASSIGN_OR_RETURN(int64_t ord, ParseInt(parts[3]));
          e.tenant = static_cast<int32_t>(ord);
        }
        pv.events.push_back(e);
      } else if (parts[0] == "PARTITION" && parts.size() == 6) {
        ParsedPartition p;
        p.attr = parts[1];
        DEEPSEA_ASSIGN_OR_RETURN(p.domain, ParseInterval(parts, 2));
        pv.partitions.push_back(std::move(p));
        part = &pv.partitions.back();
        frag = nullptr;
      } else if (parts[0] == "PENDING" && parts.size() == 5 && part != nullptr) {
        DEEPSEA_ASSIGN_OR_RETURN(Interval iv, ParseInterval(parts, 1));
        part->pending.push_back(iv);
      } else if (parts[0] == "FRAGMENT" && parts.size() == 7 &&
                 part != nullptr) {
        ParsedFragment f;
        DEEPSEA_ASSIGN_OR_RETURN(f.interval, ParseInterval(parts, 1));
        DEEPSEA_ASSIGN_OR_RETURN(f.size_bytes, ParseDouble(parts[5]));
        DEEPSEA_ASSIGN_OR_RETURN(f.materialized, ParseFlag(parts[6]));
        part->fragments.push_back(std::move(f));
        frag = &part->fragments.back();
      } else if (parts[0] == "HIT" && (parts.size() == 7 || parts.size() == 8) &&
                 frag != nullptr) {
        ParsedHit hit;
        DEEPSEA_ASSIGN_OR_RETURN(hit.time, ParseDouble(parts[1]));
        DEEPSEA_ASSIGN_OR_RETURN(hit.has_range, ParseFlag(parts[2]));
        DEEPSEA_ASSIGN_OR_RETURN(hit.range, ParseInterval(parts, 3));
        if (parts.size() == 8) {
          DEEPSEA_ASSIGN_OR_RETURN(int64_t ord, ParseInt(parts[7]));
          hit.tenant = static_cast<int32_t>(ord);
        }
        frag->hits.push_back(hit);
      } else {
        return Status::InvalidArgument("unexpected state line: " + lines[i]);
      }
      ++i;
    }
    if (i >= lines.size()) return Status::InvalidArgument("missing ENDVIEW");
    ++i;  // consume ENDVIEW
    parsed.views.push_back(std::move(pv));
  }

  // --- phase 2: under the exclusive commit, first resolve plan
  // signatures (read-only, still fallible — an early return here leaves
  // the engine unchanged), then apply the validated state. Every
  // operation in the apply half is infallible, so the load lands
  // completely or not at all.
  CommitGuard commit = pool_->BeginCommit(observer_, tenant_, tenant_ord_);
  ViewCatalog* views = pool_->stat(commit);
  SimFs* fs = pool_->fs(commit);
  FilterTree* index = pool_->rewrite_index(commit);

  {
    // Stored plans may reference earlier views' tables (a view defined
    // over a rewritten plan), which the apply loop registers as it
    // tracks each view. Resolution therefore runs in definition order
    // against an overlay catalog that mirrors those registrations — the
    // real catalog is never touched, so failure cannot leave a partial
    // load.
    Catalog overlay = *catalog_;
    int next_id = views->peek_next_id();
    // canonical signature -> id this load will assign (blobs hold each
    // view once, but a linear scan keeps duplicates deterministic too).
    std::vector<std::pair<std::string, std::string>> fresh_ids;
    for (ParsedView& pv : parsed.views) {
      DEEPSEA_ASSIGN_OR_RETURN(pv.signature,
                               ComputeSignature(pv.plan, overlay));
      const std::string canonical = pv.signature.ToString();
      std::string id;
      if (const ViewInfo* existing = views->FindBySignature(canonical)) {
        id = existing->id;
      } else {
        for (const auto& [c, assigned] : fresh_ids) {
          if (c == canonical) {
            id = assigned;
            break;
          }
        }
        if (id.empty()) {
          id = StrFormat("v%d", next_id++);
          fresh_ids.emplace_back(canonical, id);
        }
      }
      // Mirror RegisterViewTable: register the view's output schema
      // under its (predicted) id; skip silently when the schema cannot
      // be derived, exactly as the apply phase will.
      if (!overlay.Contains(id)) {
        auto schema = pv.plan->OutputSchema(overlay);
        if (schema.ok()) overlay.Put(std::make_shared<Table>(id, *schema));
      }
    }
  }
  // State restore is a recovery path: the fault-injection policy must
  // not fail it (and restored files are not fresh pool writes the
  // policy should count). Detach it for the duration.
  FaultPolicy* saved_policy = fs->fault_policy();
  fs->set_fault_policy(nullptr);

  pool_->AdvanceClockTo(commit, parsed.clock);
  // Remap saved tenant ordinals into this pool's registry (InternTenant
  // takes its own mutex, never the commit lock — safe to call here).
  std::map<int32_t, int32_t> tenant_remap;
  for (const auto& [saved_ord, name] : parsed.tenants) {
    tenant_remap[saved_ord] = pool_->InternTenant(name);
  }
  auto remap_tenant = [&](int32_t saved) {
    auto it = tenant_remap.find(saved);
    return it != tenant_remap.end() ? it->second : saved;
  };

  for (ParsedView& pv : parsed.views) {
    const bool known =
        views->FindBySignature(pv.signature.ToString()) != nullptr;
    ViewInfo* view = views->Track(pv.plan, pv.signature);
    if (!known) {
      pool_->RegisterViewTable(view);
      index->Insert(view->signature, view->id);
    }
    view->stats.size_bytes = pv.size_bytes;
    view->stats.creation_cost = pv.creation_cost;
    view->stats.size_is_actual = pv.size_is_actual;
    view->stats.cost_is_actual = pv.cost_is_actual;
    view->whole_materialized = pv.whole_materialized;
    if (pv.whole_materialized) {
      Status st =
          fs->Put(StrFormat("pool/%s/full", view->id.c_str()), pv.size_bytes);
      assert(st.ok());  // no policy installed: Put cannot fail
      (void)st;
    }
    for (const ParsedEvent& e : pv.events) {
      // AppendEvent, not RecordUse: loading a blob into a pool that
      // already tracks this view may interleave older timestamps, which
      // the RecordUse time-order assert would (rightly) reject. The
      // incremental caches stay exact regardless of order.
      view->stats.AppendEvent({e.time, e.saving, remap_tenant(e.tenant)});
    }
    for (ParsedPartition& pp : pv.partitions) {
      PartitionState* part = view->EnsurePartition(pp.attr, pp.domain);
      part->pending = pp.pending;
      // Attach the derived histogram (as RegisterPartitionCandidates
      // would) so fragment size estimation works after load.
      auto view_table = catalog_->Get(view->id);
      if (view_table.ok() && (*view_table)->GetHistogram(pp.attr) == nullptr) {
        auto hist = DeriveViewHistogram(*catalog_, options_, *view, pp.attr);
        if (hist.ok()) (*view_table)->SetHistogram(pp.attr, *hist);
      }
      for (const ParsedFragment& pf : pp.fragments) {
        FragmentStats* frag = part->Track(pf.interval, pf.size_bytes);
        frag->size_bytes = pf.size_bytes;
        frag->materialized = pf.materialized;
        std::vector<FragmentHit> restored;
        restored.reserve(pf.hits.size());
        for (const ParsedHit& h : pf.hits) {
          FragmentHit hit;
          hit.time = h.time;
          hit.has_range = h.has_range;
          hit.range = h.range;
          hit.tenant = remap_tenant(h.tenant);
          restored.push_back(hit);
        }
        // AdoptHits rebuilds the running-max and resets the timed-out
        // prefix cursor, so the restored stats evaluate exactly as if
        // the hits had been recorded live.
        frag->AdoptHits(std::move(restored));
        if (pf.materialized) {
          Status st =
              fs->Put(FragmentPath(*view, part->attr, pf.interval),
                      pf.size_bytes);
          assert(st.ok());  // no policy installed: Put cannot fail
          (void)st;
        }
      }
    }
  }
  // The loop above wrote materialized flags and sizes directly; bring
  // every view's cached pool-byte counter back in sync.
  for (ViewInfo* v : views->AllViews()) v->RefreshCachedBytes();
  fs->set_fault_policy(saved_policy);
  return Status::OK();
}

}  // namespace deepsea
