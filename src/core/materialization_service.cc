#include "core/materialization_service.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "common/backoff.h"
#include "common/str_util.h"
#include "core/pool_manager.h"
#include "storage/fault_policy.h"

namespace deepsea {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CAS add — same idiom as exp/metrics.cc, avoiding C++20 atomic-float
/// fetch_add.
void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

}  // namespace

const double MaterializationService::kLatencyBucketBounds
    [MaterializationService::kLatencyBuckets] = {
        1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5};

MaterializationService::MaterializationService(PoolManager* pool,
                                               MaterializationConfig config)
    : pool_(pool), config_(config) {
  if (config_.mode == MaterializationConfig::Mode::kAsync) {
    // workers == 0 is the manual-drain configuration: jobs queue until
    // DrainAll / Quiesce executes them on a caller's thread (tests use
    // it to observe queue buildup deterministically).
    for (int i = 0; i < config_.workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

MaterializationService::~MaterializationService() { Shutdown(); }

CommitFootprint MaterializationService::RevalidationFootprint(
    const SelectionDecision& d) {
  // Partition-structure reads only. By the conflict matrix
  // (commit_footprint.h) these catch every foreign merge/load commit
  // (which still publish `all`), every foreign materialization/eviction
  // on a target partition (decision writes always publish partition
  // entries), every foreign re-tracking of a target partition, and —
  // since structural commits now publish precise per-view footprints
  // with a partition entry per created view — every foreign creation
  // touching a target view; while plain fragment writes (hit appends)
  // and view-level statistics patches pass through. A dropped job is therefore exactly one whose target
  // structure moved under it; repeated-template statistics traffic
  // never invalidates the queue.
  CommitFootprint fp;
  for (const SelectionAction& a : d.actions) {
    if (a.view == nullptr) continue;
    switch (a.kind) {
      case SelectionAction::Kind::kEvictWholeView:
      case SelectionAction::Kind::kMaterializeView:
        fp.AddPartition(a.view->id, "");
        break;
      case SelectionAction::Kind::kEvictFragment:
      case SelectionAction::Kind::kMaterializeViewFragment:
      case SelectionAction::Kind::kMaterializeRefinement:
        if (a.part != nullptr) fp.AddPartition(a.view->id, a.part->attr);
        break;
    }
  }
  fp.Normalize();
  return fp;
}

std::string MaterializationService::CoalesceKey(const SelectionDecision& d) {
  std::vector<std::string> keys;
  keys.reserve(d.actions.size());
  for (const SelectionAction& a : d.actions) {
    if (a.view == nullptr) continue;
    keys.push_back(StrFormat(
        "%d|%s|%s|%.17g|%d|%.17g|%d", static_cast<int>(a.kind),
        a.view->id.c_str(), a.part != nullptr ? a.part->attr.c_str() : "",
        a.interval.lo, a.interval.lo_inclusive ? 1 : 0, a.interval.hi,
        a.interval.hi_inclusive ? 1 : 0));
  }
  std::sort(keys.begin(), keys.end());
  std::string out;
  for (const std::string& k : keys) {
    out += k;
    out += ';';
  }
  return out;
}

void MaterializationService::Submit(MaterializationJob job) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    job.id = next_job_id_++;
    job.enqueued_ns = NowNs();
    // Coalesce: a queued intent with the same target set is superseded
    // by this fresher one (same pool mutations, newer statistics
    // basis). The replacement keeps the old queue position.
    if (!job.coalesce_key.empty()) {
      for (MaterializationJob& queued : queue_) {
        if (queued.coalesce_key == job.coalesce_key) {
          queue_bytes_ -= queued.admitted_bytes;
          queue_bytes_ += job.admitted_bytes;
          queued = std::move(job);
          coalesced_.fetch_add(1, std::memory_order_relaxed);
          queue_cv_.notify_one();
          return;
        }
      }
    }
    queue_.push_back(std::move(job));
    queue_bytes_ += queue_.back().admitted_bytes;
    // Shed lowest-Φ-benefit first (possibly the job just queued) until
    // both bounds hold again. Never blocks the submitting query.
    const size_t max_jobs =
        config_.max_queue_jobs < 0 ? 0
                                   : static_cast<size_t>(config_.max_queue_jobs);
    while (queue_.size() > max_jobs || queue_bytes_ > config_.max_queue_bytes) {
      auto victim = queue_.begin();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->benefit_score < victim->benefit_score) victim = it;
      }
      queue_bytes_ -= victim->admitted_bytes;
      queue_.erase(victim);
      if (queue_.empty()) queue_bytes_ = 0.0;
      shed_.fetch_add(1, std::memory_order_relaxed);
    }
    notify = !queue_.empty();
  }
  if (notify) queue_cv_.notify_one();
}

bool MaterializationService::AdmitInline(double admitted_bytes,
                                         double benefit_score) {
  (void)benefit_score;  // nothing queued to outrank in drain mode
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // Drain mode executes synchronously, so the queue is always empty;
  // the bounds still gate the intent itself. At the default bounds
  // (64 jobs, unbounded bytes) every intent is admitted, which is what
  // keeps drain-mode traces bit-identical to inline execution.
  if (config_.max_queue_jobs < 1 || admitted_bytes > config_.max_queue_bytes) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MaterializationService::DrainAll() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  MaterializationJob job;
  while (PopLocked(&job)) {
    ++active_jobs_;
    lock.unlock();
    ExecuteJob(std::move(job));
    lock.lock();
    --active_jobs_;
    if (active_jobs_ == 0) queue_cv_.notify_all();
  }
}

void MaterializationService::Quiesce() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  paused_ = true;
  queue_cv_.notify_all();
  // Workers finish their in-flight jobs and park; remaining jobs drain
  // on this thread, in queue order — deterministic when the caller is
  // the only submitting thread.
  queue_cv_.wait(lock, [this] { return active_jobs_ == 0; });
  MaterializationJob job;
  while (PopLocked(&job)) {
    ++active_jobs_;
    lock.unlock();
    ExecuteJob(std::move(job));
    lock.lock();
    --active_jobs_;
  }
  paused_ = false;
  lock.unlock();
  queue_cv_.notify_all();
}

void MaterializationService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // No concurrency left: drain the leftovers on this thread so no
  // accepted intent is silently lost.
  DrainAll();
}

void MaterializationService::WorkerLoop() {
#if defined(__linux__)
  // Background folds must lose every contest for a core against a
  // foreground query — otherwise on small machines a worker's
  // scheduler quantum lands directly in some query's tail latency.
  // nice 19 (weight ~1/60 of default) rather than SCHED_IDLE: workers
  // briefly hold per-view commit locks, and an idle-class lock holder
  // could be starved indefinitely by runnable foreground threads,
  // inverting the priority through the lock. Raising one's own nice
  // value needs no privilege; failure is harmless, so errors are
  // ignored.
  errno = 0;
  if (setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)),
                  19) != 0) {
    // Best effort only.
  }
#endif
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] {
      return stop_ || (!paused_ && !queue_.empty());
    });
    if (stop_) return;
    MaterializationJob job;
    PopLocked(&job);
    ++active_jobs_;
    lock.unlock();
    ExecuteJob(std::move(job));
    lock.lock();
    --active_jobs_;
    if (active_jobs_ == 0) queue_cv_.notify_all();
  }
}

void MaterializationService::ExecuteJob(MaterializationJob job) {
  // Storage faults raised inside the job hit background-scoped rules
  // only (see fault_policy.h) — and never degrade a query: the issuing
  // query already answered.
  FaultScopeGuard scope(FaultScope::kBackground);

  // Revalidating commit entry. The sharded path validates inside
  // TryBeginShardedCommit; evictions take the exclusive lock (they move
  // the occupancy every tenant budgets against) and validate there. In
  // both cases the job's own stats publish (skip_seq) is exempt.
  bool conflict_genuine = false;
  CommitGuard commit;
  if (job.needs_exclusive) {
    commit = pool_->BeginCommit(job.observer, job.tenant, job.tenant_ord);
    if (!pool_->ValidateReadSet(commit, job.reval_fp, job.read_epoch,
                                &conflict_genuine, job.admitted_bytes,
                                job.skip_seq)) {
      // Stale intent: publish nothing, mutate nothing.
      pool_->SetCommitFootprint(commit, CommitFootprint());
      stale_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    CommitFootprint publish = job.write_fp;
    pool_->SetCommitFootprint(commit, std::move(publish));
  } else {
    commit = pool_->TryBeginShardedCommit(
        job.observer, job.tenant, job.tenant_ord, job.write_fp, job.reval_fp,
        job.read_epoch, &conflict_genuine, job.admitted_bytes, job.skip_seq);
    if (!commit.held()) {
      stale_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // The job executes at the issuing query's timestamp — background
  // commits do not advance the commit clock (they are the deferred
  // tail of a query that already ticked it).
  QueryReport report;
  report.tenant_id = job.tenant;

  const FaultHandlingConfig& fault = pool_->options().fault;
  // Same seed derivation as the inline retry path (engine.cc), so a
  // decision retried in background backs off exactly as it would have
  // inline.
  const DeterministicBackoff backoff(
      fault.Backoff(), static_cast<uint64_t>(job.t_now) * 0x9e3779b97f4a7c15ull +
                           static_cast<uint64_t>(job.tenant_ord));

  if (job.observer != nullptr) {
    job.observer->OnStageStart(EngineStage::kApply, *job.ctx);
  }
  const auto stage_start = std::chrono::steady_clock::now();
  double backoff_seconds = 0.0;
  bool applied = false;
  for (int attempt = 0;; ++attempt) {
    Status st = pool_->Apply(job.decision, *job.ctx, &report);
    if (st.ok()) {
      applied = true;
      break;
    }
    faults_.fetch_add(1, std::memory_order_relaxed);
    if (job.observer != nullptr) {
      job.observer->OnFault(EngineStage::kApply, report.fault_view, st,
                            attempt, job.tenant);
    }
    if (st.IsTransient() && attempt < fault.max_retries) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      backoff_seconds += backoff.DelaySeconds(attempt);
      if (job.observer != nullptr) {
        job.observer->OnRetry(EngineStage::kApply, attempt + 1, job.tenant);
      }
      continue;
    }
    // Permanent fault (or transient retries exhausted): abandon the
    // intent. The pool is already rolled back; the failure feeds the
    // view's quarantine record but no OnDegrade fires — the issuing
    // query answered long ago and was not degraded by this.
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (!report.fault_view.empty()) {
      pool_->RecordViewFault(report.fault_view, job.t_now);
    }
    break;
  }
  if (job.observer != nullptr) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      stage_start)
            .count();
    job.observer->OnStageEnd(EngineStage::kApply, *job.ctx,
                             report.materialize_seconds + backoff_seconds,
                             wall);
  }
  if (!applied) return;

  executed_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&background_sim_seconds_,
                  report.materialize_seconds + backoff_seconds);
  const double latency =
      static_cast<double>(NowNs() - job.enqueued_ns) * 1e-9;
  latency_count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&latency_sum_seconds_, latency);
  int bucket = kLatencyBuckets;  // +Inf
  for (int i = 0; i < kLatencyBuckets; ++i) {
    if (latency <= kLatencyBucketBounds[i]) {
      bucket = i;
      break;
    }
  }
  latency_buckets_[static_cast<size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

MaterializationService::StatsSnapshot MaterializationService::stats() const {
  StatsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.stale_dropped = stale_dropped_.load(std::memory_order_relaxed);
  s.faults = faults_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.background_sim_seconds =
      background_sim_seconds_.load(std::memory_order_relaxed);
  s.latency_count = latency_count_.load(std::memory_order_relaxed);
  s.latency_sum_seconds = latency_sum_seconds_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < s.latency_buckets.size(); ++i) {
    s.latency_buckets[i] = latency_buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

size_t MaterializationService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

double MaterializationService::QueueBytes() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_bytes_;
}

double MaterializationService::OldestAgeSeconds() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (queue_.empty()) return 0.0;
  // A coalesced replacement refreshes its slot's enqueue time, so the
  // front is not necessarily the oldest; the queue is small (bounded).
  int64_t oldest = queue_.front().enqueued_ns;
  for (const MaterializationJob& j : queue_) {
    oldest = std::min(oldest, j.enqueued_ns);
  }
  return static_cast<double>(NowNs() - oldest) * 1e-9;
}

bool MaterializationService::PopLocked(MaterializationJob* out) {
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  queue_bytes_ -= out->admitted_bytes;
  // += / -= accumulation drifts; an empty queue holds exactly zero.
  if (queue_.empty()) queue_bytes_ = 0.0;
  return true;
}

}  // namespace deepsea
