#include "core/view_sizing.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace deepsea {

Result<Interval> ColumnDomain(const Catalog& catalog,
                              const std::string& column) {
  const size_t pos = column.rfind('.');
  if (pos == std::string::npos) {
    return Status::InvalidArgument("unqualified partition column: " + column);
  }
  const std::string table_name = column.substr(0, pos);
  DEEPSEA_ASSIGN_OR_RETURN(TablePtr table, catalog.Get(table_name));
  const AttributeHistogram* hist = table->GetHistogram(column);
  if (hist != nullptr) return hist->domain();
  return table->SampleMinMax(column);
}

double RangeFractionOfBaseColumn(const Catalog& catalog,
                                 const std::string& column,
                                 const Interval& iv) {
  const size_t pos = column.rfind('.');
  if (pos == std::string::npos) return 1.0;
  auto table = catalog.Get(column.substr(0, pos));
  if (!table.ok()) return 1.0;
  const AttributeHistogram* hist = (*table)->GetHistogram(column);
  if (hist == nullptr || hist->empty()) return 1.0;
  return hist->FractionInRange(iv);
}

Result<AttributeHistogram> DeriveViewHistogram(const Catalog& catalog,
                                               const EngineOptions& options,
                                               const ViewInfo& view,
                                               const std::string& attr) {
  const size_t pos = attr.rfind('.');
  if (pos == std::string::npos) {
    return Status::InvalidArgument("unqualified partition column: " + attr);
  }
  const std::string table_name = attr.substr(0, pos);
  DEEPSEA_ASSIGN_OR_RETURN(TablePtr table, catalog.Get(table_name));
  auto view_table = catalog.Get(view.id);
  const double view_rows =
      view_table.ok() ? static_cast<double>((*view_table)->logical_row_count())
                      : 0.0;
  const AttributeHistogram* hist = table->GetHistogram(attr);
  if (hist != nullptr && !hist->empty()) {
    AttributeHistogram out = *hist;
    if (view_rows > 0.0) out.NormalizeTo(view_rows);
    return out;
  }
  // Fall back to a uniform distribution over the sample domain.
  DEEPSEA_ASSIGN_OR_RETURN(Interval domain, table->SampleMinMax(attr));
  AttributeHistogram out(domain, options.view_histogram_bins);
  out.AddRange(domain, std::max(view_rows, 1.0));
  return out;
}

double FragmentBytes(const Catalog& catalog, const ViewInfo& view,
                     const std::string& attr, const Interval& iv) {
  return FragmentBytes(catalog, view, attr, iv, view.GetPartition(attr));
}

double FragmentBytes(const Catalog& catalog, const ViewInfo& view,
                     const std::string& attr, const Interval& iv,
                     const PartitionState* part) {
  auto view_table = catalog.Get(view.id);
  if (!view_table.ok()) return 0.0;
  const AttributeHistogram* hist = (*view_table)->GetHistogram(attr);
  const double total = view.stats.size_bytes;
  if (hist != nullptr && !hist->empty()) {
    return hist->FractionInRange(iv) * total;
  }
  if (part != nullptr && part->domain.Width() > 0.0) {
    return iv.OverlapWidth(part->domain) / part->domain.Width() * total;
  }
  return total;
}

double EstimateCandidateBytes(const PartitionState& part, const Interval& iv) {
  // Paper Section 7.2: assume uniformity within each overlapping
  // fragment and sum relative overlaps.
  double est = 0.0;
  for (const FragmentStats& f : part.fragments) {
    if (!f.materialized) continue;
    const double w = f.interval.Width();
    if (w <= 0.0) continue;
    est += f.interval.OverlapWidth(iv) / w * f.size_bytes;
  }
  return est;
}

std::string FragmentPath(const ViewInfo& view, const std::string& attr,
                         const Interval& iv) {
  return StrFormat("pool/%s/%s/%s", view.id.c_str(), attr.c_str(),
                   iv.ToString().c_str());
}

std::vector<Interval> InitialFragmentation(const Catalog& catalog,
                                           const EngineOptions& options,
                                           ViewInfo* view,
                                           const std::string& attr) {
  PartitionState* part = view->GetPartition(attr);
  if (part == nullptr) return {};
  return InitialFragmentation(catalog, options, *view, attr, *part);
}

std::vector<Interval> InitialFragmentation(const Catalog& catalog,
                                           const EngineOptions& options,
                                           const ViewInfo& view,
                                           const std::string& attr,
                                           const PartitionState& part) {
  if (options.strategy == StrategyKind::kEquiDepth) {
    auto view_table = catalog.Get(view.id);
    std::vector<double> bounds;
    if (view_table.ok()) {
      const AttributeHistogram* hist = (*view_table)->GetHistogram(attr);
      if (hist != nullptr) {
        bounds = hist->EquiDepthBoundaries(options.equi_depth_fragments);
      }
    }
    if (bounds.size() < 2) {
      const auto pieces = part.domain.SplitEqual(options.equi_depth_fragments);
      return pieces;
    }
    std::vector<Interval> out;
    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
      const bool last = i + 2 == bounds.size();
      out.push_back(Interval(bounds[i], bounds[i + 1], /*lo_inc=*/true,
                             /*hi_inc=*/last));
    }
    return out;
  }
  if (options.strategy == StrategyKind::kNoPartition) {
    return {part.domain};
  }
  // DeepSea / NoRefine: the workload-aware pending fragmentation.
  if (part.pending.empty()) return {part.domain};
  std::vector<Interval> out = part.pending;
  std::sort(out.begin(), out.end(), IntervalLess);
  return out;
}

std::vector<Interval> ApplyFragmentBounds(const Catalog& catalog,
                                          const EngineOptions& options,
                                          const ViewInfo& view,
                                          const std::string& attr,
                                          std::vector<Interval> frags) {
  return ApplyFragmentBounds(catalog, options, view, attr,
                             view.GetPartition(attr), std::move(frags));
}

std::vector<Interval> ApplyFragmentBounds(const Catalog& catalog,
                                          const EngineOptions& options,
                                          const ViewInfo& view,
                                          const std::string& attr,
                                          const PartitionState* part,
                                          std::vector<Interval> frags) {
  // Upper bound phi: split oversized fragments into equi-size pieces.
  if (options.max_fragment_fraction > 0.0) {
    const double limit = options.max_fragment_fraction * view.stats.size_bytes;
    std::vector<Interval> split;
    for (const Interval& f : frags) {
      const double bytes = FragmentBytes(catalog, view, attr, f, part);
      if (bytes > limit && limit > 0.0) {
        const int pieces = static_cast<int>(std::ceil(bytes / limit));
        for (const Interval& p : f.SplitEqual(pieces)) split.push_back(p);
      } else {
        split.push_back(f);
      }
    }
    frags = std::move(split);
  }
  // Lower bound: merge adjacent fragments smaller than a block.
  if (options.enforce_block_lower_bound && frags.size() > 1) {
    std::sort(frags.begin(), frags.end(), IntervalLess);
    std::vector<Interval> merged;
    for (const Interval& f : frags) {
      if (!merged.empty() &&
          FragmentBytes(catalog, view, attr, merged.back(), part) <
              options.cluster.block_bytes) {
        Interval& prev = merged.back();
        prev = Interval(prev.lo, f.hi, prev.lo_inclusive, f.hi_inclusive);
      } else {
        merged.push_back(f);
      }
    }
    frags = std::move(merged);
  }
  return frags;
}

}  // namespace deepsea
