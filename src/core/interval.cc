#include "core/interval.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"

namespace deepsea {

bool Interval::Contains(double x) const {
  if (IsEmpty()) return false;
  if (x < lo || x > hi) return false;
  if (x == lo && !lo_inclusive) return false;
  if (x == hi && !hi_inclusive) return false;
  return true;
}

bool Interval::Contains(const Interval& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  // Lower end: this.lo must be <= other.lo, and if equal, this must be at
  // least as inclusive.
  if (lo > other.lo) return false;
  if (lo == other.lo && !lo_inclusive && other.lo_inclusive) return false;
  if (hi < other.hi) return false;
  if (hi == other.hi && !hi_inclusive && other.hi_inclusive) return false;
  return true;
}

bool Interval::Overlaps(const Interval& other) const {
  return Intersect(other).has_value();
}

std::optional<Interval> Interval::Intersect(const Interval& other) const {
  if (IsEmpty() || other.IsEmpty()) return std::nullopt;
  Interval out;
  if (lo > other.lo) {
    out.lo = lo;
    out.lo_inclusive = lo_inclusive;
  } else if (lo < other.lo) {
    out.lo = other.lo;
    out.lo_inclusive = other.lo_inclusive;
  } else {
    out.lo = lo;
    out.lo_inclusive = lo_inclusive && other.lo_inclusive;
  }
  if (hi < other.hi) {
    out.hi = hi;
    out.hi_inclusive = hi_inclusive;
  } else if (hi > other.hi) {
    out.hi = other.hi;
    out.hi_inclusive = other.hi_inclusive;
  } else {
    out.hi = hi;
    out.hi_inclusive = hi_inclusive && other.hi_inclusive;
  }
  if (out.IsEmpty()) return std::nullopt;
  return out;
}

double Interval::OverlapWidth(const Interval& other) const {
  const auto inter = Intersect(other);
  return inter.has_value() ? inter->Width() : 0.0;
}

double Interval::OverlapFractionOf(const Interval& other) const {
  if (IsEmpty()) return 0.0;
  const double w = Width();
  if (w <= 0.0) {
    // Point interval: either fully covered or not.
    return other.Contains(lo) ? 1.0 : 0.0;
  }
  return OverlapWidth(other) / w;
}

std::pair<Interval, Interval> Interval::SplitBefore(double p) const {
  Interval left(lo, p, lo_inclusive, /*hi_inc=*/false);
  Interval right(p, hi, /*lo_inc=*/true, hi_inclusive);
  // Clamp to this interval so callers can split at out-of-range points.
  if (p <= lo) left = Interval(lo, lo, false, false);  // empty
  if (p > hi || (p == hi && !hi_inclusive)) right = Interval(hi, hi, false, false);
  return {left, right};
}

std::pair<Interval, Interval> Interval::SplitAfter(double p) const {
  Interval left(lo, p, lo_inclusive, /*hi_inc=*/true);
  Interval right(p, hi, /*lo_inc=*/false, hi_inclusive);
  if (p < lo || (p == lo && !lo_inclusive)) left = Interval(lo, lo, false, false);
  if (p >= hi) right = Interval(hi, hi, false, false);
  return {left, right};
}

std::vector<Interval> Interval::SplitEqual(int n) const {
  std::vector<Interval> out;
  if (n <= 0 || IsEmpty()) return out;
  if (n == 1) {
    out.push_back(*this);
    return out;
  }
  const double step = Width() / n;
  for (int i = 0; i < n; ++i) {
    const double a = lo + step * i;
    const double b = (i == n - 1) ? hi : lo + step * (i + 1);
    Interval piece(a, b, i == 0 ? lo_inclusive : true,
                   i == n - 1 ? hi_inclusive : false);
    out.push_back(piece);
  }
  return out;
}

std::string Interval::ToString() const {
  return StrFormat("%s%.6g, %.6g%s", lo_inclusive ? "[" : "(", lo, hi,
                   hi_inclusive ? "]" : ")");
}

bool IntervalLess(const Interval& a, const Interval& b) {
  if (a.lo != b.lo) return a.lo < b.lo;
  // Inclusive lower bound sorts before open one at the same point.
  if (a.lo_inclusive != b.lo_inclusive) return a.lo_inclusive;
  if (a.hi != b.hi) return a.hi < b.hi;
  return a.hi_inclusive < b.hi_inclusive;
}

bool Fragmentation::Covers(const Interval& domain) const {
  if (domain.IsEmpty()) return true;
  auto sorted = Sorted();
  // Sweep from the domain's lower bound; every gap must be covered.
  double frontier = domain.lo;
  bool frontier_covered_inclusive = false;  // has a fragment covered `frontier`?
  // Check the very first point.
  for (const auto& iv : sorted) {
    if (iv.IsEmpty()) continue;
    if (iv.Contains(domain.lo) ||
        (!domain.lo_inclusive && iv.lo == domain.lo)) {
      frontier_covered_inclusive = true;
      break;
    }
  }
  if (!frontier_covered_inclusive) return false;
  // Extend coverage greedily.
  frontier = domain.lo;
  bool frontier_inclusive = true;  // coverage reaches frontier inclusively
  bool progressed = true;
  while (progressed &&
         (frontier < domain.hi || (frontier == domain.hi && !frontier_inclusive))) {
    progressed = false;
    for (const auto& iv : sorted) {
      if (iv.IsEmpty()) continue;
      // Fragment can extend coverage if it starts at or before the
      // frontier: when the frontier point itself is already covered
      // (frontier_inclusive), an open start at the frontier suffices;
      // otherwise the fragment must include the frontier point.
      const bool starts_ok =
          iv.lo < frontier ||
          (iv.lo == frontier && (iv.lo_inclusive || frontier_inclusive));
      if (!starts_ok) continue;
      const bool extends = iv.hi > frontier ||
                           (iv.hi == frontier && iv.hi_inclusive && !frontier_inclusive);
      if (!extends) continue;
      frontier = iv.hi;
      frontier_inclusive = iv.hi_inclusive;
      progressed = true;
    }
  }
  if (frontier > domain.hi) return true;
  if (frontier == domain.hi) {
    return frontier_inclusive || !domain.hi_inclusive;
  }
  return false;
}

bool Fragmentation::IsDisjoint() const {
  for (size_t i = 0; i < intervals_.size(); ++i) {
    for (size_t j = i + 1; j < intervals_.size(); ++j) {
      if (intervals_[i].Overlaps(intervals_[j])) return false;
    }
  }
  return true;
}

std::vector<Interval> Fragmentation::Sorted() const {
  std::vector<Interval> out = intervals_;
  std::sort(out.begin(), out.end(), IntervalLess);
  return out;
}

std::string Fragmentation::ToString() const {
  std::vector<std::string> parts;
  for (const auto& iv : Sorted()) parts.push_back(iv.ToString());
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace deepsea
