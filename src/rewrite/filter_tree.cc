#include "rewrite/filter_tree.h"

#include "common/str_util.h"

namespace deepsea {

std::string FilterTree::AggKey(const PlanSignature& sig) {
  if (!sig.has_aggregate) return "";
  return "by=" + Join(sig.group_by, ",") + ";aggs=" +
         Join({sig.agg_specs.begin(), sig.agg_specs.end()}, ",");
}

void FilterTree::Insert(const PlanSignature& sig, const std::string& view_id) {
  index_[sig.RelationKey()][AggKey(sig)].insert(view_id);
}

void FilterTree::Remove(const PlanSignature& sig, const std::string& view_id) {
  auto rel_it = index_.find(sig.RelationKey());
  if (rel_it == index_.end()) return;
  auto agg_it = rel_it->second.find(AggKey(sig));
  if (agg_it == rel_it->second.end()) return;
  agg_it->second.erase(view_id);
  if (agg_it->second.empty()) rel_it->second.erase(agg_it);
  if (rel_it->second.empty()) index_.erase(rel_it);
}

std::vector<std::string> FilterTree::Lookup(const PlanSignature& query_sig) const {
  std::vector<std::string> out;
  auto rel_it = index_.find(query_sig.RelationKey());
  if (rel_it == index_.end()) return out;
  auto agg_it = rel_it->second.find(AggKey(query_sig));
  if (agg_it == rel_it->second.end()) return out;
  out.assign(agg_it->second.begin(), agg_it->second.end());
  return out;
}

size_t FilterTree::size() const {
  size_t n = 0;
  for (const auto& [_, aggs] : index_) {
    for (const auto& [__, ids] : aggs) n += ids.size();
  }
  return n;
}

}  // namespace deepsea
