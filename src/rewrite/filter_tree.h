#ifndef DEEPSEA_REWRITE_FILTER_TREE_H_
#define DEEPSEA_REWRITE_FILTER_TREE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "plan/signature.h"

namespace deepsea {

/// In-memory index over view signatures modelled on the filter tree of
/// Goldstein-Larson (paper Section 8.3). Each level prunes on one
/// signature part; only views surviving every level are handed to the
/// full sufficient-condition check:
///   level 1 - relation classes (must be equal),
///   level 2 - aggregation key (group-by + aggregate list; must be
///             equal, since our compensation cannot re-aggregate).
/// Leaves hold view ids; partition boundaries and statistics live on
/// the ViewCatalog entries the ids point to.
class FilterTree {
 public:
  void Insert(const PlanSignature& sig, const std::string& view_id);

  /// Removes a view id (no-op when absent).
  void Remove(const PlanSignature& sig, const std::string& view_id);

  /// View ids whose signatures could match a query subplan with
  /// signature `query_sig` (candidates only; callers must still verify
  /// with SignatureSubsumes).
  std::vector<std::string> Lookup(const PlanSignature& query_sig) const;

  size_t size() const;

 private:
  static std::string AggKey(const PlanSignature& sig);

  // relation key -> aggregation key -> view ids.
  std::map<std::string, std::map<std::string, std::set<std::string>>> index_;
};

}  // namespace deepsea

#endif  // DEEPSEA_REWRITE_FILTER_TREE_H_
