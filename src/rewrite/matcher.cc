#include "rewrite/matcher.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "core/partition_match.h"
#include "core/planning_delta.h"

namespace deepsea {

std::string Rewriting::ToString() const {
  std::string out = "rewriting(view=" + view_id;
  if (!partition_attr.empty()) {
    out += ", attr=" + partition_attr + ", frags=" +
           std::to_string(fragments.size());
  }
  out += executable ? ", executable" : ", tracked-only";
  out += StrFormat(", est=%.1fs)", est_seconds);
  return out;
}

ExprPtr ViewMatcher::BuildCompensation(const PlanSignature& view_sig,
                                       const PlanSignature& query_sig) {
  std::vector<ExprPtr> conjuncts;
  // Range constraints: re-apply every query range the view does not
  // already enforce identically (re-applying all would also be correct;
  // we skip exact duplicates to keep plans readable).
  for (const auto& [col, q] : query_sig.ranges) {
    const auto vit = view_sig.ranges.find(col);
    const bool identical = vit != view_sig.ranges.end() &&
                           vit->second.lo == q.lo && vit->second.hi == q.hi &&
                           vit->second.lo_inclusive == q.lo_inclusive &&
                           vit->second.hi_inclusive == q.hi_inclusive;
    if (identical) continue;
    if (std::isfinite(q.lo)) {
      conjuncts.push_back(Cmp(q.lo_inclusive ? CompareOp::kGe : CompareOp::kGt,
                              Col(col), LitD(q.lo)));
    }
    if (std::isfinite(q.hi)) {
      conjuncts.push_back(Cmp(q.hi_inclusive ? CompareOp::kLe : CompareOp::kLt,
                              Col(col), LitD(q.hi)));
    }
  }
  // Residual conjuncts the view lacks.
  for (const ExprPtr& res : query_sig.residual_exprs) {
    if (!view_sig.residuals.count(res->ToString())) conjuncts.push_back(res);
  }
  // Equality constraints from query equivalence classes not enforced by
  // the view: for each class pick a representative and equate members.
  for (const auto& qcls : query_sig.equiv_classes) {
    auto it = qcls.begin();
    const std::string& rep = *it;
    for (++it; it != qcls.end(); ++it) {
      bool enforced = false;
      for (const auto& vcls : view_sig.equiv_classes) {
        if (vcls.count(rep) && vcls.count(*it)) {
          enforced = true;
          break;
        }
      }
      if (!enforced) {
        conjuncts.push_back(Cmp(CompareOp::kEq, Col(rep), Col(*it)));
      }
    }
  }
  return AndAll(conjuncts);
}

Result<std::vector<Rewriting>> ViewMatcher::ComputeRewritings(
    const PlanPtr& query, PlanningDelta* delta) {
  std::vector<Rewriting> out;
  std::vector<PlanPtr> subplans;
  CollectSubplans(query, &subplans);
  for (const PlanPtr& sp : subplans) {
    if (sp->kind() == PlanKind::kScan || sp->kind() == PlanKind::kViewRef) {
      continue;
    }
    auto sig_result = ComputeSignature(sp, *catalog_);
    if (!sig_result.ok()) continue;  // unsupported shapes are skipped
    const PlanSignature& qsig = *sig_result;
    // The lookup itself is a read — recorded whether or not it hits:
    // an empty result is as much a fact the plan depends on as a hit.
    if (delta != nullptr) delta->RecordIndexProbe(qsig);
    for (const std::string& view_id : index_->Lookup(qsig)) {
      ViewInfo* view = views_->Get(view_id);
      if (view == nullptr) continue;
      const MatchResult m = SignatureSubsumes(view->signature, qsig);
      if (!m.matches) continue;
      // The view table must be present in the relational catalog (the
      // engine registers every tracked view with estimated statistics).
      if (!catalog_->Contains(view->id)) continue;

      Rewriting rw;
      rw.view_id = view->id;
      rw.replaced = sp.get();

      // Pick the partition to read: an attribute of the view that the
      // query constrains with a finite range. Prefer one with
      // materialized fragments covering the range.
      const PartitionState* chosen = nullptr;
      Interval chosen_range;
      std::vector<Interval> chosen_cover;
      bool chosen_executable = false;
      for (auto& [attr, part] : view->partitions) {
        const auto rit = qsig.ranges.find(attr);
        if (rit == qsig.ranges.end()) continue;
        const ColumnRange& r = rit->second;
        Interval range(std::isfinite(r.lo) ? r.lo : part.domain.lo,
                       std::isfinite(r.hi) ? r.hi : part.domain.hi,
                       r.lo_inclusive, r.hi_inclusive);
        const auto clamped = range.Intersect(part.domain);
        if (!clamped.has_value()) continue;
        range = *clamped;
        // Try to cover from materialized fragments (executable read).
        auto cover = PartitionMatchIntervals(part.MaterializedIntervals(), range);
        if (cover.ok()) {
          chosen = &part;
          chosen_range = range;
          chosen_cover = std::move(*cover);
          chosen_executable = true;
          break;  // materialized cover is always preferred
        }
        if (chosen == nullptr) {
          // Fall back to tracked fragments for benefit estimation.
          auto tracked_cover =
              PartitionMatchIntervals(part.TrackedIntervals(), range);
          chosen = &part;
          chosen_range = range;
          if (tracked_cover.ok()) chosen_cover = std::move(*tracked_cover);
          chosen_executable = false;
        }
      }

      PlanPtr view_read;
      if (chosen != nullptr && !chosen_cover.empty()) {
        rw.partition_attr = chosen->attr;
        rw.fragments = chosen_cover;
        rw.query_range = chosen_range;
        rw.has_query_range = true;
        rw.executable = chosen_executable;
        view_read = ViewRef(view->id, chosen->attr, chosen_cover);
      } else {
        // Whole-view read (unpartitioned, or no usable range).
        if (chosen != nullptr) {
          rw.query_range = chosen_range;
          rw.has_query_range = true;
          rw.partition_attr = chosen->attr;
        }
        rw.executable = view->whole_materialized;
        view_read = ViewRef(view->id, "", {});
      }

      const ExprPtr comp = BuildCompensation(view->signature, qsig);
      PlanPtr replacement = comp ? Select(view_read, comp) : view_read;
      rw.plan = ReplacePlanNode(query, sp.get(), replacement);

      auto est = estimator_->Estimate(rw.plan);
      if (!est.ok()) continue;
      rw.est_seconds = est->seconds;
      out.push_back(std::move(rw));
    }
  }
  std::sort(out.begin(), out.end(), [](const Rewriting& a, const Rewriting& b) {
    return a.est_seconds < b.est_seconds;
  });
  return out;
}

}  // namespace deepsea
