#ifndef DEEPSEA_REWRITE_MATCHER_H_
#define DEEPSEA_REWRITE_MATCHER_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "core/interval.h"
#include "core/view_catalog.h"
#include "plan/plan.h"
#include "plan/signature.h"
#include "rewrite/filter_tree.h"
#include "sim/cost_model.h"

namespace deepsea {

class PlanningDelta;

/// One possible rewriting of a query using a (tracked) view: the
/// subplan `replaced` is substituted by a compensated read of the view,
/// restricted to `fragments` of the partition on `partition_attr` when
/// a matching partition exists.
struct Rewriting {
  PlanPtr plan;                      ///< full rewritten query plan
  std::string view_id;
  const PlanNode* replaced = nullptr;
  std::string partition_attr;        ///< empty = whole-view read
  std::vector<Interval> fragments;   ///< greedy cover of the query range
  /// True when every byte the rewriting reads is materialized in the
  /// pool (only such rewritings are eligible as Q_best).
  bool executable = false;
  double est_seconds = 0.0;
  /// Query's selection range on partition_attr, clamped to the domain.
  Interval query_range;
  bool has_query_range = false;

  std::string ToString() const;
};

/// Computes the set Rewr(Q) of Algorithm 1: for every subplan of the
/// query and every tracked view surviving the filter-tree lookup, tests
/// the sufficient matching condition and, on success, constructs the
/// compensated rewriting and selects fragments with the greedy
/// partition matcher (Algorithm 2).
class ViewMatcher {
 public:
  ViewMatcher(ViewCatalog* views, FilterTree* index, const Catalog* catalog,
              const PlanCostEstimator* estimator)
      : views_(views), index_(index), catalog_(catalog), estimator_(estimator) {}

  /// All rewritings of `query`, sorted by estimated cost ascending.
  /// Views not in the pool yield non-executable rewritings, kept so the
  /// engine can update "could have been used" statistics.
  ///
  /// When `delta` is non-null, every filter-tree lookup is recorded as
  /// an index-probe read on the delta (RecordIndexProbe): a foreign
  /// commit inserting a view whose signature subsumes a probed subplan
  /// could have changed the rewriting choice, so the plan must be
  /// invalidated — while signature-disjoint inserts commute.
  Result<std::vector<Rewriting>> ComputeRewritings(
      const PlanPtr& query, PlanningDelta* delta = nullptr);

  /// Builds the compensation predicate a rewriting must apply on top of
  /// the view read so the result equals the replaced subplan: all range
  /// constraints, residual conjuncts the view lacks, and equality
  /// constraints not enforced by the view. Returns nullptr when no
  /// compensation is needed. Exposed for testing.
  static ExprPtr BuildCompensation(const PlanSignature& view_sig,
                                   const PlanSignature& query_sig);

 private:
  ViewCatalog* views_;
  FilterTree* index_;
  const Catalog* catalog_;
  const PlanCostEstimator* estimator_;
};

}  // namespace deepsea

#endif  // DEEPSEA_REWRITE_MATCHER_H_
