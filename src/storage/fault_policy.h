#ifndef DEEPSEA_STORAGE_FAULT_POLICY_H_
#define DEEPSEA_STORAGE_FAULT_POLICY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace deepsea {

/// The mutating / reading operations of SimFs that can be failed by a
/// FaultPolicy.
enum class FsOp {
  kCreate = 0,
  kPut,
  kDelete,
  kRead,
};

constexpr size_t kFsOpCount = 4;

const char* FsOpName(FsOp op);

/// Execution context of a guarded storage operation: foreground ops run
/// on a query's critical path (inline decision execution, merge passes,
/// state restore); background ops run inside a materialization-service
/// job (worker threads, drains, quiesce). The scope is thread-local,
/// set by FaultScopeGuard around job execution, so fault rules can
/// target background storage traffic distinctly from foreground.
enum class FaultScope {
  kAny = 0,        ///< rule matcher only: match either scope
  kForeground,
  kBackground,
};

/// The calling thread's current scope (kForeground unless inside a
/// FaultScopeGuard).
FaultScope CurrentFaultScope();

/// RAII scope setter (nests; restores the previous scope on exit). The
/// materialization service brackets job execution with
/// FaultScopeGuard(FaultScope::kBackground).
class FaultScopeGuard {
 public:
  explicit FaultScopeGuard(FaultScope scope);
  ~FaultScopeGuard();
  FaultScopeGuard(const FaultScopeGuard&) = delete;
  FaultScopeGuard& operator=(const FaultScopeGuard&) = delete;

 private:
  FaultScope prev_;
};

/// Fault-injection seam of SimFs: consulted before every guarded
/// operation. Returning OK lets the operation proceed; a non-OK status
/// fails it before any state changes, and the status is what the caller
/// sees. Transient faults (StatusCode::kUnavailable) model storage that
/// may recover on retry; permanent faults (kResourceExhausted,
/// kInternal) model conditions retrying cannot fix.
///
/// Thread-safety: every SimFs operation holds the file system's
/// internal mutex while consulting the policy, so Inject calls are
/// serialized even when sharded commits (or background materialization
/// workers) run concurrently — implementations need no locking of
/// their own, and the injected schedule is a function of the global
/// guarded-operation order.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;

  /// Decide the fate of `op` on `path`. Called once per guarded
  /// operation, before it takes effect.
  virtual Status Inject(FsOp op, const std::string& path) = 0;
};

/// One deterministic fault-injection rule of a ScheduledFaultPolicy.
/// A rule *matches* an operation when the op kind is listed in `ops`
/// (empty = every kind) and the path contains `path_substring` (empty =
/// every path). Among matching operations, the rule *fires* when
///   * the match ordinal is past `after_count`, and
///   * `every_nth` > 0 and this is the every_nth-th match since
///     `after_count`, or `probability` > 0 and the policy's seeded RNG
///     draws true, and
///   * fewer than `max_failures` faults were already injected by this
///     rule (max_failures < 0 = unlimited).
struct FaultRule {
  std::vector<FsOp> ops;       ///< empty = match every operation kind
  std::string path_substring;  ///< empty = match every path
  /// Execution scope the rule applies to: kAny matches every guarded
  /// op; kForeground only ops on a query's critical path; kBackground
  /// only ops inside materialization-service jobs. Ops in a non-
  /// matching scope do not advance the rule's match ordinal.
  FaultScope scope = FaultScope::kAny;
  int64_t every_nth = 0;       ///< fire every Nth matching op (0 = off)
  double probability = 0.0;    ///< fire with this seeded probability
  int64_t after_count = 0;     ///< skip the first `after_count` matches
  int64_t max_failures = -1;   ///< total fault budget (-1 = unlimited)
  /// Transient faults return kUnavailable; permanent faults return
  /// `permanent_code` (kResourceExhausted by default, kInternal also
  /// sensible).
  bool transient = false;
  StatusCode permanent_code = StatusCode::kResourceExhausted;
};

/// Deterministic, seed-driven FaultPolicy: a list of FaultRules matched
/// in order (the first rule that fires decides the fault). With the same
/// seed and the same operation sequence the injected schedule is
/// identical — which is what makes fault-injected multi-tenant runs
/// replayable: the operation sequence is a function of the commit order,
/// so the same schedule produces the same faults on any thread count.
class ScheduledFaultPolicy : public FaultPolicy {
 public:
  explicit ScheduledFaultPolicy(uint64_t seed) : rng_(seed) {}

  /// Appends a rule; rules are evaluated in insertion order.
  void AddRule(FaultRule rule) { rules_.push_back({std::move(rule), 0, 0}); }

  Status Inject(FsOp op, const std::string& path) override;

  // --- counters for assertions and fault-rate accounting ---

  /// Guarded operations seen (i.e. Inject calls).
  int64_t ops_seen() const { return ops_seen_; }
  /// Faults injected, total and per operation kind.
  int64_t faults_injected() const { return faults_injected_; }
  int64_t faults_for(FsOp op) const {
    return faults_by_op_[static_cast<size_t>(op)];
  }
  /// Injected faults / operations seen (0 when nothing was seen).
  double FaultRate() const {
    return ops_seen_ == 0
               ? 0.0
               : static_cast<double>(faults_injected_) /
                     static_cast<double>(ops_seen_);
  }

 private:
  struct RuleState {
    FaultRule rule;
    int64_t matched = 0;  ///< matching ops seen by this rule
    int64_t fired = 0;    ///< faults this rule injected
  };

  Rng rng_;
  std::vector<RuleState> rules_;
  int64_t ops_seen_ = 0;
  int64_t faults_injected_ = 0;
  std::array<int64_t, kFsOpCount> faults_by_op_{};
};

}  // namespace deepsea

#endif  // DEEPSEA_STORAGE_FAULT_POLICY_H_
