#ifndef DEEPSEA_STORAGE_SIM_FS_H_
#define DEEPSEA_STORAGE_SIM_FS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/fault_policy.h"

namespace deepsea {

/// Running totals of simulated I/O. The paper's evaluation reasons about
/// read/write volume and map-task counts (Section 10.2 analyzes cluster
/// utilization); the ledger makes those observable in benches and tests.
///
/// The counters are an append-only log of what physically happened:
/// bytes written by an operation that a transaction later rolls back
/// stay counted (like a failed Hive job that wrote output before being
/// cleaned up), and rollback restores are counted separately.
struct IoLedger {
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  double bytes_deleted = 0.0;
  int64_t files_created = 0;
  int64_t files_deleted = 0;
  int64_t read_ops = 0;

  /// Put over an existing path: the replaced file's bytes and count.
  /// In the pool-manager materialization paths an overwrite indicates a
  /// duplicate-fragment bug, so tests pin these at 0.
  double bytes_overwritten = 0.0;
  int64_t files_overwritten = 0;

  /// Operations failed by the installed FaultPolicy, by kind.
  int64_t failed_creates = 0;
  int64_t failed_puts = 0;
  int64_t failed_deletes = 0;
  int64_t failed_reads = 0;

  /// Files restored to their pre-transaction image by a rollback.
  int64_t rollback_restores = 0;

  int64_t FailedOps() const {
    return failed_creates + failed_puts + failed_deletes + failed_reads;
  }

  void Reset() { *this = IoLedger{}; }
};

/// A simulated HDFS-like distributed file system. Files are metadata
/// only (logical byte sizes) — the physical sample data lives in the
/// Catalog — but every materialized view fragment corresponds to one
/// SimFs file, so pool accounting, block-granular map-task counts and
/// small-files effects are faithful to an HDFS deployment.
///
/// Failure model: an optional FaultPolicy (non-owning; see
/// storage/fault_policy.h) is consulted before every Create/Put/Delete/
/// Read. A failed operation changes nothing except the ledger's failure
/// counters and returns the policy's status. With no policy installed
/// (the default) every operation behaves exactly as before the seam
/// existed — fault machinery off is zero behavior change.
///
/// Thread safety: every operation takes an internal mutex — sharded
/// commits from different tenants write disjoint pool *paths* but share
/// this one file map and ledger. The `ledger()` reference is stable,
/// but reading a *consistent* ledger still requires a quiesced FS (no
/// in-flight commits).
class SimFs {
 public:
  /// `block_bytes` is the HDFS block size; it is both the unit of
  /// map-task scheduling and the paper's lower bound on fragment size
  /// (Section 9 "Bounding Fragment Size").
  explicit SimFs(double block_bytes = 128.0 * 1024 * 1024)
      : block_bytes_(block_bytes) {}

  double block_bytes() const { return block_bytes_; }

  /// Installs the fault-injection policy (nullptr = infallible storage).
  /// The policy must outlive the SimFs or be detached before it dies;
  /// install only on a quiesced pool or from inside the commit section.
  void set_fault_policy(FaultPolicy* policy) { fault_policy_ = policy; }
  FaultPolicy* fault_policy() const { return fault_policy_; }

  /// Creates a file of `bytes` logical bytes. Fails on duplicate path.
  Status Create(const std::string& path, double bytes);

  /// Creates or replaces. Replacement is recorded in the overwrite
  /// ledger counters.
  Status Put(const std::string& path, double bytes);

  Status Delete(const std::string& path);

  bool Exists(const std::string& path) const;

  /// File size; fails when absent.
  Result<double> Size(const std::string& path) const;

  /// Records a full read of the file in the ledger and returns its size.
  Result<double> Read(const std::string& path);

  /// Number of HDFS blocks the file occupies (>= 1 for non-empty files):
  /// this is the number of map tasks a scan of the file spawns.
  Result<int64_t> NumBlocks(const std::string& path) const;

  /// Sum of sizes of all files whose path starts with `prefix`.
  double TotalBytes(const std::string& prefix = "") const;

  /// Paths under `prefix`, sorted.
  std::vector<std::string> List(const std::string& prefix = "") const;

  /// Deletes all files under `prefix`; returns the number removed.
  /// Bulk test/maintenance helper — not consulted with the fault policy
  /// (no engine path uses it).
  int64_t DeleteAll(const std::string& prefix);

  /// Restores `path` to a pre-transaction image: `existed` false removes
  /// the file, true (re)creates it with `bytes`. Bypasses the fault
  /// policy — rollback must not fail — and touches the ledger only via
  /// rollback_restores, so the write/delete totals keep recording the
  /// staged (now undone) work as I/O that physically happened.
  void RestoreForRollback(const std::string& path, bool existed, double bytes);

  const IoLedger& ledger() const { return ledger_; }
  IoLedger* mutable_ledger() { return &ledger_; }

 private:
  /// Consults the fault policy for `op` on `path`; on injection, bumps
  /// the matching failure counter and returns the injected status.
  /// Caller holds mu_.
  Status Guard(FsOp op, const std::string& path);
  /// Size lookup with mu_ already held.
  Result<double> SizeLocked(const std::string& path) const;

  mutable std::mutex mu_;
  double block_bytes_;
  std::map<std::string, double> files_;
  IoLedger ledger_;
  FaultPolicy* fault_policy_ = nullptr;
};

}  // namespace deepsea

#endif  // DEEPSEA_STORAGE_SIM_FS_H_
