#ifndef DEEPSEA_STORAGE_SIM_FS_H_
#define DEEPSEA_STORAGE_SIM_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace deepsea {

/// Running totals of simulated I/O. The paper's evaluation reasons about
/// read/write volume and map-task counts (Section 10.2 analyzes cluster
/// utilization); the ledger makes those observable in benches and tests.
struct IoLedger {
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  double bytes_deleted = 0.0;
  int64_t files_created = 0;
  int64_t files_deleted = 0;
  int64_t read_ops = 0;

  void Reset() { *this = IoLedger{}; }
};

/// A simulated HDFS-like distributed file system. Files are metadata
/// only (logical byte sizes) — the physical sample data lives in the
/// Catalog — but every materialized view fragment corresponds to one
/// SimFs file, so pool accounting, block-granular map-task counts and
/// small-files effects are faithful to an HDFS deployment.
class SimFs {
 public:
  /// `block_bytes` is the HDFS block size; it is both the unit of
  /// map-task scheduling and the paper's lower bound on fragment size
  /// (Section 9 "Bounding Fragment Size").
  explicit SimFs(double block_bytes = 128.0 * 1024 * 1024)
      : block_bytes_(block_bytes) {}

  double block_bytes() const { return block_bytes_; }

  /// Creates a file of `bytes` logical bytes. Fails on duplicate path.
  Status Create(const std::string& path, double bytes);

  /// Creates or replaces.
  void Put(const std::string& path, double bytes);

  Status Delete(const std::string& path);

  bool Exists(const std::string& path) const { return files_.count(path) > 0; }

  /// File size; fails when absent.
  Result<double> Size(const std::string& path) const;

  /// Records a full read of the file in the ledger and returns its size.
  Result<double> Read(const std::string& path);

  /// Number of HDFS blocks the file occupies (>= 1 for non-empty files):
  /// this is the number of map tasks a scan of the file spawns.
  Result<int64_t> NumBlocks(const std::string& path) const;

  /// Sum of sizes of all files whose path starts with `prefix`.
  double TotalBytes(const std::string& prefix = "") const;

  /// Paths under `prefix`, sorted.
  std::vector<std::string> List(const std::string& prefix = "") const;

  /// Deletes all files under `prefix`; returns the number removed.
  int64_t DeleteAll(const std::string& prefix);

  const IoLedger& ledger() const { return ledger_; }
  IoLedger* mutable_ledger() { return &ledger_; }

 private:
  double block_bytes_;
  std::map<std::string, double> files_;
  IoLedger ledger_;
};

}  // namespace deepsea

#endif  // DEEPSEA_STORAGE_SIM_FS_H_
