#include "storage/sim_fs.h"

#include <cmath>

namespace deepsea {

Status SimFs::Guard(FsOp op, const std::string& path) {
  if (fault_policy_ == nullptr) return Status::OK();
  Status st = fault_policy_->Inject(op, path);
  if (st.ok()) return st;
  switch (op) {
    case FsOp::kCreate:
      ++ledger_.failed_creates;
      break;
    case FsOp::kPut:
      ++ledger_.failed_puts;
      break;
    case FsOp::kDelete:
      ++ledger_.failed_deletes;
      break;
    case FsOp::kRead:
      ++ledger_.failed_reads;
      break;
  }
  return st;
}

Status SimFs::Create(const std::string& path, double bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.count(path) > 0) {
    return Status::AlreadyExists("file exists: " + path);
  }
  DEEPSEA_RETURN_IF_ERROR(Guard(FsOp::kCreate, path));
  files_.emplace(path, bytes);
  ledger_.bytes_written += bytes;
  ++ledger_.files_created;
  return Status::OK();
}

Status SimFs::Put(const std::string& path, double bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  DEEPSEA_RETURN_IF_ERROR(Guard(FsOp::kPut, path));
  auto it = files_.find(path);
  if (it != files_.end()) {
    ledger_.bytes_deleted += it->second;
    ledger_.bytes_overwritten += it->second;
    ++ledger_.files_overwritten;
    it->second = bytes;
  } else {
    files_.emplace(path, bytes);
    ++ledger_.files_created;
  }
  ledger_.bytes_written += bytes;
  return Status::OK();
}

Status SimFs::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  DEEPSEA_RETURN_IF_ERROR(Guard(FsOp::kDelete, path));
  ledger_.bytes_deleted += it->second;
  ++ledger_.files_deleted;
  files_.erase(it);
  return Status::OK();
}

bool SimFs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Result<double> SimFs::SizeLocked(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

Result<double> SimFs::Size(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SizeLocked(path);
}

Result<double> SimFs::Read(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  DEEPSEA_ASSIGN_OR_RETURN(double size, SizeLocked(path));
  DEEPSEA_RETURN_IF_ERROR(Guard(FsOp::kRead, path));
  ledger_.bytes_read += size;
  ++ledger_.read_ops;
  return size;
}

Result<int64_t> SimFs::NumBlocks(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  DEEPSEA_ASSIGN_OR_RETURN(double size, SizeLocked(path));
  if (size <= 0.0) return static_cast<int64_t>(0);
  return static_cast<int64_t>(std::ceil(size / block_bytes_));
}

double SimFs::TotalBytes(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

std::vector<std::string> SimFs::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

int64_t SimFs::DeleteAll(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t removed = 0;
  auto it = files_.lower_bound(prefix);
  while (it != files_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    ledger_.bytes_deleted += it->second;
    ++ledger_.files_deleted;
    it = files_.erase(it);
    ++removed;
  }
  return removed;
}

void SimFs::RestoreForRollback(const std::string& path, bool existed,
                               double bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++ledger_.rollback_restores;
  if (existed) {
    files_[path] = bytes;
  } else {
    files_.erase(path);
  }
}

}  // namespace deepsea
