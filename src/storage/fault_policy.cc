#include "storage/fault_policy.h"

#include <algorithm>

#include "common/str_util.h"

namespace deepsea {

namespace {

/// Thread-local execution scope; kForeground unless a FaultScopeGuard
/// is active on this thread.
thread_local FaultScope t_fault_scope = FaultScope::kForeground;

}  // namespace

FaultScope CurrentFaultScope() { return t_fault_scope; }

FaultScopeGuard::FaultScopeGuard(FaultScope scope) : prev_(t_fault_scope) {
  t_fault_scope = scope;
}

FaultScopeGuard::~FaultScopeGuard() { t_fault_scope = prev_; }

const char* FsOpName(FsOp op) {
  switch (op) {
    case FsOp::kCreate:
      return "create";
    case FsOp::kPut:
      return "put";
    case FsOp::kDelete:
      return "delete";
    case FsOp::kRead:
      return "read";
  }
  return "unknown";
}

Status ScheduledFaultPolicy::Inject(FsOp op, const std::string& path) {
  ++ops_seen_;
  const FaultScope scope = CurrentFaultScope();
  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (r.scope != FaultScope::kAny && r.scope != scope) continue;
    if (!r.ops.empty() &&
        std::find(r.ops.begin(), r.ops.end(), op) == r.ops.end()) {
      continue;
    }
    if (!r.path_substring.empty() &&
        path.find(r.path_substring) == std::string::npos) {
      continue;
    }
    ++rs.matched;
    if (rs.matched <= r.after_count) continue;
    if (r.max_failures >= 0 && rs.fired >= r.max_failures) continue;
    const int64_t eligible = rs.matched - r.after_count;
    bool fire = false;
    if (r.every_nth > 0 && eligible % r.every_nth == 0) fire = true;
    if (r.probability > 0.0 && rng_.Bernoulli(r.probability)) fire = true;
    if (!fire) continue;
    ++rs.fired;
    ++faults_injected_;
    ++faults_by_op_[static_cast<size_t>(op)];
    const std::string msg =
        StrFormat("injected %s fault on %s op #%lld (%s)",
                  r.transient ? "transient" : "permanent", FsOpName(op),
                  static_cast<long long>(ops_seen_), path.c_str());
    if (r.transient) return Status::Unavailable(msg);
    return Status(r.permanent_code, msg);
  }
  return Status::OK();
}

}  // namespace deepsea
