#include "workload/range_generator.h"

#include <algorithm>
#include <cmath>

namespace deepsea {

const char* SelectivityName(Selectivity s) {
  switch (s) {
    case Selectivity::kSmall:
      return "S";
    case Selectivity::kMedium:
      return "M";
    case Selectivity::kBig:
      return "B";
  }
  return "?";
}

const char* SkewName(Skew s) {
  switch (s) {
    case Skew::kUniform:
      return "U";
    case Skew::kLight:
      return "L";
    case Skew::kHeavy:
      return "H";
  }
  return "?";
}

double SelectivityFraction(Selectivity s) {
  switch (s) {
    case Selectivity::kSmall:
      return 0.01;
    case Selectivity::kMedium:
      return 0.05;
    case Selectivity::kBig:
      return 0.25;
  }
  return 0.05;
}

double SkewSigmaFraction(Skew s) {
  switch (s) {
    case Skew::kUniform:
      return 0.0;  // unused
    case Skew::kLight:
      return 0.075;
    case Skew::kHeavy:
      return 0.0025;
  }
  return 0.0;
}

RangeGenerator::RangeGenerator(Config config, uint64_t seed)
    : cfg_(config), rng_(seed) {}

RangeGenerator::RangeGenerator(const Interval& domain, Selectivity sel,
                               Skew skew, uint64_t seed)
    : cfg_{domain, SelectivityFraction(sel), skew,
           std::numeric_limits<double>::quiet_NaN()},
      rng_(seed) {}

Interval RangeGenerator::Next() {
  const double dw = cfg_.domain.Width();
  const double width = std::min(cfg_.selectivity_fraction * dw, dw);
  const double half = width / 2.0;
  double mid;
  if (cfg_.skew == Skew::kUniform) {
    mid = rng_.Uniform(cfg_.domain.lo + half, cfg_.domain.hi - half);
  } else {
    const double center =
        std::isnan(cfg_.center) ? cfg_.domain.Mid() : cfg_.center;
    const double sigma = SkewSigmaFraction(cfg_.skew) * dw;
    mid = rng_.Gaussian(center, sigma);
  }
  // Clamp preserving the width.
  double lo = mid - half;
  double hi = mid + half;
  if (lo < cfg_.domain.lo) {
    hi += cfg_.domain.lo - lo;
    lo = cfg_.domain.lo;
  }
  if (hi > cfg_.domain.hi) {
    lo -= hi - cfg_.domain.hi;
    hi = cfg_.domain.hi;
  }
  lo = std::max(lo, cfg_.domain.lo);
  return Interval(lo, hi);
}

ZipfRangeGenerator::ZipfRangeGenerator(const Interval& domain,
                                       double selectivity_fraction,
                                       int num_buckets, double exponent,
                                       uint64_t seed)
    : domain_(domain),
      width_(selectivity_fraction * domain.Width()),
      num_buckets_(num_buckets),
      exponent_(exponent),
      rng_(seed) {}

Interval ZipfRangeGenerator::Next() {
  // Draw a Zipf rank, map it to a bucket midpoint: rank 1 is the
  // hottest bucket. Buckets are shuffled deterministically by a fixed
  // stride so the hot region is not simply the domain's left edge.
  const int64_t rank = rng_.Zipf(num_buckets_, exponent_);
  const int64_t bucket = (rank * 7919) % num_buckets_;  // prime stride scatter
  const double bucket_width = domain_.Width() / num_buckets_;
  const double mid =
      domain_.lo + bucket_width * (static_cast<double>(bucket) + 0.5);
  double lo = mid - width_ / 2.0;
  double hi = mid + width_ / 2.0;
  if (lo < domain_.lo) {
    hi += domain_.lo - lo;
    lo = domain_.lo;
  }
  if (hi > domain_.hi) {
    lo -= hi - domain_.hi;
    hi = domain_.hi;
  }
  lo = std::max(lo, domain_.lo);
  return Interval(lo, hi);
}

}  // namespace deepsea
